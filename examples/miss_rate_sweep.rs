//! Sweeps trace-cache and preconstruction-buffer sizes for one
//! benchmark — a single panel of the paper's Figure 5.
//!
//! ```text
//! cargo run --release --example miss_rate_sweep [benchmark]
//! ```

use trace_preconstruction::experiments::fig5;
use trace_preconstruction::experiments::RunParams;
use trace_preconstruction::workloads::Benchmark;

fn main() {
    let benchmark: Benchmark = std::env::args()
        .nth(1)
        .map(|s| s.parse().unwrap_or_else(|e| panic!("{e}")))
        .unwrap_or(Benchmark::Go);

    let rows = fig5::run(&[benchmark], RunParams::default());
    print!("{}", fig5::render(&rows));

    for &(tc, pb) in &[(256u32, 256u32), (128, 128)] {
        if let Some(reduction) = fig5::reduction_percent(&rows, benchmark, tc, pb) {
            println!(
                "\n{benchmark}: {tc}-entry TC + {pb}-entry PB removes {reduction:.0}% of the misses of the {tc}-entry baseline"
            );
        }
    }
}
