//! Pipeline event viewer: a cycle-by-cycle log of trace dispatches,
//! slow-path builds, misprediction stalls and retirements — a compact
//! textual equivalent of a pipeline diagram.
//!
//! ```text
//! cargo run --release --example pipeline_view [benchmark] [n_events]
//! ```

use trace_preconstruction::processor::{SimConfig, SimEvent, Simulator, SupplySource};
use trace_preconstruction::workloads::{Benchmark, WorkloadBuilder};

fn main() {
    let benchmark: Benchmark = std::env::args()
        .nth(1)
        .map(|s| s.parse().unwrap_or_else(|e| panic!("{e}")))
        .unwrap_or(Benchmark::Li);
    let n_events: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(60);

    let program = WorkloadBuilder::new(benchmark).seed(1).build();
    let mut config = SimConfig::with_precon(64, 64);
    config.record_events = true;
    let mut sim = Simulator::new(&program, config);
    // Warm up silently, then capture a window.
    sim.run(30_000);

    println!("{benchmark}: last {n_events} pipeline events\n");
    println!("{:>10}  {:18} detail", "cycle", "event");
    let events = sim.events();
    let window = &events[events.len().saturating_sub(n_events)..];
    for e in window {
        match *e {
            SimEvent::Dispatch {
                cycle,
                start,
                len,
                pe,
                source,
            } => {
                let src = match source {
                    SupplySource::TraceCache => "trace cache",
                    SupplySource::PreconBuffer => "PRECON BUFFER",
                    SupplySource::SlowPath => "slow path",
                };
                println!(
                    "{cycle:>10}  {:18} {start} x{len:<2} on PE{pe} from {src}",
                    "dispatch"
                );
            }
            SimEvent::SlowBuildBegin { cycle, start } => {
                println!("{cycle:>10}  {:18} building trace @ {start}", "tc miss");
            }
            SimEvent::MispredictStall { cycle, until } => {
                println!(
                    "{cycle:>10}  {:18} frontend waits until {until}",
                    "mispredict"
                );
            }
            SimEvent::Retire { cycle, start } => {
                println!("{cycle:>10}  {:18} trace @ {start}", "retire");
            }
        }
    }
    let s = sim.stats();
    println!(
        "\nsummary: ipc={:.2}, {} dispatches ({} from buffers), {} slow builds",
        s.ipc(),
        s.trace_fetches,
        s.precon_buffer_hits,
        s.trace_cache_misses
    );
}
