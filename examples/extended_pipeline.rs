//! The extended pipeline model (paper Section 6): preconstruction
//! and preprocessing, separately and combined, on one benchmark —
//! one group of bars from Figure 8.
//!
//! ```text
//! cargo run --release --example extended_pipeline [benchmark]
//! ```

use trace_preconstruction::processor::{SimConfig, Simulator};
use trace_preconstruction::workloads::{Benchmark, WorkloadBuilder};

fn main() {
    let benchmark: Benchmark = std::env::args()
        .nth(1)
        .map(|s| s.parse().unwrap_or_else(|e| panic!("{e}")))
        .unwrap_or(Benchmark::Vortex);

    let program = WorkloadBuilder::new(benchmark).seed(1).build();
    let (warmup, measure) = (150_000, 300_000);

    let run = |label: &str, config: SimConfig| -> f64 {
        let mut sim = Simulator::new(&program, config);
        let stats = sim.run_with_warmup(warmup, measure);
        println!("{label:<28} ipc = {:.3}", stats.ipc());
        stats.ipc()
    };

    println!("benchmark: {benchmark}\n");
    let base = run("baseline (256 TC)", SimConfig::baseline(256));
    let precon = run(
        "preconstruction (128+128)",
        SimConfig::with_precon(128, 128),
    );
    let preproc = run(
        "preprocessing (256 TC)",
        SimConfig::baseline(256).with_preprocess(),
    );
    let combined = run(
        "combined (128+128, preproc)",
        SimConfig::with_precon(128, 128).with_preprocess(),
    );

    let pct = |x: f64| (x / base - 1.0) * 100.0;
    println!("\nspeedups over baseline:");
    println!("  preconstruction  {:+.1}%", pct(precon));
    println!("  preprocessing    {:+.1}%", pct(preproc));
    println!("  combined         {:+.1}%", pct(combined));
    println!("  sum of parts     {:+.1}%", pct(precon) + pct(preproc));
    if pct(combined) > pct(precon) + pct(preproc) {
        println!("\nthe combination exceeds the sum of its parts — the paper's Section 6 claim");
    }
}
