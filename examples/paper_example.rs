//! The paper's worked example (Figures 2 and 3), reconstructed.
//!
//! Builds the static code of Figure 2 — block `a`, a `jal` to a
//! procedure containing a loop (`b`, `c`*) and an if-then-else
//! (`d`/`e|f`/`g`), a return, then `h`, a loop of `i`, and `j` —
//! feeds the `jal` to the preconstruction engine exactly as the
//! processor's dispatch stream would, and dumps the traces the engine
//! builds for "Region 1" ahead of execution.
//!
//! ```text
//! cargo run --release --example paper_example
//! ```

use trace_preconstruction::core::{EngineConfig, PreconEngine, SplitStore};
use trace_preconstruction::isa::model::OutcomeModel;
use trace_preconstruction::isa::{Addr, BranchCond, Op, Program, ProgramBuilder, Reg};
use trace_preconstruction::mem::{InstrCache, InstrCacheConfig};
use trace_preconstruction::predict::Bimodal;

fn r(i: u8) -> Reg {
    Reg::new(i)
}

/// Emits `len` filler ALU instructions standing in for one of the
/// paper's basic blocks.
fn block(b: &mut ProgramBuilder, len: u32) {
    for _ in 0..len {
        b.push(Op::AddImm {
            rd: r(1),
            rs1: r(1),
            imm: 1,
        });
    }
}

fn build_figure2() -> (Program, Addr) {
    let mut b = ProgramBuilder::new();

    // block a; jal proc
    block(&mut b, 3);
    let jal_at = b.push(Op::Nop); // patched to jal below

    // Region 1 starts here: h; loop of i; j (the code after the
    // procedure returns).
    let _region1 = b.here();
    block(&mut b, 4); // h
    let i_top = b.here();
    block(&mut b, 4); // i
    b.push_branch(
        Op::Branch {
            cond: BranchCond::Ne,
            rs1: r(2),
            rs2: r(3),
            target: i_top,
        },
        OutcomeModel::Loop { trip: 2 },
    );
    block(&mut b, 3); // j
    b.push(Op::Halt);

    // The procedure: b; loop of c; if-then-else d/(e|f)/g; ret.
    let proc = b.here();
    block(&mut b, 3); // b
    let c_top = b.here();
    block(&mut b, 3); // c
    b.push_branch(
        Op::Branch {
            cond: BranchCond::Ne,
            rs1: r(2),
            rs2: r(3),
            target: c_top,
        },
        OutcomeModel::Loop { trip: 3 },
    );
    // d, then branch to f (else) or fall into e.
    block(&mut b, 2); // d
    let br_at = b.push_branch(
        Op::Branch {
            cond: BranchCond::Eq,
            rs1: r(4),
            rs2: r(5),
            target: Addr::ZERO,
        },
        OutcomeModel::Biased {
            num: 1,
            denom: 2,
            seed: 42,
        },
    );
    block(&mut b, 2); // e
    let jmp_at = b.push(Op::Jump { target: Addr::ZERO });
    let f_at = b.here();
    block(&mut b, 2); // f
    let g_at = b.here();
    block(&mut b, 2); // g
    b.push(Op::Return);
    b.patch(
        br_at,
        Op::Branch {
            cond: BranchCond::Eq,
            rs1: r(4),
            rs2: r(5),
            target: f_at,
        },
    );
    b.patch(jmp_at, Op::Jump { target: g_at });
    b.patch(jal_at, Op::Call { target: proc });
    b.record_function("main", Addr::ZERO);
    b.record_function("proc", proc);

    (b.build().expect("figure 2 code is valid"), jal_at)
}

fn main() {
    let (program, jal_at) = build_figure2();
    println!("=== static code (paper Figure 2) ===\n{program}");

    // Stand-alone preconstruction harness: the engine sees the jal
    // dispatch and explores Region 1 while the "processor" is still
    // inside the procedure.
    let mut engine = PreconEngine::new(EngineConfig::default());
    let mut icache = InstrCache::new(InstrCacheConfig::default());
    let bimodal = Bimodal::new(1024); // weak everywhere: both if arms explored
    let mut store = SplitStore::new(64, 256);

    let jal = *program.fetch(jal_at).expect("jal present");
    engine.observe_dispatch(jal_at, &jal, 1);
    for cycle in 0..400 {
        engine.tick(cycle, true, &program, &mut icache, &bimodal, &mut store);
    }

    println!("=== preconstruction after observing the jal ===\n");
    let stats = engine.stats();
    println!(
        "regions started: {}, completed: {}, traces built: {}\n",
        stats.regions_started, stats.regions_completed, stats.traces_built
    );

    // Dump the buffer contents, ordered by start address — these are
    // the traces waiting for the processor to arrive.
    println!(
        "traces preconstructed for Region 1 (start {}):",
        jal_at.next()
    );
    let mut traces: Vec<_> = store.buffers().iter().collect();
    traces.sort_by_key(|(t, _)| (t.start(), t.key().outcomes));
    for (trace, _region) in traces {
        let key = trace.key();
        println!(
            "\n  trace @ {} ({} instrs, {} branches, outcomes {:0w$b}):",
            trace.start(),
            trace.len(),
            key.branch_count,
            key.outcomes,
            w = key.branch_count as usize
        );
        for ti in trace.instrs() {
            println!("    {}:  {}", ti.pc, ti.op);
        }
        match trace.successor() {
            Some(succ) => println!("    → next trace start point {succ}"),
            None => println!("    → successor unknown (path ends)"),
        }
    }
}
