//! Quickstart: simulate one benchmark with and without trace
//! preconstruction and print the headline numbers.
//!
//! ```text
//! cargo run --release --example quickstart [benchmark]
//! ```

use trace_preconstruction::processor::{SimConfig, Simulator};
use trace_preconstruction::workloads::{Benchmark, WorkloadBuilder};

fn main() {
    let benchmark: Benchmark = std::env::args()
        .nth(1)
        .map(|s| s.parse().unwrap_or_else(|e| panic!("{e}")))
        .unwrap_or(Benchmark::Gcc);

    println!("generating synthetic {benchmark} workload...");
    let program = WorkloadBuilder::new(benchmark).seed(1).build();
    println!(
        "  {} static instructions, {} functions\n",
        program.len(),
        program.functions().len()
    );

    let (warmup, measure) = (150_000, 300_000);

    // Baseline: 256-entry trace cache, no preconstruction.
    let mut base = Simulator::new(&program, SimConfig::baseline(256));
    let sb = base.run_with_warmup(warmup, measure);

    // Equal area: 128-entry trace cache + 128-entry preconstruction
    // buffer.
    let mut precon = Simulator::new(&program, SimConfig::with_precon(128, 128));
    let sp = precon.run_with_warmup(warmup, measure);

    println!("                         baseline (256 TC)   precon (128 TC + 128 PB)");
    println!(
        "TC misses /1000 instr    {:>8.1}            {:>8.1}",
        sb.tc_misses_per_kilo(),
        sp.tc_misses_per_kilo()
    );
    println!(
        "I-cache instrs /1000     {:>8.1}            {:>8.1}",
        sb.icache_supplied_per_kilo(),
        sp.icache_supplied_per_kilo()
    );
    println!(
        "IPC                      {:>8.2}            {:>8.2}",
        sb.ipc(),
        sp.ipc()
    );
    println!(
        "\npreconstruction: {:+.1}% miss rate, {:+.1}% performance",
        (sp.tc_misses_per_kilo() / sb.tc_misses_per_kilo() - 1.0) * 100.0,
        (sp.speedup_over(&sb) - 1.0) * 100.0
    );
    println!(
        "buffer hits: {} of {} trace fetches",
        sp.precon_buffer_hits, sp.trace_fetches
    );
}
