; Interpreter-style dispatch loop: fetch an "opcode", jump through a
; weighted jump table to one of four handlers, loop back to the top.
; The indirect jump is the interesting bit — its target distribution
; is what the preconstruction tables have to learn.
main:
    li   r1, 0            ; virtual pc
    li   r7, 0            ; accumulator
fetch:
    addi r1, r1, 1        ; advance virtual pc
    ld   r2, 0(r1)        ; fetch the next opcode
    jr   r2 @targets(op_add:4, op_load:3, op_store:2, op_branch:1, seed=9)
op_add:
    add  r7, r7, r1
    jmp  fetch
op_load:
    ld   r3, 8(r1)
    add  r7, r7, r3
    jmp  fetch
op_store:
    st   r7, 16(r1)
    jmp  fetch
op_branch:
    bne  r7, r0, fetch @bias(7/8, seed=3)
    halt
