; Mixed control flow: a rarely-taken diamond and a patterned branch
; inside a counted loop — biased, periodic, and counted outcome
; models all in one kernel.
main:
    li   r1, 0
loop:
    addi r1, r1, 1
    beq  r1, r2, rare @bias(1/16, seed=5)
    add  r3, r3, r1
    jmp  join
rare:
    sub  r3, r3, r1
join:
    blt  r3, r4, skip @pattern(0b1100)
    xor  r5, r5, r3
skip:
    bne  r1, r0, loop @loop(12)
    halt
