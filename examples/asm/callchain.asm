; Deep call chain: main calls down four levels; each frame does a
; little work before calling deeper and returns back up, exercising
; the return stack and the call/return CFG edges.
main:
    jal  f1
    halt
f1:
    addi r1, r1, 1
    jal  f2
    ret
f2:
    addi r2, r2, 1
    jal  f3
    ret
f3:
    addi r3, r3, 1
    jal  f4
    ret
f4:
    addi r4, r4, 1
    ret
