; Pointer-chasing kernel: each load's address depends on the previous
; load's value, serialising the memory accesses — the classic
; latency-bound loop.
main:
    li   r1, 0x40         ; head of the chain
    li   r2, 0            ; hop counter
chase:
    ld   r1, 0(r1)        ; follow the next pointer
    addi r2, r2, 1
    bne  r1, r0, chase @loop(64)
    halt
