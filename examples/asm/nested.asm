; Tight nested loops: a three-deep loop nest with short trip counts —
; exactly the shape the "fall-through of a backward branch" region
; heuristic targets.
main:
    li   r1, 0
outer:
    li   r2, 0
middle:
    li   r3, 0
inner:
    addi r3, r3, 1
    add  r1, r1, r3
    bne  r3, r0, inner @loop(4)
    addi r2, r2, 1
    bne  r2, r0, middle @loop(3)
    addi r1, r1, 1
    bne  r1, r0, outer @loop(2)
    halt
