//! Drive the simulator with a hand-written assembly program.
//!
//! Shows the `tpc-isa` assembler: a program with a hot loop, a
//! procedure call, a biased if-diamond and a switch, simulated with
//! and without preconstruction.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use trace_preconstruction::isa::asm::assemble;
use trace_preconstruction::processor::{SimConfig, Simulator};

const SOURCE: &str = r#"
; A kernel shaped like the paper's example: a hot loop whose exit is
; followed by a long straight-line epilogue — while the loop spins,
; the preconstruction engine builds the epilogue's traces ahead of
; time (a loop-exit region).
main:
    li   r20, 0x1000        ; table base
    li   r1, 200
outer:
    jal  work                ; two phases: the small trace cache
    jal  work2               ; cannot hold both epilogues at once
    addi r1, r1, -1
    bne  r1, r0, outer  @loop(200)
    halt

work:
    li   r2, 24
spin:                        ; hot loop: gives the engine lead time
    ld   r3, 0(r20)
    add  r4, r4, r3
    addi r2, r2, -1
    bne  r2, r0, spin   @loop(24)
    ; loop exit: the engine preconstructs everything below while the
    ; loop above is still running.
    add  r5, r4, r3
    addi r5, r5, 7
    xor  r6, r5, r4
    shl  r6, r6, 2
    add  r7, r6, r5
    st   r7, 8(r20)
    beq  r7, r0, rare   @bias(1/20)
    addi r8, r8, 1
    jmp  tail
rare:
    mul  r8, r7, r7          ; cold arm
tail:
    add  r9, r8, r7
    sub  r9, r9, r5
    addi r9, r9, 3
    xor  r10, r9, r8
    add  r11, r10, r9
    st   r11, 16(r20)
    addi r12, r11, 1
    add  r13, r12, r11
    ret

work2:                       ; same shape, different code
    li   r2, 24
spin2:
    ld   r14, 8(r20)
    sub  r15, r15, r14
    addi r2, r2, -1
    bne  r2, r0, spin2  @loop(24)
    sub  r16, r15, r14
    addi r16, r16, 11
    or   r17, r16, r15
    shr  r17, r17, 1
    sub  r18, r17, r16
    st   r18, 24(r20)
    bne  r18, r0, tail2 @bias(19/20)
    mul  r19, r18, r18       ; cold arm
tail2:
    add  r3, r19, r18
    xor  r4, r3, r17
    addi r4, r4, 5
    sub  r5, r4, r3
    add  r6, r5, r4
    st   r6, 32(r20)
    addi r7, r6, 1
    ret
"#;

fn main() {
    let program = assemble(SOURCE).expect("valid assembly");
    println!("assembled {} instructions:\n{program}", program.len());

    for (label, config) in [
        ("baseline (8-entry TC)", SimConfig::baseline(8)),
        ("precon (8 TC + 8 PB)", SimConfig::with_precon(8, 8)),
    ] {
        let mut sim = Simulator::new(&program, config);
        let stats = sim.run_with_warmup(20_000, 50_000);
        println!(
            "{label:<24} ipc={:.2}  tc-misses/1k={:.1}  precon-hits={}",
            stats.ipc(),
            stats.tc_misses_per_kilo(),
            stats.precon_buffer_hits,
        );
    }
}
