//! Differential-oracle smoke suite (root crate).
//!
//! Part of the default `cargo test` run: 500 structure-aware fuzzed
//! programs, each executed under every simulator configuration
//! (baseline trace cache, preconstruction, combined with
//! preprocessing, unified storage) and compared instruction-by-
//! instruction against the golden-model reference interpreter in
//! `tpc-oracle`. Conservation invariants (fetch accounting, buffer
//! occupancy ≤ capacity, start-stack depth ≤ 16+4, traces verbatim
//! from static code) are re-checked after every chunk.
//!
//! On divergence the failing scenario is shrunk and the panic message
//! carries a one-line `fuzz_sim` command that reproduces it.

use trace_preconstruction::oracle::{check_and_shrink, fuzzgen::FEAT_ALL, Scenario};

#[test]
fn five_hundred_fuzzed_programs_match_the_oracle() {
    for seed in 0..500u64 {
        let scenario = Scenario {
            seed: 40_000 + seed,
            size: 120,
            features: FEAT_ALL,
        };
        if let Err((shrunk, div)) = check_and_shrink(&scenario, 600) {
            panic!(
                "differential divergence: {div}\n  shrunk to {shrunk}\n  reproduce: {}",
                shrunk.command()
            );
        }
    }
}
