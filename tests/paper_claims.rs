//! Integration tests asserting the paper's qualitative claims hold
//! end-to-end (shapes, not absolute numbers — see EXPERIMENTS.md).

use trace_preconstruction::processor::{SimConfig, Simulator};
use trace_preconstruction::workloads::{Benchmark, WorkloadBuilder};

const WARMUP: u64 = 60_000;
const MEASURE: u64 = 120_000;

fn miss_rate(benchmark: Benchmark, tc: u32, pb: u32) -> f64 {
    let program = WorkloadBuilder::new(benchmark).seed(1).build();
    let mut sim = Simulator::new(&program, SimConfig::with_precon(tc, pb));
    sim.run_with_warmup(WARMUP, MEASURE).tc_misses_per_kilo()
}

/// Section 5.1: the large-working-set benchmarks see substantial
/// (tens of percent) miss-rate reductions from preconstruction.
#[test]
fn precon_reduces_misses_for_large_benchmarks() {
    for benchmark in [Benchmark::Gcc, Benchmark::Go, Benchmark::Vortex] {
        let base = miss_rate(benchmark, 256, 0);
        let pre = miss_rate(benchmark, 256, 256);
        let reduction = (1.0 - pre / base) * 100.0;
        assert!(
            reduction > 20.0,
            "{benchmark}: reduction {reduction:.0}% (base {base:.1}, precon {pre:.1})"
        );
    }
}

/// Section 5.1: preconstruction beats spending the same area on a
/// larger trace cache (equal-area comparison).
#[test]
fn precon_beats_equal_area_trace_cache() {
    for benchmark in [Benchmark::Gcc, Benchmark::Go, Benchmark::Vortex] {
        let big_tc = miss_rate(benchmark, 512, 0);
        let split = miss_rate(benchmark, 256, 256);
        assert!(
            split < big_tc,
            "{benchmark}: split {split:.1} should beat big TC {big_tc:.1}"
        );
    }
}

/// Section 5.1: compress and ijpeg have working sets so small that
/// there is nothing for preconstruction to improve.
#[test]
fn small_benchmarks_have_no_headroom() {
    for benchmark in [Benchmark::Compress, Benchmark::Ijpeg] {
        let base = miss_rate(benchmark, 256, 0);
        assert!(
            base < 5.0,
            "{benchmark}: baseline miss rate {base:.1} already near zero"
        );
    }
}

/// Figure 5 panels: miss rate decreases monotonically (within noise)
/// with trace-cache size.
#[test]
fn miss_rate_scales_with_trace_cache_size() {
    let program = WorkloadBuilder::new(Benchmark::Gcc).seed(1).build();
    let mut prev = f64::INFINITY;
    for tc in [64, 256, 1024] {
        let mut sim = Simulator::new(&program, SimConfig::baseline(tc));
        let rate = sim.run_with_warmup(WARMUP, MEASURE).tc_misses_per_kilo();
        assert!(
            rate < prev * 1.05,
            "gcc: miss rate {rate:.1} at {tc} entries should not exceed smaller cache ({prev:.1})"
        );
        prev = rate;
    }
}

/// Section 5.2, Table 1 direction: preconstruction cuts the number
/// of instructions the I-cache must supply to the processor.
#[test]
fn precon_reduces_slow_path_supply() {
    let program = WorkloadBuilder::new(Benchmark::Gcc).seed(1).build();
    let mut base = Simulator::new(&program, SimConfig::baseline(512));
    let sb = base.run_with_warmup(WARMUP, MEASURE);
    let mut pre = Simulator::new(&program, SimConfig::with_precon(256, 256));
    let sp = pre.run_with_warmup(WARMUP, MEASURE);
    assert!(
        sp.icache_supplied_per_kilo() < sb.icache_supplied_per_kilo(),
        "supply: precon {:.0} vs base {:.0}",
        sp.icache_supplied_per_kilo(),
        sb.icache_supplied_per_kilo()
    );
}

/// Section 5.2, Tables 2 and 3: preconstruction shifts I-cache
/// misses from the demand (slow) path to the engine — demand misses
/// drop because the engine prefetched those lines, total misses do
/// not drop (the engine touches lines the processor never demanded),
/// and the instructions supplied *from misses* fall.
#[test]
fn precon_shifts_icache_misses_to_the_engine() {
    let program = WorkloadBuilder::new(Benchmark::Gcc).seed(1).build();
    let mut base = Simulator::new(&program, SimConfig::baseline(512));
    let sb = base.run_with_warmup(WARMUP, MEASURE);
    let mut pre = Simulator::new(&program, SimConfig::with_precon(256, 256));
    let sp = pre.run_with_warmup(WARMUP, MEASURE);
    assert!(
        sp.icache.demand_misses < sb.icache.demand_misses,
        "demand misses drop: {} vs {}",
        sp.icache.demand_misses,
        sb.icache.demand_misses
    );
    assert!(
        sp.icache.precon_misses > 0,
        "the engine takes misses of its own"
    );
    assert!(
        sp.icache_misses_per_kilo() > sb.icache_misses_per_kilo() * 0.8,
        "total misses do not collapse: precon {:.1} vs base {:.1}",
        sp.icache_misses_per_kilo(),
        sb.icache_misses_per_kilo()
    );
    assert!(
        sp.miss_supplied_per_kilo() < sb.miss_supplied_per_kilo(),
        "Table 3: instructions supplied from misses fall ({:.1} vs {:.1})",
        sp.miss_supplied_per_kilo(),
        sb.miss_supplied_per_kilo()
    );
    assert!(
        sp.icache.demand_hits_on_precon_lines > 0,
        "the slow path hits lines the engine prefetched"
    );
}

/// Section 6 / Figure 8: preprocessing alone speeds up execution, and
/// the combination with preconstruction beats either alone.
#[test]
fn extended_pipeline_combination_wins() {
    let program = WorkloadBuilder::new(Benchmark::Gcc).seed(1).build();
    let ipc = |config: SimConfig| {
        Simulator::new(&program, config)
            .run_with_warmup(WARMUP, MEASURE)
            .ipc()
    };
    let base = ipc(SimConfig::baseline(256));
    let precon = ipc(SimConfig::with_precon(128, 128));
    let preproc = ipc(SimConfig::baseline(256).with_preprocess());
    let combined = ipc(SimConfig::with_precon(128, 128).with_preprocess());
    assert!(
        preproc > base,
        "preprocessing helps: {preproc:.3} vs {base:.3}"
    );
    assert!(
        combined > precon && combined > preproc,
        "combination ({combined:.3}) beats precon ({precon:.3}) and preproc ({preproc:.3})"
    );
}
