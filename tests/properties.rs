//! Property-based tests over randomly generated workloads: the
//! system-level invariants must hold for *every* seed, not just the
//! calibrated profiles' defaults.
#![cfg(feature = "proptest-tests")]

use proptest::prelude::*;
use trace_preconstruction::core::MAX_TRACE_LEN;
use trace_preconstruction::exec::Executor;
use trace_preconstruction::isa::OpClass;
use trace_preconstruction::processor::{SimConfig, Simulator, TraceStream};
use trace_preconstruction::workloads::{Benchmark, WorkloadBuilder};

fn small_benchmarks() -> impl Strategy<Value = Benchmark> {
    prop_oneof![
        Just(Benchmark::Compress),
        Just(Benchmark::Ijpeg),
        Just(Benchmark::Li),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Generated programs always validate and execute indefinitely.
    #[test]
    fn any_seed_builds_and_runs(benchmark in small_benchmarks(), seed in 0u64..1_000) {
        let program = WorkloadBuilder::new(benchmark).seed(seed).build();
        prop_assert!(program.len() > 10);
        let mut ex = Executor::new(&program);
        for _ in 0..20_000 {
            let d = ex.next().expect("endless stream");
            prop_assert!(program.fetch(d.pc).is_some(), "pc stays inside the code");
        }
    }

    /// Traces partition the dynamic stream: no instruction is lost or
    /// duplicated, traces respect the length cap, and consecutive
    /// traces chain through their successors.
    #[test]
    fn traces_partition_stream(benchmark in small_benchmarks(), seed in 0u64..1_000) {
        let program = WorkloadBuilder::new(benchmark).seed(seed).build();
        let mut stream = TraceStream::new(&program);
        let mut covered = 0u64;
        let mut prev_succ: Option<trace_preconstruction::isa::Addr> = None;
        for _ in 0..400 {
            let dt = stream.next_trace();
            prop_assert!(!dt.is_empty() && dt.len() <= MAX_TRACE_LEN);
            if let Some(succ) = prev_succ {
                prop_assert_eq!(succ, dt.trace.start(), "alignment chain");
            }
            prev_succ = dt.trace.successor();
            covered += dt.len() as u64;
            // Branch-outcome metadata is exactly parallel.
            let branches = dt
                .trace
                .instrs()
                .iter()
                .filter(|ti| ti.op.class() == OpClass::Branch)
                .count();
            prop_assert_eq!(branches, dt.branch_outcomes.len());
        }
        prop_assert_eq!(covered, stream.retired());
    }

    /// The simulator's conservation law holds under random seeds and
    /// random cache shapes.
    #[test]
    fn fetch_conservation(
        benchmark in small_benchmarks(),
        seed in 0u64..1_000,
        tc_pow in 6u32..9,
        pb_sel in 0usize..3,
    ) {
        let pb = [0u32, 32, 128][pb_sel];
        let program = WorkloadBuilder::new(benchmark).seed(seed).build();
        let mut sim = Simulator::new(&program, SimConfig::with_precon(1 << tc_pow, pb));
        let s = sim.run(15_000);
        prop_assert_eq!(
            s.trace_fetches,
            s.trace_cache_hits + s.precon_buffer_hits + s.trace_cache_misses
        );
        prop_assert!(s.ipc() > 0.05 && s.ipc() <= 8.0);
        if pb == 0 {
            prop_assert_eq!(s.precon_buffer_hits, 0);
        }
    }
}
