//! Property-style tests over randomly generated workloads: the
//! system-level invariants must hold for *every* seed, not just the
//! calibrated profiles' defaults.
//!
//! These run offline with an in-tree seeded PRNG driving the case
//! generation (no `proptest` dependency), so they are part of the
//! default `cargo test` run. Each property samples a fixed number of
//! (benchmark, seed, shape) cases deterministically; a failure prints
//! the exact case triple for reproduction.

use trace_preconstruction::core::MAX_TRACE_LEN;
use trace_preconstruction::exec::Executor;
use trace_preconstruction::isa::model::XorShift64;
use trace_preconstruction::isa::OpClass;
use trace_preconstruction::processor::{SimConfig, Simulator, TraceStream};
use trace_preconstruction::workloads::{Benchmark, WorkloadBuilder};

const CASES: u32 = 12;

const SMALL_BENCHMARKS: [Benchmark; 3] = [Benchmark::Compress, Benchmark::Ijpeg, Benchmark::Li];

/// Draws `CASES` deterministic (benchmark, seed) cases and hands each
/// one (plus a forked PRNG for extra shape parameters) to `check`.
fn for_each_case(stream_seed: u64, mut check: impl FnMut(Benchmark, u64, &mut XorShift64)) {
    let mut rng = XorShift64::new(stream_seed);
    for _ in 0..CASES {
        let benchmark = SMALL_BENCHMARKS[rng.next_below(SMALL_BENCHMARKS.len() as u32) as usize];
        let seed = rng.next_below(1_000) as u64;
        let mut case_rng = rng.fork();
        check(benchmark, seed, &mut case_rng);
    }
}

/// Generated programs always validate and execute indefinitely.
#[test]
fn any_seed_builds_and_runs() {
    for_each_case(0xA11_5EED, |benchmark, seed, _| {
        let program = WorkloadBuilder::new(benchmark).seed(seed).build();
        assert!(program.len() > 10, "{benchmark:?}/{seed}");
        let mut ex = Executor::new(&program);
        for _ in 0..20_000 {
            let d = ex.next().expect("endless stream");
            assert!(
                program.fetch(d.pc).is_some(),
                "{benchmark:?}/{seed}: pc stays inside the code"
            );
        }
    });
}

/// Traces partition the dynamic stream: no instruction is lost or
/// duplicated, traces respect the length cap, and consecutive traces
/// chain through their successors.
#[test]
fn traces_partition_stream() {
    for_each_case(0x7AC3_5EED, |benchmark, seed, _| {
        let program = WorkloadBuilder::new(benchmark).seed(seed).build();
        let mut stream = TraceStream::new(&program);
        let mut covered = 0u64;
        let mut prev_succ: Option<trace_preconstruction::isa::Addr> = None;
        for _ in 0..400 {
            let dt = stream.next_trace();
            assert!(
                !dt.is_empty() && dt.len() <= MAX_TRACE_LEN,
                "{benchmark:?}/{seed}"
            );
            if let Some(succ) = prev_succ {
                assert_eq!(
                    succ,
                    dt.trace.start(),
                    "{benchmark:?}/{seed}: alignment chain"
                );
            }
            prev_succ = dt.trace.successor();
            covered += dt.len() as u64;
            // Branch-outcome metadata is exactly parallel.
            let branches = dt
                .trace
                .instrs()
                .iter()
                .filter(|ti| ti.op.class() == OpClass::Branch)
                .count();
            assert_eq!(branches, dt.branch_outcomes.len(), "{benchmark:?}/{seed}");
        }
        assert_eq!(covered, stream.retired(), "{benchmark:?}/{seed}");
    });
}

/// The simulator's conservation law holds under random seeds and
/// random cache shapes.
#[test]
fn fetch_conservation() {
    for_each_case(0xC0_4535, |benchmark, seed, rng| {
        let tc_pow = rng.next_in(6, 8);
        let pb = [0u32, 32, 128][rng.next_below(3) as usize];
        let program = WorkloadBuilder::new(benchmark).seed(seed).build();
        let mut sim = Simulator::new(&program, SimConfig::with_precon(1 << tc_pow, pb));
        let s = sim.run(15_000);
        let case = format!("{benchmark:?}/{seed} tc={} pb={pb}", 1 << tc_pow);
        assert_eq!(
            s.trace_fetches,
            s.trace_cache_hits + s.precon_buffer_hits + s.trace_cache_misses,
            "{case}"
        );
        assert!(s.ipc() > 0.05 && s.ipc() <= 8.0, "{case}: ipc {}", s.ipc());
        if pb == 0 {
            assert_eq!(s.precon_buffer_hits, 0, "{case}");
        }
        sim.check_invariants()
            .unwrap_or_else(|e| panic!("{case}: {e}"));
    });
}
