//! Cross-crate integration invariants: the pieces agree with each
//! other when assembled into the full machine.

use trace_preconstruction::core::{PushResult, Resolution, TraceBuilder};
use trace_preconstruction::exec::Executor;
use trace_preconstruction::isa::OpClass;
use trace_preconstruction::processor::{SimConfig, Simulator, TraceStream};
use trace_preconstruction::workloads::{Benchmark, WorkloadBuilder};

/// Fetch accounting is exact: every trace fetch is satisfied by
/// exactly one supplier, and every retired instruction passed through
/// a fetched trace.
#[test]
fn supply_accounting_is_conserved() {
    for benchmark in [Benchmark::Li, Benchmark::Perl] {
        let program = WorkloadBuilder::new(benchmark).seed(3).build();
        let mut sim = Simulator::new(&program, SimConfig::with_precon(128, 128));
        let s = sim.run(60_000);
        assert_eq!(
            s.trace_fetches,
            s.trace_cache_hits + s.precon_buffer_hits + s.trace_cache_misses,
            "{benchmark}: each fetch has exactly one supplier"
        );
        assert!(s.retired_traces <= s.trace_fetches);
        assert!(s.retired_instructions <= s.trace_fetches * 16);
    }
}

/// The executor and the trace stream describe the same dynamic
/// instruction sequence: re-chunking the raw stream with the shared
/// trace builder reproduces the stream's traces exactly.
#[test]
fn trace_stream_matches_raw_executor() {
    let program = WorkloadBuilder::new(Benchmark::M88ksim).seed(5).build();
    let mut stream = TraceStream::new(&program);
    let mut raw = Executor::new(&program);

    for _ in 0..3_000 {
        let dt = stream.next_trace();
        for ti in dt.trace.instrs() {
            let d = raw.next().expect("endless");
            assert_eq!(d.pc, ti.pc, "stream and executor agree on addresses");
            assert_eq!(d.op, ti.op);
        }
    }
    assert_eq!(stream.retired(), raw.retired());
}

/// Rebuilding a trace from the same start along the same outcomes
/// with a fresh builder yields the identical identity — the property
/// the preconstruction buffers rely on to hit.
#[test]
fn trace_identity_is_reconstructible() {
    let program = WorkloadBuilder::new(Benchmark::Go).seed(2).build();
    let mut stream = TraceStream::new(&program);
    for _ in 0..2_000 {
        let dt = stream.next_trace();
        // Re-drive a fresh builder with the recorded ops/outcomes.
        let mut b = TraceBuilder::new(dt.trace.start());
        let mut outcome_iter = dt.branch_outcomes.iter();
        let mut rebuilt = None;
        for (i, ti) in dt.trace.instrs().iter().enumerate() {
            let resolution = match ti.op.class() {
                OpClass::Branch => {
                    let taken = *outcome_iter.next().unwrap();
                    let next = if taken {
                        ti.op.static_target().unwrap()
                    } else {
                        ti.pc.next()
                    };
                    Resolution::Branch {
                        taken,
                        next_pc: next,
                    }
                }
                OpClass::Return | OpClass::IndirectJump | OpClass::Halt => {
                    match dt.trace.successor() {
                        Some(s) if i == dt.trace.len() - 1 => Resolution::Target(s),
                        _ => Resolution::None,
                    }
                }
                _ => Resolution::None,
            };
            match b.push(ti.pc, ti.op, resolution) {
                PushResult::Continue(_) => {}
                PushResult::Complete(t) => {
                    rebuilt = Some(t);
                    break;
                }
            }
        }
        let rebuilt = rebuilt.expect("trace completes at the same point");
        assert_eq!(
            rebuilt.key(),
            dt.trace.key(),
            "identity is a pure function of the path"
        );
        assert_eq!(rebuilt.len(), dt.trace.len());
    }
}

/// Full-machine determinism across independently constructed
/// simulators, configs and benchmarks.
#[test]
fn full_machine_determinism() {
    for benchmark in [Benchmark::Compress, Benchmark::Gcc] {
        let program = WorkloadBuilder::new(benchmark).seed(7).build();
        let run = || {
            let mut sim =
                Simulator::new(&program, SimConfig::with_precon(128, 128).with_preprocess());
            let s = sim.run(40_000);
            (
                s.cycles,
                s.trace_cache_misses,
                s.precon_buffer_hits,
                s.ntp_mispredicts,
            )
        };
        assert_eq!(run(), run(), "{benchmark} deterministic");
    }
}

/// The facade crate re-exports a coherent API: the quickstart in the
/// crate docs compiles against these paths.
#[test]
fn facade_paths_work() {
    use trace_preconstruction as tp;
    let program = tp::workloads::WorkloadBuilder::new(tp::workloads::Benchmark::Compress)
        .seed(1)
        .build();
    let mut sim = tp::processor::Simulator::new(&program, tp::processor::SimConfig::default());
    let stats = sim.run(5_000);
    assert!(stats.retired_instructions >= 5_000);
}
