//! Offline placeholder for the `proptest` crate.
//!
//! The workspace patches `proptest` to this empty crate (see
//! `[patch.crates-io]` in the root `Cargo.toml`) so that `cargo
//! build`/`cargo test` resolve without network access. The actual
//! property-based suites are whole-file gated behind the non-default
//! `proptest-tests` feature of each crate; enabling that feature
//! requires removing the patch and fetching the real `proptest` from
//! crates.io.
