//! Offline placeholder for the `criterion` crate.
//!
//! The workspace patches `criterion` to this empty crate (see
//! `[patch.crates-io]` in the root `Cargo.toml`) so that dependency
//! resolution succeeds without network access. The criterion bench
//! targets in `crates/bench` carry `required-features =
//! ["criterion-benches"]`; enabling that feature requires removing
//! the patch and fetching the real `criterion` from crates.io.
