//! # trace-preconstruction
//!
//! A from-scratch reproduction of *Trace Preconstruction* (Quinn
//! Jacobson & James E. Smith, ISCA 2000): a trace-processor
//! microarchitecture simulator whose trace cache is augmented with a
//! preconstruction engine that builds traces ahead of execution, plus
//! the paper's extended-pipeline preprocessing optimizations.
//!
//! This facade crate re-exports every sub-crate under one roof:
//!
//! * [`isa`] — the mini-RISC instruction set.
//! * [`workloads`] — synthetic SPECint95-like program generator.
//! * [`exec`] — architectural executor (dynamic instruction stream).
//! * [`mem`] — cache models (I-cache, D-cache, L2, prefetch caches).
//! * [`predict`] — bimodal, return-address-stack and next-trace
//!   predictors.
//! * [`core`] — traces, trace cache, preconstruction buffers, the
//!   preconstruction engine, and trace preprocessing.
//! * [`processor`] — the cycle-level trace-processor timing model.
//! * [`experiments`] — reproductions of every table and figure in the
//!   paper's evaluation.
//! * [`analysis`] — whole-program static analysis: basic-block CFG,
//!   region/trace ground truth, and the workload linter.
//! * [`oracle`] — golden-model reference interpreter, differential
//!   runner, and structure-aware simulator fuzzer.
//!
//! ## Quickstart
//!
//! ```
//! use trace_preconstruction::workloads::{Benchmark, WorkloadBuilder};
//! use trace_preconstruction::processor::{Simulator, SimConfig};
//!
//! let program = WorkloadBuilder::new(Benchmark::Compress).seed(1).build();
//! let mut sim = Simulator::new(&program, SimConfig::default());
//! let stats = sim.run(50_000);
//! assert!(stats.retired_instructions >= 50_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use tpc_analysis as analysis;
pub use tpc_core as core;
pub use tpc_exec as exec;
pub use tpc_experiments as experiments;
pub use tpc_isa as isa;
pub use tpc_mem as mem;
pub use tpc_oracle as oracle;
pub use tpc_predict as predict;
pub use tpc_processor as processor;
pub use tpc_workloads as workloads;
