#!/usr/bin/env bash
# Repo verification gate: tier-1 build+test, formatting, and the
# quick throughput benchmark. Everything runs offline.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: cargo build --release =="
cargo build --release --offline

echo "== tier-1: cargo test -q =="
cargo test -q --offline

echo "== cargo fmt --check =="
cargo fmt --check

echo "== differential oracle smoke suite =="
cargo test -q --offline -p tpc-oracle

echo "== differential fuzz, 10s budget, fixed seed =="
cargo run -p tpc-oracle --release --offline --bin fuzz_sim -- \
  --seed 1 --iters 1000000 --budget-ms 10000 --size 400 --instrs 2500

echo "== fault-injection differential smoke: 120 seeded fault plans =="
# Every scenario runs fault-free AND under a seeded all-kinds fault
# plan (40 per mille per kind per cycle); retirement must match the
# golden model either way — preconstruction is hint hardware.
cargo run -p tpc-oracle --release --offline --bin fuzz_sim -- \
  --seed 42 --iters 120 --size 300 --instrs 2000 --faults 40

echo "== checkpoint/resume round-trip: interrupted sweep, identical output =="
ckpt="$(mktemp -d)/degradation.ckpt"
run_degradation() {
  cargo run -p tpc-experiments --release --offline --bin degradation -- \
    --quick "$@" 2>/dev/null
}
run_degradation > /tmp/degradation.reference.md
run_degradation --checkpoint "$ckpt" > /tmp/degradation.full.md
diff /tmp/degradation.reference.md /tmp/degradation.full.md
# Interrupt: keep the header plus the first 5 recorded cells, then
# resume. The resumed sweep re-runs only what is missing and must
# print byte-identical output.
head -n 6 "$ckpt" > "$ckpt.cut" && mv "$ckpt.cut" "$ckpt"
run_degradation --checkpoint "$ckpt" > /tmp/degradation.resumed.md
diff /tmp/degradation.reference.md /tmp/degradation.resumed.md
rm -rf "$(dirname "$ckpt")" /tmp/degradation.{reference,full,resumed}.md

echo "== bench_throughput --quick =="
cargo run -p tpc-experiments --release --offline --bin bench_throughput -- --quick

echo "verify: OK"
