#!/usr/bin/env bash
# Repo verification gate: tier-1 build+test, formatting, and the
# quick throughput benchmark. Everything runs offline.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: cargo build --release =="
cargo build --release --offline

echo "== tier-1: cargo test -q =="
cargo test -q --offline

echo "== cargo fmt --check =="
cargo fmt --check

echo "== bench_throughput --quick =="
cargo run -p tpc-experiments --release --offline --bin bench_throughput -- --quick

echo "verify: OK"
