#!/usr/bin/env bash
# Repo verification gate: tier-1 build+test, formatting, and the
# quick throughput benchmark. Everything runs offline.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: cargo build --release =="
cargo build --release --offline

echo "== tier-1: cargo test -q =="
cargo test -q --offline

echo "== cargo fmt --check =="
cargo fmt --check

echo "== differential oracle smoke suite =="
cargo test -q --offline -p tpc-oracle

echo "== differential fuzz, 10s budget, fixed seed =="
cargo run -p tpc-oracle --release --offline --bin fuzz_sim -- \
  --seed 1 --iters 1000000 --budget-ms 10000 --size 400 --instrs 2500

echo "== bench_throughput --quick =="
cargo run -p tpc-experiments --release --offline --bin bench_throughput -- --quick

echo "verify: OK"
