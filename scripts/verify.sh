#!/usr/bin/env bash
# Repo verification gate: tier-1 build+test, lints, formatting, the
# static-analysis conformance fuzz, and the quick benchmarks.
# Everything runs offline.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: cargo build --release =="
cargo build --release --offline

echo "== tier-1: cargo test -q =="
cargo test -q --offline

echo "== cargo clippy --workspace -D warnings =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo fmt --check =="
cargo fmt --check

echo "== self-hosted lint gate (tpc_lint: determinism/panic/conformance rules) =="
# Parses the workspace's own source and enforces what clippy cannot:
# no unordered collections, wall clocks, or thread identity in result
# paths; panic hygiene in supervised worker/daemon code; SimStats
# codec / FaultKind / service-protocol / --jobs / frontend-matrix
# conformance. Fails on
# any unallowlisted finding or stale allowlist entry; every allowlist
# entry (printed below) carries a written justification. Per-rule
# counts land in BENCH_lint.json.
cargo run -p tpc-lint --release --offline --bin tpc_lint -- \
  --list-allow --json BENCH_lint.json

echo "== workspace test suite (analyzer, oracle, experiments) =="
cargo test -q --offline --workspace

echo "== differential fuzz, 10s budget, fixed seed =="
# Every differential run lints the program and checks engine
# conformance against the static enumeration (see tpc-oracle::diff).
cargo run -p tpc-oracle --release --offline --bin fuzz_sim -- \
  --seed 1 --iters 1000000 --budget-ms 10000 --size 400 --instrs 2500

echo "== conformance + fault-injection differential: 500 seeded programs =="
# Every scenario runs fault-free AND under a seeded all-kinds fault
# plan (40 per mille per kind per cycle); retirement must match the
# golden model either way — preconstruction is hint hardware — and
# every start point pushed / trace constructed must be statically
# enumerable in both modes.
cargo run -p tpc-oracle --release --offline --bin fuzz_sim -- \
  --seed 42 --iters 500 --size 300 --instrs 2000 --faults 40

echo "== .asm frontend differential smoke: every shipped example, all four configs =="
# Each example is loaded through the asm frontend, linted, cross-
# checked against the synthetic executor frontend, then run through
# the differential oracle fault-free and under a seeded fault plan.
for f in examples/asm/*.asm; do
  cargo run -p tpc-oracle --release --offline --bin asm_run -- \
    "$f" --instructions 5000 --faults 40
done

echo "== checkpoint/resume round-trip: interrupted sweep, identical output =="
ckpt="$(mktemp -d)/degradation.ckpt"
run_degradation() {
  cargo run -p tpc-experiments --release --offline --bin degradation -- \
    --quick "$@" 2>/dev/null
}
run_degradation > /tmp/degradation.reference.md
run_degradation --checkpoint "$ckpt" > /tmp/degradation.full.md
diff /tmp/degradation.reference.md /tmp/degradation.full.md
# Interrupt: keep the header plus the first 5 recorded cells, then
# resume. The resumed sweep re-runs only what is missing and must
# print byte-identical output.
head -n 6 "$ckpt" > "$ckpt.cut" && mv "$ckpt.cut" "$ckpt"
run_degradation --checkpoint "$ckpt" > /tmp/degradation.resumed.md
diff /tmp/degradation.reference.md /tmp/degradation.resumed.md
rm -rf "$(dirname "$ckpt")" /tmp/degradation.{reference,full,resumed}.md

echo "== static-vs-dynamic coverage report (BENCH_analysis.json) =="
# Byte-identical at any job count, stdout and JSON alike.
cargo run -p tpc-experiments --release --offline --bin analysis_report -- \
  --quick --jobs 1 > /tmp/analysis.j1.md
cp BENCH_analysis.json /tmp/analysis.j1.json
cargo run -p tpc-experiments --release --offline --bin analysis_report -- \
  --quick --jobs 4 > /tmp/analysis.j4.md
diff /tmp/analysis.j1.md /tmp/analysis.j4.md
diff /tmp/analysis.j1.json BENCH_analysis.json
rm /tmp/analysis.j1.md /tmp/analysis.j4.md /tmp/analysis.j1.json

echo "== bench_throughput --quick =="
cargo run -p tpc-experiments --release --offline --bin bench_throughput -- --quick

echo "== sweep-service chaos gate (daemon kill/retry/memoize vs serial reference) =="
# Spawns real tpc_service daemons and attacks them: poison cells that
# panic/hang, a worker killed mid-cell, an injected cache-write
# failure, a SIGKILL'd daemon restarted on a torn cache file. Merged
# results must stay bit-identical to a clean serial run_cells
# reference; permanent failures must degrade into the error manifest.
cargo build -p tpc-service --release --offline
cargo run -p tpc-service --release --offline --bin chaos_service -- --quick

echo "verify: OK"
