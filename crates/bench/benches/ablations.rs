//! Design-choice ablation regenerator + benchmark.

use criterion::{criterion_group, criterion_main, Criterion};
use tpc_experiments::{ablations, RunParams};
use tpc_processor::{SimConfig, Simulator};
use tpc_workloads::{Benchmark, WorkloadBuilder};

fn regenerate_and_bench(c: &mut Criterion) {
    let rows = ablations::run(Benchmark::Gcc, RunParams::quick());
    println!("{}", ablations::render(Benchmark::Gcc, &rows));
    let rows = ablations::dynamic_split(Benchmark::Gcc, RunParams::quick());
    println!("{}", ablations::render_dynamic_split(Benchmark::Gcc, &rows));

    let program = WorkloadBuilder::new(Benchmark::Gcc).seed(1).build();
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    // The lattice-seeding variant DESIGN.md discusses.
    group.bench_function("gcc_lattice_seeding", |b| {
        b.iter(|| {
            let mut cfg = SimConfig::with_precon(128, 128);
            cfg.engine.lattice_seed_loop_exits = true;
            let mut sim = Simulator::new(&program, cfg);
            std::hint::black_box(sim.run(30_000).tc_misses_per_kilo())
        })
    });
    group.bench_function("gcc_dynamic_split_adaptive", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(&program, SimConfig::unified(256, 1, 4096));
            std::hint::black_box(sim.run(30_000).tc_misses_per_kilo())
        })
    });
    group.finish();
}

criterion_group!(benches, regenerate_and_bench);
criterion_main!(benches);
