//! Figure 8 regenerator + benchmark.

use criterion::{criterion_group, criterion_main, Criterion};
use tpc_experiments::{fig8, RunParams};
use tpc_processor::{SimConfig, Simulator};
use tpc_workloads::{Benchmark, WorkloadBuilder};

fn regenerate_and_bench(c: &mut Criterion) {
    let rows = fig8::run(&Benchmark::large_working_set(), RunParams::quick());
    println!("{}", fig8::render(&rows));

    let program = WorkloadBuilder::new(Benchmark::Perl).seed(1).build();
    let mut group = c.benchmark_group("fig8");
    group.sample_size(10);
    group.bench_function("perl_combined_pipeline", |b| {
        b.iter(|| {
            let mut sim =
                Simulator::new(&program, SimConfig::with_precon(128, 128).with_preprocess());
            std::hint::black_box(sim.run(30_000).ipc())
        })
    });
    group.finish();
}

criterion_group!(benches, regenerate_and_bench);
criterion_main!(benches);
