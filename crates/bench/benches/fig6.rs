//! Figure 6 regenerator + benchmark.

use criterion::{criterion_group, criterion_main, Criterion};
use tpc_experiments::{fig6, RunParams};
use tpc_processor::{SimConfig, Simulator};
use tpc_workloads::{Benchmark, WorkloadBuilder};

fn regenerate_and_bench(c: &mut Criterion) {
    let rows = fig6::run(&Benchmark::large_working_set(), RunParams::quick());
    println!("{}", fig6::render(&rows));

    let program = WorkloadBuilder::new(Benchmark::Vortex).seed(1).build();
    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);
    group.bench_function("vortex_equal_area_pair", |b| {
        b.iter(|| {
            let base = Simulator::new(&program, SimConfig::baseline(512)).run(30_000);
            let pre = Simulator::new(&program, SimConfig::with_precon(256, 256)).run(30_000);
            std::hint::black_box(pre.speedup_over(&base))
        })
    });
    group.finish();
}

criterion_group!(benches, regenerate_and_bench);
criterion_main!(benches);
