//! Tables 1-3 regenerator + benchmark.

use criterion::{criterion_group, criterion_main, Criterion};
use tpc_experiments::{tables, RunParams};
use tpc_processor::{SimConfig, Simulator};
use tpc_workloads::{Benchmark, WorkloadBuilder};

fn regenerate_and_bench(c: &mut Criterion) {
    let rows = tables::run(&[Benchmark::Gcc, Benchmark::Go], RunParams::quick());
    println!("{}", tables::render(&rows));

    let program = WorkloadBuilder::new(Benchmark::Go).seed(1).build();
    let mut group = c.benchmark_group("tables");
    group.sample_size(10);
    group.bench_function("go_512_baseline", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(&program, SimConfig::baseline(512));
            std::hint::black_box(sim.run(30_000).icache_supplied_per_kilo())
        })
    });
    group.bench_function("go_256_precon_256", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(&program, SimConfig::with_precon(256, 256));
            std::hint::black_box(sim.run(30_000).icache_misses_per_kilo())
        })
    });
    group.finish();
}

criterion_group!(benches, regenerate_and_bench);
criterion_main!(benches);
