//! Micro-benchmarks of the simulator's hot components.

use criterion::{criterion_group, criterion_main, Criterion};
use tpc_core::{preprocess, PushResult, Resolution, TraceBuilder, TraceCache};
use tpc_exec::Executor;
use tpc_isa::{Addr, Op, Reg};
use tpc_predict::{Bimodal, NextTracePredictor, NtpConfig, TraceEnd, TraceKey};
use tpc_workloads::{Benchmark, WorkloadBuilder};

fn mk_trace(start: u32) -> tpc_core::Trace {
    let mut b = TraceBuilder::new(Addr::new(start));
    for i in 0..15 {
        match b.push(
            Addr::new(start + i),
            Op::AddImm {
                rd: Reg::new(1 + (i % 8) as u8),
                rs1: Reg::new(1),
                imm: 1,
            },
            Resolution::None,
        ) {
            PushResult::Continue(_) => {}
            PushResult::Complete(t) => return t,
        }
    }
    match b.push(Addr::new(start + 15), Op::Return, Resolution::None) {
        PushResult::Complete(t) => t,
        _ => unreachable!(),
    }
}

fn components(c: &mut Criterion) {
    let mut group = c.benchmark_group("components");

    group.bench_function("executor_step", |b| {
        let p = WorkloadBuilder::new(Benchmark::Gcc).seed(1).build();
        let mut ex = Executor::new(&p);
        b.iter(|| std::hint::black_box(ex.next()))
    });

    group.bench_function("trace_cache_lookup_hit", |b| {
        let mut tc = TraceCache::new(256);
        let t = mk_trace(0);
        let key = t.key();
        tc.fill(t);
        b.iter(|| std::hint::black_box(tc.lookup(key).is_some()))
    });

    group.bench_function("trace_cache_fill_evict", |b| {
        let mut tc = TraceCache::new(64);
        let traces: Vec<_> = (0..128).map(|i| mk_trace(i * 16)).collect();
        let mut i = 0;
        b.iter(|| {
            tc.fill(traces[i % traces.len()].clone());
            i += 1;
        })
    });

    group.bench_function("ntp_predict_observe", |b| {
        let mut ntp = NextTracePredictor::new(NtpConfig::default());
        let keys: Vec<TraceKey> = (0..64)
            .map(|i| TraceKey {
                start: Addr::new(i * 16),
                branch_count: 2,
                outcomes: (i % 4) as u16,
            })
            .collect();
        let mut i = 0;
        b.iter(|| {
            let k = keys[i % keys.len()];
            let p = ntp.predict();
            ntp.observe(k, TraceEnd::Fallthrough);
            i += 1;
            std::hint::black_box(p)
        })
    });

    group.bench_function("bimodal_update", |b| {
        let mut bim = Bimodal::new(4096);
        let mut i = 0u32;
        b.iter(|| {
            bim.update(Addr::new(i % 512), i.is_multiple_of(3));
            i += 1;
        })
    });

    group.bench_function("preprocess_trace", |b| {
        let t = mk_trace(0);
        b.iter(|| std::hint::black_box(preprocess::preprocess(&t)))
    });

    group.finish();
}

criterion_group!(benches, components);
criterion_main!(benches);
