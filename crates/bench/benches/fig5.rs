//! Figure 5 regenerator + benchmark.
//!
//! Prints the Figure 5 sweep (quick parameters) once, then times the
//! simulation kernel underlying each point class: a baseline fetch
//! loop and a preconstruction fetch loop on the largest benchmark.

use criterion::{criterion_group, criterion_main, Criterion};
use tpc_experiments::{fig5, RunParams};
use tpc_processor::{SimConfig, Simulator};
use tpc_workloads::{Benchmark, WorkloadBuilder};

fn regenerate_and_bench(c: &mut Criterion) {
    // Regenerate the figure (quick parameters) so `cargo bench`
    // leaves the artifact in its output.
    let rows = fig5::run(&Benchmark::ALL, RunParams::quick());
    println!("{}", fig5::render(&rows));

    let program = WorkloadBuilder::new(Benchmark::Gcc).seed(1).build();
    let mut group = c.benchmark_group("fig5");
    group.sample_size(10);
    group.bench_function("gcc_baseline_256", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(&program, SimConfig::baseline(256));
            std::hint::black_box(sim.run(30_000).tc_misses_per_kilo())
        })
    });
    group.bench_function("gcc_precon_128_128", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(&program, SimConfig::with_precon(128, 128));
            std::hint::black_box(sim.run(30_000).tc_misses_per_kilo())
        })
    });
    group.finish();
}

criterion_group!(benches, regenerate_and_bench);
criterion_main!(benches);
