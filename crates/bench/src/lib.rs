//! Benchmark crate; see benches/.
