//! Benchmark crate; see benches/.
#![forbid(unsafe_code)]
#![warn(missing_docs)]
