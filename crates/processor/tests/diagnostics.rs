//! Diagnostics for calibration work — all `#[ignore]`d; run with
//! `cargo test -p tpc-processor --release --test diagnostics --
//! --ignored --nocapture`.

use tpc_processor::{SimConfig, Simulator};
use tpc_workloads::{Benchmark, WorkloadBuilder};

/// Simulation throughput and headline numbers per benchmark.
#[test]
#[ignore = "diagnostic"]
fn throughput() {
    use std::time::Instant;
    let p = WorkloadBuilder::new(Benchmark::Gcc).seed(1).build();
    let mut sim = Simulator::new(&p, SimConfig::with_precon(256, 256));
    let t0 = Instant::now();
    let s = sim.run(1_000_000);
    println!(
        "1M instrs in {:?}, ipc={:.2} tcmiss/k={:.1}",
        t0.elapsed(),
        s.ipc(),
        s.tc_misses_per_kilo()
    );
}

/// Classifies residual trace-cache misses under preconstruction:
/// never-built vs. built-but-lost (replacement/timeliness races).
#[test]
#[ignore = "diagnostic"]
fn residual_miss_classification() {
    for b in [Benchmark::Vortex, Benchmark::Gcc, Benchmark::Go] {
        let p = WorkloadBuilder::new(b).seed(1).build();
        let mut cfg = SimConfig::with_precon(256, 256);
        cfg.engine.track_built_keys = true;
        let mut sim = Simulator::new(&p, cfg);
        let s = sim.run_with_warmup(150_000, 300_000);
        println!(
            "{b}: miss/k={:.1} misses={} previously_built={} ({}%)",
            s.tc_misses_per_kilo(),
            s.trace_cache_misses,
            s.misses_previously_built,
            s.misses_previously_built * 100 / s.trace_cache_misses.max(1),
        );
        println!(
            "   engine={:?}\n   store={:?}",
            s.engine,
            sim.store().counters()
        );
    }
}
