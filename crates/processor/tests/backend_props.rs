//! Property tests over the backend scheduler: every computed
//! schedule must respect the machine's structural and dataflow
//! constraints, for arbitrary traces.
#![cfg(feature = "proptest-tests")]

use proptest::prelude::*;
use tpc_core::preprocess::{latency::op_latency, trace_deps};
use tpc_core::{PushResult, Resolution, TraceBuilder};
use tpc_isa::{Addr, Op, OpClass, Reg};
use tpc_processor::backend::{Backend, BackendConfig};
use tpc_processor::DynTrace;

#[derive(Debug, Clone, Copy)]
enum OpShape {
    Alu(u8, u8, u8),
    AddImm(u8, u8),
    Mul(u8, u8, u8),
    Load(u8, u8, u16),
    Store(u8, u8, u16),
}

fn reg_idx() -> impl Strategy<Value = u8> {
    0u8..12
}

fn shapes() -> impl Strategy<Value = Vec<OpShape>> {
    prop::collection::vec(
        prop_oneof![
            (reg_idx(), reg_idx(), reg_idx()).prop_map(|(a, b, c)| OpShape::Alu(a, b, c)),
            (reg_idx(), reg_idx()).prop_map(|(a, b)| OpShape::AddImm(a, b)),
            (reg_idx(), reg_idx(), reg_idx()).prop_map(|(a, b, c)| OpShape::Mul(a, b, c)),
            (reg_idx(), reg_idx(), 0u16..512).prop_map(|(a, b, o)| OpShape::Load(a, b, o)),
            (reg_idx(), reg_idx(), 0u16..512).prop_map(|(a, b, o)| OpShape::Store(a, b, o)),
        ],
        1..15,
    )
}

fn build_dyn_trace(shapes: &[OpShape]) -> DynTrace {
    let r = Reg::new;
    let mut b = TraceBuilder::new(Addr::new(0));
    let mut trace = None;
    for (i, &s) in shapes.iter().enumerate() {
        let op = match s {
            OpShape::Alu(a, x, y) => Op::Add {
                rd: r(a),
                rs1: r(x),
                rs2: r(y),
            },
            OpShape::AddImm(a, x) => Op::AddImm {
                rd: r(a),
                rs1: r(x),
                imm: 1,
            },
            OpShape::Mul(a, x, y) => Op::Mul {
                rd: r(a),
                rs1: r(x),
                rs2: r(y),
            },
            OpShape::Load(a, x, o) => Op::Load {
                rd: r(a),
                base: r(x),
                offset: o as i32,
            },
            OpShape::Store(a, x, o) => Op::Store {
                src: r(a),
                base: r(x),
                offset: o as i32,
            },
        };
        match b.push(Addr::new(i as u32), op, Resolution::None) {
            PushResult::Continue(_) => {}
            PushResult::Complete(t) => {
                trace = Some(t);
                break;
            }
        }
    }
    let trace = trace.unwrap_or_else(|| {
        match b.push(Addr::new(shapes.len() as u32), Op::Return, Resolution::None) {
            PushResult::Complete(t) => t,
            other => panic!("{other:?}"),
        }
    });
    let mem_addrs = trace
        .instrs()
        .iter()
        .enumerate()
        .map(|(i, ti)| {
            matches!(ti.op.class(), OpClass::Load | OpClass::Store)
                .then_some(0x1000 + i as u64 * 64)
        })
        .collect();
    DynTrace {
        trace,
        mem_addrs,
        branch_outcomes: Vec::new(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// For any single trace: issue-after-dispatch, latency and
    /// intra-trace dependence constraints hold, and per-cycle issue
    /// width is never exceeded.
    #[test]
    fn schedule_respects_machine_constraints(shapes in shapes(), dispatch in 0u64..1000) {
        let config = BackendConfig::default();
        let mut be = Backend::new(config);
        let dt = build_dyn_trace(&shapes);
        let t = be.dispatch(&dt, dispatch, false);
        let n = dt.trace.len();
        prop_assert_eq!(t.exec_start.len(), n);
        prop_assert_eq!(t.exec_done.len(), n);

        let deps = trace_deps(&dt.trace);
        #[allow(clippy::needless_range_loop)]
        for i in 0..n {
            // Nothing executes before the cycle after dispatch.
            prop_assert!(t.exec_start[i] > dispatch, "instr {i} too early");
            // Latency lower bound (loads add cache latency on top).
            let lat = op_latency(dt.trace.instrs()[i].op.class()) as u64;
            prop_assert!(t.exec_done[i] >= t.exec_start[i] + lat - 1);
            // Same-PE bypass: consumers start after producers finish.
            for &j in &deps[i] {
                prop_assert!(
                    t.exec_start[i] > t.exec_done[j as usize],
                    "instr {i} started at {} but dep {j} finished at {}",
                    t.exec_start[i],
                    t.exec_done[j as usize]
                );
            }
        }
        // Issue width: at most `issue_per_pe` starts per cycle.
        let mut per_cycle = std::collections::HashMap::new();
        for &c in &t.exec_start {
            *per_cycle.entry(c).or_insert(0u32) += 1;
        }
        for (&c, &count) in &per_cycle {
            prop_assert!(
                count <= config.issue_per_pe as u32,
                "{count} instructions issued in cycle {c}"
            );
        }
        // Memory ports: at most mem_ports_per_pe memory ops per cycle.
        let mut mem_per_cycle = std::collections::HashMap::new();
        for (i, ti) in dt.trace.instrs().iter().enumerate() {
            if matches!(ti.op.class(), OpClass::Load | OpClass::Store) {
                *mem_per_cycle.entry(t.exec_start[i]).or_insert(0u32) += 1;
            }
        }
        for (&c, &count) in &mem_per_cycle {
            prop_assert!(
                count <= config.mem_ports_per_pe as u32,
                "{count} memory ops issued in cycle {c}"
            );
        }
        // The aggregate completion matches the per-instruction data.
        prop_assert_eq!(t.complete, t.exec_done.iter().copied().max().unwrap_or(dispatch));
    }

    /// Dependence chains serialize even under preprocessing (the
    /// schedule may reorder issue priority but never break dataflow).
    #[test]
    fn preprocessing_never_breaks_dataflow(shapes in shapes()) {
        let mut dt = build_dyn_trace(&shapes);
        let info = tpc_core::preprocess::preprocess(&dt.trace);
        dt.trace.set_preprocess(info.clone());
        let mut be = Backend::new(BackendConfig::default());
        let t = be.dispatch(&dt, 0, true);
        for (i, d) in info.deps.iter().enumerate() {
            for &j in d {
                prop_assert!(
                    t.exec_start[i] > t.exec_done[j as usize],
                    "preprocessed dep {j}→{i} violated"
                );
            }
        }
    }
}
