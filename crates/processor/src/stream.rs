//! The correct-path dynamic trace stream.

use tpc_core::{PushResult, Resolution, Trace, TraceBuilder};
use tpc_exec::{Executor, Frontend};
use tpc_isa::{OpClass, Program};

/// One dynamic trace instance: the trace (as the caches would store
/// it) plus per-instruction dynamic metadata the timing model needs.
#[derive(Debug, Clone)]
pub struct DynTrace {
    /// The trace.
    pub trace: Trace,
    /// Effective byte address of each load/store (`None` otherwise),
    /// parallel to `trace.instrs()`.
    pub mem_addrs: Vec<Option<u64>>,
    /// Resolved direction of each *conditional branch*, in trace
    /// order (parallel to the trace key's outcome bits).
    pub branch_outcomes: Vec<bool>,
}

impl DynTrace {
    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.trace.len()
    }

    /// Whether the trace instance is empty (never for built traces).
    pub fn is_empty(&self) -> bool {
        self.trace.is_empty()
    }
}

/// Chunks a [`Frontend`]'s retired instruction stream into traces
/// using the shared selection rules, yielding exactly the sequence of
/// traces the processor fetches on the correct path.
#[derive(Debug)]
pub struct TraceStream<F: Frontend> {
    fe: F,
    /// Start of the next trace: the `next_pc` of the last retired
    /// instruction (the frontend entry before anything retires).
    next_start: tpc_isa::Addr,
}

impl<'a> TraceStream<Executor<'a>> {
    /// Creates a stream over `program` from its entry point, using
    /// the architectural executor (the `"synthetic"` frontend).
    pub fn new(program: &'a Program) -> Self {
        TraceStream::over(Executor::new(program))
    }
}

impl<F: Frontend> TraceStream<F> {
    /// Creates a stream over any [`Frontend`]. The frontend must be
    /// freshly instantiated (positioned at the program entry), as
    /// [`FrontendSource::frontend`](tpc_exec::FrontendSource::frontend)
    /// guarantees.
    pub fn over(frontend: F) -> Self {
        let next_start = frontend.code().entry();
        TraceStream {
            fe: frontend,
            next_start,
        }
    }

    /// Instructions retired by the underlying frontend.
    pub fn retired(&self) -> u64 {
        self.fe.retired()
    }

    /// The static program the stream executes.
    pub fn code(&self) -> &Program {
        self.fe.code()
    }

    /// The frontend-kind identifier (see [`Frontend::id`]).
    pub fn frontend_id(&self) -> &'static str {
        self.fe.id()
    }

    /// Produces the next trace on the correct path.
    pub fn next_trace(&mut self) -> DynTrace {
        let start = self.next_start;
        let mut b = TraceBuilder::new(start);
        let mut mem_addrs = Vec::new();
        let mut branch_outcomes = Vec::new();
        loop {
            let d = self.fe.next_retired();
            self.next_start = d.next_pc;
            mem_addrs.push(d.mem_addr);
            let resolution = match d.op.class() {
                OpClass::Branch => {
                    branch_outcomes.push(d.taken);
                    Resolution::Branch {
                        taken: d.taken,
                        next_pc: d.next_pc,
                    }
                }
                OpClass::Return | OpClass::IndirectJump | OpClass::Halt => {
                    Resolution::Target(d.next_pc)
                }
                _ => Resolution::None,
            };
            match b.push(d.pc, d.op, resolution) {
                PushResult::Continue(_) => {}
                PushResult::Complete(trace) => {
                    return DynTrace {
                        trace,
                        mem_addrs,
                        branch_outcomes,
                    };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpc_core::MAX_TRACE_LEN;
    use tpc_workloads::{Benchmark, WorkloadBuilder};

    #[test]
    fn traces_partition_the_dynamic_stream() {
        let p = WorkloadBuilder::new(Benchmark::Compress).seed(1).build();
        let mut s = TraceStream::new(&p);
        let mut total = 0usize;
        for _ in 0..1000 {
            let t = s.next_trace();
            assert!(!t.is_empty());
            assert!(t.len() <= MAX_TRACE_LEN);
            total += t.len();
        }
        assert_eq!(total as u64, s.retired());
    }

    #[test]
    fn consecutive_traces_are_aligned() {
        // Each trace's successor (when known) must equal the next
        // trace's start — the alignment invariant.
        let p = WorkloadBuilder::new(Benchmark::Li).seed(1).build();
        let mut s = TraceStream::new(&p);
        let mut prev = s.next_trace();
        for _ in 0..2000 {
            let next = s.next_trace();
            if let Some(succ) = prev.trace.successor() {
                assert_eq!(
                    succ,
                    next.trace.start(),
                    "trace successor must match next trace start"
                );
            }
            prev = next;
        }
    }

    #[test]
    fn outcome_bits_match_recorded_outcomes() {
        let p = WorkloadBuilder::new(Benchmark::Go).seed(1).build();
        let mut s = TraceStream::new(&p);
        for _ in 0..2000 {
            let t = s.next_trace();
            assert_eq!(t.branch_outcomes.len() as u8, t.trace.key().branch_count);
            for (i, &taken) in t.branch_outcomes.iter().enumerate() {
                assert_eq!(t.trace.branch_outcome(i as u8), Some(taken));
            }
        }
    }

    #[test]
    fn identical_paths_produce_identical_keys() {
        // Re-running the stream must reproduce the same trace keys
        // (determinism end to end).
        let p = WorkloadBuilder::new(Benchmark::M88ksim).seed(3).build();
        let keys = |_: ()| {
            let mut s = TraceStream::new(&p);
            (0..500)
                .map(|_| s.next_trace().trace.key())
                .collect::<Vec<_>>()
        };
        assert_eq!(keys(()), keys(()));
    }

    #[test]
    fn mem_addrs_parallel_instructions() {
        let p = WorkloadBuilder::new(Benchmark::Ijpeg).seed(1).build();
        let mut s = TraceStream::new(&p);
        for _ in 0..500 {
            let t = s.next_trace();
            assert_eq!(t.mem_addrs.len(), t.len());
            for (ti, ma) in t.trace.instrs().iter().zip(&t.mem_addrs) {
                let is_mem = matches!(ti.op.class(), OpClass::Load | OpClass::Store);
                assert_eq!(ma.is_some(), is_mem);
            }
        }
    }
}
