//! The distributed execution backend: four processing elements, two-
//! wide issue each, global result buses (paper Section 4.1).
//!
//! Each dispatched trace occupies one processing element until it
//! retires. Timing is computed dataflow-style at dispatch: every
//! instruction is assigned its execution cycle subject to
//!
//! * operand readiness — intra-PE bypass lets a dependent operation
//!   execute the cycle after its producer finishes; values crossing
//!   processing elements pay one extra cycle on a global result bus
//!   (producer executes in N ⇒ cross-PE consumer executes in N+2);
//! * issue bandwidth — at most `issue_per_pe` instructions begin
//!   execution per PE per cycle;
//! * memory ports — at most 4 data-cache accesses per cycle overall
//!   and 2 per PE (the paper's four-ported L1D);
//! * data-cache latency — 2-cycle hits, +10-cycle perfect L2.

use crate::stream::DynTrace;
use tpc_core::preprocess::{latency::op_latency, trace_deps};
use tpc_isa::OpClass;
use tpc_mem::DataCache;

/// Backend configuration (defaults are the paper's).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackendConfig {
    /// Number of processing elements.
    pub pe_count: usize,
    /// Issue width per processing element.
    pub issue_per_pe: u8,
    /// Extra cycles for a value to cross processing elements.
    pub bus_delay: u64,
    /// Global data-cache ports per cycle.
    pub mem_ports_global: u8,
    /// Data-cache ports one PE may use per cycle.
    pub mem_ports_per_pe: u8,
}

impl Default for BackendConfig {
    fn default() -> Self {
        BackendConfig {
            pe_count: 4,
            issue_per_pe: 2,
            bus_delay: 1,
            mem_ports_global: 4,
            mem_ports_per_pe: 2,
        }
    }
}

/// The computed timing of one dispatched trace.
#[derive(Debug, Clone)]
pub struct TraceTiming {
    /// Processing element the trace ran on.
    pub pe: usize,
    /// Cycle the last instruction finished executing.
    pub complete: u64,
    /// Execution-finish cycle of each conditional branch, in trace
    /// order.
    pub branch_resolves: Vec<u64>,
    /// The latest branch resolution (equals `complete` for branchless
    /// traces — the point at which "this trace's path is confirmed").
    pub last_resolve: u64,
    /// Cycle each instruction began executing (trace order) — kept
    /// for timing validation and pipeline visualization.
    pub exec_start: Vec<u64>,
    /// Cycle each instruction finished executing (trace order).
    pub exec_done: Vec<u64>,
}

/// Ring-buffer counter of per-cycle resource usage.
#[derive(Debug, Clone)]
struct CycleCounter {
    ring: Vec<(u64, u8)>,
    mask: usize,
}

impl CycleCounter {
    fn new(capacity_pow2: usize) -> Self {
        debug_assert!(capacity_pow2.is_power_of_two());
        CycleCounter {
            ring: vec![(u64::MAX, 0); capacity_pow2],
            mask: capacity_pow2 - 1,
        }
    }

    fn count(&self, cycle: u64) -> u8 {
        let slot = self.ring[cycle as usize & self.mask];
        if slot.0 == cycle {
            slot.1
        } else {
            0
        }
    }

    fn inc(&mut self, cycle: u64) {
        let slot = &mut self.ring[cycle as usize & self.mask];
        if slot.0 == cycle {
            slot.1 += 1;
        } else {
            *slot = (cycle, 1);
        }
    }
}

/// The backend scheduler state.
#[derive(Debug)]
pub struct Backend {
    config: BackendConfig,
    /// Per register: (cycle a same-PE consumer may execute, producer
    /// PE). Cross-PE consumers add `bus_delay`.
    reg_ready: [(u64, usize); tpc_isa::NUM_REGS],
    issue_slots: Vec<CycleCounter>,
    mem_global: CycleCounter,
    mem_per_pe: Vec<CycleCounter>,
    dcache: DataCache,
    /// Cycle each PE becomes free (its trace retired).
    pe_free_at: Vec<u64>,
    next_pe: usize,
}

impl Backend {
    /// Creates a backend.
    pub fn new(config: BackendConfig) -> Self {
        Backend {
            reg_ready: [(0, 0); tpc_isa::NUM_REGS],
            issue_slots: (0..config.pe_count)
                .map(|_| CycleCounter::new(8192))
                .collect(),
            mem_global: CycleCounter::new(8192),
            mem_per_pe: (0..config.pe_count)
                .map(|_| CycleCounter::new(8192))
                .collect(),
            dcache: DataCache::new(),
            pe_free_at: vec![0; config.pe_count],
            next_pe: 0,
            config,
        }
    }

    /// The backend's configuration.
    pub fn config(&self) -> &BackendConfig {
        &self.config
    }

    /// Data-cache statistics.
    pub fn dcache_stats(&self) -> &tpc_mem::DataCacheStats {
        self.dcache.stats()
    }

    /// Whether a processing element is free at `cycle` to accept a
    /// dispatch.
    pub fn pe_available(&self, cycle: u64) -> bool {
        self.pe_free_at.iter().any(|&f| f <= cycle)
    }

    /// Marks the PE of a retired trace free from `cycle` on.
    pub fn release_pe(&mut self, pe: usize, cycle: u64) {
        self.pe_free_at[pe] = cycle;
    }

    fn claim_pe(&mut self, cycle: u64) -> usize {
        // Round-robin over free PEs, matching the sequencer's trace
        // distribution.
        for k in 0..self.config.pe_count {
            let pe = (self.next_pe + k) % self.config.pe_count;
            if self.pe_free_at[pe] <= cycle {
                self.next_pe = (pe + 1) % self.config.pe_count;
                self.pe_free_at[pe] = u64::MAX; // busy until released
                return pe;
            }
        }
        panic!("dispatch without a free processing element");
    }

    /// Schedules a trace dispatched at `dispatch_cycle` onto a free
    /// PE and returns its timing. The caller must have checked
    /// [`Backend::pe_available`].
    ///
    /// `use_preprocess` selects whether the trace's preprocessing
    /// annotations (if present) drive dependences and issue order.
    pub fn dispatch(
        &mut self,
        dt: &DynTrace,
        dispatch_cycle: u64,
        use_preprocess: bool,
    ) -> TraceTiming {
        let pe = self.claim_pe(dispatch_cycle);
        let n = dt.trace.len();
        let instrs = dt.trace.instrs();
        let info = if use_preprocess {
            dt.trace.preprocess_info()
        } else {
            None
        };

        let raw_deps;
        let deps: &[Vec<u8>] = match info {
            Some(i) => &i.deps,
            None => {
                raw_deps = trace_deps(&dt.trace);
                &raw_deps
            }
        };
        let order: Vec<u8> = match info {
            Some(i) => i.schedule.clone(),
            None => (0..n as u8).collect(),
        };
        let folded = |i: usize| info.map(|inf| inf.const_folded[i]).unwrap_or(false);

        // done[i]: last execution cycle of instruction i.
        let mut done = vec![0u64; n];
        let mut started = vec![0u64; n];
        let mut last_writer: [Option<usize>; tpc_isa::NUM_REGS] = [None; tpc_isa::NUM_REGS];
        // Pre-compute each instruction's intra-trace writer map in
        // program order (identifies which sources are external).
        let mut external_srcs: Vec<Vec<tpc_isa::Reg>> = Vec::with_capacity(n);
        for (i, ti) in instrs.iter().enumerate() {
            let ext = ti
                .op
                .sources()
                .iter()
                .filter(|s| last_writer[s.index()].is_none())
                .collect();
            external_srcs.push(ext);
            if let Some(rd) = ti.op.dest() {
                last_writer[rd.index()] = Some(i);
            }
        }

        let earliest = dispatch_cycle + 1;
        for &oi in &order {
            let i = oi as usize;
            let op = &instrs[i].op;
            let mut ready = earliest;
            if !folded(i) {
                for &j in &deps[i] {
                    // Producer in the same trace ⇒ same PE ⇒ bypass:
                    // consumer may execute the cycle after it is done.
                    ready = ready.max(done[j as usize] + 1);
                }
                for src in &external_srcs[i] {
                    let (avail, producer_pe) = self.reg_ready[src.index()];
                    let penalty = if producer_pe == pe {
                        0
                    } else {
                        self.config.bus_delay
                    };
                    ready = ready.max(avail + penalty);
                }
            }

            let is_mem = matches!(op.class(), OpClass::Load | OpClass::Store);
            // Find the first cycle with a free issue slot (and memory
            // port, when needed).
            let mut c = ready;
            loop {
                let slots_ok = self.issue_slots[pe].count(c) < self.config.issue_per_pe;
                let ports_ok = !is_mem
                    || (self.mem_global.count(c) < self.config.mem_ports_global
                        && self.mem_per_pe[pe].count(c) < self.config.mem_ports_per_pe);
                if slots_ok && ports_ok {
                    break;
                }
                c += 1;
            }
            self.issue_slots[pe].inc(c);
            if is_mem {
                self.mem_global.inc(c);
                self.mem_per_pe[pe].inc(c);
            }

            let lat = match op.class() {
                OpClass::Load => {
                    let addr = dt.mem_addrs[i].expect("loads carry addresses");
                    op_latency(OpClass::Load) as u64 + self.dcache.load(addr) as u64
                }
                OpClass::Store => {
                    // Stores complete into the write buffer; latency
                    // is hidden from the dependence graph.
                    let addr = dt.mem_addrs[i].expect("stores carry addresses");
                    let _ = self.dcache.store(addr);
                    op_latency(OpClass::Store) as u64
                }
                class => op_latency(class) as u64,
            };
            started[i] = c;
            done[i] = c + lat - 1;
        }

        // Publish register results for later traces.
        let mut final_writer: [Option<usize>; tpc_isa::NUM_REGS] = [None; tpc_isa::NUM_REGS];
        for (i, ti) in instrs.iter().enumerate() {
            if let Some(rd) = ti.op.dest() {
                final_writer[rd.index()] = Some(i);
            }
        }
        for (r, w) in final_writer.iter().enumerate() {
            if let Some(i) = w {
                self.reg_ready[r] = (done[*i] + 1, pe);
            }
        }

        let branch_resolves: Vec<u64> = instrs
            .iter()
            .enumerate()
            .filter(|(_, ti)| ti.op.class() == OpClass::Branch)
            .map(|(i, _)| done[i])
            .collect();
        let complete = done.iter().copied().max().unwrap_or(dispatch_cycle);
        let last_resolve = branch_resolves.iter().copied().max().unwrap_or(complete);
        TraceTiming {
            pe,
            complete,
            branch_resolves,
            last_resolve,
            exec_start: started,
            exec_done: done,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpc_core::{preprocess, PushResult, Resolution, TraceBuilder};
    use tpc_isa::{Addr, Op, Reg};

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }

    fn dyn_trace(ops: &[Op]) -> DynTrace {
        let mut b = TraceBuilder::new(Addr::new(0));
        let mut trace = None;
        for (i, &op) in ops.iter().enumerate() {
            match b.push(Addr::new(i as u32), op, Resolution::None) {
                PushResult::Continue(_) => {}
                PushResult::Complete(t) => {
                    trace = Some(t);
                    break;
                }
            }
        }
        let trace = trace.unwrap_or_else(|| {
            match b.push(Addr::new(ops.len() as u32), Op::Return, Resolution::None) {
                PushResult::Complete(t) => t,
                other => panic!("{other:?}"),
            }
        });
        let mem_addrs = trace
            .instrs()
            .iter()
            .map(|ti| matches!(ti.op.class(), OpClass::Load | OpClass::Store).then_some(0x100))
            .collect();
        DynTrace {
            trace,
            mem_addrs,
            branch_outcomes: Vec::new(),
        }
    }

    #[test]
    fn independent_ops_dual_issue() {
        let mut be = Backend::new(BackendConfig::default());
        // 4 independent ALU ops → 2 cycles of issue; complete at
        // dispatch+2.
        let dt = dyn_trace(&[
            Op::AddImm {
                rd: r(1),
                rs1: r(10),
                imm: 1,
            },
            Op::AddImm {
                rd: r(2),
                rs1: r(11),
                imm: 1,
            },
            Op::AddImm {
                rd: r(3),
                rs1: r(12),
                imm: 1,
            },
            Op::AddImm {
                rd: r(4),
                rs1: r(13),
                imm: 1,
            },
        ]);
        let t = be.dispatch(&dt, 0, false);
        // 4 ALU ops dual-issue over cycles 1–2; the terminating ret
        // (appended by the helper) takes cycle 3.
        assert_eq!(t.complete, 3);
    }

    #[test]
    fn dependent_chain_serializes() {
        let mut be = Backend::new(BackendConfig::default());
        let dt = dyn_trace(&[
            Op::AddImm {
                rd: r(1),
                rs1: r(1),
                imm: 1,
            },
            Op::AddImm {
                rd: r(1),
                rs1: r(1),
                imm: 1,
            },
            Op::AddImm {
                rd: r(1),
                rs1: r(1),
                imm: 1,
            },
            Op::AddImm {
                rd: r(1),
                rs1: r(1),
                imm: 1,
            },
        ]);
        let t = be.dispatch(&dt, 0, false);
        // Back-to-back chain: cycles 1,2,3,4.
        assert_eq!(t.complete, 4);
    }

    #[test]
    fn cross_pe_dependence_pays_bus_delay() {
        let mut be = Backend::new(BackendConfig::default());
        // Trace A writes r5 on PE 0.
        let a = dyn_trace(&[Op::AddImm {
            rd: r(5),
            rs1: r(9),
            imm: 1,
        }]);
        let ta = be.dispatch(&a, 0, false);
        assert_eq!(ta.pe, 0);
        // Trace B (PE 1) reads r5: executes at done(A) + 1 + bus.
        let b = dyn_trace(&[Op::AddImm {
            rd: r(6),
            rs1: r(5),
            imm: 1,
        }]);
        let tb = be.dispatch(&b, 0, false);
        assert_eq!(tb.pe, 1);
        assert_eq!(tb.complete, ta.complete + 2);
    }

    #[test]
    fn same_pe_readback_after_release() {
        let mut be = Backend::new(BackendConfig::default());
        let a = dyn_trace(&[Op::AddImm {
            rd: r(5),
            rs1: r(9),
            imm: 1,
        }]);
        let ta = be.dispatch(&a, 0, false);
        be.release_pe(ta.pe, ta.complete + 1);
        // Fill the other PEs so the next dispatch reuses PE 0.
        for _ in 0..3 {
            let f = dyn_trace(&[Op::Nop]);
            be.dispatch(&f, 0, false);
        }
        let b = dyn_trace(&[Op::AddImm {
            rd: r(6),
            rs1: r(5),
            imm: 1,
        }]);
        let tb = be.dispatch(&b, ta.complete + 1, false);
        assert_eq!(tb.pe, ta.pe, "round-robin returns to the freed PE");
        // Same PE: no bus delay; bounded by dispatch+1.
        assert_eq!(tb.complete, ta.complete + 2);
    }

    #[test]
    fn load_latency_includes_dcache() {
        let mut be = Backend::new(BackendConfig::default());
        let dt = dyn_trace(&[Op::Load {
            rd: r(1),
            base: r(2),
            offset: 0,
        }]);
        let t = be.dispatch(&dt, 0, false);
        // Cold load: 1 (AGU) + 2 (hit) + 10 (L2 miss) = 13 cycles
        // starting at cycle 1 → done at 13.
        assert_eq!(t.complete, 13);
        // Warm load on the same line: 1 + 2 = 3 cycles.
        let dt2 = dyn_trace(&[Op::Load {
            rd: r(3),
            base: r(2),
            offset: 0,
        }]);
        let t2 = be.dispatch(&dt2, 0, false);
        assert_eq!(t2.complete, 3);
    }

    #[test]
    fn mem_ports_limit_parallel_loads() {
        let mut be = Backend::new(BackendConfig::default());
        // Warm the line first.
        let warm = dyn_trace(&[Op::Load {
            rd: r(9),
            base: r(2),
            offset: 0,
        }]);
        be.dispatch(&warm, 0, false);
        be.release_pe(0, 0);
        // 3 independent loads on one PE: 2 ports/PE → issue over 2 cycles.
        let dt = dyn_trace(&[
            Op::Load {
                rd: r(1),
                base: r(2),
                offset: 0,
            },
            Op::Load {
                rd: r(3),
                base: r(2),
                offset: 0,
            },
            Op::Load {
                rd: r(4),
                base: r(2),
                offset: 0,
            },
        ]);
        let t = be.dispatch(&dt, 100, false);
        // First two issue at 101, third at 102 → done 102+2 = 104.
        assert_eq!(t.complete, 104);
    }

    #[test]
    fn branch_resolve_times_reported() {
        let mut be = Backend::new(BackendConfig::default());
        let mut b = TraceBuilder::new(Addr::new(0));
        b.push(
            Addr::new(0),
            Op::AddImm {
                rd: r(1),
                rs1: r(1),
                imm: 1,
            },
            Resolution::None,
        );
        let trace = match b.push(
            Addr::new(1),
            Op::Branch {
                cond: tpc_isa::BranchCond::Ne,
                rs1: r(1),
                rs2: r(2),
                target: Addr::new(40),
            },
            Resolution::Branch {
                taken: false,
                next_pc: Addr::new(2),
            },
        ) {
            PushResult::Continue(_) => match b.push(Addr::new(2), Op::Return, Resolution::None) {
                PushResult::Complete(t) => t,
                other => panic!("{other:?}"),
            },
            PushResult::Complete(t) => t,
        };
        let n = trace.len();
        let dt = DynTrace {
            trace,
            mem_addrs: vec![None; n],
            branch_outcomes: vec![false],
        };
        let t = be.dispatch(&dt, 0, false);
        assert_eq!(t.branch_resolves.len(), 1);
        // Branch depends on the addi: resolves at cycle 2.
        assert_eq!(t.branch_resolves[0], 2);
        assert_eq!(t.last_resolve, 2);
    }

    #[test]
    fn preprocessing_shortens_folded_chains() {
        // li; addi(dep); addi(dep); addi(dep) — all foldable.
        let ops = [
            Op::LoadImm { rd: r(1), imm: 5 },
            Op::AddImm {
                rd: r(1),
                rs1: r(1),
                imm: 1,
            },
            Op::AddImm {
                rd: r(1),
                rs1: r(1),
                imm: 1,
            },
            Op::AddImm {
                rd: r(1),
                rs1: r(1),
                imm: 1,
            },
        ];
        let mut plain = dyn_trace(&ops);
        let info = preprocess::preprocess(&plain.trace);
        plain.trace.set_preprocess(info);

        let mut be1 = Backend::new(BackendConfig::default());
        let without = be1.dispatch(&plain, 0, false).complete;
        let mut be2 = Backend::new(BackendConfig::default());
        let with = be2.dispatch(&plain, 0, true).complete;
        assert!(
            with < without,
            "preprocessed {with} must beat unprocessed {without}"
        );
    }

    #[test]
    fn pe_exhaustion_detected() {
        let be = Backend::new(BackendConfig::default());
        assert!(be.pe_available(0));
    }

    #[test]
    #[should_panic(expected = "free processing element")]
    fn dispatch_without_free_pe_panics() {
        let mut be = Backend::new(BackendConfig::default());
        for _ in 0..5 {
            let dt = dyn_trace(&[Op::Nop]);
            be.dispatch(&dt, 0, false);
        }
    }
}
