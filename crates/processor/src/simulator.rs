//! The full-processor simulator: frontend, backend, preconstruction.

use crate::backend::{Backend, BackendConfig, TraceTiming};
use crate::stream::{DynTrace, TraceStream};
use std::collections::VecDeque;
use tpc_core::storage::{SplitStore, StoreCounters, TraceStore, UnifiedConfig, UnifiedStore};
use tpc_core::{
    preprocess, EngineConfig, EngineFault, EngineStats, FaultKind, FaultPlan, FaultState,
    FaultStats, PreconEngine,
};
use tpc_exec::{Executor, Frontend};
use tpc_isa::{Addr, OpClass, Program};
use tpc_mem::{AccessKind, DataCacheStats, IcacheStats, InstrCache, InstrCacheConfig};
use tpc_predict::{Bimodal, NextTracePredictor, NtpConfig, ReturnAddressStack};

/// How trace storage is organized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StorageKind {
    /// The paper's organization: separate trace cache and
    /// preconstruction buffers (sized by `trace_cache_entries` and
    /// `engine.buffer_entries`).
    #[default]
    Split,
    /// The dynamically partitioned unified store the paper suggests
    /// as future work (`trace_cache_entries` + `engine.buffer_entries`
    /// pooled into one 4-way array).
    Unified {
        /// Ways (of 4) initially assigned to preconstruction.
        initial_pb_ways: u8,
        /// Re-partition epoch in fetches (0 = fixed).
        epoch_fetches: u64,
    },
}

/// Full simulator configuration. Defaults are the paper's Section 4
/// machine with a 256-entry trace cache and preconstruction enabled.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Trace cache entries (2-way set-associative).
    pub trace_cache_entries: u32,
    /// Trace storage organization.
    pub storage: StorageKind,
    /// Preconstruction engine configuration (including buffer size).
    pub engine: EngineConfig,
    /// Preprocess traces at fill time (extended pipeline model).
    pub preprocess: bool,
    /// Instruction cache configuration.
    pub icache: InstrCacheConfig,
    /// Next-trace predictor configuration.
    pub ntp: NtpConfig,
    /// Bimodal predictor entries.
    pub bimodal_entries: usize,
    /// Return-address-stack depth.
    pub ras_depth: usize,
    /// Backend configuration.
    pub backend: BackendConfig,
    /// Frontend redirect penalty after a resolved misprediction.
    pub mispredict_penalty: u64,
    /// Record a bounded log of pipeline events (dispatches, slow
    /// builds, stalls, retires) readable via [`Simulator::events`].
    pub record_events: bool,
    /// Record every retired instruction's `(pc, taken)` pair,
    /// readable via [`Simulator::take_retirement`]. Used by the
    /// differential oracle to compare the simulator's retirement
    /// stream against the reference interpreter.
    pub record_retirement: bool,
    /// Deterministic fault-injection plan perturbing the
    /// preconstruction mechanisms (`None` disables injection). Faults
    /// may move performance counters but never the retirement stream
    /// — the differential oracle checks this for arbitrary plans.
    pub faults: Option<FaultPlan>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            trace_cache_entries: 256,
            storage: StorageKind::Split,
            engine: EngineConfig::default(),
            preprocess: false,
            icache: InstrCacheConfig::default(),
            ntp: NtpConfig::default(),
            bimodal_entries: 4096,
            ras_depth: 64,
            backend: BackendConfig::default(),
            mispredict_penalty: 5,
            record_events: false,
            record_retirement: false,
            faults: None,
        }
    }
}

impl SimConfig {
    /// The no-preconstruction baseline with `tc_entries` trace-cache
    /// entries.
    pub fn baseline(tc_entries: u32) -> Self {
        SimConfig {
            trace_cache_entries: tc_entries,
            engine: EngineConfig::disabled(),
            ..SimConfig::default()
        }
    }

    /// A preconstruction configuration: `tc_entries` trace cache plus
    /// `pb_entries` preconstruction buffer.
    pub fn with_precon(tc_entries: u32, pb_entries: u32) -> Self {
        SimConfig {
            trace_cache_entries: tc_entries,
            engine: EngineConfig {
                enabled: pb_entries > 0,
                buffer_entries: pb_entries,
                ..EngineConfig::default()
            },
            ..SimConfig::default()
        }
    }

    /// Enables trace preprocessing (both on the fill path and in the
    /// preconstruction engine).
    pub fn with_preprocess(mut self) -> Self {
        self.preprocess = true;
        self.engine.preprocess = true;
        self
    }

    /// Attaches a deterministic fault-injection plan.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Pools the trace cache and preconstruction buffer into one
    /// dynamically partitioned 4-way store (paper Section 5.1's
    /// future-work design; see `tpc_core::storage::UnifiedStore`).
    pub fn unified(total_entries: u32, initial_pb_ways: u8, epoch_fetches: u64) -> Self {
        SimConfig {
            trace_cache_entries: total_entries,
            storage: StorageKind::Unified {
                initial_pb_ways,
                epoch_fetches,
            },
            engine: EngineConfig {
                enabled: true,
                buffer_entries: 0,
                ..EngineConfig::default()
            },
            ..SimConfig::default()
        }
    }
}

/// Counters and component statistics captured by
/// [`Simulator::stats`].
///
/// Every field is an exact integer counter, so two runs can be
/// compared for bit-identity with `==` (the parallel sweep executor's
/// determinism tests rely on this).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Cycles simulated.
    pub cycles: u64,
    /// Instructions retired.
    pub retired_instructions: u64,
    /// Traces retired.
    pub retired_traces: u64,
    /// Trace fetch requests (one per dispatched trace).
    pub trace_fetches: u64,
    /// Fetches satisfied by the trace cache.
    pub trace_cache_hits: u64,
    /// Fetches satisfied by the preconstruction buffers (copied into
    /// the trace cache on use).
    pub precon_buffer_hits: u64,
    /// Fetches that missed both structures and took the slow path.
    pub trace_cache_misses: u64,
    /// Instructions supplied by the slow path (the I-cache).
    pub slow_path_instructions: u64,
    /// Slow-path instructions supplied from lines that missed in the
    /// I-cache.
    pub slow_path_miss_instructions: u64,
    /// I-cache lines fetched by the slow path.
    pub slow_path_lines: u64,
    /// Next-trace-predictor mispredictions (including cold misses).
    pub ntp_mispredicts: u64,
    /// Slow-path stalls charged for bimodal/RAS/indirect
    /// mispredictions during trace building.
    pub slow_path_predict_stalls: u64,
    /// Trace-cache misses whose trace the engine had built at some
    /// point but lost again (diagnostic; requires
    /// `EngineConfig::track_built_keys`).
    pub misses_previously_built: u64,
    /// Instruction-cache counters.
    pub icache: IcacheStats,
    /// Preconstruction-engine counters.
    pub engine: EngineStats,
    /// Trace-storage counters (trace cache + preconstruction side).
    pub store: StoreCounters,
    /// Frontend cycle attribution.
    pub frontend: FrontendBreakdown,
    /// Data-cache counters.
    pub dcache: DataCacheStats,
    /// Fault-injection counters (all zero when no plan is attached).
    pub faults: FaultStats,
}

impl SimStats {
    /// Retired instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.retired_instructions as f64 / self.cycles as f64
        }
    }

    /// Trace-cache misses per 1000 retired instructions (the paper's
    /// Figure 5 metric).
    pub fn tc_misses_per_kilo(&self) -> f64 {
        per_kilo(self.trace_cache_misses, self.retired_instructions)
    }

    /// Instructions supplied by the I-cache per 1000 instructions
    /// (Table 1).
    pub fn icache_supplied_per_kilo(&self) -> f64 {
        per_kilo(self.slow_path_instructions, self.retired_instructions)
    }

    /// I-cache misses (demand + preconstruction) per 1000
    /// instructions (Table 2).
    pub fn icache_misses_per_kilo(&self) -> f64 {
        per_kilo(self.icache.total_misses(), self.retired_instructions)
    }

    /// Instructions supplied from I-cache misses per 1000
    /// instructions (Table 3).
    pub fn miss_supplied_per_kilo(&self) -> f64 {
        per_kilo(self.slow_path_miss_instructions, self.retired_instructions)
    }

    /// Speedup of `self` over `base` on equal instruction counts.
    pub fn speedup_over(&self, base: &SimStats) -> f64 {
        self.ipc() / base.ipc()
    }

    /// Trace-cache hit fraction of all trace fetches, in 1/1000ths.
    pub fn tc_hit_permille(&self) -> u64 {
        ((self.trace_cache_hits + self.precon_buffer_hits) * 1000)
            .checked_div(self.trace_fetches)
            .unwrap_or(0)
    }

    /// Number of `u64` words in the [`SimStats::to_words`] encoding.
    pub const WORDS: usize = 62;

    /// Encodes every counter as a fixed-order `u64` vector — the
    /// sweep checkpoint format. All fields are exact integers, so
    /// `from_words(&to_words())` round-trips bit-identically with no
    /// serialization dependency.
    pub fn to_words(&self) -> Vec<u64> {
        let mut w = Vec::with_capacity(Self::WORDS);
        w.extend([
            self.cycles,
            self.retired_instructions,
            self.retired_traces,
            self.trace_fetches,
            self.trace_cache_hits,
            self.precon_buffer_hits,
            self.trace_cache_misses,
            self.slow_path_instructions,
            self.slow_path_miss_instructions,
            self.slow_path_lines,
            self.ntp_mispredicts,
            self.slow_path_predict_stalls,
            self.misses_previously_built,
        ]);
        w.extend([
            self.icache.demand_accesses,
            self.icache.demand_misses,
            self.icache.precon_accesses,
            self.icache.precon_misses,
            self.icache.demand_hits_on_precon_lines,
        ]);
        w.extend([
            self.engine.regions_started,
            self.engine.regions_completed,
            self.engine.regions_caught_up,
            self.engine.regions_fetch_bound,
            self.engine.regions_buffer_bound,
            self.engine.traces_built,
            self.engine.traces_already_cached,
            self.engine.successors_dropped,
            self.engine.lines_fetched,
            self.engine.start_points_observed,
        ]);
        w.extend([
            self.store.fetches,
            self.store.tc_hits,
            self.store.precon_hits,
            self.store.misses,
            self.store.precon_fills,
            self.store.precon_rejected,
        ]);
        w.extend([
            self.frontend.dispatched,
            self.frontend.slow_build,
            self.frontend.mispredict_stall,
            self.frontend.backpressure,
        ]);
        w.extend([
            self.dcache.loads,
            self.dcache.stores,
            self.dcache.misses,
            self.dcache.writebacks,
        ]);
        w.extend([self.faults.injected, self.faults.landed]);
        w.extend(self.faults.injected_by_kind);
        w.extend(self.faults.landed_by_kind);
        debug_assert_eq!(w.len(), Self::WORDS);
        w
    }

    /// Decodes a [`SimStats::to_words`] vector; `None` on length
    /// mismatch (a truncated or foreign checkpoint line).
    pub fn from_words(words: &[u64]) -> Option<SimStats> {
        if words.len() != Self::WORDS {
            return None;
        }
        let mut it = words.iter().copied();
        let mut next = || it.next().expect("length checked");
        let mut s = SimStats {
            cycles: next(),
            retired_instructions: next(),
            retired_traces: next(),
            trace_fetches: next(),
            trace_cache_hits: next(),
            precon_buffer_hits: next(),
            trace_cache_misses: next(),
            slow_path_instructions: next(),
            slow_path_miss_instructions: next(),
            slow_path_lines: next(),
            ntp_mispredicts: next(),
            slow_path_predict_stalls: next(),
            misses_previously_built: next(),
            ..SimStats::default()
        };
        s.icache.demand_accesses = next();
        s.icache.demand_misses = next();
        s.icache.precon_accesses = next();
        s.icache.precon_misses = next();
        s.icache.demand_hits_on_precon_lines = next();
        s.engine.regions_started = next();
        s.engine.regions_completed = next();
        s.engine.regions_caught_up = next();
        s.engine.regions_fetch_bound = next();
        s.engine.regions_buffer_bound = next();
        s.engine.traces_built = next();
        s.engine.traces_already_cached = next();
        s.engine.successors_dropped = next();
        s.engine.lines_fetched = next();
        s.engine.start_points_observed = next();
        s.store.fetches = next();
        s.store.tc_hits = next();
        s.store.precon_hits = next();
        s.store.misses = next();
        s.store.precon_fills = next();
        s.store.precon_rejected = next();
        s.frontend.dispatched = next();
        s.frontend.slow_build = next();
        s.frontend.mispredict_stall = next();
        s.frontend.backpressure = next();
        s.dcache.loads = next();
        s.dcache.stores = next();
        s.dcache.misses = next();
        s.dcache.writebacks = next();
        s.faults.injected = next();
        s.faults.landed = next();
        for k in 0..tpc_core::NUM_FAULT_KINDS {
            s.faults.injected_by_kind[k] = next();
        }
        for k in 0..tpc_core::NUM_FAULT_KINDS {
            s.faults.landed_by_kind[k] = next();
        }
        Some(s)
    }
}

/// Error from [`Simulator::run_budgeted`]: the cycle watchdog fired
/// before the instruction target was reached (a wedged or
/// pathologically slow configuration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetExceeded {
    /// Absolute cycle count when the watchdog fired.
    pub cycles: u64,
    /// Instructions retired by then (cumulative).
    pub retired: u64,
}

impl std::fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cycle budget exceeded: {} cycles simulated, {} instructions retired",
            self.cycles, self.retired
        )
    }
}

impl std::error::Error for BudgetExceeded {}

fn per_kilo(count: u64, instructions: u64) -> f64 {
    if instructions == 0 {
        0.0
    } else {
        count as f64 * 1000.0 / instructions as f64
    }
}

/// Per-cycle frontend activity accounting: what the fetch stage was
/// doing each cycle. Summing the fields reproduces the cycle count,
/// so the breakdown attributes *all* time (the classic CPI-stack
/// view of why IPC is lost).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrontendBreakdown {
    /// Cycles a trace was supplied (trace cache, buffers, or a
    /// completed slow-path build dispatching).
    pub dispatched: u64,
    /// Cycles spent inside slow-path builds (I-cache fetch, miss
    /// latency, prediction-repair stalls).
    pub slow_build: u64,
    /// Cycles the frontend waited out a next-trace-predictor
    /// misprediction (previous trace's branches resolving plus the
    /// redirect penalty).
    pub mispredict_stall: u64,
    /// Cycles no processing element was free to accept a dispatch.
    pub backpressure: u64,
}

impl FrontendBreakdown {
    /// Total cycles accounted.
    pub fn total(&self) -> u64 {
        self.dispatched + self.slow_build + self.mispredict_stall + self.backpressure
    }

    /// Each component as a fraction of the total, in 1/1000ths:
    /// (dispatched, slow build, mispredict, backpressure).
    pub fn permille(&self) -> (u64, u64, u64, u64) {
        let t = self.total().max(1);
        (
            self.dispatched * 1000 / t,
            self.slow_build * 1000 / t,
            self.mispredict_stall * 1000 / t,
            self.backpressure * 1000 / t,
        )
    }
}

/// A slow-path trace build in progress.
#[derive(Debug)]
struct SlowBuild {
    dt: DynTrace,
    /// Remaining (line base, instructions in this trace on the line).
    lines: VecDeque<(Addr, u32)>,
    /// Cycle the current line fetch completes.
    busy_until: u64,
    /// Extra stall cycles charged at the end (prediction repairs).
    tail_stall: u64,
}

/// Where a dispatched trace was supplied from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SupplySource {
    /// Trace-cache hit.
    TraceCache,
    /// Preconstruction-side hit (promoted on use).
    PreconBuffer,
    /// Built by the slow path.
    SlowPath,
}

/// One recorded pipeline event (see [`SimConfig::record_events`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimEvent {
    /// A trace was dispatched to a processing element.
    Dispatch {
        /// Cycle of dispatch.
        cycle: u64,
        /// Trace start address.
        start: Addr,
        /// Instructions in the trace.
        len: u8,
        /// Processing element.
        pe: u8,
        /// Supplier.
        source: SupplySource,
    },
    /// A slow-path build started (trace-cache miss).
    SlowBuildBegin {
        /// Cycle the build started.
        cycle: u64,
        /// Start address of the missing trace.
        start: Addr,
    },
    /// The frontend began waiting out a trace-level misprediction.
    MispredictStall {
        /// Cycle the stall began.
        cycle: u64,
        /// Cycle fetch resumes.
        until: u64,
    },
    /// The oldest trace retired.
    Retire {
        /// Cycle of retirement.
        cycle: u64,
        /// Trace start address.
        start: Addr,
    },
}

impl SimEvent {
    /// The event's cycle.
    pub fn cycle(&self) -> u64 {
        match *self {
            SimEvent::Dispatch { cycle, .. }
            | SimEvent::SlowBuildBegin { cycle, .. }
            | SimEvent::MispredictStall { cycle, .. }
            | SimEvent::Retire { cycle, .. } => cycle,
        }
    }
}

/// What the fetch stage did in one cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FrontendActivity {
    Dispatched,
    SlowBuild,
    MispredictStall,
    Backpressure,
}

/// One retired instruction as recorded by the retirement log (see
/// [`SimConfig::record_retirement`]): the architectural identity the
/// differential oracle compares — which instruction retired, and for
/// branches, which way it went.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetiredInstr {
    /// Instruction address.
    pub pc: Addr,
    /// Branch outcome (`false` for non-branches).
    pub taken: bool,
}

/// A dispatched trace awaiting retirement.
#[derive(Debug)]
struct Inflight {
    timing: TraceTiming,
    /// (branch pc, outcome) pairs for bimodal training at retire.
    branches: Vec<(Addr, bool)>,
    /// Instruction addresses, for the engine's retire observation.
    pcs: Vec<Addr>,
    /// Per-instruction retirement records (empty unless
    /// [`SimConfig::record_retirement`]).
    recorded: Vec<RetiredInstr>,
}

/// The simulator, generic over the instruction [`Frontend`]
/// (statically dispatched). Create with [`Simulator::new`] for the
/// synthetic executor frontend or [`Simulator::with_frontend`] for
/// any other, drive with [`Simulator::run`], read results with
/// [`Simulator::stats`].
#[derive(Debug)]
pub struct Simulator<F: Frontend> {
    config: SimConfig,
    stream: TraceStream<F>,
    store: Box<dyn TraceStore>,
    engine: PreconEngine,
    ntp: NextTracePredictor,
    bimodal: Bimodal,
    ras: ReturnAddressStack,
    icache: InstrCache,
    backend: Backend,
    inflight: VecDeque<Inflight>,
    slow_build: Option<SlowBuild>,
    /// The next trace to fetch, once predicted/stalled.
    pending: Option<DynTrace>,
    /// NTP consulted for `pending` already.
    pending_predicted: bool,
    /// Earliest cycle the frontend may fetch again.
    stall_until: u64,
    /// Resolution cycle of the most recently dispatched trace.
    prev_resolve: u64,
    cycle: u64,
    last_retire_cycle: u64,
    seq: u64,
    /// Fault-injection runtime state (`None` when no plan attached).
    faults: Option<FaultState>,
    stats: SimStats,
    events: Vec<SimEvent>,
    /// Retired-instruction log (empty unless
    /// [`SimConfig::record_retirement`]).
    retirement: Vec<RetiredInstr>,
    /// Pending supply source for the next dispatch's event record.
    pending_source: SupplySource,
}

impl<'a> Simulator<Executor<'a>> {
    /// Creates a simulator over `program`, executed by the
    /// architectural [`Executor`] (the `"synthetic"` frontend).
    pub fn new(program: &'a Program, config: SimConfig) -> Self {
        Simulator::with_frontend(Executor::new(program), config)
    }
}

impl<F: Frontend> Simulator<F> {
    /// Creates a simulator over any freshly instantiated
    /// [`Frontend`].
    pub fn with_frontend(frontend: F, config: SimConfig) -> Self {
        let store: Box<dyn TraceStore> = match config.storage {
            StorageKind::Split => Box::new(SplitStore::new(
                config.trace_cache_entries,
                if config.engine.enabled {
                    config.engine.buffer_entries
                } else {
                    0
                },
            )),
            StorageKind::Unified {
                initial_pb_ways,
                epoch_fetches,
            } => Box::new(UnifiedStore::new(UnifiedConfig {
                entries: config.trace_cache_entries + config.engine.buffer_entries,
                initial_pb_ways,
                epoch_fetches,
            })),
        };
        Simulator {
            stream: TraceStream::over(frontend),
            store,
            engine: PreconEngine::new(config.engine),
            ntp: NextTracePredictor::new(config.ntp),
            bimodal: Bimodal::new(config.bimodal_entries),
            ras: ReturnAddressStack::new(config.ras_depth),
            icache: InstrCache::new(config.icache),
            backend: Backend::new(config.backend),
            inflight: VecDeque::new(),
            slow_build: None,
            pending: None,
            pending_predicted: false,
            stall_until: 0,
            prev_resolve: 0,
            cycle: 0,
            last_retire_cycle: 0,
            seq: 0,
            faults: config.faults.map(FaultState::new),
            stats: SimStats::default(),
            events: Vec::new(),
            retirement: Vec::new(),
            pending_source: SupplySource::TraceCache,
            config,
        }
    }

    /// The frontend-kind identifier (see
    /// [`Frontend::id`](tpc_exec::Frontend::id)).
    pub fn frontend_id(&self) -> &'static str {
        self.stream.frontend_id()
    }

    /// The recorded pipeline events (empty unless
    /// [`SimConfig::record_events`] is set). Bounded to the most
    /// recent million events.
    pub fn events(&self) -> &[SimEvent] {
        &self.events
    }

    fn record(&mut self, event: SimEvent) {
        if self.config.record_events {
            if self.events.len() >= 1_000_000 {
                self.events.drain(..500_000);
            }
            self.events.push(event);
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The retired-instruction log accumulated so far (empty unless
    /// [`SimConfig::record_retirement`] is set).
    pub fn retirement_log(&self) -> &[RetiredInstr] {
        &self.retirement
    }

    /// Drains and returns the retired-instruction log, leaving it
    /// empty. The differential runner calls this between chunks so
    /// long runs compare in bounded memory.
    pub fn take_retirement(&mut self) -> Vec<RetiredInstr> {
        std::mem::take(&mut self.retirement)
    }

    /// Checks the simulator-wide conservation invariants the
    /// differential oracle enforces after every chunk: the fetch
    /// conservation law, retirement accounting, and the storage and
    /// engine structural invariants (occupancy ≤ capacity, start
    /// stack within its 16+4 bound).
    pub fn check_invariants(&self) -> Result<(), String> {
        let s = &self.stats;
        if s.trace_fetches != s.trace_cache_hits + s.precon_buffer_hits + s.trace_cache_misses {
            return Err(format!(
                "fetch conservation violated: {} fetches != {} tc hits + {} pb hits + {} misses",
                s.trace_fetches, s.trace_cache_hits, s.precon_buffer_hits, s.trace_cache_misses
            ));
        }
        if s.retired_traces > s.trace_fetches {
            return Err(format!(
                "retired {} traces but only fetched {}",
                s.retired_traces, s.trace_fetches
            ));
        }
        self.store.check_invariants()?;
        self.engine.check_invariants()?;
        Ok(())
    }

    /// Read access to the preconstruction engine (buffer occupancy,
    /// detailed counters).
    pub fn engine(&self) -> &PreconEngine {
        &self.engine
    }

    /// Drains the engine's activity log (empty unless
    /// [`tpc_core::EngineConfig::record_activity`] is set). The
    /// conformance checker calls this between chunks and validates
    /// every start-point push and emitted trace against the static
    /// enumeration.
    pub fn take_engine_activity(&mut self) -> Vec<tpc_core::EngineActivity> {
        self.engine.take_activity()
    }

    /// Read access to the trace storage (split or unified).
    pub fn store(&self) -> &dyn TraceStore {
        &*self.store
    }

    /// Runs until at least `instructions` have retired; returns a
    /// snapshot of the statistics.
    pub fn run(&mut self, instructions: u64) -> SimStats {
        let target = self.stats.retired_instructions + instructions;
        while self.stats.retired_instructions < target {
            self.step();
        }
        self.stats()
    }

    /// Runs `warmup` instructions, resets all statistics, then runs
    /// and measures `measure` instructions — the standard way to
    /// exclude cold-start transients.
    pub fn run_with_warmup(&mut self, warmup: u64, measure: u64) -> SimStats {
        self.run(warmup);
        self.reset_stats();
        self.run(measure)
    }

    /// Like [`Simulator::run`], but gives up once the *absolute*
    /// cycle count (across all prior `run`/`run_budgeted` calls on
    /// this simulator) exceeds `max_cycles` — the sweep executor's
    /// per-cell watchdog against wedged or pathologically slow
    /// configurations.
    pub fn run_budgeted(
        &mut self,
        instructions: u64,
        max_cycles: u64,
    ) -> Result<SimStats, BudgetExceeded> {
        let target = self.stats.retired_instructions + instructions;
        while self.stats.retired_instructions < target {
            if self.cycle >= max_cycles {
                return Err(BudgetExceeded {
                    cycles: self.cycle,
                    retired: self.stats.retired_instructions,
                });
            }
            self.step();
        }
        Ok(self.stats())
    }

    /// Snapshot of the current statistics.
    pub fn stats(&self) -> SimStats {
        let mut s = self.stats.clone();
        s.icache = *self.icache.stats();
        s.engine = *self.engine.stats();
        s.store = self.store.counters();
        s.dcache = *self.backend.dcache_stats();
        if let Some(fs) = &self.faults {
            s.faults = *fs.stats();
        }
        s
    }

    /// Zeroes all counters (contents of caches and predictors are
    /// preserved).
    pub fn reset_stats(&mut self) {
        self.stats = SimStats::default();
        self.icache.reset_stats();
        self.store.reset_counters();
        // Engine and dcache stats are cumulative; snapshot-subtract.
        // For simplicity the engine's counters keep accumulating: the
        // quantities derived from them (Figure 5, Tables 1–3) are all
        // measured through the simulator's own counters, which do
        // reset.
        self.stats.cycles = 0;
    }

    /// Advances one cycle.
    pub fn step(&mut self) {
        self.cycle += 1;
        self.stats.cycles += 1;
        self.apply_faults();
        self.retire_stage();
        let activity = self.fetch_stage();
        let fb = &mut self.stats.frontend;
        match activity {
            FrontendActivity::Dispatched => fb.dispatched += 1,
            FrontendActivity::SlowBuild => fb.slow_build += 1,
            FrontendActivity::MispredictStall => fb.mispredict_stall += 1,
            FrontendActivity::Backpressure => fb.backpressure += 1,
        }
        let slow_busy = activity == FrontendActivity::SlowBuild;
        self.engine.tick(
            self.cycle,
            !slow_busy,
            self.stream.code(),
            &mut self.icache,
            &self.bimodal,
            &mut *self.store,
        );
    }

    /// Draws and injects this cycle's scheduled faults (no-op without
    /// a plan). Runs at the top of the cycle, before retire and
    /// fetch, so a perturbation is visible to everything downstream
    /// in the same cycle. Every target is preconstruction *hint*
    /// state — bimodal counters, prefetch fills, constructors,
    /// preconstruction-buffer entries, the start stack — so injection
    /// can move timing and hit rates but never the retirement stream.
    fn apply_faults(&mut self) {
        let events = match self.faults.as_mut() {
            Some(fs) => fs.draw(),
            None => return,
        };
        for ev in events {
            let landed = match ev.kind {
                FaultKind::FlipBimodalBit => {
                    // narrow: masked to 1 bit before the cast
                    self.bimodal.flip_bit(ev.a as usize, (ev.b & 1) as u8);
                    true
                }
                FaultKind::DropPrefetchFill => self
                    .engine
                    .apply_fault(EngineFault::DropPrefetchFill { salt: ev.a }),
                FaultKind::DelayPrefetchFill => {
                    self.engine.apply_fault(EngineFault::DelayPrefetchFill {
                        salt: ev.a,
                        extra: 1 + ev.b % 16,
                    })
                }
                FaultKind::StallConstructor => {
                    self.engine.apply_fault(EngineFault::StallConstructor {
                        salt: ev.a,
                        cycles: (1 + ev.b % 8) as u32, // narrow: value in 1..=8
                    })
                }
                FaultKind::KillConstructor => self
                    .engine
                    .apply_fault(EngineFault::KillConstructor { salt: ev.a }),
                FaultKind::InvalidatePreconEntry => self.store.fault_invalidate_precon(ev.a),
                FaultKind::CorruptPreconEntry => self.store.fault_corrupt_precon(ev.a),
                FaultKind::SpuriousStackPop => self.engine.apply_fault(EngineFault::PopStartPoint),
                FaultKind::SpuriousStackSquash => self
                    .engine
                    .apply_fault(EngineFault::SquashStartStack { salt: ev.a }),
            };
            self.faults
                .as_mut()
                .expect("drawn from above")
                .note(ev.kind, landed);
        }
    }

    /// Retires at most one trace per cycle, in order.
    fn retire_stage(&mut self) {
        let Some(front) = self.inflight.front() else {
            return;
        };
        let retire_at = front.timing.complete.max(self.last_retire_cycle + 1);
        if self.cycle < retire_at {
            return;
        }
        let done = self.inflight.pop_front().expect("checked front");
        self.record(SimEvent::Retire {
            cycle: self.cycle,
            start: done.pcs.first().copied().unwrap_or(Addr::ZERO),
        });
        self.last_retire_cycle = self.cycle;
        self.backend.release_pe(done.timing.pe, self.cycle);
        for (pc, taken) in &done.branches {
            self.bimodal.update(*pc, *taken);
        }
        for pc in &done.pcs {
            self.engine.observe_retire(*pc);
        }
        self.retirement.extend_from_slice(&done.recorded);
        self.stats.retired_instructions += done.pcs.len() as u64;
        self.stats.retired_traces += 1;
    }

    /// Runs the frontend for one cycle; returns what it did.
    fn fetch_stage(&mut self) -> FrontendActivity {
        // A slow-path build in progress owns the I-cache.
        if self.slow_build.is_some() {
            self.advance_slow_build();
            return FrontendActivity::SlowBuild;
        }
        if self.cycle < self.stall_until {
            return FrontendActivity::MispredictStall;
        }
        // Backpressure: all PEs busy.
        if self.inflight.len() >= self.backend.config().pe_count
            || !self.backend.pe_available(self.cycle)
        {
            return FrontendActivity::Backpressure;
        }
        // Next trace on the correct path.
        if self.pending.is_none() {
            self.pending = Some(self.stream.next_trace());
            self.pending_predicted = false;
        }
        let key = self.pending.as_ref().expect("set above").trace.key();

        // Next-trace prediction: a mispredicted (or unpredicted)
        // trace can only be fetched after the previous trace's
        // branches resolve and the frontend redirects.
        if !self.pending_predicted {
            self.pending_predicted = true;
            let predicted = self.ntp.predict() == Some(key);
            let end = self.pending.as_ref().expect("set above").trace.end();
            self.ntp.observe(key, end);
            if !predicted {
                self.stats.ntp_mispredicts += 1;
                let resume = (self.prev_resolve + self.config.mispredict_penalty).max(self.cycle);
                if resume > self.cycle {
                    self.stall_until = resume;
                    self.record(SimEvent::MispredictStall {
                        cycle: self.cycle,
                        until: resume,
                    });
                    return FrontendActivity::MispredictStall;
                }
            }
        }

        self.stats.trace_fetches += 1;
        // Probe the trace cache and the preconstruction side in
        // parallel (paper Section 3.1); a preconstruction hit is
        // promoted into the trace cache by the store.
        let fetched = self.store.fetch(key);
        if fetched.hit {
            if fetched.from_precon {
                self.stats.precon_buffer_hits += 1;
                self.pending_source = SupplySource::PreconBuffer;
            } else {
                self.stats.trace_cache_hits += 1;
                self.pending_source = SupplySource::TraceCache;
            }
            let mut dt = self.pending.take().expect("set above");
            if let Some(info) = fetched.preprocess {
                dt.trace.set_preprocess_arc(info);
            }
            self.dispatch(dt);
            return FrontendActivity::Dispatched;
        }

        // Miss: build the trace through the slow path.
        self.stats.trace_cache_misses += 1;
        if self.engine.was_ever_built(key) {
            self.stats.misses_previously_built += 1;
        }
        let dt = self.pending.take().expect("set above");
        self.record(SimEvent::SlowBuildBegin {
            cycle: self.cycle,
            start: dt.trace.start(),
        });
        self.pending_source = SupplySource::SlowPath;
        self.begin_slow_build(dt);
        FrontendActivity::SlowBuild
    }

    /// Starts a slow-path build: enumerate the I-cache lines the
    /// trace's instructions live on and the prediction-repair stalls
    /// the build will incur.
    fn begin_slow_build(&mut self, dt: DynTrace) {
        let mut lines: VecDeque<(Addr, u32)> = VecDeque::new();
        for ti in dt.trace.instrs() {
            let base = InstrCache::line_base(ti.pc);
            match lines.back_mut() {
                Some((b, n)) if *b == base => *n += 1,
                _ => lines.push_back((base, 1)),
            }
        }
        // Prediction repairs while following the path: every bimodal
        // miss, RAS mismatch, and indirect jump costs a redirect.
        let mut tail_stall = 0;
        let mut outcome_iter = dt.branch_outcomes.iter();
        for ti in dt.trace.instrs() {
            match ti.op.class() {
                OpClass::Branch => {
                    let taken = *outcome_iter.next().expect("outcomes parallel branches");
                    if self.bimodal.predict(ti.pc) != taken {
                        tail_stall += self.config.mispredict_penalty;
                        self.stats.slow_path_predict_stalls += 1;
                    }
                }
                OpClass::IndirectJump => {
                    tail_stall += self.config.mispredict_penalty;
                    self.stats.slow_path_predict_stalls += 1;
                }
                OpClass::Return => {
                    // RAS checked (and popped) against the actual
                    // successor recorded in the trace.
                    let predicted = self.ras.pop();
                    if predicted != dt.trace.successor() {
                        tail_stall += self.config.mispredict_penalty;
                        self.stats.slow_path_predict_stalls += 1;
                    }
                }
                OpClass::Call => self.ras.push(ti.pc.next()),
                _ => {}
            }
        }
        self.stats.slow_path_instructions += dt.trace.len() as u64;
        self.slow_build = Some(SlowBuild {
            dt,
            lines,
            busy_until: self.cycle,
            tail_stall,
        });
    }

    /// One cycle of slow-path progress.
    fn advance_slow_build(&mut self) {
        let build = self.slow_build.as_mut().expect("called while building");
        if self.cycle < build.busy_until {
            return;
        }
        if let Some((base, count)) = build.lines.pop_front() {
            let res = self.icache.fetch(base, AccessKind::Demand);
            self.stats.slow_path_lines += 1;
            if !res.hit {
                self.stats.slow_path_miss_instructions += count as u64;
            }
            build.busy_until = self.cycle + res.latency as u64;
            return;
        }
        if build.tail_stall > 0 {
            build.busy_until = self.cycle + build.tail_stall;
            build.tail_stall = 0;
            return;
        }
        // Build complete: preprocess (extended pipeline), fill the
        // trace cache, dispatch.
        let mut build = self.slow_build.take().expect("present");
        if self.config.preprocess {
            let info = preprocess::preprocess(&build.dt.trace);
            build.dt.trace.set_preprocess(info);
        }
        self.store.fill_demand(build.dt.trace.clone());
        self.dispatch(build.dt);
    }

    /// Dispatches a trace to the backend and the preconstruction
    /// engine's dispatch observer.
    fn dispatch(&mut self, dt: DynTrace) {
        // RAS maintenance for trace-cache-supplied traces (slow-path
        // builds already popped their returns during the build).
        for ti in dt.trace.instrs() {
            match ti.op.class() {
                OpClass::Call => self.ras.push(ti.pc.next()),
                OpClass::Return => {
                    let _ = self.ras.pop();
                }
                _ => {}
            }
            self.seq += 1;
            self.engine.observe_dispatch(ti.pc, &ti.op, self.seq);
        }
        let timing = self
            .backend
            .dispatch(&dt, self.cycle, self.config.preprocess);
        self.record(SimEvent::Dispatch {
            cycle: self.cycle,
            start: dt.trace.start(),
            len: dt.trace.len() as u8, // narrow: trace len capped at 16 slots
            pe: timing.pe as u8,       // narrow: PE index < pe_count (4)
            source: self.pending_source,
        });
        self.prev_resolve = timing.last_resolve;
        let mut outcome_iter = dt.branch_outcomes.iter();
        let branches: Vec<(Addr, bool)> = dt
            .trace
            .instrs()
            .iter()
            .filter(|ti| ti.op.class() == OpClass::Branch)
            .map(|ti| (ti.pc, *outcome_iter.next().expect("parallel outcomes")))
            .collect();
        let pcs = dt.trace.instrs().iter().map(|ti| ti.pc).collect();
        let recorded = if self.config.record_retirement {
            let mut outcome_iter = dt.branch_outcomes.iter();
            dt.trace
                .instrs()
                .iter()
                .map(|ti| RetiredInstr {
                    pc: ti.pc,
                    taken: if ti.op.class() == OpClass::Branch {
                        *outcome_iter.next().expect("parallel outcomes")
                    } else {
                        false
                    },
                })
                .collect()
        } else {
            Vec::new()
        };
        self.inflight.push_back(Inflight {
            timing,
            branches,
            pcs,
            recorded,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpc_workloads::{Benchmark, WorkloadBuilder};

    fn run(config: SimConfig, benchmark: Benchmark, n: u64) -> SimStats {
        let p = WorkloadBuilder::new(benchmark).seed(1).build();
        let mut sim = Simulator::new(&p, config);
        sim.run(n)
    }

    #[test]
    fn simulation_makes_forward_progress() {
        let s = run(SimConfig::default(), Benchmark::Compress, 20_000);
        assert!(s.retired_instructions >= 20_000);
        assert!(s.cycles > 0);
        assert!(s.ipc() > 0.2, "ipc {}", s.ipc());
        assert!(s.ipc() <= 8.0, "ipc bounded by issue width");
    }

    #[test]
    fn instruction_conservation() {
        // Every retired instruction was supplied exactly once, by
        // the trace cache, buffers, or slow path.
        let s = run(SimConfig::default(), Benchmark::Li, 30_000);
        assert_eq!(
            s.trace_fetches,
            s.trace_cache_hits + s.precon_buffer_hits + s.trace_cache_misses
        );
        assert!(s.retired_traces <= s.trace_fetches);
    }

    #[test]
    fn small_benchmark_trace_cache_converges() {
        // compress fits in a 256-entry trace cache: after warm-up the
        // miss rate must be near zero.
        let p = WorkloadBuilder::new(Benchmark::Compress).seed(1).build();
        let mut sim = Simulator::new(&p, SimConfig::baseline(256));
        let s = sim.run_with_warmup(100_000, 100_000);
        assert!(
            s.tc_misses_per_kilo() < 5.0,
            "compress misses/kilo {}",
            s.tc_misses_per_kilo()
        );
    }

    #[test]
    fn large_benchmark_stresses_small_trace_cache() {
        let p = WorkloadBuilder::new(Benchmark::Gcc).seed(1).build();
        let mut sim = Simulator::new(&p, SimConfig::baseline(64));
        let s = sim.run_with_warmup(50_000, 100_000);
        assert!(
            s.tc_misses_per_kilo() > 10.0,
            "gcc misses/kilo {}",
            s.tc_misses_per_kilo()
        );
    }

    #[test]
    fn preconstruction_reduces_trace_cache_misses() {
        let p = WorkloadBuilder::new(Benchmark::Vortex).seed(1).build();
        let mut base = Simulator::new(&p, SimConfig::baseline(128));
        let sb = base.run_with_warmup(50_000, 150_000);
        let mut precon = Simulator::new(&p, SimConfig::with_precon(128, 128));
        let sp = precon.run_with_warmup(50_000, 150_000);
        assert!(
            sp.tc_misses_per_kilo() < sb.tc_misses_per_kilo(),
            "precon {} vs base {}",
            sp.tc_misses_per_kilo(),
            sb.tc_misses_per_kilo()
        );
        assert!(sp.precon_buffer_hits > 0);
    }

    #[test]
    fn preprocessing_improves_ipc() {
        let p = WorkloadBuilder::new(Benchmark::Gcc).seed(1).build();
        let mut plain = Simulator::new(&p, SimConfig::baseline(256));
        let s1 = plain.run_with_warmup(50_000, 100_000);
        let mut pre = Simulator::new(&p, SimConfig::baseline(256).with_preprocess());
        let s2 = pre.run_with_warmup(50_000, 100_000);
        assert!(
            s2.ipc() > s1.ipc(),
            "preprocess {} vs plain {}",
            s2.ipc(),
            s1.ipc()
        );
    }

    #[test]
    fn stats_reset_cleans_counters() {
        let p = WorkloadBuilder::new(Benchmark::Compress).seed(1).build();
        let mut sim = Simulator::new(&p, SimConfig::default());
        sim.run(10_000);
        sim.reset_stats();
        let s = sim.stats();
        assert_eq!(s.retired_instructions, 0);
        assert_eq!(s.trace_fetches, 0);
    }

    #[test]
    fn determinism_across_runs() {
        let p = WorkloadBuilder::new(Benchmark::M88ksim).seed(2).build();
        let a = Simulator::new(&p, SimConfig::default()).run(30_000);
        let b = Simulator::new(&p, SimConfig::default()).run(30_000);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.trace_cache_misses, b.trace_cache_misses);
        assert_eq!(a.retired_instructions, b.retired_instructions);
    }

    #[test]
    fn frontend_breakdown_accounts_every_cycle() {
        let s = run(SimConfig::with_precon(128, 128), Benchmark::Gcc, 40_000);
        assert_eq!(
            s.frontend.total(),
            s.cycles,
            "every cycle is attributed to exactly one activity"
        );
        assert!(s.frontend.dispatched > 0);
        assert!(s.frontend.slow_build > 0, "gcc misses take the slow path");
    }

    #[test]
    fn small_benchmark_is_dispatch_dominated() {
        let p = WorkloadBuilder::new(Benchmark::Compress).seed(1).build();
        let mut sim = Simulator::new(&p, SimConfig::baseline(256));
        let s = sim.run_with_warmup(60_000, 60_000);
        let (dispatched, slow, _, _) = s.frontend.permille();
        assert!(
            dispatched > 400,
            "compress mostly dispatches ({dispatched}‰)"
        );
        assert!(slow < 100, "almost no slow-path time ({slow}‰)");
    }

    #[test]
    fn unified_storage_mode_works_end_to_end() {
        let p = WorkloadBuilder::new(Benchmark::Gcc).seed(1).build();
        let mut sim = Simulator::new(&p, SimConfig::unified(256, 1, 4096));
        let s = sim.run_with_warmup(40_000, 80_000);
        assert_eq!(
            s.trace_fetches,
            s.trace_cache_hits + s.precon_buffer_hits + s.trace_cache_misses
        );
        assert!(
            s.precon_buffer_hits > 0,
            "unified precon ways supply traces"
        );
        // And it must beat the same capacity with no preconstruction.
        let mut base = Simulator::new(&p, SimConfig::baseline(256));
        let sb = base.run_with_warmup(40_000, 80_000);
        assert!(
            s.tc_misses_per_kilo() < sb.tc_misses_per_kilo(),
            "unified {:.1} vs baseline {:.1}",
            s.tc_misses_per_kilo(),
            sb.tc_misses_per_kilo()
        );
    }

    #[test]
    fn event_log_captures_pipeline_activity() {
        let p = WorkloadBuilder::new(Benchmark::Li).seed(1).build();
        let mut cfg = SimConfig::with_precon(64, 64);
        cfg.record_events = true;
        let mut sim = Simulator::new(&p, cfg);
        sim.run(20_000);
        let events = sim.events();
        assert!(!events.is_empty());
        let dispatches = events
            .iter()
            .filter(|e| matches!(e, SimEvent::Dispatch { .. }))
            .count();
        let retires = events
            .iter()
            .filter(|e| matches!(e, SimEvent::Retire { .. }))
            .count();
        assert!(dispatches > 0 && retires > 0);
        assert!(
            dispatches >= retires,
            "a trace retires only after dispatching"
        );
        // Events are in non-decreasing cycle order.
        for w in events.windows(2) {
            assert!(w[0].cycle() <= w[1].cycle());
        }
        // All three supply sources appear on this config.
        let sources: std::collections::HashSet<_> = events
            .iter()
            .filter_map(|e| match e {
                SimEvent::Dispatch { source, .. } => Some(*source),
                _ => None,
            })
            .collect();
        assert!(sources.contains(&SupplySource::SlowPath));
        assert!(sources.contains(&SupplySource::TraceCache));
    }

    #[test]
    fn events_off_by_default() {
        let p = WorkloadBuilder::new(Benchmark::Compress).seed(1).build();
        let mut sim = Simulator::new(&p, SimConfig::default());
        sim.run(5_000);
        assert!(sim.events().is_empty());
    }

    #[test]
    fn disabled_engine_never_fetches() {
        let s = run(SimConfig::baseline(128), Benchmark::Gcc, 30_000);
        assert_eq!(s.icache.precon_accesses, 0);
        assert_eq!(s.precon_buffer_hits, 0);
    }

    #[test]
    fn fault_injection_fires_and_lands() {
        let cfg = SimConfig::with_precon(128, 128).with_faults(FaultPlan::all(0xBEEF, 50));
        let s = run(cfg, Benchmark::Gcc, 40_000);
        assert!(s.faults.injected > 0, "plan with 50‰ per kind injects");
        assert!(s.faults.landed > 0, "some faults hit live state");
        assert!(s.faults.landed <= s.faults.injected);
        assert!(s.retired_instructions >= 40_000, "still makes progress");
    }

    #[test]
    fn fault_injection_is_deterministic() {
        let p = WorkloadBuilder::new(Benchmark::Vortex).seed(3).build();
        let cfg = SimConfig::with_precon(128, 128).with_faults(FaultPlan::all(77, 30));
        let a = Simulator::new(&p, cfg.clone()).run(30_000);
        let b = Simulator::new(&p, cfg).run(30_000);
        assert_eq!(a, b, "same plan, same schedule, bit-identical stats");
        assert!(a.faults.injected > 0);
    }

    #[test]
    fn faults_move_stats_but_not_retirement() {
        let p = WorkloadBuilder::new(Benchmark::Gcc).seed(5).build();
        let mut clean_cfg = SimConfig::with_precon(128, 128);
        clean_cfg.record_retirement = true;
        let mut faulty_cfg = clean_cfg.clone().with_faults(FaultPlan::all(99, 100));
        faulty_cfg.record_retirement = true;
        let mut clean = Simulator::new(&p, clean_cfg);
        let mut faulty = Simulator::new(&p, faulty_cfg);
        let sc = clean.run(30_000);
        let sf = faulty.run(30_000);
        assert!(sf.faults.landed > 0, "faults demonstrably fired");
        // Same retired instruction *stream*...
        let rc = clean.take_retirement();
        let rf = faulty.take_retirement();
        assert_eq!(rc.len().min(30_500), rc.len(), "sanity");
        let n = rc.len().min(rf.len());
        assert_eq!(rc[..n], rf[..n], "retirement stream unchanged");
        // ...while performance counters moved.
        let mut sf_zeroed = sf.clone();
        sf_zeroed.faults = FaultStats::default();
        assert_ne!(sc, sf_zeroed, "non-fault counters perturbed");
    }

    #[test]
    fn stats_words_round_trip() {
        let cfg = SimConfig::with_precon(64, 64).with_faults(FaultPlan::all(1, 20));
        let s = run(cfg, Benchmark::Li, 20_000);
        let words = s.to_words();
        assert_eq!(words.len(), SimStats::WORDS);
        let back = SimStats::from_words(&words).expect("well-formed");
        assert_eq!(s, back, "codec is lossless");
        assert!(SimStats::from_words(&words[..10]).is_none());
    }

    #[test]
    fn run_budgeted_completes_within_generous_budget() {
        let p = WorkloadBuilder::new(Benchmark::Compress).seed(1).build();
        let mut sim = Simulator::new(&p, SimConfig::default());
        let s = sim
            .run_budgeted(10_000, 10_000_000)
            .expect("ample budget completes");
        assert!(s.retired_instructions >= 10_000);
    }

    #[test]
    fn run_budgeted_times_out_on_tiny_budget() {
        let p = WorkloadBuilder::new(Benchmark::Gcc).seed(1).build();
        let mut sim = Simulator::new(&p, SimConfig::default());
        let err = sim
            .run_budgeted(1_000_000, 100)
            .expect_err("100 cycles cannot retire a million instructions");
        assert!(err.cycles >= 100);
        assert!(err.retired < 1_000_000);
        assert!(err.to_string().contains("cycle budget exceeded"));
    }
}
