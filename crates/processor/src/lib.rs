//! # tpc-processor — the trace-processor timing model
//!
//! A cycle-level model of the trace processor of Rotenberg et al.
//! (MICRO 1997) as configured in the paper's Section 4: a trace-cache
//! frontend with a path-based next-trace predictor and a
//! bimodal+I-cache slow path, a distributed backend of four 2-wide
//! processing elements communicating over global result buses, and —
//! the paper's contribution — a preconstruction engine borrowing the
//! slow-path hardware on idle cycles.
//!
//! The model is *trace-driven*: an architectural executor supplies
//! the correct-path dynamic instruction stream, chunked into traces
//! by the shared trace-selection rules ([`stream::TraceStream`]).
//! Fetch, dispatch, dependence-aware issue, memory-port contention,
//! and misprediction recovery are timed; wrong-path *data* effects
//! are not modelled (see `DESIGN.md` §2).
//!
//! ```
//! use tpc_workloads::{Benchmark, WorkloadBuilder};
//! use tpc_processor::{SimConfig, Simulator};
//!
//! let program = WorkloadBuilder::new(Benchmark::Compress).seed(1).build();
//! let mut sim = Simulator::new(&program, SimConfig::default());
//! let stats = sim.run(20_000);
//! assert!(stats.ipc() > 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod simulator;
pub mod stream;

pub use simulator::{
    BudgetExceeded, FrontendBreakdown, RetiredInstr, SimConfig, SimEvent, SimStats, Simulator,
    StorageKind, SupplySource,
};
pub use stream::{DynTrace, TraceStream};
