//! Tables 1–3: the preconstruction engine's effect on the
//! instruction cache, for gcc and go.
//!
//! The paper compares a 512-entry trace cache against a 256-entry
//! trace cache plus 256-entry preconstruction buffer (equal area):
//!
//! * **Table 1** — instructions supplied by the I-cache per 1000
//!   instructions (drops >20 % with preconstruction: more fetches are
//!   served as traces);
//! * **Table 2** — I-cache misses per 1000 instructions (roughly
//!   doubles: the engine's walks touch lines the processor never
//!   demanded — but the absolute number stays small);
//! * **Table 3** — instructions supplied by I-cache *misses* per 1000
//!   instructions (drops: the engine prefetches lines the slow path
//!   later hits).

use crate::par_sweep::sweep_grid;
use crate::report::{f1, markdown_table};
use crate::runner::RunParams;
use tpc_processor::{SimConfig, SimStats};
use tpc_workloads::Benchmark;

/// Measurements for one benchmark under both configurations.
#[derive(Debug, Clone)]
pub struct TablesRow {
    /// Benchmark measured.
    pub benchmark: Benchmark,
    /// The 512-entry trace-cache baseline.
    pub baseline: SimStats,
    /// The 256-entry trace cache + 256-entry buffer configuration.
    pub precon: SimStats,
}

/// Trace-cache entries in the baseline configuration.
pub const BASELINE_TC: u32 = 512;
/// Trace-cache / buffer entries in the preconstruction configuration.
pub const PRECON_TC: u32 = 256;
/// Preconstruction-buffer entries.
pub const PRECON_PB: u32 = 256;

/// Runs both configurations for the given benchmarks (the paper uses
/// gcc and go).
pub fn run(benchmarks: &[Benchmark], params: RunParams) -> Vec<TablesRow> {
    let configs = [
        SimConfig::baseline(BASELINE_TC),
        SimConfig::with_precon(PRECON_TC, PRECON_PB),
    ];
    let grid = sweep_grid(benchmarks, &configs, params);
    benchmarks
        .iter()
        .zip(grid)
        .map(|(&benchmark, mut stats)| {
            let precon = stats.pop().expect("two configs");
            let baseline = stats.pop().expect("two configs");
            TablesRow {
                benchmark,
                baseline,
                precon,
            }
        })
        .collect()
}

/// Renders Tables 1–3 in the paper's layout.
pub fn render(rows: &[TablesRow]) -> String {
    let mut out = String::new();

    out.push_str("\n### Table 1 — instructions supplied by the I-cache (per 1000 instr)\n\n");
    let t1: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.benchmark.to_string(),
                f1(r.baseline.icache_supplied_per_kilo()),
                f1(r.precon.icache_supplied_per_kilo()),
            ]
        })
        .collect();
    out.push_str(&markdown_table(
        &["benchmark", "512-entry TC", "256 TC + 256 PB"],
        &t1,
    ));

    out.push_str("\n### Table 2 — I-cache misses (per 1000 instr)\n\n");
    let t2: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.benchmark.to_string(),
                f1(r.baseline.icache_misses_per_kilo()),
                f1(r.precon.icache_misses_per_kilo()),
            ]
        })
        .collect();
    out.push_str(&markdown_table(
        &["benchmark", "512-entry TC", "256 TC + 256 PB"],
        &t2,
    ));

    out.push_str("\n### Table 3 — instructions supplied by I-cache misses (per 1000 instr)\n\n");
    let t3: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.benchmark.to_string(),
                f1(r.baseline.miss_supplied_per_kilo()),
                f1(r.precon.miss_supplied_per_kilo()),
            ]
        })
        .collect();
    out.push_str(&markdown_table(
        &["benchmark", "512-entry TC", "256 TC + 256 PB"],
        &t3,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_and_renders() {
        let rows = run(&[Benchmark::Compress], RunParams::quick());
        assert_eq!(rows.len(), 1);
        let text = render(&rows);
        assert!(text.contains("Table 1"));
        assert!(text.contains("Table 2"));
        assert!(text.contains("Table 3"));
        assert!(text.contains("compress"));
    }
}
