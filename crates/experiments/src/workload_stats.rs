//! Dynamic workload characterization: the link between the synthetic
//! profiles and the trace-cache behaviour they induce.
//!
//! The key quantity is the **trace working set** — unique trace
//! identities observed in an instruction window. The paper's whole
//! premise is that this exceeds the static code working set (each
//! static instruction appears in several dynamic traces); measuring
//! it per benchmark grounds the Figure 5 calibration.

use crate::par_sweep::{effective_jobs, par_map};
use crate::report::{f1, markdown_table};
use crate::runner::RunParams;
use std::collections::BTreeSet;
use tpc_isa::OpClass;
use tpc_processor::TraceStream;
use tpc_workloads::stats::static_stats;
use tpc_workloads::{Benchmark, WorkloadBuilder};

/// Characterization of one benchmark.
#[derive(Debug, Clone)]
pub struct WorkloadRow {
    /// Benchmark measured.
    pub benchmark: Benchmark,
    /// Static instructions.
    pub static_instructions: u32,
    /// Unique instruction addresses touched in the window.
    pub touched_instructions: u32,
    /// Unique trace identities in the window (the trace working set).
    pub unique_traces: u32,
    /// Average dynamic trace length.
    pub avg_trace_len: f64,
    /// Dynamic conditional branches per 1000 instructions.
    pub branches_per_kilo: f64,
    /// Dynamic taken rate of conditional branches, in 1/1000ths.
    pub taken_permille: u32,
    /// Dynamic calls per 1000 instructions.
    pub calls_per_kilo: f64,
}

impl WorkloadRow {
    /// Trace working set expansion: unique traces × 16-instr entries
    /// relative to the touched static footprint — the >1 factor that
    /// motivates preconstruction.
    pub fn expansion_factor(&self) -> f64 {
        if self.touched_instructions == 0 {
            return 0.0;
        }
        (self.unique_traces as f64 * self.avg_trace_len) / self.touched_instructions as f64
    }
}

/// Characterizes each benchmark over `window` dynamic instructions.
/// Benchmarks fan out across `params.jobs` threads; each stream walk
/// is independent, so the rows come back in benchmark order.
pub fn run(benchmarks: &[Benchmark], window: u64, params: RunParams) -> Vec<WorkloadRow> {
    par_map(benchmarks, effective_jobs(params.jobs), |&benchmark| {
        let program = WorkloadBuilder::new(benchmark).seed(params.seed).build();
        let sstats = static_stats(&program);
        let mut stream = TraceStream::new(&program);
        let mut touched = BTreeSet::new();
        let mut traces = BTreeSet::new();
        let mut trace_count = 0u64;
        let mut branches = 0u64;
        let mut taken = 0u64;
        let mut calls = 0u64;
        while stream.retired() < window {
            let dt = stream.next_trace();
            traces.insert(dt.trace.key());
            trace_count += 1;
            for ti in dt.trace.instrs() {
                touched.insert(ti.pc);
                if ti.op.class() == OpClass::Call {
                    calls += 1
                }
            }
            branches += dt.branch_outcomes.len() as u64;
            taken += dt.branch_outcomes.iter().filter(|&&t| t).count() as u64;
        }
        let retired = stream.retired();
        WorkloadRow {
            benchmark,
            static_instructions: sstats.instructions,
            touched_instructions: touched.len() as u32,
            unique_traces: traces.len() as u32,
            avg_trace_len: retired as f64 / trace_count.max(1) as f64,
            branches_per_kilo: branches as f64 * 1000.0 / retired.max(1) as f64,
            taken_permille: (taken * 1000 / branches.max(1)) as u32,
            calls_per_kilo: calls as f64 * 1000.0 / retired.max(1) as f64,
        }
    })
}

/// Renders the characterization table.
pub fn render(rows: &[WorkloadRow], window: u64) -> String {
    let mut out = format!("\n### Workload characterization ({window} dynamic instructions)\n\n");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.benchmark.to_string(),
                r.static_instructions.to_string(),
                r.touched_instructions.to_string(),
                r.unique_traces.to_string(),
                f1(r.avg_trace_len),
                format!("{:.1}x", r.expansion_factor()),
                f1(r.branches_per_kilo),
                format!("{}", r.taken_permille),
                f1(r.calls_per_kilo),
            ]
        })
        .collect();
    out.push_str(&markdown_table(
        &[
            "benchmark",
            "static",
            "touched",
            "traces",
            "len",
            "expansion",
            "br/1k",
            "taken‰",
            "call/1k",
        ],
        &table,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeded(seed: u64) -> RunParams {
        RunParams {
            seed,
            ..RunParams::default()
        }
    }

    #[test]
    fn characterizes_small_benchmark() {
        let rows = run(&[Benchmark::Compress], 20_000, seeded(1));
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert!(r.unique_traces > 0);
        assert!(r.avg_trace_len > 1.0 && r.avg_trace_len <= 16.0);
        assert!(r.touched_instructions <= r.static_instructions);
    }

    #[test]
    fn trace_working_set_exceeds_code_working_set() {
        // The paper's premise: trace entries needed exceed the static
        // footprint, for the branchy benchmarks.
        let rows = run(&[Benchmark::Go], 100_000, seeded(1));
        assert!(
            rows[0].expansion_factor() > 1.0,
            "go expansion {:.2}",
            rows[0].expansion_factor()
        );
    }

    #[test]
    fn go_expands_more_than_vortex() {
        let rows = run(&[Benchmark::Go, Benchmark::Vortex], 100_000, seeded(1));
        assert!(
            rows[0].expansion_factor() > rows[1].expansion_factor(),
            "weak biases expand the trace working set: go {:.2} vs vortex {:.2}",
            rows[0].expansion_factor(),
            rows[1].expansion_factor()
        );
    }

    #[test]
    fn render_has_all_columns() {
        let rows = run(&[Benchmark::Compress], 10_000, seeded(1));
        let text = render(&rows, 10_000);
        assert!(text.contains("expansion"));
        assert!(text.contains("compress"));
    }
}
