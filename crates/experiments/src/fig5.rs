//! Figure 5: trace-cache miss rates across trace-cache and
//! preconstruction-buffer sizes, for all SPECint95 benchmarks.
//!
//! The paper plots misses per 1000 instructions against the
//! *combined* size of the trace cache and preconstruction buffer.
//! This module sweeps the same grid: baselines of 64–1024 trace-cache
//! entries, and preconstruction configurations pairing each trace
//! cache with the paper's smallest (32) and largest (256) buffers,
//! plus the equal-split points used for the equal-area comparison.

use crate::par_sweep::sweep_grid;
use crate::report::{f1, markdown_table};
use crate::runner::RunParams;
use tpc_processor::SimConfig;
use tpc_workloads::Benchmark;

/// One sweep point.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5Row {
    /// Benchmark measured.
    pub benchmark: Benchmark,
    /// Trace-cache entries.
    pub tc_entries: u32,
    /// Preconstruction-buffer entries (0 = baseline).
    pub pb_entries: u32,
    /// Trace-cache misses per 1000 instructions.
    pub misses_per_kilo: f64,
    /// Preconstruction-buffer hits per 1000 instructions.
    pub buffer_hits_per_kilo: f64,
}

impl Fig5Row {
    /// Combined capacity in entries (the paper's x-axis; 16
    /// entries = 1 KB).
    pub fn combined_entries(&self) -> u32 {
        self.tc_entries + self.pb_entries
    }
}

/// Baseline trace-cache sizes (entries).
pub const TC_SIZES: [u32; 5] = [64, 128, 256, 512, 1024];
/// Preconstruction buffer sizes paired with each trace cache.
pub const PB_SIZES: [u32; 3] = [32, 128, 256];

/// The configurations swept for one benchmark, in row order.
pub fn configs() -> Vec<(u32, u32)> {
    let mut v: Vec<(u32, u32)> = TC_SIZES.iter().map(|&tc| (tc, 0)).collect();
    for &tc in &TC_SIZES {
        for &pb in &PB_SIZES {
            if pb <= tc {
                v.push((tc, pb));
            }
        }
    }
    v
}

/// Runs the Figure 5 sweep for the given benchmarks. All benchmark ×
/// shape cells fan out together across `params.jobs` threads.
pub fn run(benchmarks: &[Benchmark], params: RunParams) -> Vec<Fig5Row> {
    let mut rows = Vec::new();
    let shapes = configs();
    let sim_configs: Vec<SimConfig> = shapes
        .iter()
        .map(|&(tc, pb)| SimConfig::with_precon(tc, pb))
        .collect();
    let grid = sweep_grid(benchmarks, &sim_configs, params);
    for (&benchmark, stats) in benchmarks.iter().zip(&grid) {
        for (&(tc, pb), s) in shapes.iter().zip(stats) {
            rows.push(Fig5Row {
                benchmark,
                tc_entries: tc,
                pb_entries: pb,
                misses_per_kilo: s.tc_misses_per_kilo(),
                buffer_hits_per_kilo: s.precon_buffer_hits as f64 * 1000.0
                    / s.retired_instructions.max(1) as f64,
            });
        }
    }
    rows
}

/// Renders the sweep as one markdown table per benchmark.
pub fn render(rows: &[Fig5Row]) -> String {
    let mut out = String::new();
    for benchmark in Benchmark::ALL {
        let brows: Vec<&Fig5Row> = rows.iter().filter(|r| r.benchmark == benchmark).collect();
        if brows.is_empty() {
            continue;
        }
        out.push_str(&format!("\n### {benchmark} — TC misses /1000 instr\n\n"));
        let table: Vec<Vec<String>> = brows
            .iter()
            .map(|r| {
                vec![
                    r.tc_entries.to_string(),
                    r.pb_entries.to_string(),
                    r.combined_entries().to_string(),
                    f1(r.misses_per_kilo),
                    f1(r.buffer_hits_per_kilo),
                ]
            })
            .collect();
        out.push_str(&markdown_table(
            &[
                "TC entries",
                "PB entries",
                "combined",
                "misses/1k",
                "PB hits/1k",
            ],
            &table,
        ));
    }
    out
}

/// Paper-shape checks used by the integration tests: returns the
/// miss-rate reduction (in percent) that the largest preconstruction
/// configuration achieves over the equal-trace-cache baseline.
pub fn reduction_percent(rows: &[Fig5Row], benchmark: Benchmark, tc: u32, pb: u32) -> Option<f64> {
    let base = rows
        .iter()
        .find(|r| r.benchmark == benchmark && r.tc_entries == tc && r.pb_entries == 0)?;
    let pre = rows
        .iter()
        .find(|r| r.benchmark == benchmark && r.tc_entries == tc && r.pb_entries == pb)?;
    if base.misses_per_kilo <= 0.0 {
        return None;
    }
    Some((1.0 - pre.misses_per_kilo / base.misses_per_kilo) * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_grid_is_well_formed() {
        let c = configs();
        assert_eq!(c.iter().filter(|(_, pb)| *pb == 0).count(), TC_SIZES.len());
        assert!(c.iter().all(|&(tc, pb)| pb == 0 || pb <= tc));
        // No duplicates.
        let set: std::collections::HashSet<_> = c.iter().collect();
        assert_eq!(set.len(), c.len());
    }

    #[test]
    fn quick_sweep_produces_all_rows() {
        let rows = run(&[Benchmark::Compress], RunParams::quick());
        assert_eq!(rows.len(), configs().len());
        assert!(rows.iter().all(|r| r.misses_per_kilo >= 0.0));
    }

    #[test]
    fn render_contains_benchmark_sections() {
        let rows = run(&[Benchmark::Compress], RunParams::quick());
        let text = render(&rows);
        assert!(text.contains("### compress"));
        assert!(text.contains("misses/1k"));
    }
}
