//! # tpc-experiments — reproducing the paper's evaluation
//!
//! One module per table/figure of *Trace Preconstruction* (Jacobson &
//! Smith, ISCA 2000), each with a `run` function returning structured
//! rows and a binary (`cargo run -p tpc-experiments --bin <name>
//! --release`) that prints them as a markdown table:
//!
//! | paper artifact | module | binary |
//! |---|---|---|
//! | Figure 5 (trace-cache miss rates)        | [`fig5`]      | `fig5` |
//! | Tables 1–3 (I-cache behaviour)           | [`tables`]    | `tables` |
//! | Figure 6 (speedup from preconstruction)  | [`fig6`]      | `fig6` |
//! | Figure 8 (extended pipeline model)       | [`fig8`]      | `fig8` |
//! | design-choice ablations (not in paper)   | [`ablations`] | `ablations` |
//!
//! Absolute numbers differ from the paper (synthetic workloads, see
//! `DESIGN.md` §2); the *shape* — who wins, directions, rough factors
//! — is the reproduction target, recorded in `EXPERIMENTS.md`.
//!
//! The [`coverage`] module (binary `analysis_report`) sits alongside
//! the paper artifacts: it compares the static analyzer's trace
//! enumeration against the dynamic trace working set per benchmark.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod bias_sweep;
pub mod checkpoint;
pub mod coverage;
pub mod cpi_stack;
pub mod degradation;
pub mod fig5;
pub mod fig6;
pub mod fig8;
pub mod par_sweep;
pub mod predictors;
pub mod report;
pub mod runner;
pub mod tables;
pub mod workload_stats;

pub use checkpoint::{
    encode_keyed_words, parse_keyed_words, sweep_fingerprint, Fnv64, SweepCheckpoint,
};
pub use par_sweep::{
    available_cores, contain_cell, effective_jobs, exact_jobs, par_map, par_try_map, run_cells,
    run_cells_checked, run_cells_resumable, run_cells_timed, run_cells_timed_jobs, sweep_grid,
    CellBudget, CellError, SweepCell,
};
pub use runner::{simulate, simulate_many, simulate_source, RunParams};
