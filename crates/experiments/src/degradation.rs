//! Graceful-degradation experiment: fetch performance under
//! increasing fault-injection intensity.
//!
//! The differential oracle proves fault injection never changes what
//! retires; this experiment measures what it *does* change. Each
//! benchmark runs under the standard preconstruction configuration
//! with every fault kind enabled at increasing per-cycle intensities,
//! and the sweep reports the trace-cache hit rate and fetch IPC
//! curves. The expected shape — the paper's hint-hardware argument,
//! quantified — is monotone *graceful* degradation toward the
//! no-preconstruction baseline, never a cliff and never a wedge.
//!
//! The sweep runs hardened: per-cell panic containment and cycle
//! watchdogs ([`crate::par_sweep::run_cells_checked`]), and optional
//! JSONL checkpoint/resume ([`crate::checkpoint`]) for interrupted
//! grids. Rendered output is derived from exact integer counters
//! only (no wall-clock), so a resumed sweep prints byte-identical
//! results.

use crate::checkpoint::{sweep_fingerprint, SweepCheckpoint};
use crate::par_sweep::{
    effective_jobs, par_map, run_cells_checked, run_cells_resumable, CellBudget, CellError,
    SweepCell,
};
use crate::report::{f2, markdown_table};
use crate::runner::RunParams;
use std::path::Path;
use std::sync::Arc;
use tpc_core::FaultPlan;
use tpc_isa::Program;
use tpc_processor::{SimConfig, SimStats};
use tpc_workloads::{Benchmark, WorkloadBuilder};

/// Fault intensities swept, in 1/1000ths per kind per cycle.
pub const INTENSITIES: [u32; 7] = [0, 1, 2, 5, 10, 20, 50];

/// Trace-cache entries of the swept configuration.
pub const TC_ENTRIES: u32 = 128;
/// Preconstruction-buffer entries of the swept configuration.
pub const PB_ENTRIES: u32 = 128;

/// One measured point of the degradation sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegradationRow {
    /// Benchmark measured.
    pub benchmark: Benchmark,
    /// Fault intensity in 1/1000ths per kind per cycle.
    pub per_mille: u32,
    /// The cell's statistics, or why it failed.
    pub result: Result<SimStats, CellError>,
}

/// The configuration a `(benchmark-independent)` intensity point
/// simulates: the standard preconstruction machine with all fault
/// kinds enabled. The plan seed folds in the intensity so adjacent
/// points draw unrelated schedules.
pub fn config_at(per_mille: u32) -> SimConfig {
    SimConfig::with_precon(TC_ENTRIES, PB_ENTRIES)
        .with_faults(FaultPlan::all(0xDE6_0000 + per_mille as u64, per_mille))
}

/// Builds the benchmark × intensity cell grid, benchmark-major
/// (`cells[b * INTENSITIES.len() + i]`), generating each benchmark's
/// program once.
pub fn build_cells(benchmarks: &[Benchmark], params: RunParams) -> Vec<SweepCell> {
    let programs: Vec<Arc<Program>> = par_map(benchmarks, effective_jobs(params.jobs), |&b| {
        Arc::new(WorkloadBuilder::new(b).seed(params.seed).build())
    });
    programs
        .iter()
        .flat_map(|p| {
            INTENSITIES
                .iter()
                .map(|&pm| SweepCell::new(Arc::clone(p), config_at(pm)))
        })
        .collect()
}

/// Runs the degradation sweep, optionally checkpointed to
/// `checkpoint` (resuming any cells already recorded there).
///
/// # Errors
///
/// Only checkpoint *opening* can fail (I/O, or a stale file from a
/// different sweep). Per-cell failures — panics, watchdog timeouts,
/// checkpoint append errors — are carried in the rows.
pub fn run(
    benchmarks: &[Benchmark],
    params: RunParams,
    budget: CellBudget,
    checkpoint: Option<&Path>,
) -> std::io::Result<Vec<DegradationRow>> {
    let cells = build_cells(benchmarks, params);
    let results = match checkpoint {
        Some(path) => {
            let fp = sweep_fingerprint(&params, &cells);
            let (ck, prior) = SweepCheckpoint::open(path, fp, cells.len())?;
            run_cells_resumable(&cells, params, budget, Some(&ck), &prior)
        }
        None => run_cells_checked(&cells, params, budget),
    };
    Ok(benchmarks
        .iter()
        .flat_map(|&benchmark| INTENSITIES.iter().map(move |&pm| (benchmark, pm)))
        .zip(results)
        .map(|((benchmark, per_mille), result)| DegradationRow {
            benchmark,
            per_mille,
            result,
        })
        .collect())
}

/// Renders the sweep as one markdown table per benchmark: hit rate,
/// fetch IPC, and injection counts against intensity. Every column
/// is derived from exact integer counters, so the rendering is
/// byte-identical across resumed and uninterrupted runs.
pub fn render(rows: &[DegradationRow]) -> String {
    let mut out = String::new();
    for benchmark in Benchmark::ALL {
        let brows: Vec<&DegradationRow> =
            rows.iter().filter(|r| r.benchmark == benchmark).collect();
        if brows.is_empty() {
            continue;
        }
        out.push_str(&format!(
            "\n### {benchmark} — degradation under fault injection \
             (TC {TC_ENTRIES} + PB {PB_ENTRIES})\n\n"
        ));
        let table: Vec<Vec<String>> = brows
            .iter()
            .map(|r| {
                let mut row = vec![format!("{}", r.per_mille)];
                match &r.result {
                    Ok(s) => row.extend([
                        format!("{}", s.tc_hit_permille()),
                        f2(s.ipc()),
                        format!("{}", s.faults.injected),
                        format!("{}", s.faults.landed),
                    ]),
                    Err(e) => {
                        row.extend(["-".into(), "-".into(), "-".into(), format!("FAILED: {e}")])
                    }
                }
                row
            })
            .collect();
        out.push_str(&markdown_table(
            &["faults ‰", "TC hit ‰", "IPC", "injected", "landed"],
            &table,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_params() -> RunParams {
        RunParams {
            warmup: 4_000,
            measure: 8_000,
            seed: 1,
            jobs: 0,
        }
    }

    #[test]
    fn sweep_produces_full_grid() {
        let rows = run(
            &[Benchmark::Compress],
            tiny_params(),
            CellBudget::default(),
            None,
        )
        .unwrap();
        assert_eq!(rows.len(), INTENSITIES.len());
        assert!(rows.iter().all(|r| r.result.is_ok()));
        // Zero intensity injects nothing; the top intensity injects.
        let zero = rows[0].result.as_ref().unwrap();
        assert_eq!(zero.faults.injected, 0);
        let top = rows.last().unwrap().result.as_ref().unwrap();
        assert!(top.faults.injected > 0);
    }

    #[test]
    fn heavy_faults_hurt_but_do_not_wedge() {
        let rows = run(
            &[Benchmark::Gcc],
            tiny_params(),
            CellBudget::default(),
            None,
        )
        .unwrap();
        let zero = rows[0].result.as_ref().unwrap();
        let top = rows.last().unwrap().result.as_ref().unwrap();
        assert!(top.retired_instructions >= 8_000, "no wedge");
        // Degradation direction: heavy faulting cannot *help* the
        // trace supply.
        assert!(top.tc_hit_permille() <= zero.tc_hit_permille() + 5);
    }

    #[test]
    fn render_is_stats_only() {
        let rows = run(
            &[Benchmark::Compress],
            tiny_params(),
            CellBudget::default(),
            None,
        )
        .unwrap();
        let a = render(&rows);
        let b = render(&rows);
        assert_eq!(a, b);
        assert!(a.contains("### compress"));
        assert!(a.contains("faults ‰"));
    }

    #[test]
    fn checkpointed_run_resumes_byte_identical() {
        let dir = std::env::temp_dir().join("tpc-degradation-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("resume-{}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let params = tiny_params();
        let budget = CellBudget::default();
        let benchmarks = [Benchmark::Compress];

        // Uninterrupted reference.
        let reference = render(&run(&benchmarks, params, budget, None).unwrap());

        // First pass writes the checkpoint...
        let full = run(&benchmarks, params, budget, Some(&path)).unwrap();
        assert_eq!(render(&full), reference);
        // ...interrupt it by dropping the last few recorded lines...
        let text = std::fs::read_to_string(&path).unwrap();
        let keep: Vec<&str> = text.lines().take(4).collect(); // header + 3 cells
        std::fs::write(&path, format!("{}\n", keep.join("\n"))).unwrap();
        // ...and resume: remaining cells re-run, output identical.
        let resumed = run(&benchmarks, params, budget, Some(&path)).unwrap();
        assert_eq!(render(&resumed), reference, "resume is byte-identical");
        let _ = std::fs::remove_file(&path);
    }
}
