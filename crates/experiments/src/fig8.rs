//! Figure 8: the extended pipeline model — preconstruction and
//! preprocessing, separately and combined.
//!
//! Four bars per benchmark, as in the paper:
//!
//! 1. preconstruction alone — 256-entry trace cache baseline versus
//!    128-entry trace cache + 128-entry preconstruction buffer;
//! 2. preprocessing alone — the same baseline with the preprocessing
//!    pipeline enabled;
//! 3. both combined;
//! 4. (reference) the sum of the individual speedups.
//!
//! The paper's headline: the combination (12–20 %) exceeds the sum of
//! the parts — raising backend throughput (preprocessing) makes the
//! frontend the bottleneck, which preconstruction then relieves.

use crate::par_sweep::sweep_grid;
use crate::report::{markdown_table, pct};
use crate::runner::RunParams;
use tpc_processor::SimConfig;
use tpc_workloads::Benchmark;

/// Speedups for one benchmark.
#[derive(Debug, Clone)]
pub struct Fig8Row {
    /// Benchmark measured.
    pub benchmark: Benchmark,
    /// Speedup from preconstruction alone.
    pub precon: f64,
    /// Speedup from preprocessing alone.
    pub preprocess: f64,
    /// Speedup from both.
    pub combined: f64,
}

impl Fig8Row {
    /// The "sum of parts" reference bar: 1 + (precon−1) +
    /// (preprocess−1).
    pub fn sum_of_parts(&self) -> f64 {
        1.0 + (self.precon - 1.0) + (self.preprocess - 1.0)
    }

    /// Whether the combination is super-additive (the paper's claim).
    pub fn is_synergistic(&self) -> bool {
        self.combined > self.sum_of_parts()
    }
}

/// Baseline trace-cache entries.
pub const BASE_TC: u32 = 256;
/// Preconstruction split (half/half of the baseline area).
pub const SPLIT: u32 = 128;

/// Runs the four configurations per benchmark.
pub fn run(benchmarks: &[Benchmark], params: RunParams) -> Vec<Fig8Row> {
    let configs = [
        SimConfig::baseline(BASE_TC),
        SimConfig::with_precon(SPLIT, SPLIT),
        SimConfig::baseline(BASE_TC).with_preprocess(),
        SimConfig::with_precon(SPLIT, SPLIT).with_preprocess(),
    ];
    let grid = sweep_grid(benchmarks, &configs, params);
    benchmarks
        .iter()
        .zip(grid)
        .map(|(&benchmark, stats)| {
            let base = stats[0].ipc();
            Fig8Row {
                benchmark,
                precon: stats[1].ipc() / base,
                preprocess: stats[2].ipc() / base,
                combined: stats[3].ipc() / base,
            }
        })
        .collect()
}

/// Renders the four bars per benchmark.
pub fn render(rows: &[Fig8Row]) -> String {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.benchmark.to_string(),
                pct(r.precon),
                pct(r.preprocess),
                pct(r.combined),
                pct(r.sum_of_parts()),
                if r.is_synergistic() { "yes" } else { "no" }.to_string(),
            ]
        })
        .collect();
    let mut out = String::from("\n### Figure 8 — extended pipeline model (base: 256-entry TC)\n\n");
    out.push_str(&markdown_table(
        &[
            "benchmark",
            "precon",
            "preprocess",
            "combined",
            "sum of parts",
            "combined > sum",
        ],
        &table,
    ));
    if !rows.is_empty() {
        let avg = rows.iter().map(|r| r.combined).sum::<f64>() / rows.len() as f64;
        out.push_str(&format!("\naverage combined speedup: {}\n", pct(avg)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn computes_all_bars() {
        let rows = run(&[Benchmark::Compress], RunParams::quick());
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert!(r.precon > 0.5 && r.precon < 2.0);
        assert!(r.preprocess > 0.5 && r.preprocess < 2.0);
        assert!(r.combined > 0.5 && r.combined < 2.5);
    }

    #[test]
    fn sum_of_parts_arithmetic() {
        let r = Fig8Row {
            benchmark: Benchmark::Gcc,
            precon: 1.05,
            preprocess: 1.10,
            combined: 1.18,
        };
        assert!((r.sum_of_parts() - 1.15).abs() < 1e-9);
        assert!(r.is_synergistic());
    }

    #[test]
    fn render_reports_average() {
        let rows = run(&[Benchmark::Compress], RunParams::quick());
        let text = render(&rows);
        assert!(text.contains("average combined speedup"));
    }
}
