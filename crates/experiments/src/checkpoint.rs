//! JSONL checkpoint/resume for interrupted sweeps.
//!
//! A checkpoint file is a header line identifying the sweep followed
//! by one line per completed cell:
//!
//! ```text
//! {"fingerprint":1234567890,"cells":28}
//! {"cell":3,"words":[500123,500000,...]}
//! {"cell":0,"words":[...]}
//! ```
//!
//! * The **fingerprint** hashes the run parameters and every cell's
//!   configuration, so a stale file from a different sweep is
//!   rejected instead of silently poisoning results.
//! * Cell lines carry the [`SimStats::to_words`] integer codec — no
//!   floats, no serialization dependency, bit-exact round-trip.
//! * Lines are appended (under a mutex, one `write_all` per line) as
//!   workers finish, in completion order; resumption only cares
//!   about the `cell` index, so the order is irrelevant.
//! * A torn final line from a killed process doesn't end with `}`
//!   and/or fails to decode; it is ignored and that cell re-runs.
//!
//! Simulations are deterministic, so a resumed sweep's final output
//! is byte-identical to an uninterrupted one — `scripts/verify.sh`
//! checks exactly that by killing and resuming a degradation sweep.

use crate::par_sweep::SweepCell;
use crate::runner::RunParams;
use std::fs::{File, OpenOptions};
use std::io::{self, BufRead, BufReader, Write};
use std::path::Path;
use std::sync::Mutex;
use tpc_processor::SimStats;

/// 64-bit FNV-1a.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// Fingerprints a sweep: the run window and seed plus every cell's
/// configuration (via its `Debug` rendering, which covers each field)
/// and the cell count. Two sweeps get the same fingerprint exactly
/// when their checkpoints are interchangeable.
///
/// `jobs` is deliberately excluded — thread count never changes
/// results, so a sweep may be resumed with a different `--jobs`.
pub fn sweep_fingerprint(params: &RunParams, cells: &[SweepCell]) -> u64 {
    let mut h = Fnv::new();
    h.write(&params.warmup.to_le_bytes());
    h.write(&params.measure.to_le_bytes());
    h.write(&params.seed.to_le_bytes());
    h.write(&(cells.len() as u64).to_le_bytes());
    for cell in cells {
        h.write(format!("{:?}", cell.config).as_bytes());
    }
    h.0
}

/// An open checkpoint file accepting streaming appends from sweep
/// workers (`&self` — the file handle is behind a mutex).
#[derive(Debug)]
pub struct SweepCheckpoint {
    file: Mutex<File>,
}

impl SweepCheckpoint {
    /// Opens `path` for the sweep identified by `fingerprint` over
    /// `cell_count` cells, creating it (with its header) if absent.
    /// Returns the checkpoint plus any previously completed cells'
    /// statistics, indexed by cell.
    ///
    /// # Errors
    ///
    /// I/O errors, or [`io::ErrorKind::InvalidData`] when the file
    /// exists but belongs to a different sweep (fingerprint or cell
    /// count mismatch) — delete the stale file to proceed.
    pub fn open(
        path: &Path,
        fingerprint: u64,
        cell_count: usize,
    ) -> io::Result<(SweepCheckpoint, Vec<Option<SimStats>>)> {
        let mut prior: Vec<Option<SimStats>> = vec![None; cell_count];
        if path.exists() {
            let mut lines = BufReader::new(File::open(path)?).lines();
            if let Some(header) = lines.next().transpose()? {
                let (fp, cells) = parse_header(&header)
                    .ok_or_else(|| invalid(format!("malformed checkpoint header: {header:?}")))?;
                if fp != fingerprint || cells != cell_count {
                    return Err(invalid(format!(
                        "checkpoint belongs to a different sweep \
                         (file: fingerprint {fp:#018x} over {cells} cells; \
                         this sweep: {fingerprint:#018x} over {cell_count} cells) \
                         — delete it to start over"
                    )));
                }
                for line in lines {
                    // A torn trailing line (killed writer) fails to
                    // parse; skip it and let that cell re-run.
                    if let Some((i, stats)) = parse_cell(&line?) {
                        if i < cell_count {
                            prior[i] = Some(stats);
                        }
                    }
                }
            }
        }
        let mut file = OpenOptions::new().create(true).append(true).open(path)?;
        if file.metadata()?.len() == 0 {
            writeln!(
                file,
                "{{\"fingerprint\":{fingerprint},\"cells\":{cell_count}}}"
            )?;
            file.flush()?;
        }
        Ok((
            SweepCheckpoint {
                file: Mutex::new(file),
            },
            prior,
        ))
    }

    /// Appends one completed cell. Each line is a single `write_all`,
    /// so concurrent workers' lines never interleave.
    pub fn record(&self, cell: usize, stats: &SimStats) -> io::Result<()> {
        let words: Vec<String> = stats.to_words().iter().map(u64::to_string).collect();
        let line = format!("{{\"cell\":{cell},\"words\":[{}]}}\n", words.join(","));
        let mut file = self
            .file
            .lock()
            .map_err(|_| io::Error::other("checkpoint mutex poisoned"))?;
        file.write_all(line.as_bytes())?;
        file.flush()
    }
}

fn invalid(message: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message)
}

/// Extracts the run of digits following `"key":` in a JSON line.
fn field_u64(line: &str, key: &str) -> Option<u64> {
    let at = line.find(key)? + key.len();
    let rest = &line[at..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn parse_header(line: &str) -> Option<(u64, usize)> {
    Some((
        field_u64(line, "\"fingerprint\":")?,
        field_u64(line, "\"cells\":")? as usize,
    ))
}

fn parse_cell(line: &str) -> Option<(usize, SimStats)> {
    if !line.ends_with('}') {
        return None; // torn write
    }
    let cell = field_u64(line, "\"cell\":")? as usize;
    let open = line.find("\"words\":[")? + "\"words\":[".len();
    let close = line[open..].find(']')? + open;
    let words: Option<Vec<u64>> = line[open..close]
        .split(',')
        .map(|w| w.trim().parse().ok())
        .collect();
    Some((cell, SimStats::from_words(&words?)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tpc_processor::SimConfig;
    use tpc_workloads::{Benchmark, WorkloadBuilder};

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("tpc-checkpoint-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    fn sample_stats(x: u64) -> SimStats {
        let mut s = SimStats {
            cycles: 1000 + x,
            retired_instructions: 500 + x,
            ..SimStats::default()
        };
        s.faults.landed_by_kind[3] = x;
        s
    }

    #[test]
    fn record_and_reload_round_trips() {
        let path = temp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        let (ck, prior) = SweepCheckpoint::open(&path, 0xABCD, 4).unwrap();
        assert!(prior.iter().all(Option::is_none));
        ck.record(2, &sample_stats(7)).unwrap();
        ck.record(0, &sample_stats(9)).unwrap();
        drop(ck);
        let (_, prior) = SweepCheckpoint::open(&path, 0xABCD, 4).unwrap();
        assert_eq!(prior[0], Some(sample_stats(9)));
        assert!(prior[1].is_none());
        assert_eq!(prior[2], Some(sample_stats(7)));
        assert!(prior[3].is_none());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn foreign_checkpoint_is_rejected() {
        let path = temp_path("foreign");
        let _ = std::fs::remove_file(&path);
        let (ck, _) = SweepCheckpoint::open(&path, 1, 4).unwrap();
        drop(ck);
        let err = SweepCheckpoint::open(&path, 2, 4).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let err = SweepCheckpoint::open(&path, 1, 5).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_trailing_line_is_ignored() {
        let path = temp_path("torn");
        let _ = std::fs::remove_file(&path);
        let (ck, _) = SweepCheckpoint::open(&path, 3, 4).unwrap();
        ck.record(1, &sample_stats(1)).unwrap();
        drop(ck);
        // Simulate a writer killed mid-line.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"cell\":2,\"words\":[55,66").unwrap();
        drop(f);
        let (_, prior) = SweepCheckpoint::open(&path, 3, 4).unwrap();
        assert_eq!(prior[1], Some(sample_stats(1)));
        assert!(prior[2].is_none(), "torn line dropped, cell will re-run");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fingerprint_tracks_configs_and_params() {
        let program = Arc::new(WorkloadBuilder::new(Benchmark::Compress).seed(1).build());
        let cells = vec![crate::par_sweep::SweepCell::new(
            Arc::clone(&program),
            SimConfig::baseline(64),
        )];
        let params = RunParams::quick();
        let a = sweep_fingerprint(&params, &cells);
        assert_eq!(a, sweep_fingerprint(&params, &cells), "deterministic");
        let mut other_params = params;
        other_params.measure += 1;
        assert_ne!(a, sweep_fingerprint(&other_params, &cells));
        let other_cells = vec![crate::par_sweep::SweepCell::new(
            program,
            SimConfig::baseline(128),
        )];
        assert_ne!(a, sweep_fingerprint(&params, &other_cells));
        // Thread count is excluded: resuming with different --jobs
        // is allowed.
        let mut jobs_params = params;
        jobs_params.jobs = 17;
        assert_eq!(a, sweep_fingerprint(&jobs_params, &cells));
    }
}
