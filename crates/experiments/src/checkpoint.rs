//! JSONL checkpoint/resume for interrupted sweeps.
//!
//! A checkpoint file is a header line identifying the sweep followed
//! by one line per completed cell:
//!
//! ```text
//! {"fingerprint":1234567890,"cells":28}
//! {"cell":3,"words":[500123,500000,...]}
//! {"cell":0,"words":[...]}
//! ```
//!
//! * The **fingerprint** hashes the run parameters and every cell's
//!   configuration, so a stale file from a different sweep is
//!   rejected instead of silently poisoning results.
//! * Cell lines carry the [`SimStats::to_words`] integer codec — no
//!   floats, no serialization dependency, bit-exact round-trip.
//! * Lines are appended (under a mutex, one `write_all` per line) as
//!   workers finish, in completion order; resumption only cares
//!   about the `cell` index, so the order is irrelevant.
//! * A torn final line from a killed process doesn't end with `}`
//!   and/or fails to decode; it is ignored and that cell re-runs.
//!
//! Simulations are deterministic, so a resumed sweep's final output
//! is byte-identical to an uninterrupted one — `scripts/verify.sh`
//! checks exactly that by killing and resuming a degradation sweep.

use crate::par_sweep::SweepCell;
use crate::runner::RunParams;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::Path;
use std::sync::Mutex;
use tpc_processor::SimStats;

/// Streaming 64-bit FNV-1a hasher — the repo's one content hash,
/// shared by sweep fingerprints, the `tpc-service` per-cell result
/// cache keys, and result digests. Stable across runs and platforms
/// (it is a pure byte fold, no randomized state).
#[derive(Debug, Clone)]
pub struct Fnv64(u64);

impl Fnv64 {
    /// A hasher at the standard FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }

    /// Folds `bytes` into the hash.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

/// Fingerprints a sweep: the run window and seed plus every cell's
/// frontend identifier and configuration (via its `Debug` rendering,
/// which covers each field) and the cell count. Two sweeps get the
/// same fingerprint exactly when their checkpoints are
/// interchangeable.
///
/// `jobs` is deliberately excluded — thread count never changes
/// results, so a sweep may be resumed with a different `--jobs`.
pub fn sweep_fingerprint(params: &RunParams, cells: &[SweepCell]) -> u64 {
    let mut h = Fnv64::new();
    h.write(&params.warmup.to_le_bytes());
    h.write(&params.measure.to_le_bytes());
    h.write(&params.seed.to_le_bytes());
    h.write(&(cells.len() as u64).to_le_bytes());
    for cell in cells {
        h.write(cell.frontend.as_bytes());
        h.write(b"\0");
        h.write(format!("{:?}", cell.config).as_bytes());
    }
    h.finish()
}

/// An open checkpoint file accepting streaming appends from sweep
/// workers (`&self` — the file handle is behind a mutex).
#[derive(Debug)]
pub struct SweepCheckpoint {
    file: Mutex<File>,
}

impl SweepCheckpoint {
    /// Opens `path` for the sweep identified by `fingerprint` over
    /// `cell_count` cells, creating it (with its header) if absent.
    /// Returns the checkpoint plus any previously completed cells'
    /// statistics, indexed by cell.
    ///
    /// # Errors
    ///
    /// I/O errors, or [`io::ErrorKind::InvalidData`] when the file
    /// exists but belongs to a different sweep (fingerprint or cell
    /// count mismatch) — delete the stale file to proceed.
    pub fn open(
        path: &Path,
        fingerprint: u64,
        cell_count: usize,
    ) -> io::Result<(SweepCheckpoint, Vec<Option<SimStats>>)> {
        let mut prior: Vec<Option<SimStats>> = vec![None; cell_count];
        let mut torn_tail = false;
        if path.exists() {
            // Checkpoint files are small (one short line per cell),
            // so read them whole: this also tells us whether the file
            // ends mid-line — a writer killed between `write_all` and
            // completing the line — which streaming `lines()` hides.
            let contents = String::from_utf8_lossy(&std::fs::read(path)?).into_owned();
            let mut lines = contents.lines();
            if let Some(header) = lines.next() {
                let (fp, cells) = parse_header(header)
                    .ok_or_else(|| invalid(format!("malformed checkpoint header: {header:?}")))?;
                if fp != fingerprint || cells != cell_count {
                    return Err(invalid(format!(
                        "checkpoint belongs to a different sweep \
                         (file: fingerprint {fp:#018x} over {cells} cells; \
                         this sweep: {fingerprint:#018x} over {cell_count} cells) \
                         — delete it to start over"
                    )));
                }
                for line in lines {
                    // A torn line (killed writer) fails to parse;
                    // skip it and let that cell re-run. Duplicate
                    // records for one cell are last-wins: a later
                    // line overwrites the earlier entry.
                    if let Some((i, stats)) = parse_cell(line) {
                        if i < cell_count {
                            // bound: i < cell_count checked above
                            prior[i] = Some(stats);
                        }
                    }
                }
                torn_tail = !contents.ends_with('\n');
            }
        }
        let mut file = OpenOptions::new().create(true).append(true).open(path)?;
        if file.metadata()?.len() == 0 {
            writeln!(
                file,
                "{{\"fingerprint\":{fingerprint},\"cells\":{cell_count}}}"
            )?;
            file.flush()?;
        } else if torn_tail {
            // Terminate the torn tail so the next record starts on a
            // fresh line instead of being glued onto the fragment
            // (which would corrupt *both* records).
            file.write_all(b"\n")?;
            file.flush()?;
        }
        Ok((
            SweepCheckpoint {
                file: Mutex::new(file),
            },
            prior,
        ))
    }

    /// Appends one completed cell. Each line is a single `write_all`,
    /// so concurrent workers' lines never interleave.
    ///
    /// A failed write may leave a torn partial line (e.g. a full
    /// disk); the tail is then best-effort newline-terminated so a
    /// *subsequent* successful record is not glued onto the fragment
    /// and lost with it.
    pub fn record(&self, cell: usize, stats: &SimStats) -> io::Result<()> {
        let line = encode_keyed_words("cell", cell as u64, stats);
        let mut file = self
            .file
            .lock()
            .map_err(|_| io::Error::other("checkpoint mutex poisoned"))?;
        if let Err(e) = file.write_all(line.as_bytes()) {
            let _ = file.write_all(b"\n");
            let _ = file.flush();
            return Err(e);
        }
        file.flush()
    }
}

/// Encodes a `{"<key>":<id>,"words":[...]}` JSONL record carrying the
/// [`SimStats::to_words`] integer codec, newline-terminated — the
/// line format shared by sweep checkpoints (`key = "cell"`, id =
/// cell index) and the `tpc-service` result cache (`key = "fp"`, id =
/// cell fingerprint).
pub fn encode_keyed_words(key: &str, id: u64, stats: &SimStats) -> String {
    let words: Vec<String> = stats.to_words().iter().map(u64::to_string).collect();
    format!("{{\"{key}\":{id},\"words\":[{}]}}\n", words.join(","))
}

/// Parses a line produced by [`encode_keyed_words`]. Returns `None`
/// for torn or corrupt lines: a missing closing brace (killed
/// writer), a truncated or over-long words array, or non-numeric
/// fields — the caller skips such lines and the cell re-runs.
pub fn parse_keyed_words(line: &str, key: &str) -> Option<(u64, SimStats)> {
    if !line.ends_with('}') {
        return None; // torn write
    }
    let id = field_u64(line, &format!("\"{key}\":"))?;
    let open = line.find("\"words\":[")? + "\"words\":[".len();
    // bound: open <= len, find() returned Some
    let close = line[open..].find(']')? + open;
    // bound: open <= close <= len from the finds above
    let words: Option<Vec<u64>> = line[open..close]
        .split(',')
        .map(|w| w.trim().parse().ok())
        .collect();
    Some((id, SimStats::from_words(&words?)?))
}

fn invalid(message: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message)
}

/// Extracts the run of digits following `"key":` in a JSON line.
fn field_u64(line: &str, key: &str) -> Option<u64> {
    let at = line.find(key)? + key.len();
    // bound: find() guarantees at <= len
    let rest = &line[at..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    // bound: end <= rest.len() by unwrap_or
    rest[..end].parse().ok()
}

fn parse_header(line: &str) -> Option<(u64, usize)> {
    Some((
        field_u64(line, "\"fingerprint\":")?,
        field_u64(line, "\"cells\":")? as usize,
    ))
}

fn parse_cell(line: &str) -> Option<(usize, SimStats)> {
    parse_keyed_words(line, "cell").map(|(i, stats)| (i as usize, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tpc_processor::SimConfig;
    use tpc_workloads::{Benchmark, WorkloadBuilder};

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("tpc-checkpoint-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    fn sample_stats(x: u64) -> SimStats {
        let mut s = SimStats {
            cycles: 1000 + x,
            retired_instructions: 500 + x,
            ..SimStats::default()
        };
        s.faults.landed_by_kind[3] = x;
        s
    }

    #[test]
    fn record_and_reload_round_trips() {
        let path = temp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        let (ck, prior) = SweepCheckpoint::open(&path, 0xABCD, 4).unwrap();
        assert!(prior.iter().all(Option::is_none));
        ck.record(2, &sample_stats(7)).unwrap();
        ck.record(0, &sample_stats(9)).unwrap();
        drop(ck);
        let (_, prior) = SweepCheckpoint::open(&path, 0xABCD, 4).unwrap();
        assert_eq!(prior[0], Some(sample_stats(9)));
        assert!(prior[1].is_none());
        assert_eq!(prior[2], Some(sample_stats(7)));
        assert!(prior[3].is_none());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn foreign_checkpoint_is_rejected() {
        let path = temp_path("foreign");
        let _ = std::fs::remove_file(&path);
        let (ck, _) = SweepCheckpoint::open(&path, 1, 4).unwrap();
        drop(ck);
        let err = SweepCheckpoint::open(&path, 2, 4).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let err = SweepCheckpoint::open(&path, 1, 5).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_trailing_line_is_ignored() {
        let path = temp_path("torn");
        let _ = std::fs::remove_file(&path);
        let (ck, _) = SweepCheckpoint::open(&path, 3, 4).unwrap();
        ck.record(1, &sample_stats(1)).unwrap();
        drop(ck);
        // Simulate a writer killed mid-line.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"cell\":2,\"words\":[55,66").unwrap();
        drop(f);
        let (_, prior) = SweepCheckpoint::open(&path, 3, 4).unwrap();
        assert_eq!(prior[1], Some(sample_stats(1)));
        assert!(prior[2].is_none(), "torn line dropped, cell will re-run");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn duplicate_cell_records_are_last_wins() {
        let path = temp_path("dup");
        let _ = std::fs::remove_file(&path);
        let (ck, _) = SweepCheckpoint::open(&path, 11, 3).unwrap();
        ck.record(1, &sample_stats(1)).unwrap();
        ck.record(1, &sample_stats(2)).unwrap();
        ck.record(0, &sample_stats(5)).unwrap();
        ck.record(1, &sample_stats(3)).unwrap();
        drop(ck);
        let (_, prior) = SweepCheckpoint::open(&path, 11, 3).unwrap();
        assert_eq!(prior[0], Some(sample_stats(5)));
        assert_eq!(prior[1], Some(sample_stats(3)), "latest record wins");
        assert!(prior[2].is_none());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn header_only_file_resumes_from_scratch() {
        let path = temp_path("header-only");
        let _ = std::fs::remove_file(&path);
        let (ck, _) = SweepCheckpoint::open(&path, 21, 2).unwrap();
        drop(ck);
        let (ck, prior) = SweepCheckpoint::open(&path, 21, 2).unwrap();
        assert!(prior.iter().all(Option::is_none));
        // And the reopened file still accepts records.
        ck.record(0, &sample_stats(4)).unwrap();
        drop(ck);
        let (_, prior) = SweepCheckpoint::open(&path, 21, 2).unwrap();
        assert_eq!(prior[0], Some(sample_stats(4)));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_line_mid_file_spares_later_records() {
        let path = temp_path("torn-mid");
        let _ = std::fs::remove_file(&path);
        let (ck, _) = SweepCheckpoint::open(&path, 31, 4).unwrap();
        ck.record(0, &sample_stats(1)).unwrap();
        drop(ck);
        // A torn-but-newline-terminated fragment *mid-file* (e.g. a
        // partial write the kernel padded on crash), followed by more
        // good records.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"cell\":2,\"words\":[55,66\n").unwrap();
        drop(f);
        let (ck, prior) = SweepCheckpoint::open(&path, 31, 4).unwrap();
        assert_eq!(prior[0], Some(sample_stats(1)));
        assert!(prior[2].is_none(), "torn mid-file line dropped");
        ck.record(3, &sample_stats(9)).unwrap();
        drop(ck);
        let (_, prior) = SweepCheckpoint::open(&path, 31, 4).unwrap();
        assert_eq!(prior[0], Some(sample_stats(1)));
        assert!(prior[2].is_none());
        assert_eq!(prior[3], Some(sample_stats(9)), "later records survive");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn record_after_torn_tail_is_not_lost() {
        // The fsync-failure shape: a writer died mid-line with no
        // trailing newline, and the sweep is then resumed. Before the
        // repair in `open`, the resumed process's first record was
        // appended onto the fragment, corrupting *both* records; now
        // the tail is newline-terminated on open and the new record
        // survives.
        let path = temp_path("torn-tail-append");
        let _ = std::fs::remove_file(&path);
        let (ck, _) = SweepCheckpoint::open(&path, 41, 4).unwrap();
        ck.record(0, &sample_stats(1)).unwrap();
        drop(ck);
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"cell\":1,\"words\":[12,34").unwrap(); // no newline
        drop(f);
        let (ck, prior) = SweepCheckpoint::open(&path, 41, 4).unwrap();
        assert_eq!(prior[0], Some(sample_stats(1)));
        assert!(prior[1].is_none(), "torn tail dropped, cell 1 re-runs");
        ck.record(2, &sample_stats(7)).unwrap();
        drop(ck);
        let (_, prior) = SweepCheckpoint::open(&path, 41, 4).unwrap();
        assert_eq!(prior[0], Some(sample_stats(1)));
        assert!(prior[1].is_none());
        assert_eq!(
            prior[2],
            Some(sample_stats(7)),
            "record appended after a torn tail must not be glued onto the fragment"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn glued_record_after_torn_fragment_is_dropped_not_misparsed() {
        // The pre-repair failure mode, pinned at the parser level: a
        // complete record glued onto a torn fragment on one line must
        // be rejected wholesale — never parsed into a wrong (cell,
        // stats) association.
        let good = sample_stats(3);
        let words: Vec<String> = good.to_words().iter().map(u64::to_string).collect();
        let glued = format!(
            "{{\"cell\":1,\"words\":[12,34{{\"cell\":2,\"words\":[{}]}}",
            words.join(",")
        );
        assert_eq!(parse_keyed_words(&glued, "cell"), None);
        // Whereas a clean encode round-trips.
        let line = encode_keyed_words("cell", 2, &good);
        assert_eq!(parse_keyed_words(line.trim_end(), "cell"), Some((2, good)));
    }

    #[test]
    fn bad_fingerprint_maps_to_permanent_cell_error() {
        // A checkpoint from a different sweep is a deployment error,
        // not a transient fault: the supervisor must classify it as
        // CellError::Checkpoint and *not* retry the cell.
        let path = temp_path("bad-fp");
        let _ = std::fs::remove_file(&path);
        let (ck, _) = SweepCheckpoint::open(&path, 7, 2).unwrap();
        drop(ck);
        let err = SweepCheckpoint::open(&path, 8, 2).unwrap_err();
        let cell_err = crate::par_sweep::CellError::Checkpoint {
            message: err.to_string(),
        };
        assert!(!cell_err.is_retryable());
        assert_eq!(cell_err.kind(), "checkpoint");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fnv64_is_stable_and_streaming() {
        let mut a = Fnv64::new();
        a.write(b"hello world");
        let mut b = Fnv64::new();
        b.write(b"hello ");
        b.write(b"world");
        assert_eq!(a.finish(), b.finish(), "chunking never changes the hash");
        // Known FNV-1a vector: the empty input is the offset basis.
        assert_eq!(Fnv64::new().finish(), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn fingerprint_tracks_configs_and_params() {
        let program = Arc::new(WorkloadBuilder::new(Benchmark::Compress).seed(1).build());
        let cells = vec![crate::par_sweep::SweepCell::new(
            Arc::clone(&program),
            SimConfig::baseline(64),
        )];
        let params = RunParams::quick();
        let a = sweep_fingerprint(&params, &cells);
        assert_eq!(a, sweep_fingerprint(&params, &cells), "deterministic");
        let mut other_params = params;
        other_params.measure += 1;
        assert_ne!(a, sweep_fingerprint(&other_params, &cells));
        let other_cells = vec![crate::par_sweep::SweepCell::new(
            program,
            SimConfig::baseline(128),
        )];
        assert_ne!(a, sweep_fingerprint(&params, &other_cells));
        // A different frontend over the same program and config is a
        // different sweep: its checkpoints are not interchangeable.
        let asm_cells = vec![crate::par_sweep::SweepCell::tagged(
            Arc::clone(&cells[0].program),
            SimConfig::baseline(64),
            "asm",
        )];
        assert_ne!(a, sweep_fingerprint(&params, &asm_cells));
        // Thread count is excluded: resuming with different --jobs
        // is allowed.
        let mut jobs_params = params;
        jobs_params.jobs = 17;
        assert_eq!(a, sweep_fingerprint(&jobs_params, &cells));
    }
}
