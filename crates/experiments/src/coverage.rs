//! Static-vs-dynamic coverage: how much of each benchmark's dynamic
//! trace working set the static analyzer can enumerate, and how much
//! of it preconstruction actually builds.
//!
//! For every benchmark the report measures four quantities side by
//! side:
//!
//! - **static code size** — instructions and basic blocks in the
//!   generated program, from the [`tpc_analysis::Cfg`];
//! - **static trace count** — distinct trace keys reachable by the
//!   constructor rules when every branch follows its *static* bias
//!   ([`tpc_analysis::enumerate_biased`]), capped at
//!   [`MAX_STATIC_TRACES`];
//! - **dynamic trace working set** — distinct trace keys observed on
//!   the correct path over the measurement window, from
//!   [`tpc_processor::TraceStream`];
//! - **preconstruction coverage** — the share of that dynamic working
//!   set a preconstructing frontend ever built (engine key tracking
//!   via `was_ever_built`), alongside the share the biased static
//!   enumeration predicted (`enumerable`).
//!
//! The gap between the two shares is the paper's motivation made
//! quantitative: static enumeration over-approximates what a
//! profile-blind compiler could pre-pack, while the runtime
//! preconstructor only builds what the lattice of region start points
//! reaches during execution.

use std::collections::BTreeSet;

use crate::par_sweep::{effective_jobs, par_map};
use crate::report::{f1, markdown_table};
use crate::RunParams;
use tpc_analysis::{enumerate_biased, Cfg};
use tpc_core::TraceKey;
use tpc_isa::OpClass;
use tpc_processor::{SimConfig, Simulator, TraceStream};
use tpc_workloads::{Benchmark, WorkloadBuilder};

/// Cap on the biased static enumeration, matching the
/// `analyze_program` binary. Counts at the cap are lower bounds and
/// flagged as truncated.
pub const MAX_STATIC_TRACES: usize = 200_000;

/// One benchmark's static-vs-dynamic measurements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoverageRow {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// Static code size in instructions.
    pub instructions: usize,
    /// Total basic blocks in the CFG.
    pub blocks: usize,
    /// Blocks reachable from the entry point and function entries.
    pub reachable_blocks: usize,
    /// Natural loops (distinct back-edge heads).
    pub natural_loops: usize,
    /// Static region start points: one call-return point per call
    /// plus one loop-exit point per backward branch.
    pub start_points: usize,
    /// Distinct trace keys in the biased static enumeration.
    pub static_traces: usize,
    /// Whether [`MAX_STATIC_TRACES`] cut the enumeration short.
    pub static_truncated: bool,
    /// Distinct trace keys on the correct path over the window.
    pub dynamic_traces: usize,
    /// Per-mille share of the dynamic working set present in the
    /// biased static enumeration.
    pub enumerable_permille: u64,
    /// Per-mille share of the dynamic working set the preconstruction
    /// engine ever built.
    pub preconstructed_permille: u64,
}

/// Measures every benchmark in `benchmarks`, in input order, using up
/// to `params.jobs` worker threads. Output is deterministic and
/// independent of the job count.
pub fn run(benchmarks: &[Benchmark], params: RunParams) -> Vec<CoverageRow> {
    let jobs = effective_jobs(params.jobs);
    par_map(benchmarks, jobs, |&b| measure(b, params))
}

fn permille(part: usize, whole: usize) -> u64 {
    (part as u64 * 1000) / (whole.max(1) as u64)
}

/// Measures one benchmark: static structure, biased enumeration,
/// dynamic working set, and preconstruction coverage.
fn measure(benchmark: Benchmark, params: RunParams) -> CoverageRow {
    let program = WorkloadBuilder::new(benchmark).seed(params.seed).build();
    let cfg = Cfg::build(&program);
    let summary = cfg.summary(&program);

    let mut start_points = 0usize;
    for (pc, op) in program.iter() {
        match op.class() {
            OpClass::Call => start_points += 1,
            OpClass::Branch if op.is_backward_branch(pc) => start_points += 1,
            _ => {}
        }
    }

    let biased = enumerate_biased(&program, MAX_STATIC_TRACES);

    // Dynamic working set: distinct trace keys on the correct path
    // over the same instruction window the simulations use.
    let window = params.warmup + params.measure;
    let mut stream = TraceStream::new(&program);
    let mut dynamic: BTreeSet<TraceKey> = BTreeSet::new();
    while stream.retired() < window {
        dynamic.insert(stream.next_trace().trace.key());
    }

    let enumerable = dynamic
        .iter()
        .filter(|k| biased.trace_keys.contains(k))
        .count();

    // Preconstruction coverage: run the standard preconstructing
    // frontend with engine key tracking and ask, for each dynamic
    // key, whether the engine ever built it.
    let mut config = SimConfig::with_precon(128, 128);
    config.engine.track_built_keys = true;
    let mut sim = Simulator::new(&program, config);
    sim.run_with_warmup(params.warmup, params.measure);
    let built = dynamic
        .iter()
        .filter(|&&k| sim.engine().was_ever_built(k))
        .count();

    CoverageRow {
        benchmark,
        instructions: summary.instructions,
        blocks: summary.blocks,
        reachable_blocks: summary.reachable_blocks,
        natural_loops: summary.natural_loops,
        start_points,
        static_traces: biased.trace_keys.len(),
        static_truncated: biased.truncated,
        dynamic_traces: dynamic.len(),
        enumerable_permille: permille(enumerable, dynamic.len()),
        preconstructed_permille: permille(built, dynamic.len()),
    }
}

/// Renders the coverage rows as a markdown table.
pub fn render(rows: &[CoverageRow]) -> String {
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.benchmark.name().to_string(),
                r.instructions.to_string(),
                format!("{} ({})", r.blocks, r.reachable_blocks),
                r.natural_loops.to_string(),
                r.start_points.to_string(),
                format!(
                    "{}{}",
                    if r.static_truncated { ">= " } else { "" },
                    r.static_traces
                ),
                r.dynamic_traces.to_string(),
                format!("{}%", f1(r.enumerable_permille as f64 / 10.0)),
                format!("{}%", f1(r.preconstructed_permille as f64 / 10.0)),
            ]
        })
        .collect();
    markdown_table(
        &[
            "bench",
            "instrs",
            "blocks (reach)",
            "loops",
            "starts",
            "static traces",
            "dyn traces",
            "enumerable",
            "preconstructed",
        ],
        &table_rows,
    )
}

/// Renders the coverage rows as the `BENCH_analysis.json` document
/// (std-only JSON, no serde), including the run parameters so the
/// numbers are reproducible.
pub fn render_json(rows: &[CoverageRow], params: RunParams) -> String {
    let entries: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"benchmark\": \"{}\", \"static_instructions\": {}, \
                 \"basic_blocks\": {}, \"reachable_blocks\": {}, \
                 \"natural_loops\": {}, \"start_points\": {}, \
                 \"static_traces\": {}, \"static_truncated\": {}, \
                 \"dynamic_traces\": {}, \"enumerable_permille\": {}, \
                 \"preconstructed_permille\": {}}}",
                r.benchmark.name(),
                r.instructions,
                r.blocks,
                r.reachable_blocks,
                r.natural_loops,
                r.start_points,
                r.static_traces,
                r.static_truncated,
                r.dynamic_traces,
                r.enumerable_permille,
                r.preconstructed_permille,
            )
        })
        .collect();
    format!(
        "{{\n  \"warmup\": {},\n  \"measure\": {},\n  \"seed\": {},\n  \
         \"benchmarks\": [\n{}\n  ]\n}}\n",
        params.warmup,
        params.measure,
        params.seed,
        entries.join(",\n"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_params() -> RunParams {
        RunParams {
            warmup: 2_000,
            measure: 4_000,
            seed: 1,
            jobs: 1,
        }
    }

    #[test]
    fn compress_coverage_is_sane() {
        let rows = run(&[Benchmark::Compress], quick_params());
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert!(r.instructions > 0);
        assert!(r.blocks >= r.reachable_blocks);
        assert!(r.start_points > 0);
        assert!(r.static_traces > 0);
        assert!(r.dynamic_traces > 0);
        assert!(r.enumerable_permille <= 1000);
        assert!(r.preconstructed_permille <= 1000);
    }

    #[test]
    fn rows_are_deterministic_across_job_counts() {
        let benches = [Benchmark::Compress, Benchmark::Li];
        let serial = run(&benches, quick_params());
        let parallel = run(
            &benches,
            RunParams {
                jobs: 4,
                ..quick_params()
            },
        );
        assert_eq!(serial, parallel);
    }

    #[test]
    fn render_includes_every_benchmark() {
        let rows = run(&[Benchmark::Compress], quick_params());
        let md = render(&rows);
        assert!(md.contains("compress"));
        assert!(md.contains("preconstructed"));
        let json = render_json(&rows, quick_params());
        assert!(json.contains("\"benchmark\": \"compress\""));
        assert!(json.contains("\"warmup\": 2000"));
    }
}
