//! Bias-sensitivity study (not a paper figure): how preconstruction's
//! benefit depends on the fraction of strongly-biased branches, with
//! and without weak-branch forking.
//!
//! The constructors follow strongly-biased branches down one path and
//! fork weakly-biased ones through their decision stacks. Sweeping
//! the bias mix on a fixed workload shape, at decision-stack depth 3
//! (the paper's design) and depth 0 (pure biased-path following),
//! isolates what the forking hardware buys. The measured answer:
//! forking is load-bearing at *every* bias mix — without it the
//! equal-area comparison goes negative even when 95 % of branches are
//! strongly biased. The reason is compounding: a region's worklist
//! grows from the successors of the traces it builds, so one
//! unforked weak branch steers the whole rest of the region down a
//! single (often wrong) subtree, not just one trace.

use crate::par_sweep::{effective_jobs, par_map, run_cells, SweepCell};
use crate::report::{f1, markdown_table};
use crate::runner::RunParams;
use std::sync::Arc;
use tpc_processor::SimConfig;
use tpc_workloads::{Benchmark, WorkloadBuilder};

/// One sweep point.
#[derive(Debug, Clone)]
pub struct BiasRow {
    /// Strongly-biased fraction of if-else branches, in 1/1000ths.
    pub strong_permille: u32,
    /// Baseline misses per 1000 instructions (256-entry TC).
    pub base_misses: f64,
    /// Preconstruction misses per 1000 instructions (128+128, paper
    /// configuration: decision-stack depth 3).
    pub precon_misses: f64,
    /// Preconstruction misses with forking disabled (decision-stack
    /// depth 0: strongly-biased paths only).
    pub precon_no_fork_misses: f64,
}

impl BiasRow {
    /// Relative miss reduction with forking, percent.
    pub fn reduction_percent(&self) -> f64 {
        reduction(self.base_misses, self.precon_misses)
    }

    /// Relative miss reduction without forking, percent.
    pub fn reduction_no_fork_percent(&self) -> f64 {
        reduction(self.base_misses, self.precon_no_fork_misses)
    }
}

fn reduction(base: f64, precon: f64) -> f64 {
    if base <= 0.0 {
        0.0
    } else {
        (1.0 - precon / base) * 100.0
    }
}

/// The bias fractions swept.
pub const BIAS_POINTS: [u32; 5] = [300, 500, 700, 850, 950];

/// Sweeps the strongly-biased branch fraction over a gcc-shaped
/// workload, measuring the equal-area preconstruction benefit. Each
/// bias point builds its own program, so workload generation and the
/// 3 simulations per point all fan out across `params.jobs` threads.
pub fn run(params: RunParams) -> Vec<BiasRow> {
    let mut no_fork_cfg = SimConfig::with_precon(128, 128);
    no_fork_cfg.engine.decision_depth = 0;
    let configs = [
        SimConfig::baseline(256),
        SimConfig::with_precon(128, 128),
        no_fork_cfg,
    ];

    let programs = par_map(
        &BIAS_POINTS,
        effective_jobs(params.jobs),
        |&strong_permille| {
            let mut profile = Benchmark::Gcc.profile();
            profile.strongly_biased_permille = strong_permille;
            Arc::new(
                WorkloadBuilder::from_profile(format!("bias-{strong_permille}"), profile)
                    .seed(params.seed)
                    .build(),
            )
        },
    );
    let cells: Vec<SweepCell> = programs
        .iter()
        .flat_map(|program| {
            configs
                .iter()
                .map(|config| SweepCell::new(program.clone(), config.clone()))
        })
        .collect();
    let stats = run_cells(&cells, params);

    BIAS_POINTS
        .iter()
        .zip(stats.chunks(configs.len()))
        .map(|(&strong_permille, point)| BiasRow {
            strong_permille,
            base_misses: point[0].tc_misses_per_kilo(),
            precon_misses: point[1].tc_misses_per_kilo(),
            precon_no_fork_misses: point[2].tc_misses_per_kilo(),
        })
        .collect()
}

/// Renders the sweep.
pub fn render(rows: &[BiasRow]) -> String {
    let mut out =
        String::from("\n### Bias sensitivity (gcc-shaped workload, 256 TC vs 128+128)\n\n");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{}‰", r.strong_permille),
                f1(r.base_misses),
                f1(r.precon_misses),
                format!("{:.0}%", r.reduction_percent()),
                f1(r.precon_no_fork_misses),
                format!("{:.0}%", r.reduction_no_fork_percent()),
            ]
        })
        .collect();
    out.push_str(&markdown_table(
        &[
            "strong branches",
            "base misses/1k",
            "fork misses/1k",
            "fork reduction",
            "no-fork misses/1k",
            "no-fork reduction",
        ],
        &table,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_all_points() {
        let rows = run(RunParams::quick());
        assert_eq!(rows.len(), BIAS_POINTS.len());
        for r in &rows {
            assert!(r.base_misses >= 0.0 && r.precon_misses >= 0.0);
        }
    }

    #[test]
    fn forking_is_load_bearing_at_every_bias_mix() {
        let rows = run(RunParams {
            warmup: 100_000,
            measure: 200_000,
            ..RunParams::default()
        });
        for r in &rows {
            assert!(
                r.reduction_percent() > r.reduction_no_fork_percent() + 15.0,
                "at {}‰ strong, forking must buy ≥15 points: {:.0}% vs {:.0}%",
                r.strong_permille,
                r.reduction_percent(),
                r.reduction_no_fork_percent()
            );
        }
    }
}
