//! Figure 6: overall performance improvement from preconstruction,
//! for the benchmarks whose working sets stress the trace cache.
//!
//! The comparison is equal-area: a trace cache of `S` entries versus
//! a trace cache of `S/2` entries plus a preconstruction buffer of
//! `S/2` entries, at several total sizes. The paper reports 3–10 %
//! for gcc, go, perl and vortex.

use crate::par_sweep::sweep_grid;
use crate::report::{f2, markdown_table, pct};
use crate::runner::RunParams;
use tpc_processor::SimConfig;
use tpc_workloads::Benchmark;

/// One equal-area comparison point.
#[derive(Debug, Clone)]
pub struct Fig6Row {
    /// Benchmark measured.
    pub benchmark: Benchmark,
    /// Combined capacity (trace cache entries in the baseline).
    pub total_entries: u32,
    /// Baseline IPC (trace cache of `total_entries`).
    pub baseline_ipc: f64,
    /// Preconstruction IPC (half trace cache + half buffer).
    pub precon_ipc: f64,
}

impl Fig6Row {
    /// Speedup of the preconstruction configuration.
    pub fn speedup(&self) -> f64 {
        self.precon_ipc / self.baseline_ipc
    }
}

/// Combined sizes evaluated.
pub const TOTAL_SIZES: [u32; 3] = [256, 512, 1024];

/// Runs the Figure 6 comparison.
pub fn run(benchmarks: &[Benchmark], params: RunParams) -> Vec<Fig6Row> {
    let mut configs = Vec::new();
    for &total in &TOTAL_SIZES {
        configs.push(SimConfig::baseline(total));
        configs.push(SimConfig::with_precon(total / 2, total / 2));
    }
    let mut rows = Vec::new();
    let grid = sweep_grid(benchmarks, &configs, params);
    for (&benchmark, stats) in benchmarks.iter().zip(&grid) {
        for (i, &total) in TOTAL_SIZES.iter().enumerate() {
            rows.push(Fig6Row {
                benchmark,
                total_entries: total,
                baseline_ipc: stats[2 * i].ipc(),
                precon_ipc: stats[2 * i + 1].ipc(),
            });
        }
    }
    rows
}

/// Renders the comparison as a markdown table.
pub fn render(rows: &[Fig6Row]) -> String {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.benchmark.to_string(),
                r.total_entries.to_string(),
                f2(r.baseline_ipc),
                f2(r.precon_ipc),
                pct(r.speedup()),
            ]
        })
        .collect();
    let mut out = String::from(
        "\n### Figure 6 — speedup from preconstruction (equal-area: TC/2 + PB/2 vs TC)\n\n",
    );
    out.push_str(&markdown_table(
        &[
            "benchmark",
            "total entries",
            "baseline IPC",
            "precon IPC",
            "speedup",
        ],
        &table,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_rows_per_size() {
        let rows = run(&[Benchmark::Compress], RunParams::quick());
        assert_eq!(rows.len(), TOTAL_SIZES.len());
        for r in &rows {
            assert!(r.baseline_ipc > 0.0);
            assert!(r.precon_ipc > 0.0);
        }
    }

    #[test]
    fn render_lists_speedups() {
        let rows = run(&[Benchmark::Compress], RunParams::quick());
        let text = render(&rows);
        assert!(text.contains("Figure 6"));
        assert!(text.contains("%"));
    }
}
