//! Parallel fan-out of sweep cells across cores.
//!
//! Every evaluation artifact (Figures 5/6/8, Tables 1–3, the
//! ablations) is a benchmark × configuration grid of mutually
//! independent simulations. This module runs such grids on scoped
//! worker threads (`std::thread::scope` — no external dependencies),
//! with two invariants:
//!
//! * **determinism** — each cell's simulation is self-contained and
//!   seeded, and results are collected in input order, so a sweep's
//!   output is byte-identical whatever the thread count (including
//!   `jobs = 1`, which runs inline);
//! * **sharing, not copying** — a benchmark's generated [`Program`]
//!   is built once and shared across all of its cells via [`Arc`].
//!
//! Workers pull cell indices from a shared atomic counter, so uneven
//! cell costs (a 1024-entry unified store vs a 64-entry baseline)
//! load-balance naturally.

use crate::checkpoint::SweepCheckpoint;
use crate::runner::RunParams;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use tpc_isa::Program;
use tpc_processor::{BudgetExceeded, SimConfig, SimStats, Simulator};
use tpc_workloads::{Benchmark, WorkloadBuilder};

/// Why one sweep cell failed. A failing cell never takes the sweep
/// down with it: [`par_try_map`] contains panics to the cell that
/// raised them and the rest of the grid completes normally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellError {
    /// The cell's computation panicked (e.g. an invalid
    /// configuration tripping a constructor assertion).
    Panic {
        /// The panic payload, when it was a string.
        message: String,
    },
    /// The per-cell cycle watchdog fired before the instruction
    /// target was reached (a wedged or pathologically slow
    /// configuration).
    Timeout {
        /// Absolute cycles simulated when the watchdog fired.
        cycles: u64,
        /// Instructions retired by then.
        retired: u64,
    },
    /// Recording the cell's result to the checkpoint file failed.
    Checkpoint {
        /// The underlying I/O error.
        message: String,
    },
}

impl std::fmt::Display for CellError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CellError::Panic { message } => write!(f, "cell panicked: {message}"),
            CellError::Timeout { cycles, retired } => write!(
                f,
                "cell timed out: {cycles} cycles with only {retired} instructions retired"
            ),
            CellError::Checkpoint { message } => write!(f, "checkpoint write failed: {message}"),
        }
    }
}

impl CellError {
    /// Whether a supervisor may usefully re-run the cell.
    ///
    /// * [`CellError::Panic`] — retryable: the panic may be chaos- or
    ///   environment-induced (a poisoned worker, an injected fault);
    ///   a deterministic config assertion will simply fail again and
    ///   exhaust the bounded attempt budget.
    /// * [`CellError::Timeout`] — retryable: the cycle watchdog is
    ///   deterministic, but a supervisor may re-run under a larger
    ///   budget, and chaos harnesses starve budgets transiently.
    /// * [`CellError::Checkpoint`] — **not** retryable: a checkpoint
    ///   that belongs to a different sweep (bad fingerprint) or a
    ///   dead cache file will not heal by re-simulating the cell.
    pub fn is_retryable(&self) -> bool {
        match self {
            CellError::Panic { .. } | CellError::Timeout { .. } => true,
            CellError::Checkpoint { .. } => false,
        }
    }

    /// Short machine-readable kind tag (`panic` / `timeout` /
    /// `checkpoint`), used by error manifests.
    pub fn kind(&self) -> &'static str {
        match self {
            CellError::Panic { .. } => "panic",
            CellError::Timeout { .. } => "timeout",
            CellError::Checkpoint { .. } => "checkpoint",
        }
    }
}

impl std::error::Error for CellError {}

impl From<BudgetExceeded> for CellError {
    fn from(e: BudgetExceeded) -> Self {
        CellError::Timeout {
            cycles: e.cycles,
            retired: e.retired,
        }
    }
}

/// Renders a caught panic payload (almost always a `&str` or
/// `String`) for a [`CellError::Panic`].
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Cores available to this process (1 when undetectable).
pub fn available_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Resolves a `--jobs` request to a worker count: `0` means "one per
/// available core", and explicit requests are **clamped to the
/// available cores** — `--jobs 4` on a 1-core box runs one worker
/// instead of oversubscribing by default (time-slicing threads only
/// adds scheduling overhead; results are identical either way). Use
/// [`exact_jobs`] to deliberately oversubscribe, e.g. to measure it.
pub fn effective_jobs(requested: u64) -> usize {
    let cores = available_cores();
    if requested == 0 {
        cores
    } else {
        (requested as usize).min(cores).max(1)
    }
}

/// Resolves a jobs request without the core clamp: the explicit
/// override for callers that *want* more workers than cores
/// (`bench_throughput` measures oversubscription on purpose). `0`
/// still means "one per available core".
pub fn exact_jobs(requested: u64) -> usize {
    if requested == 0 {
        available_cores()
    } else {
        requested as usize
    }
}

/// Runs `f` with panic containment: a panic becomes that cell's
/// [`CellError::Panic`] instead of unwinding into the caller. This is
/// the single containment point shared by [`par_try_map`] workers and
/// the `tpc-service` supervisor.
pub fn contain_cell<R>(f: impl FnOnce() -> Result<R, CellError>) -> Result<R, CellError> {
    catch_unwind(AssertUnwindSafe(f)).unwrap_or_else(|payload| {
        Err(CellError::Panic {
            message: panic_message(payload),
        })
    })
}

/// Fallible map over `items` on up to `jobs` worker threads, with
/// panic containment: a panic inside `f` is caught and reported as
/// that item's [`CellError::Panic`] while every other item completes
/// and returns its own result.
///
/// Results are returned in input order regardless of completion
/// order. `jobs <= 1` (or a single item) runs inline on the calling
/// thread — no spawn, identical results.
pub fn par_try_map<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<Result<R, CellError>>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> Result<R, CellError> + Sync,
{
    let call = |item: &T| -> Result<R, CellError> { contain_cell(|| f(item)) };
    let jobs = jobs.min(items.len());
    if jobs <= 1 {
        return items.iter().map(call).collect();
    }
    let next = AtomicUsize::new(0);
    let mut results: Vec<Option<Result<R, CellError>>> = Vec::with_capacity(items.len());
    results.resize_with(items.len(), || None);
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..jobs)
            .map(|_| {
                scope.spawn(|| {
                    let mut produced = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        // bound: i < items.len() checked above
                        produced.push((i, call(&items[i])));
                    }
                    produced
                })
            })
            .collect();
        // `call` contains panics, so a worker cannot die mid-item;
        // a join error is therefore unreachable, but it degrades to
        // structured per-item errors rather than killing the sweep.
        for worker in workers {
            if let Ok(produced) = worker.join() {
                for (i, r) in produced {
                    // bound: i came from the shared counter, capped at items.len()
                    results[i] = Some(r);
                }
            }
        }
    });
    results
        .into_iter()
        .map(|r| {
            r.unwrap_or_else(|| {
                Err(CellError::Panic {
                    message: "worker thread died before reporting its results".into(),
                })
            })
        })
        .collect()
}

/// Maps `f` over `items` on up to `jobs` worker threads.
///
/// Results are returned in input order regardless of completion
/// order. `jobs <= 1` (or a single item) runs inline on the calling
/// thread — no spawn, identical results.
///
/// # Panics
///
/// Propagates a panic from `f` (the sweep is aborted). Use
/// [`par_try_map`] to contain failures to the cell that raised them.
pub fn par_map<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_try_map(items, jobs, |item| Ok(f(item)))
        .into_iter()
        .map(|r| match r {
            Ok(v) => v,
            Err(e) => panic!("{e}"),
        })
        .collect()
}

/// One cell of a sweep: a shared program under one configuration.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// The generated workload, shared across every cell that
    /// simulates it.
    pub program: Arc<Program>,
    /// The configuration to simulate it under.
    pub config: SimConfig,
    /// Identifier of the frontend that produced `program` (see
    /// [`tpc_exec::FrontendSource::id`]); recorded in benchmark
    /// output and hashed into checkpoint fingerprints so results
    /// from different frontends are never conflated.
    pub frontend: &'static str,
}

impl SweepCell {
    /// Creates a cell for a synthetic (generated) workload.
    pub fn new(program: Arc<Program>, config: SimConfig) -> Self {
        SweepCell::tagged(program, config, "synthetic")
    }

    /// Creates a cell whose program came from another frontend
    /// (e.g. `"asm"` for a loaded `.asm` file).
    pub fn tagged(program: Arc<Program>, config: SimConfig, frontend: &'static str) -> Self {
        SweepCell {
            program,
            config,
            frontend,
        }
    }
}

/// Runs every cell with `params`' warm-up/measure window, fanning out
/// across `params.jobs` threads. Results are in cell order.
pub fn run_cells(cells: &[SweepCell], params: RunParams) -> Vec<SimStats> {
    run_cells_timed(cells, params)
        .into_iter()
        .map(|(stats, _)| stats)
        .collect()
}

/// Like [`run_cells`], but also reports each cell's wall time in
/// milliseconds (measured on the worker that ran it).
///
/// The per-cell breakdown separates the two ways a sweep can be slow:
/// uneven cell costs (one expensive configuration dominating the
/// critical path) versus scheduling overhead (the *sum* of cell times
/// growing when `jobs` exceeds the available cores and threads
/// time-slice against each other). `bench_throughput` records both.
pub fn run_cells_timed(cells: &[SweepCell], params: RunParams) -> Vec<(SimStats, f64)> {
    run_cells_timed_jobs(cells, params, effective_jobs(params.jobs))
}

/// [`run_cells_timed`] with an explicit worker count that bypasses
/// the core clamp — pair with [`exact_jobs`] when oversubscription is
/// the thing being measured.
pub fn run_cells_timed_jobs(
    cells: &[SweepCell],
    params: RunParams,
    jobs: usize,
) -> Vec<(SimStats, f64)> {
    par_map(cells, jobs, |cell| {
        let t = std::time::Instant::now();
        let mut sim = Simulator::new(&cell.program, cell.config.clone());
        let stats = sim.run_with_warmup(params.warmup, params.measure);
        (stats, t.elapsed().as_secs_f64() * 1e3)
    })
}

/// Per-cell cycle watchdog budget: a cell may spend at most
/// `instructions × cycles_per_instruction` cycles (with an absolute
/// `floor` so short runs aren't starved). Twenty cycles per
/// instruction is ~40× the worst IPC any working configuration
/// exhibits, so only genuinely wedged cells trip it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellBudget {
    /// Cycle allowance per requested instruction.
    pub cycles_per_instruction: u64,
    /// Minimum total allowance.
    pub floor: u64,
}

impl Default for CellBudget {
    fn default() -> Self {
        CellBudget {
            cycles_per_instruction: 20,
            floor: 1_000_000,
        }
    }
}

impl CellBudget {
    /// The absolute cycle cap for a run of `instructions`.
    pub fn max_cycles(&self, instructions: u64) -> u64 {
        instructions
            .saturating_mul(self.cycles_per_instruction)
            .max(self.floor)
    }
}

/// Hardened variant of [`run_cells`]: panics are contained to the
/// cell that raised them ([`CellError::Panic`]), and each cell runs
/// under `budget`'s cycle watchdog ([`CellError::Timeout`]). The
/// other cells' results are unaffected by any failure.
pub fn run_cells_checked(
    cells: &[SweepCell],
    params: RunParams,
    budget: CellBudget,
) -> Vec<Result<SimStats, CellError>> {
    run_cells_resumable(cells, params, budget, None, &[])
}

/// Like [`run_cells_checked`], with JSONL checkpoint/resume: cells
/// already present in `prior` (loaded by
/// [`SweepCheckpoint::open`](crate::checkpoint::SweepCheckpoint::open))
/// are returned as-is without re-simulation, and each freshly
/// completed cell is appended to `checkpoint` the moment its worker
/// finishes — so an interrupted sweep loses at most the in-flight
/// cells.
///
/// Simulations are deterministic and checkpoints store exact integer
/// counters, so a resumed sweep's final results are bit-identical to
/// an uninterrupted one.
pub fn run_cells_resumable(
    cells: &[SweepCell],
    params: RunParams,
    budget: CellBudget,
    checkpoint: Option<&SweepCheckpoint>,
    prior: &[Option<SimStats>],
) -> Vec<Result<SimStats, CellError>> {
    let todo: Vec<(usize, &SweepCell)> = cells
        .iter()
        .enumerate()
        .filter(|(i, _)| prior.get(*i).is_none_or(|p| p.is_none()))
        .collect();
    let max = budget.max_cycles(params.warmup + params.measure);
    let fresh = par_try_map(&todo, effective_jobs(params.jobs), |&(i, cell)| {
        let mut sim = Simulator::new(&cell.program, cell.config.clone());
        sim.run_budgeted(params.warmup, max)?;
        sim.reset_stats();
        let stats = sim.run_budgeted(params.measure, max)?;
        if let Some(ck) = checkpoint {
            ck.record(i, &stats).map_err(|e| CellError::Checkpoint {
                message: e.to_string(),
            })?;
        }
        Ok(stats)
    });
    let mut fresh_iter = fresh.into_iter();
    (0..cells.len())
        .map(|i| match prior.get(i).and_then(Clone::clone) {
            Some(stats) => Ok(stats),
            None => fresh_iter
                .next()
                .expect("one fresh result per cell missing from the checkpoint"),
        })
        .collect()
}

/// Generates each benchmark's program once (itself in parallel) and
/// crosses it with every configuration: the full grid, benchmark-
/// major. `result[b][c]` is benchmark `b` under configuration `c`.
pub fn sweep_grid(
    benchmarks: &[Benchmark],
    configs: &[SimConfig],
    params: RunParams,
) -> Vec<Vec<SimStats>> {
    let jobs = effective_jobs(params.jobs);
    let programs: Vec<Arc<Program>> = par_map(benchmarks, jobs, |&b| {
        Arc::new(WorkloadBuilder::new(b).seed(params.seed).build())
    });
    let cells: Vec<SweepCell> = programs
        .iter()
        .flat_map(|p| {
            configs
                .iter()
                .map(|c| SweepCell::new(Arc::clone(p), c.clone()))
        })
        .collect();
    let stats = run_cells(&cells, params);
    stats
        .chunks(configs.len().max(1))
        .map(<[SimStats]>::to_vec)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<u64> = (0..40).collect();
        // Skew per-item cost so completion order differs from input
        // order.
        let f = |&x: &u64| {
            if x % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            x * x
        };
        let serial = par_map(&items, 1, f);
        let parallel = par_map(&items, 4, f);
        assert_eq!(serial, parallel);
        assert_eq!(parallel[13], 169);
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, 8, |&x| x).is_empty());
        assert_eq!(par_map(&[5u32], 8, |&x| x + 1), vec![6]);
    }

    #[test]
    fn effective_jobs_zero_is_auto() {
        assert!(effective_jobs(0) >= 1);
        assert_eq!(effective_jobs(0), available_cores());
    }

    #[test]
    fn effective_jobs_clamps_to_cores_but_exact_does_not() {
        let cores = available_cores();
        // An explicit request never exceeds the machine...
        assert_eq!(effective_jobs(3), 3.min(cores));
        assert_eq!(effective_jobs(u64::MAX), cores);
        assert_eq!(effective_jobs(1), 1);
        // ...unless the caller opts into oversubscription.
        assert_eq!(exact_jobs(cores as u64 * 4), cores * 4);
        assert_eq!(exact_jobs(0), cores);
    }

    #[test]
    fn cell_error_retry_classification() {
        // Hung cell (watchdog) → Timeout, retryable.
        let timeout = CellError::Timeout {
            cycles: 50,
            retired: 3,
        };
        assert!(timeout.is_retryable());
        assert_eq!(timeout.kind(), "timeout");
        // Panicking cell → Panic, retryable (bounded by the caller).
        let panic = CellError::Panic {
            message: "boom".into(),
        };
        assert!(panic.is_retryable());
        assert_eq!(panic.kind(), "panic");
        // Checkpoint trouble (e.g. a bad fingerprint) → permanent.
        let ckpt = CellError::Checkpoint {
            message: "checkpoint belongs to a different sweep".into(),
        };
        assert!(!ckpt.is_retryable());
        assert_eq!(ckpt.kind(), "checkpoint");
    }

    #[test]
    fn grid_shape_is_benchmark_major() {
        let params = RunParams {
            warmup: 2_000,
            measure: 4_000,
            ..RunParams::quick()
        };
        let configs = [SimConfig::baseline(64), SimConfig::with_precon(64, 32)];
        let grid = sweep_grid(&[Benchmark::Compress, Benchmark::Li], &configs, params);
        assert_eq!(grid.len(), 2);
        assert!(grid.iter().all(|per_bench| per_bench.len() == 2));
        assert!(grid[0][0].retired_instructions >= 4_000);
    }

    #[test]
    fn cells_share_one_program_per_benchmark() {
        let program = Arc::new(WorkloadBuilder::new(Benchmark::Compress).seed(1).build());
        let cells = [
            SweepCell::new(Arc::clone(&program), SimConfig::baseline(64)),
            SweepCell::new(Arc::clone(&program), SimConfig::baseline(128)),
        ];
        assert!(Arc::ptr_eq(&cells[0].program, &cells[1].program));
    }

    #[test]
    fn par_try_map_contains_panics_to_the_failing_item() {
        let items: Vec<u64> = (0..12).collect();
        for jobs in [1, 4] {
            let results = par_try_map(&items, jobs, |&x| {
                if x == 5 {
                    panic!("boom at {x}");
                }
                Ok(x * 2)
            });
            assert_eq!(results.len(), 12);
            for (i, r) in results.iter().enumerate() {
                if i == 5 {
                    assert_eq!(
                        *r,
                        Err(CellError::Panic {
                            message: "boom at 5".into()
                        })
                    );
                } else {
                    assert_eq!(*r, Ok(i as u64 * 2));
                }
            }
        }
    }

    #[test]
    fn panicking_cell_reports_error_and_spares_the_rest() {
        // SimConfig::baseline(63): the trace cache asserts its
        // geometry (63 entries don't divide into ways), so this cell
        // panics inside the worker. The acceptance bar: the sweep
        // completes, that cell reports CellError::Panic, every other
        // cell's result is correct (matches an unhardened run of the
        // same cell).
        let program = Arc::new(WorkloadBuilder::new(Benchmark::Compress).seed(1).build());
        let cells = [
            SweepCell::new(Arc::clone(&program), SimConfig::baseline(64)),
            SweepCell::new(Arc::clone(&program), SimConfig::baseline(63)),
            SweepCell::new(Arc::clone(&program), SimConfig::with_precon(64, 32)),
        ];
        let params = RunParams {
            warmup: 2_000,
            measure: 4_000,
            jobs: 2,
            ..RunParams::quick()
        };
        let results = run_cells_checked(&cells, params, CellBudget::default());
        assert!(results[0].is_ok());
        match &results[1] {
            Err(e @ CellError::Panic { message }) => {
                assert!(message.contains("entries"), "message: {message}");
                assert!(e.is_retryable(), "panics are retryable (bounded)");
            }
            other => panic!("expected a panic error, got {other:?}"),
        }
        assert!(results[2].is_ok());
        // The surviving cells match an unhardened run exactly.
        let clean = run_cells(&cells[..1], params);
        assert_eq!(results[0].as_ref().unwrap(), &clean[0]);
    }

    #[test]
    fn wedged_cell_trips_the_watchdog() {
        let program = Arc::new(WorkloadBuilder::new(Benchmark::Gcc).seed(1).build());
        let cells = [
            SweepCell::new(Arc::clone(&program), SimConfig::baseline(64)),
            SweepCell::new(Arc::clone(&program), SimConfig::baseline(128)),
        ];
        let params = RunParams {
            warmup: 10_000,
            measure: 100_000,
            jobs: 2,
            ..RunParams::quick()
        };
        // A budget far below any real configuration's need: both
        // cells must time out, structurally, without hanging.
        let starved = CellBudget {
            cycles_per_instruction: 0,
            floor: 50,
        };
        let results = run_cells_checked(&cells, params, starved);
        for r in &results {
            match r {
                Err(e @ CellError::Timeout { cycles, retired }) => {
                    assert!(*cycles >= 50);
                    assert!(*retired < 110_000);
                    assert!(e.is_retryable(), "a hung cell is retryable");
                }
                other => panic!("expected timeout, got {other:?}"),
            }
        }
        // And a generous budget completes.
        let fine = run_cells_checked(&cells, params, CellBudget::default());
        assert!(fine.iter().all(Result::is_ok));
    }

    #[test]
    fn hardened_results_match_plain_results() {
        let program = Arc::new(WorkloadBuilder::new(Benchmark::Li).seed(1).build());
        let cells = [
            SweepCell::new(Arc::clone(&program), SimConfig::baseline(64)),
            SweepCell::new(Arc::clone(&program), SimConfig::with_precon(64, 64)),
        ];
        let params = RunParams {
            warmup: 2_000,
            measure: 4_000,
            ..RunParams::quick()
        };
        let plain = run_cells(&cells, params);
        let hardened: Vec<SimStats> = run_cells_checked(&cells, params, CellBudget::default())
            .into_iter()
            .map(|r| r.expect("generous budget"))
            .collect();
        assert_eq!(plain, hardened, "watchdog path changes nothing");
    }
}
