//! Parallel fan-out of sweep cells across cores.
//!
//! Every evaluation artifact (Figures 5/6/8, Tables 1–3, the
//! ablations) is a benchmark × configuration grid of mutually
//! independent simulations. This module runs such grids on scoped
//! worker threads (`std::thread::scope` — no external dependencies),
//! with two invariants:
//!
//! * **determinism** — each cell's simulation is self-contained and
//!   seeded, and results are collected in input order, so a sweep's
//!   output is byte-identical whatever the thread count (including
//!   `jobs = 1`, which runs inline);
//! * **sharing, not copying** — a benchmark's generated [`Program`]
//!   is built once and shared across all of its cells via [`Arc`].
//!
//! Workers pull cell indices from a shared atomic counter, so uneven
//! cell costs (a 1024-entry unified store vs a 64-entry baseline)
//! load-balance naturally.

use crate::runner::RunParams;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use tpc_isa::Program;
use tpc_processor::{SimConfig, SimStats, Simulator};
use tpc_workloads::{Benchmark, WorkloadBuilder};

/// Resolves a `--jobs` request to a worker count: `0` means "one per
/// available core".
pub fn effective_jobs(requested: u64) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        requested as usize
    }
}

/// Maps `f` over `items` on up to `jobs` worker threads.
///
/// Results are returned in input order regardless of completion
/// order. `jobs <= 1` (or a single item) runs inline on the calling
/// thread — no spawn, identical results.
///
/// # Panics
///
/// Propagates a panic from `f` (the sweep is aborted).
pub fn par_map<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let jobs = jobs.min(items.len());
    if jobs <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut results: Vec<Option<R>> = Vec::with_capacity(items.len());
    results.resize_with(items.len(), || None);
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..jobs)
            .map(|_| {
                scope.spawn(|| {
                    let mut produced = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        produced.push((i, f(&items[i])));
                    }
                    produced
                })
            })
            .collect();
        for worker in workers {
            for (i, r) in worker.join().expect("sweep worker panicked") {
                results[i] = Some(r);
            }
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every index was claimed by exactly one worker"))
        .collect()
}

/// One cell of a sweep: a shared program under one configuration.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// The generated workload, shared across every cell that
    /// simulates it.
    pub program: Arc<Program>,
    /// The configuration to simulate it under.
    pub config: SimConfig,
}

impl SweepCell {
    /// Creates a cell.
    pub fn new(program: Arc<Program>, config: SimConfig) -> Self {
        SweepCell { program, config }
    }
}

/// Runs every cell with `params`' warm-up/measure window, fanning out
/// across `params.jobs` threads. Results are in cell order.
pub fn run_cells(cells: &[SweepCell], params: RunParams) -> Vec<SimStats> {
    run_cells_timed(cells, params)
        .into_iter()
        .map(|(stats, _)| stats)
        .collect()
}

/// Like [`run_cells`], but also reports each cell's wall time in
/// milliseconds (measured on the worker that ran it).
///
/// The per-cell breakdown separates the two ways a sweep can be slow:
/// uneven cell costs (one expensive configuration dominating the
/// critical path) versus scheduling overhead (the *sum* of cell times
/// growing when `jobs` exceeds the available cores and threads
/// time-slice against each other). `bench_throughput` records both.
pub fn run_cells_timed(cells: &[SweepCell], params: RunParams) -> Vec<(SimStats, f64)> {
    par_map(cells, effective_jobs(params.jobs), |cell| {
        let t = std::time::Instant::now();
        let mut sim = Simulator::new(&cell.program, cell.config.clone());
        let stats = sim.run_with_warmup(params.warmup, params.measure);
        (stats, t.elapsed().as_secs_f64() * 1e3)
    })
}

/// Generates each benchmark's program once (itself in parallel) and
/// crosses it with every configuration: the full grid, benchmark-
/// major. `result[b][c]` is benchmark `b` under configuration `c`.
pub fn sweep_grid(
    benchmarks: &[Benchmark],
    configs: &[SimConfig],
    params: RunParams,
) -> Vec<Vec<SimStats>> {
    let jobs = effective_jobs(params.jobs);
    let programs: Vec<Arc<Program>> = par_map(benchmarks, jobs, |&b| {
        Arc::new(WorkloadBuilder::new(b).seed(params.seed).build())
    });
    let cells: Vec<SweepCell> = programs
        .iter()
        .flat_map(|p| {
            configs
                .iter()
                .map(|c| SweepCell::new(Arc::clone(p), c.clone()))
        })
        .collect();
    let stats = run_cells(&cells, params);
    stats
        .chunks(configs.len().max(1))
        .map(<[SimStats]>::to_vec)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<u64> = (0..40).collect();
        // Skew per-item cost so completion order differs from input
        // order.
        let f = |&x: &u64| {
            if x % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            x * x
        };
        let serial = par_map(&items, 1, f);
        let parallel = par_map(&items, 4, f);
        assert_eq!(serial, parallel);
        assert_eq!(parallel[13], 169);
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, 8, |&x| x).is_empty());
        assert_eq!(par_map(&[5u32], 8, |&x| x + 1), vec![6]);
    }

    #[test]
    fn effective_jobs_zero_is_auto() {
        assert!(effective_jobs(0) >= 1);
        assert_eq!(effective_jobs(3), 3);
    }

    #[test]
    fn grid_shape_is_benchmark_major() {
        let params = RunParams {
            warmup: 2_000,
            measure: 4_000,
            ..RunParams::quick()
        };
        let configs = [SimConfig::baseline(64), SimConfig::with_precon(64, 32)];
        let grid = sweep_grid(&[Benchmark::Compress, Benchmark::Li], &configs, params);
        assert_eq!(grid.len(), 2);
        assert!(grid.iter().all(|per_bench| per_bench.len() == 2));
        assert!(grid[0][0].retired_instructions >= 4_000);
    }

    #[test]
    fn cells_share_one_program_per_benchmark() {
        let program = Arc::new(WorkloadBuilder::new(Benchmark::Compress).seed(1).build());
        let cells = [
            SweepCell::new(Arc::clone(&program), SimConfig::baseline(64)),
            SweepCell::new(Arc::clone(&program), SimConfig::baseline(128)),
        ];
        assert!(Arc::ptr_eq(&cells[0].program, &cells[1].program));
    }
}
