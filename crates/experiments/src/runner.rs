//! Shared simulation driving for all experiments.

use tpc_exec::FrontendSource;
use tpc_processor::{SimConfig, SimStats, Simulator};
use tpc_workloads::{Benchmark, WorkloadBuilder};

/// How long to warm up and measure each configuration.
///
/// The paper runs 200 M instructions per benchmark; synthetic
/// workloads reach steady state far sooner (phase periods are
/// 30k–130k instructions), so the defaults measure 500k after a 200k
/// warm-up. `RunParams::quick` is used by smoke tests and Criterion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunParams {
    /// Instructions executed before counters reset.
    pub warmup: u64,
    /// Instructions measured.
    pub measure: u64,
    /// Workload generation seed.
    pub seed: u64,
    /// Worker threads for sweeps (0 = one per available core).
    /// Results are identical whatever the value — it only sets how
    /// many cells run concurrently.
    pub jobs: u64,
}

impl Default for RunParams {
    fn default() -> Self {
        RunParams {
            warmup: 200_000,
            measure: 500_000,
            seed: 1,
            jobs: 0,
        }
    }
}

impl RunParams {
    /// A fast configuration for smoke tests and benchmarks.
    pub fn quick() -> Self {
        RunParams {
            warmup: 40_000,
            measure: 80_000,
            seed: 1,
            jobs: 0,
        }
    }

    /// Parses `--warmup N`, `--measure N`, `--seed N`, `--jobs N`,
    /// `--quick` from a binary's command line, starting from
    /// defaults.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown flags or
    /// malformed numbers.
    pub fn from_args(args: impl Iterator<Item = String>) -> Result<Self, String> {
        let mut params = RunParams::default();
        let mut args = args.peekable();
        while let Some(flag) = args.next() {
            let mut numeric = |target: &mut u64| -> Result<(), String> {
                let v = args
                    .next()
                    .ok_or_else(|| format!("{flag} expects a value"))?;
                *target = v
                    .parse()
                    .map_err(|_| format!("{flag}: not a number: {v}"))?;
                Ok(())
            };
            match flag.as_str() {
                "--warmup" => numeric(&mut params.warmup)?,
                "--measure" => numeric(&mut params.measure)?,
                "--seed" => numeric(&mut params.seed)?,
                "--jobs" => numeric(&mut params.jobs)?,
                "--quick" => {
                    let (seed, jobs) = (params.seed, params.jobs);
                    params = RunParams::quick();
                    params.seed = seed;
                    params.jobs = jobs;
                }
                other => {
                    return Err(format!(
                        "unknown flag {other} (expected --warmup/--measure/--seed/--jobs/--quick)"
                    ))
                }
            }
        }
        Ok(params)
    }
}

/// Runs one benchmark under one configuration and returns measured
/// statistics (after warm-up).
pub fn simulate(benchmark: Benchmark, config: SimConfig, params: RunParams) -> SimStats {
    let program = WorkloadBuilder::new(benchmark).seed(params.seed).build();
    simulate_source(&program, config, params)
}

/// Runs any [`FrontendSource`] — a synthetic [`tpc_isa::Program`], a
/// loaded [`tpc_exec::AsmProgram`] — under one configuration and
/// returns measured statistics (after warm-up). `params.seed` is
/// ignored: the source already owns its program.
pub fn simulate_source<S: FrontendSource>(
    source: &S,
    config: SimConfig,
    params: RunParams,
) -> SimStats {
    let mut sim = Simulator::with_frontend(source.frontend(), config);
    sim.run_with_warmup(params.warmup, params.measure)
}

/// Runs several configurations over the *same* generated program,
/// shared across `params.jobs` worker threads (see
/// [`crate::par_sweep`]); results are in configuration order and
/// independent of the thread count.
pub fn simulate_many(
    benchmark: Benchmark,
    configs: &[SimConfig],
    params: RunParams,
) -> Vec<SimStats> {
    crate::par_sweep::sweep_grid(&[benchmark], configs, params)
        .pop()
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> std::vec::IntoIter<String> {
        s.iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .into_iter()
    }

    #[test]
    fn default_params_parse_empty() {
        let p = RunParams::from_args(args(&[])).unwrap();
        assert_eq!(p, RunParams::default());
    }

    #[test]
    fn flags_override_defaults() {
        let p = RunParams::from_args(args(&["--measure", "1000", "--seed", "7"])).unwrap();
        assert_eq!(p.measure, 1000);
        assert_eq!(p.seed, 7);
        assert_eq!(p.warmup, RunParams::default().warmup);
    }

    #[test]
    fn quick_flag() {
        let p = RunParams::from_args(args(&["--quick"])).unwrap();
        assert_eq!(p, RunParams::quick());
    }

    #[test]
    fn unknown_flag_rejected() {
        assert!(RunParams::from_args(args(&["--bogus"])).is_err());
        assert!(RunParams::from_args(args(&["--measure"])).is_err());
        assert!(RunParams::from_args(args(&["--measure", "abc"])).is_err());
    }

    #[test]
    fn simulate_returns_measured_window() {
        let s = simulate(
            Benchmark::Compress,
            SimConfig::baseline(128),
            RunParams {
                warmup: 5_000,
                measure: 10_000,
                ..RunParams::default()
            },
        );
        assert!(s.retired_instructions >= 10_000);
        assert!(s.retired_instructions < 12_000, "window respected");
    }
}
