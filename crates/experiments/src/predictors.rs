//! Predictor accuracy characterization (supporting data, in the
//! spirit of the next-trace-predictor paper the frontend builds on).

use crate::par_sweep::sweep_grid;
use crate::report::{f1, markdown_table};
use crate::runner::RunParams;
use tpc_processor::SimConfig;
use tpc_workloads::Benchmark;

/// Accuracy numbers for one benchmark.
#[derive(Debug, Clone)]
pub struct PredictorRow {
    /// Benchmark measured.
    pub benchmark: Benchmark,
    /// Next-trace predictor accuracy over trace fetches, percent.
    pub ntp_accuracy: f64,
    /// Dynamic conditional-branch misprediction stalls charged on the
    /// slow path, per 1000 instructions.
    pub slow_path_repairs_per_kilo: f64,
    /// Fraction of frontend cycles lost to trace-level misprediction
    /// stalls, percent.
    pub mispredict_cycles_percent: f64,
}

/// Measures predictor behaviour under the default preconstruction
/// configuration.
pub fn run(benchmarks: &[Benchmark], params: RunParams) -> Vec<PredictorRow> {
    let configs = [SimConfig::with_precon(256, 256)];
    let grid = sweep_grid(benchmarks, &configs, params);
    benchmarks
        .iter()
        .zip(grid)
        .map(|(&benchmark, stats)| {
            let s = &stats[0];
            let (_, _, mispredict, _) = s.frontend.permille();
            PredictorRow {
                benchmark,
                ntp_accuracy: 100.0
                    * (1.0 - s.ntp_mispredicts as f64 / s.trace_fetches.max(1) as f64),
                slow_path_repairs_per_kilo: s.slow_path_predict_stalls as f64 * 1000.0
                    / s.retired_instructions.max(1) as f64,
                mispredict_cycles_percent: mispredict as f64 / 10.0,
            }
        })
        .collect()
}

/// Renders the accuracy table.
pub fn render(rows: &[PredictorRow]) -> String {
    let mut out = String::from("\n### Predictor characterization (256 TC + 256 PB)\n\n");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.benchmark.to_string(),
                format!("{:.1}%", r.ntp_accuracy),
                f1(r.slow_path_repairs_per_kilo),
                format!("{:.1}%", r.mispredict_cycles_percent),
            ]
        })
        .collect();
    out.push_str(&markdown_table(
        &[
            "benchmark",
            "NTP accuracy",
            "slow-path repairs/1k",
            "mispredict cycles",
        ],
        &table,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_bounded_and_ordered() {
        let rows = run(&[Benchmark::Compress, Benchmark::Go], RunParams::quick());
        for r in &rows {
            assert!(r.ntp_accuracy >= 0.0 && r.ntp_accuracy <= 100.0);
        }
        // Loop-dominated compress is far more trace-predictable than
        // branchy go.
        assert!(rows[0].ntp_accuracy > rows[1].ntp_accuracy);
    }

    #[test]
    fn render_has_rows() {
        let rows = run(&[Benchmark::Compress], RunParams::quick());
        let text = render(&rows);
        assert!(text.contains("compress"));
        assert!(text.contains("NTP accuracy"));
    }
}
