//! Markdown table rendering for experiment binaries.

use std::fmt::Write as _;

/// Renders a markdown table with aligned columns.
///
/// ```
/// let t = tpc_experiments::report::markdown_table(
///     &["bench", "misses"],
///     &[vec!["gcc".into(), "15.0".into()]],
/// );
/// assert!(t.contains("| gcc"));
/// ```
pub fn markdown_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        debug_assert_eq!(row.len(), cols, "row arity matches headers");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let write_row = |out: &mut String, cells: &[String]| {
        out.push('|');
        for (i, c) in cells.iter().enumerate() {
            let _ = write!(out, " {:w$} |", c, w = widths[i]);
        }
        out.push('\n');
    };
    write_row(
        &mut out,
        &headers.iter().map(|h| h.to_string()).collect::<Vec<_>>(),
    );
    out.push('|');
    for w in &widths {
        let _ = write!(out, "{:-<w$}|", "", w = w + 2);
    }
    out.push('\n');
    for row in rows {
        write_row(&mut out, row);
    }
    out
}

/// Formats a float with one decimal place.
pub fn f1(v: f64) -> String {
    format!("{v:.1}")
}

/// Formats a float with two decimal places.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a speedup ratio as a percentage improvement ("+7.3%").
pub fn pct(speedup: f64) -> String {
    format!("{:+.1}%", (speedup - 1.0) * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_shape() {
        let t = markdown_table(
            &["a", "bench"],
            &[
                vec!["1".into(), "gcc".into()],
                vec!["22".into(), "go".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with("|--"));
        assert!(lines[2].contains("gcc"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f1(12.3456), "12.3");
        assert_eq!(f2(12.3456), "12.35");
        assert_eq!(pct(1.073), "+7.3%");
        assert_eq!(pct(0.95), "-5.0%");
    }
}
