//! Frontend cycle stacks: where the cycles go, per benchmark and
//! configuration — the causal explanation behind Figures 6 and 8.
//!
//! Preconstruction converts slow-build cycles into dispatch cycles;
//! preprocessing shrinks the backend's share of the critical path so
//! retirement keeps up with a faster frontend. The stacks make both
//! visible directly instead of inferring them from IPC deltas.

use crate::par_sweep::sweep_grid;
use crate::report::markdown_table;
use crate::runner::RunParams;
use tpc_processor::{FrontendBreakdown, SimConfig};
use tpc_workloads::Benchmark;

/// One configuration's cycle stack.
#[derive(Debug, Clone)]
pub struct StackRow {
    /// Benchmark measured.
    pub benchmark: Benchmark,
    /// Configuration label.
    pub config: &'static str,
    /// The frontend activity breakdown.
    pub breakdown: FrontendBreakdown,
    /// IPC for context.
    pub ipc: f64,
}

/// The configurations compared (matching Figure 8's bars).
fn configs() -> Vec<(&'static str, SimConfig)> {
    vec![
        ("baseline 256", SimConfig::baseline(256)),
        ("precon 128+128", SimConfig::with_precon(128, 128)),
        (
            "combined",
            SimConfig::with_precon(128, 128).with_preprocess(),
        ),
    ]
}

/// Measures cycle stacks for the given benchmarks.
pub fn run(benchmarks: &[Benchmark], params: RunParams) -> Vec<StackRow> {
    let labeled = configs();
    let sim_configs: Vec<SimConfig> = labeled.iter().map(|(_, c)| c.clone()).collect();
    let grid = sweep_grid(benchmarks, &sim_configs, params);
    let mut rows = Vec::new();
    for (&benchmark, stats) in benchmarks.iter().zip(&grid) {
        for ((label, _), s) in labeled.iter().zip(stats) {
            rows.push(StackRow {
                benchmark,
                config: label,
                breakdown: s.frontend,
                ipc: s.ipc(),
            });
        }
    }
    rows
}

/// Renders the stacks (one row per benchmark × configuration).
pub fn render(rows: &[StackRow]) -> String {
    let mut out = String::from("\n### Frontend cycle stacks (fraction of all cycles, ‰)\n\n");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let (dispatched, slow, mispredict, backpressure) = r.breakdown.permille();
            vec![
                r.benchmark.to_string(),
                r.config.to_string(),
                dispatched.to_string(),
                slow.to_string(),
                mispredict.to_string(),
                backpressure.to_string(),
                format!("{:.2}", r.ipc),
            ]
        })
        .collect();
    out.push_str(&markdown_table(
        &[
            "benchmark",
            "config",
            "dispatch",
            "slow build",
            "mispredict",
            "PE full",
            "IPC",
        ],
        &table,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stacks_cover_all_configs() {
        let rows = run(&[Benchmark::Compress], RunParams::quick());
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r.breakdown.total() > 0, "{}: breakdown populated", r.config);
        }
    }

    #[test]
    fn precon_shrinks_slow_build_share() {
        let rows = run(
            &[Benchmark::Gcc],
            RunParams {
                warmup: 80_000,
                measure: 150_000,
                ..RunParams::default()
            },
        );
        let slow_share = |label: &str| {
            rows.iter()
                .find(|r| r.config == label)
                .map(|r| r.breakdown.permille().1)
                .expect("config present")
        };
        assert!(
            slow_share("precon 128+128") < slow_share("baseline 256"),
            "preconstruction moves cycles out of slow builds: {} vs {}",
            slow_share("precon 128+128"),
            slow_share("baseline 256")
        );
    }
}
