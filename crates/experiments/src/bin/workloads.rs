//! Characterizes the synthetic workloads: static footprint, touched
//! footprint, trace working set, branch statistics.
//!
//! Usage: `cargo run -p tpc-experiments --release --bin workloads --
//! [--measure N] [--seed N] [--jobs N]`

use tpc_experiments::{workload_stats, RunParams};
use tpc_workloads::Benchmark;

fn main() {
    let params = RunParams::from_args(std::env::args().skip(1)).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let rows = workload_stats::run(&Benchmark::ALL, params.measure, params);
    print!("{}", workload_stats::render(&rows, params.measure));
}
