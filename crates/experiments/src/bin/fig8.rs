//! Regenerates Figure 8: the extended pipeline model
//! (preconstruction x preprocessing) for gcc, go, perl and vortex.
//!
//! Usage: `cargo run -p tpc-experiments --release --bin fig8 --
//! [--warmup N] [--measure N] [--seed N] [--jobs N] [--quick]`

use tpc_experiments::{fig8, RunParams};
use tpc_workloads::Benchmark;

fn main() {
    let params = RunParams::from_args(std::env::args().skip(1)).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let rows = fig8::run(&Benchmark::large_working_set(), params);
    print!("{}", fig8::render(&rows));
}
