//! Bias-sensitivity study: preconstruction benefit vs the fraction
//! of strongly-biased branches (the go ↔ vortex axis).
//!
//! Usage: `cargo run -p tpc-experiments --release --bin bias_sweep --
//! [--warmup N] [--measure N] [--seed N] [--jobs N] [--quick]`

use tpc_experiments::{bias_sweep, RunParams};

fn main() {
    let params = RunParams::from_args(std::env::args().skip(1)).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let rows = bias_sweep::run(params);
    print!("{}", bias_sweep::render(&rows));
}
