//! Runs every experiment in sequence, printing the full EXPERIMENTS
//! report (Figure 5, Tables 1-3, Figure 6, Figure 8, ablations).
//!
//! Usage: `cargo run -p tpc-experiments --release --bin all --
//! [--warmup N] [--measure N] [--seed N] [--jobs N] [--quick]`

use tpc_experiments::{
    ablations, bias_sweep, coverage, cpi_stack, fig5, fig6, fig8, predictors, tables,
    workload_stats, RunParams,
};
use tpc_workloads::Benchmark;

fn main() {
    let params = RunParams::from_args(std::env::args().skip(1)).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    println!("# Trace Preconstruction — measured results\n");
    println!("run parameters: {params:?}\n");

    println!("## Workload characterization");
    let rows = workload_stats::run(&Benchmark::ALL, params.measure, params);
    print!("{}", workload_stats::render(&rows, params.measure));

    println!("\n## Figure 5 — trace-cache miss rates");
    let rows = fig5::run(&Benchmark::ALL, params);
    print!("{}", fig5::render(&rows));

    println!("\n## Tables 1-3 — I-cache behaviour (gcc, go)");
    let rows = tables::run(&[Benchmark::Gcc, Benchmark::Go], params);
    print!("{}", tables::render(&rows));

    println!("\n## Figure 6 — speedup from preconstruction");
    let rows = fig6::run(&Benchmark::large_working_set(), params);
    print!("{}", fig6::render(&rows));

    println!("\n## Figure 8 — extended pipeline model");
    let rows = fig8::run(&Benchmark::large_working_set(), params);
    print!("{}", fig8::render(&rows));

    let rows = ablations::run(Benchmark::Gcc, params);
    print!("{}", ablations::render(Benchmark::Gcc, &rows));
    let rows = ablations::dynamic_split(Benchmark::Gcc, params);
    print!("{}", ablations::render_dynamic_split(Benchmark::Gcc, &rows));

    println!("\n## Static vs dynamic coverage");
    let rows = coverage::run(&Benchmark::ALL, params);
    print!("{}", coverage::render(&rows));

    println!("\n## Supporting characterization");
    let rows = predictors::run(&Benchmark::ALL, params);
    print!("{}", predictors::render(&rows));
    let rows = bias_sweep::run(params);
    print!("{}", bias_sweep::render(&rows));
    let rows = cpi_stack::run(&Benchmark::large_working_set(), params);
    print!("{}", cpi_stack::render(&rows));
}
