//! Simulator throughput benchmark: the repo's perf-trajectory data
//! point.
//!
//! Two measurements, written to `BENCH_sim.json` (std-only JSON, no
//! serde):
//!
//! 1. **Per-config throughput** — wall time and simulated
//!    instructions per second for each standard configuration on one
//!    benchmark, run serially. This tracks the per-cycle hot path
//!    (the zero-copy trace storage work shows up here).
//! 2. **Sweep speedup** — wall time for a 4-benchmark × 2-config grid
//!    with `--jobs 1` versus `--jobs 4`, plus a bit-identity check
//!    between the two runs. This tracks the parallel sweep executor.
//!
//! Usage: `bench_throughput [--quick] [--warmup N] [--measure N]
//! [--seed N]`. `--quick` shrinks the windows for CI smoke runs.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;
use tpc_experiments::{
    available_cores, exact_jobs, par_map, run_cells_timed_jobs, simulate, RunParams, SweepCell,
};
use tpc_processor::SimConfig;
use tpc_workloads::{Benchmark, WorkloadBuilder};

/// The standard configurations tracked over time.
fn standard_configs() -> Vec<(&'static str, SimConfig)> {
    vec![
        ("baseline_256", SimConfig::baseline(256)),
        ("precon_128_128", SimConfig::with_precon(128, 128)),
        (
            "combined",
            SimConfig::with_precon(128, 128).with_preprocess(),
        ),
    ]
}

/// Benchmarks used for the parallel-sweep speedup measurement.
const SWEEP_BENCHMARKS: [Benchmark; 4] = [
    Benchmark::Compress,
    Benchmark::Gcc,
    Benchmark::Go,
    Benchmark::Vortex,
];

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

fn main() {
    let params = RunParams::from_args(std::env::args().skip(1)).unwrap_or_else(|e| {
        eprintln!("bench_throughput: {e}");
        std::process::exit(2);
    });
    let simulated = params.warmup + params.measure;

    // 1. Per-config hot-path throughput (serial, one benchmark).
    let mut config_entries = Vec::new();
    for (name, config) in standard_configs() {
        let t = Instant::now();
        let stats = simulate(Benchmark::Gcc, config, params);
        let secs = t.elapsed().as_secs_f64();
        let ips = simulated as f64 / secs.max(1e-9);
        println!(
            "{name:16} gcc  {:>8.1} ms  {:>12.0} sim instr/s  (IPC {:.2})",
            secs * 1e3,
            ips,
            stats.ipc()
        );
        let mut e = String::new();
        write!(
            e,
            "    {{\"config\": \"{name}\", \"benchmark\": \"gcc\", \"frontend\": \"synthetic\", \
             \"wall_ms\": {}, \"sim_instr_per_sec\": {}, \"ipc\": {}}}",
            json_f(secs * 1e3),
            json_f(ips),
            json_f(stats.ipc())
        )
        .expect("fmt::Write to a String is infallible");
        config_entries.push(e);
    }

    // 2. Parallel sweep speedup: the same grid at jobs=1 and jobs=4,
    // with a per-cell timing breakdown. Programs are generated once
    // and shared so both runs simulate bit-identical cells.
    let grid_configs = [SimConfig::baseline(256), SimConfig::with_precon(128, 128)];
    let programs = par_map(&SWEEP_BENCHMARKS, 1, |&b| {
        Arc::new(WorkloadBuilder::new(b).seed(params.seed).build())
    });
    let sweep_cells: Vec<SweepCell> = programs
        .iter()
        .flat_map(|p| {
            grid_configs
                .iter()
                .map(|c| SweepCell::new(Arc::clone(p), c.clone()))
        })
        .collect();
    // `exact_jobs` bypasses the default core clamp: oversubscription
    // is part of what this benchmark measures, so the jobs=4 run uses
    // four workers even on a smaller box (and reports it honestly
    // below).
    let run_grid = |jobs: u64| {
        let p = RunParams { jobs, ..params };
        let t = Instant::now();
        let timed = run_cells_timed_jobs(&sweep_cells, p, exact_jobs(jobs));
        let wall = t.elapsed().as_secs_f64();
        let (stats, cell_ms): (Vec<_>, Vec<f64>) = timed.into_iter().unzip();
        (wall, stats, cell_ms)
    };
    let (serial_secs, serial_stats, serial_cell_ms) = run_grid(1);
    let (parallel_secs, parallel_stats, parallel_cell_ms) = run_grid(4);
    let identical = serial_stats == parallel_stats;
    let speedup_wall = serial_secs / parallel_secs.max(1e-9);
    let cells = sweep_cells.len();
    let cores = available_cores();
    // With more workers than cores, threads time-slice one another:
    // total CPU work rises (scheduling overhead) while the critical
    // path cannot shrink, so speedup ≤ 1 is the *expected* result,
    // not a sweep-executor defect. The flag and the per-cell times
    // make that diagnosis from the JSON alone.
    let oversubscribed = 4 > cores;
    // Wall-clock speedup flatters an oversubscribed box (scheduler
    // noise in the jobs=1 run can make 1.05x out of nothing). The
    // honest figure divides the *useful work* — the sum of per-cell
    // busy ms measured on a serial run — by the parallel wall time:
    // it reaches ~N on N idle cores and stays ~1 when there is only
    // one core to share, whatever the thread count.
    let busy_ms_jobs1: f64 = serial_cell_ms.iter().sum();
    let busy_ms_jobs4: f64 = parallel_cell_ms.iter().sum();
    let speedup_busy = busy_ms_jobs1 / (parallel_secs * 1e3).max(1e-9);
    println!(
        "sweep {cells} cells: jobs=1 {:.1} ms, jobs=4 {:.1} ms, wall speedup {:.2}x, \
         busy-based speedup {:.2}x, identical: {identical}",
        serial_secs * 1e3,
        parallel_secs * 1e3,
        speedup_wall,
        speedup_busy,
    );
    println!(
        "  per-cell busy ms: jobs=1 sum {:.1}, jobs=4 sum {:.1} ({} cores{})",
        busy_ms_jobs1,
        busy_ms_jobs4,
        cores,
        if oversubscribed {
            "; oversubscribed — speedup <= 1 expected"
        } else {
            ""
        }
    );
    if !identical {
        eprintln!("bench_throughput: parallel sweep diverged from serial results");
        std::process::exit(1);
    }

    let cell_list = |ms: &[f64]| ms.iter().map(|&m| json_f(m)).collect::<Vec<_>>().join(", ");
    let json = format!(
        "{{\n  \"warmup\": {},\n  \"measure\": {},\n  \"seed\": {},\n  \"cores\": {cores},\n  \
         \"configs\": [\n{}\n  ],\n  \"sweep\": {{\"cells\": {cells}, \"cores\": {cores}, \
         \"jobs1_wall_ms\": {}, \"jobs4_wall_ms\": {}, \"speedup_wall\": {}, \
         \"busy_ms_jobs1\": {}, \"busy_ms_jobs4\": {}, \"speedup_busy\": {}, \
         \"identical\": {identical}, \"oversubscribed\": {oversubscribed},\n    \
         \"cell_ms_jobs1\": [{}],\n    \"cell_ms_jobs4\": [{}]}}\n}}\n",
        params.warmup,
        params.measure,
        params.seed,
        config_entries.join(",\n"),
        json_f(serial_secs * 1e3),
        json_f(parallel_secs * 1e3),
        json_f(speedup_wall),
        json_f(busy_ms_jobs1),
        json_f(busy_ms_jobs4),
        json_f(speedup_busy),
        cell_list(&serial_cell_ms),
        cell_list(&parallel_cell_ms),
    );
    std::fs::write("BENCH_sim.json", &json).unwrap_or_else(|e| {
        eprintln!("bench_throughput: cannot write BENCH_sim.json: {e}");
        std::process::exit(1);
    });
    println!("wrote BENCH_sim.json");
}
