//! Regenerates Figure 5: trace-cache miss rates for all SPECint95
//! benchmarks across trace-cache / preconstruction-buffer sizes.
//!
//! Usage: `cargo run -p tpc-experiments --release --bin fig5 --
//! [--warmup N] [--measure N] [--seed N] [--jobs N] [--quick]`

use tpc_experiments::{fig5, RunParams};
use tpc_workloads::Benchmark;

fn main() {
    let params = RunParams::from_args(std::env::args().skip(1)).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    eprintln!(
        "fig5: sweeping {} configs x 8 benchmarks ({params:?})",
        fig5::configs().len()
    );
    let rows = fig5::run(&Benchmark::ALL, params);
    print!("{}", fig5::render(&rows));
}
