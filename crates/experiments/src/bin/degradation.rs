//! Graceful-degradation sweep: trace-cache hit rate and fetch IPC
//! under increasing fault-injection intensity.
//!
//! Usage: `cargo run -p tpc-experiments --release --bin degradation --
//! [--warmup N] [--measure N] [--seed N] [--jobs N] [--quick]
//! [--checkpoint PATH]`
//!
//! With `--checkpoint`, completed cells stream to a JSONL file and an
//! interrupted sweep resumes from it, producing byte-identical output
//! (the file identifies its sweep by fingerprint; a stale file from
//! different parameters is rejected). Exit codes: 0 = all cells ran,
//! 1 = one or more cells failed (reported in the table), 2 = usage or
//! checkpoint error.

use std::path::PathBuf;
use tpc_experiments::{degradation, CellBudget, RunParams};
use tpc_workloads::Benchmark;

fn main() {
    let mut plain = Vec::new();
    let mut checkpoint: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--checkpoint" {
            match args.next() {
                Some(p) => checkpoint = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--checkpoint expects a path");
                    std::process::exit(2);
                }
            }
        } else {
            plain.push(arg);
        }
    }
    let params = RunParams::from_args(plain.into_iter()).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    eprintln!(
        "degradation: sweeping {} intensities x 8 benchmarks ({params:?})",
        degradation::INTENSITIES.len()
    );
    let rows = degradation::run(
        &Benchmark::ALL,
        params,
        CellBudget::default(),
        checkpoint.as_deref(),
    )
    .unwrap_or_else(|e| {
        eprintln!("degradation: checkpoint error: {e}");
        std::process::exit(2);
    });
    print!("{}", degradation::render(&rows));
    let failures = rows.iter().filter(|r| r.result.is_err()).count();
    if failures > 0 {
        eprintln!("degradation: {failures} cell(s) failed (see table)");
        std::process::exit(1);
    }
}
