//! Regenerates Tables 1-3: I-cache behaviour with and without
//! preconstruction, for gcc and go.
//!
//! Usage: `cargo run -p tpc-experiments --release --bin tables --
//! [--warmup N] [--measure N] [--seed N] [--jobs N] [--quick]`

use tpc_experiments::{tables, RunParams};
use tpc_workloads::Benchmark;

fn main() {
    let params = RunParams::from_args(std::env::args().skip(1)).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let rows = tables::run(&[Benchmark::Gcc, Benchmark::Go], params);
    print!("{}", tables::render(&rows));
}
