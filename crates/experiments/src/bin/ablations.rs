//! Runs the design-choice ablations (start-point stack depth,
//! constructor count, prefetch-cache capacity, decision depth).
//!
//! Usage: `cargo run -p tpc-experiments --release --bin ablations --
//! [--warmup N] [--measure N] [--seed N] [--jobs N] [--quick]`

use tpc_experiments::{ablations, RunParams};
use tpc_workloads::Benchmark;

fn main() {
    let params = RunParams::from_args(std::env::args().skip(1)).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let rows = ablations::run(Benchmark::Gcc, params);
    print!("{}", ablations::render(Benchmark::Gcc, &rows));
    let rows = ablations::dynamic_split(Benchmark::Gcc, params);
    print!("{}", ablations::render_dynamic_split(Benchmark::Gcc, &rows));
}
