//! Static-vs-dynamic coverage report, written to stdout (markdown)
//! and `BENCH_analysis.json` (std-only JSON).
//!
//! Usage: `analysis_report [BENCH..] [--warmup N] [--measure N]
//! [--seed N] [--jobs N] [--quick]`. Leading positional arguments
//! select benchmarks (default: all eight); the flags match every
//! other experiment binary. Output is byte-identical for any
//! `--jobs` value.

use tpc_experiments::{coverage, RunParams};
use tpc_workloads::Benchmark;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let split = args
        .iter()
        .position(|a| a.starts_with('-'))
        .unwrap_or(args.len());
    let (names, flags) = args.split_at(split);

    let mut benchmarks = Vec::new();
    for name in names {
        match name.parse::<Benchmark>() {
            Ok(b) => benchmarks.push(b),
            Err(e) => {
                eprintln!("analysis_report: {e}");
                std::process::exit(2);
            }
        }
    }
    if benchmarks.is_empty() {
        benchmarks.extend(Benchmark::ALL);
    }

    let params = RunParams::from_args(flags.iter().cloned()).unwrap_or_else(|e| {
        eprintln!("analysis_report: {e}");
        std::process::exit(2);
    });

    println!("# Static vs dynamic coverage\n");
    // Deliberately omits --jobs: output must be byte-identical at any
    // job count, and the header is part of the output.
    println!(
        "run parameters: warmup={} measure={} seed={}\n",
        params.warmup, params.measure, params.seed
    );
    let rows = coverage::run(&benchmarks, params);
    print!("{}", coverage::render(&rows));

    let json = coverage::render_json(&rows, params);
    std::fs::write("BENCH_analysis.json", &json).unwrap_or_else(|e| {
        eprintln!("analysis_report: cannot write BENCH_analysis.json: {e}");
        std::process::exit(1);
    });
    println!("\nwrote BENCH_analysis.json");
}
