//! Regenerates Figure 6: speedup from preconstruction (equal-area)
//! for gcc, go, perl and vortex.
//!
//! Usage: `cargo run -p tpc-experiments --release --bin fig6 --
//! [--warmup N] [--measure N] [--seed N] [--jobs N] [--quick]`

use tpc_experiments::{fig6, RunParams};
use tpc_workloads::Benchmark;

fn main() {
    let params = RunParams::from_args(std::env::args().skip(1)).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let rows = fig6::run(&Benchmark::large_working_set(), params);
    print!("{}", fig6::render(&rows));
}
