//! Ablation studies over the design choices `DESIGN.md` calls out.
//!
//! These are not paper figures; they probe which parts of the
//! preconstruction design carry the benefit:
//!
//! * start-point stack depth (the paper's 16),
//! * number of parallel trace constructors (the paper's 4),
//! * prefetch-cache capacity (the paper's 256 instructions),
//! * the constructors' decision-stack depth (path-forking budget).

use crate::report::{f1, f2, markdown_table};
use crate::runner::{simulate_many, RunParams};
use tpc_core::EngineConfig;
use tpc_processor::SimConfig;
use tpc_workloads::Benchmark;

/// One ablation measurement.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Which knob was varied.
    pub knob: &'static str,
    /// The knob's value.
    pub value: u32,
    /// Trace-cache misses per 1000 instructions.
    pub misses_per_kilo: f64,
    /// Preconstruction-buffer hits per 1000 instructions.
    pub buffer_hits_per_kilo: f64,
}

fn precon_config(mutate: impl FnOnce(&mut EngineConfig)) -> SimConfig {
    let mut config = SimConfig::with_precon(128, 128);
    mutate(&mut config.engine);
    config
}

/// Runs all ablations on one benchmark (gcc by default in the
/// binary: the largest working set). All knob × value cells are
/// assembled into a single sweep so they fan out together.
pub fn run(benchmark: Benchmark, params: RunParams) -> Vec<AblationRow> {
    type Sweep = (&'static str, &'static [u32], fn(u32) -> SimConfig);
    let sweeps: [Sweep; 4] = [
        ("stack_depth", &[1, 4, 16, 64], |v| {
            precon_config(|e| e.stack_depth = v as usize)
        }),
        ("constructors", &[1, 2, 4, 8], |v| {
            precon_config(|e| e.constructors = v as usize)
        }),
        ("prefetch_capacity", &[64, 128, 256, 1024], |v| {
            precon_config(|e| e.prefetch_capacity = v)
        }),
        ("decision_depth", &[0, 1, 3, 6], |v| {
            precon_config(|e| e.decision_depth = v as usize)
        }),
    ];

    let configs: Vec<SimConfig> = sweeps
        .iter()
        .flat_map(|&(_, values, make)| values.iter().map(move |&v| make(v)))
        .collect();
    let stats = simulate_many(benchmark, &configs, params);

    let mut rows = Vec::new();
    let mut it = stats.iter();
    for &(knob, values, _) in &sweeps {
        for &v in values {
            let s = it.next().expect("one result per config");
            rows.push(AblationRow {
                knob,
                value: v,
                misses_per_kilo: s.tc_misses_per_kilo(),
                buffer_hits_per_kilo: s.precon_buffer_hits as f64 * 1000.0
                    / s.retired_instructions.max(1) as f64,
            });
        }
    }
    rows
}

/// One row of the dynamic-partitioning study (paper Section 5.1's
/// future-work design, implemented as
/// [`tpc_core::storage::UnifiedStore`]).
#[derive(Debug, Clone)]
pub struct DynamicSplitRow {
    /// Organization label.
    pub label: &'static str,
    /// Trace-cache misses per 1000 instructions.
    pub misses_per_kilo: f64,
    /// IPC.
    pub ipc: f64,
}

/// Compares the paper's static split against fixed and adaptive
/// unified partitions at equal total capacity (256 entries here, the
/// Figure 8 operating point).
pub fn dynamic_split(benchmark: Benchmark, params: RunParams) -> Vec<DynamicSplitRow> {
    let total = 256;
    let unified = |pb_ways: u8, epoch: u64| {
        let mut c = SimConfig::unified(total, pb_ways, epoch);
        c.engine.enabled = true;
        c
    };
    let labeled: Vec<(&'static str, SimConfig)> = vec![
        ("all trace cache (no precon)", SimConfig::baseline(total)),
        (
            "static split 128+128",
            SimConfig::with_precon(total / 2, total / 2),
        ),
        ("unified, 1/4 ways fixed", unified(1, 0)),
        ("unified, 2/4 ways fixed", unified(2, 0)),
        ("unified, adaptive", unified(1, 4096)),
    ];
    let configs: Vec<SimConfig> = labeled.iter().map(|(_, c)| c.clone()).collect();
    let stats = simulate_many(benchmark, &configs, params);
    labeled
        .into_iter()
        .zip(stats)
        .map(|((label, _), s)| DynamicSplitRow {
            label,
            misses_per_kilo: s.tc_misses_per_kilo(),
            ipc: s.ipc(),
        })
        .collect()
}

/// Renders the dynamic-partitioning study.
pub fn render_dynamic_split(benchmark: Benchmark, rows: &[DynamicSplitRow]) -> String {
    let mut out = format!("\n### dynamic TC/PB partitioning ({benchmark}, 256 total entries)\n\n");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| vec![r.label.to_string(), f1(r.misses_per_kilo), f2(r.ipc)])
        .collect();
    out.push_str(&markdown_table(
        &["organization", "misses/1k", "IPC"],
        &table,
    ));
    out
}

/// Renders the ablation results, one section per knob.
pub fn render(benchmark: Benchmark, rows: &[AblationRow]) -> String {
    let mut out = format!("\n## Ablations on {benchmark}\n");
    let mut knobs: Vec<&'static str> = rows.iter().map(|r| r.knob).collect();
    knobs.dedup();
    for knob in knobs {
        out.push_str(&format!("\n### {knob}\n\n"));
        let table: Vec<Vec<String>> = rows
            .iter()
            .filter(|r| r.knob == knob)
            .map(|r| {
                vec![
                    r.value.to_string(),
                    f1(r.misses_per_kilo),
                    f1(r.buffer_hits_per_kilo),
                ]
            })
            .collect();
        out.push_str(&markdown_table(&[knob, "misses/1k", "PB hits/1k"], &table));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_knobs_swept() {
        let rows = run(Benchmark::Compress, RunParams::quick());
        let knobs: std::collections::HashSet<_> = rows.iter().map(|r| r.knob).collect();
        assert_eq!(knobs.len(), 4);
        assert_eq!(rows.len(), 16);
    }

    #[test]
    fn render_sections() {
        let rows = run(Benchmark::Compress, RunParams::quick());
        let text = render(Benchmark::Compress, &rows);
        assert!(text.contains("stack_depth"));
        assert!(text.contains("decision_depth"));
    }
}
