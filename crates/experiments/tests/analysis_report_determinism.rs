//! The `analysis_report` binary must produce byte-identical output —
//! stdout *and* `BENCH_analysis.json` — regardless of `--jobs`, and
//! must reject unknown benchmark names.

use std::path::PathBuf;
use std::process::Command;

/// Runs the binary in its own scratch directory (it writes
/// `BENCH_analysis.json` to the cwd) and returns (stdout, json).
fn run(tag: &str, args: &[&str]) -> (String, String) {
    let dir =
        std::env::temp_dir().join(format!("tpc-analysis-report-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let out = Command::new(env!("CARGO_BIN_EXE_analysis_report"))
        .args(args)
        .current_dir(&dir)
        .output()
        .expect("run analysis_report");
    assert!(
        out.status.success(),
        "analysis_report failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json_path: PathBuf = dir.join("BENCH_analysis.json");
    let json = std::fs::read_to_string(&json_path).expect("read BENCH_analysis.json");
    let _ = std::fs::remove_dir_all(&dir);
    (String::from_utf8(out.stdout).expect("utf8 stdout"), json)
}

const WINDOW: &[&str] = &["--warmup", "3000", "--measure", "6000", "--seed", "5"];

#[test]
fn report_is_byte_identical_across_job_counts() {
    let mut base = vec!["compress", "li"];
    base.extend_from_slice(WINDOW);
    let (out1, json1) = run("j1", &[&base[..], &["--jobs", "1"]].concat());
    let (out4, json4) = run("j4", &[&base[..], &["--jobs", "4"]].concat());
    assert_eq!(out1, out4, "stdout depends on --jobs");
    assert_eq!(json1, json4, "BENCH_analysis.json depends on --jobs");
}

#[test]
fn json_names_every_requested_benchmark() {
    let mut args = vec!["go", "vortex"];
    args.extend_from_slice(WINDOW);
    args.extend_from_slice(&["--jobs", "2"]);
    let (out, json) = run("names", &args);
    assert!(out.contains("| go"));
    assert!(json.contains("\"benchmark\": \"go\""));
    assert!(json.contains("\"benchmark\": \"vortex\""));
    assert!(json.contains("\"seed\": 5"));
}

#[test]
fn unknown_benchmark_is_rejected() {
    let out = Command::new(env!("CARGO_BIN_EXE_analysis_report"))
        .arg("not-a-benchmark")
        .output()
        .expect("run analysis_report");
    assert!(!out.status.success());
}
