//! Parallel sweeps must be bit-identical to serial ones.
//!
//! The executor in `par_sweep` only changes *where* each cell runs,
//! never *what* it computes: every cell gets its own `Simulator` over
//! a shared immutable `Program`, so the statistics must not depend on
//! the thread count in any way. These tests pin that contract with
//! exact `SimStats` equality (every field is an integer counter).

use tpc_core::FaultPlan;
use tpc_experiments::{simulate_many, sweep_grid, RunParams};
use tpc_processor::SimConfig;
use tpc_workloads::Benchmark;

fn params_with_jobs(jobs: u64) -> RunParams {
    RunParams {
        jobs,
        ..RunParams::quick()
    }
}

#[test]
fn sweep_grid_is_identical_across_job_counts() {
    let benchmarks = [Benchmark::Compress, Benchmark::Go];
    let configs = [
        SimConfig::baseline(128),
        SimConfig::with_precon(64, 64),
        SimConfig::with_precon(64, 64).with_preprocess(),
    ];
    let serial = sweep_grid(&benchmarks, &configs, params_with_jobs(1));
    let parallel = sweep_grid(&benchmarks, &configs, params_with_jobs(4));
    assert_eq!(
        serial, parallel,
        "jobs=4 must produce bit-identical statistics to jobs=1"
    );
}

#[test]
fn simulate_many_is_identical_across_job_counts() {
    let configs = [SimConfig::baseline(64), SimConfig::with_precon(64, 32)];
    let serial = simulate_many(Benchmark::Ijpeg, &configs, params_with_jobs(1));
    let parallel = simulate_many(Benchmark::Ijpeg, &configs, params_with_jobs(4));
    assert_eq!(serial, parallel);
}

#[test]
fn fault_schedules_are_identical_across_job_counts() {
    // Fault schedules are a pure function of (plan, cycle), never of
    // wall clock or thread identity: the same seed must produce the
    // same schedule — and therefore bit-identical statistics, fault
    // counters included — at any thread count.
    let configs = [
        SimConfig::with_precon(64, 64).with_faults(FaultPlan::all(0xFA57_0001, 25)),
        SimConfig::with_precon(64, 64).with_faults(FaultPlan::all(0xFA57_0002, 100)),
        SimConfig::baseline(128).with_faults(FaultPlan::all(0xFA57_0003, 50)),
    ];
    let benchmarks = [Benchmark::Compress, Benchmark::Li];
    let serial = sweep_grid(&benchmarks, &configs, params_with_jobs(1));
    for jobs in [2, 4, 0] {
        let parallel = sweep_grid(&benchmarks, &configs, params_with_jobs(jobs));
        assert_eq!(
            serial, parallel,
            "jobs={jobs} changed a fault-injected sweep's statistics"
        );
    }
    // The schedules actually fired (same counts in both runs, but a
    // vacuous equality over zero faults would prove nothing).
    assert!(serial.iter().flatten().any(|s| s.faults.landed > 0));
}

#[test]
fn auto_job_count_matches_serial() {
    // jobs = 0 resolves to the machine's core count; whatever that
    // is, results must not change.
    let configs = [SimConfig::with_precon(64, 64)];
    let serial = sweep_grid(&[Benchmark::Perl], &configs, params_with_jobs(1));
    let auto = sweep_grid(&[Benchmark::Perl], &configs, params_with_jobs(0));
    assert_eq!(serial, auto);
}
