//! Diagnostic: dynamic instructions per full program pass (phase
//! rotation period). Run with `cargo test -p tpc-workloads --test
//! pass_length -- --ignored --nocapture`.

use tpc_exec::Executor;
use tpc_workloads::{Benchmark, WorkloadBuilder};

#[test]
#[ignore = "diagnostic, prints pass lengths"]
fn print_pass_lengths() {
    for b in Benchmark::ALL {
        let p = WorkloadBuilder::new(b).seed(1).build();
        let mut ex = Executor::new(&p);
        let mut n = 0u64;
        let cap = 30_000_000;
        while ex.completions() < 1 && n < cap {
            ex.next();
            n += 1;
        }
        let pass1 = n;
        while ex.completions() < 2 && n < cap {
            ex.next();
            n += 1;
        }
        println!(
            "{:9} static={:6} pass1={:9} pass2={:9}",
            b.name(),
            p.len(),
            pass1,
            n - pass1
        );
    }
}
