//! Static branch-bias classification.
//!
//! The preconstruction constructor consults a *dynamic* bimodal
//! predictor when it decides whether to follow or fork a conditional
//! branch; the workload generator, however, attaches an
//! [`OutcomeModel`] to every branch, which makes the long-run
//! direction of each branch a *static* property of the program. This
//! module exports that property in the form `tpc-analysis` consumes:
//! a per-branch [`StaticBias`] derived from the model's taken
//! probability, using the same ≥90 % / ≤10 % thresholds as
//! [`OutcomeModel::is_strongly_biased`].

use tpc_isa::model::OutcomeModel;
use tpc_isa::{Addr, OpClass, Program};

/// Static classification of a conditional branch's long-run
/// direction, mirroring the three-way decision the constructor makes
/// against its bimodal counters (follow taken, follow not-taken, or
/// fork both arms).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StaticBias {
    /// Taken ≥ 90 % of the time: the constructor follows the taken
    /// arm.
    StronglyTaken,
    /// Taken ≤ 10 % of the time: the constructor follows the
    /// fall-through arm.
    StronglyNotTaken,
    /// Anything in between: the constructor forks both arms.
    Weak,
}

/// Classifies one outcome model by its long-run taken probability.
pub fn classify(model: &OutcomeModel) -> StaticBias {
    let permille = model.taken_permille();
    if permille >= 900 {
        StaticBias::StronglyTaken
    } else if permille <= 100 {
        StaticBias::StronglyNotTaken
    } else {
        StaticBias::Weak
    }
}

/// The static bias of every conditional branch in `program`, in
/// address order. Branches without a model (possible only in
/// hand-built programs that bypass validation paths) are classified
/// [`StaticBias::Weak`] — the sound over-approximation, since a
/// forked enumeration covers both arms.
pub fn program_bias(program: &Program) -> Vec<(Addr, StaticBias)> {
    program
        .iter()
        .filter(|(_, op)| op.class() == OpClass::Branch)
        .map(|(addr, _)| {
            let bias = program
                .branch_model(addr)
                .map_or(StaticBias::Weak, classify);
            (addr, bias)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Benchmark, WorkloadBuilder};

    #[test]
    fn classify_matches_is_strongly_biased() {
        let models = [
            OutcomeModel::AlwaysTaken,
            OutcomeModel::NeverTaken,
            OutcomeModel::Loop { trip: 20 },
            OutcomeModel::Biased {
                num: 39,
                denom: 40,
                seed: 1,
            },
            OutcomeModel::Biased {
                num: 1,
                denom: 2,
                seed: 1,
            },
            OutcomeModel::Pattern {
                bits: 0b1010,
                len: 4,
            },
        ];
        for m in models {
            let strong = !matches!(classify(&m), StaticBias::Weak);
            assert_eq!(strong, m.is_strongly_biased(), "{m:?}");
        }
    }

    #[test]
    fn directions_follow_the_probability() {
        assert_eq!(
            classify(&OutcomeModel::AlwaysTaken),
            StaticBias::StronglyTaken
        );
        assert_eq!(
            classify(&OutcomeModel::NeverTaken),
            StaticBias::StronglyNotTaken
        );
        assert_eq!(
            classify(&OutcomeModel::Biased {
                num: 1,
                denom: 40,
                seed: 0
            }),
            StaticBias::StronglyNotTaken
        );
        assert_eq!(
            classify(&OutcomeModel::Biased {
                num: 13,
                denom: 20,
                seed: 0
            }),
            StaticBias::Weak
        );
    }

    #[test]
    fn program_bias_covers_every_branch_in_order() {
        let p = WorkloadBuilder::new(Benchmark::Li).seed(3).build();
        let biases = program_bias(&p);
        assert_eq!(biases.len(), p.branch_count());
        assert!(biases.windows(2).all(|w| w[0].0 < w[1].0), "address order");
        // Loop latches are strongly taken by construction; the
        // generated program must contain some.
        assert!(biases.iter().any(|(_, b)| *b == StaticBias::StronglyTaken));
    }
}
