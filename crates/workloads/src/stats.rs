//! Static program statistics — the calibration quantities the
//! profiles control, measurable so tests and users can verify them.

use tpc_isa::model::OutcomeModel;
use tpc_isa::{OpClass, Program};

/// Static (code-level) statistics of a program.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StaticStats {
    /// Total instructions.
    pub instructions: u32,
    /// Functions recorded by the generator.
    pub functions: u32,
    /// Conditional branches.
    pub branches: u32,
    /// Conditional branches with a statically backward target
    /// (loop back-edges).
    pub backward_branches: u32,
    /// Branches whose model is strongly biased (≥90 % one way).
    pub strongly_biased_branches: u32,
    /// Direct calls.
    pub calls: u32,
    /// Returns.
    pub returns: u32,
    /// Indirect jumps.
    pub indirect_jumps: u32,
    /// Loads.
    pub loads: u32,
    /// Stores.
    pub stores: u32,
}

impl StaticStats {
    /// Fraction of non-loop conditional branches that are strongly
    /// biased, in 1/1000ths (`None` with no branches).
    pub fn strong_bias_permille(&self) -> Option<u32> {
        (self.branches > 0).then(|| self.strongly_biased_branches * 1000 / self.branches)
    }

    /// Code footprint in bytes (4 bytes per instruction).
    pub fn code_bytes(&self) -> u64 {
        self.instructions as u64 * 4
    }
}

/// Computes static statistics for a program.
pub fn static_stats(program: &Program) -> StaticStats {
    let mut s = StaticStats {
        functions: program.functions().len() as u32,
        instructions: program.len() as u32,
        ..StaticStats::default()
    };
    for (addr, op) in program.iter() {
        match op.class() {
            OpClass::Branch => {
                s.branches += 1;
                if op.is_backward_branch(addr) {
                    s.backward_branches += 1;
                }
                if let Some(model) = program.branch_model(addr) {
                    let strongly = match model {
                        OutcomeModel::Loop { .. } => true,
                        other => other.is_strongly_biased(),
                    };
                    if strongly {
                        s.strongly_biased_branches += 1;
                    }
                }
            }
            OpClass::Call => s.calls += 1,
            OpClass::Return => s.returns += 1,
            OpClass::IndirectJump => s.indirect_jumps += 1,
            OpClass::Load => s.loads += 1,
            OpClass::Store => s.stores += 1,
            _ => {}
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Benchmark, WorkloadBuilder};

    #[test]
    fn counts_are_consistent() {
        let p = WorkloadBuilder::new(Benchmark::Li).seed(1).build();
        let s = static_stats(&p);
        assert_eq!(s.instructions as usize, p.len());
        assert!(s.branches >= s.backward_branches);
        assert!(s.strongly_biased_branches <= s.branches);
        assert!(s.calls > 0 && s.returns > 0);
        assert!(s.indirect_jumps > 0, "li has switches");
    }

    #[test]
    fn footprint_ordering_visible_in_stats() {
        let size =
            |b: Benchmark| static_stats(&WorkloadBuilder::new(b).seed(1).build()).code_bytes();
        assert!(size(Benchmark::Gcc) > 64 * 1024, "gcc exceeds the I-cache");
        assert!(size(Benchmark::Compress) < 8 * 1024);
    }

    #[test]
    fn bias_mix_tracks_profiles() {
        let strong = |b: Benchmark| {
            static_stats(&WorkloadBuilder::new(b).seed(1).build())
                .strong_bias_permille()
                .expect("has branches")
        };
        assert!(strong(Benchmark::Vortex) > strong(Benchmark::Go));
    }
}
