//! # tpc-workloads — synthetic SPECint95-like programs
//!
//! The paper evaluates on SPECint95 binaries compiled with the
//! SimpleScalar toolchain; neither is available here, so this crate
//! generates *synthetic* programs whose control-flow statistics are
//! calibrated per benchmark (see `DESIGN.md` §2 for the substitution
//! argument). Every quantity the paper's mechanisms key on is an
//! explicit profile parameter:
//!
//! * static code footprint (number and size of functions),
//! * working-set phase rotation (function groups the main loop
//!   cycles through — this drives trace-cache capacity misses),
//! * conditional-branch bias mix (strongly vs. weakly biased — this
//!   decides how much of the path space preconstruction explores),
//! * loop trip counts, call density, recursion, and indirect-jump
//!   (switch) density.
//!
//! ```
//! use tpc_workloads::{Benchmark, WorkloadBuilder};
//!
//! let program = WorkloadBuilder::new(Benchmark::Gcc).seed(7).build();
//! assert!(program.len() > 10_000); // gcc's large static footprint
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bias;
mod gen;
mod profile;
pub mod stats;

pub use bias::{classify, program_bias, StaticBias};
pub use gen::WorkloadBuilder;
pub use profile::{Benchmark, ParseBenchmarkError, Profile};
