//! Per-benchmark workload profiles.

use std::fmt;
use std::str::FromStr;

/// The eight SPECint95 benchmarks the paper evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Benchmark {
    /// `compress` — tiny kernel, trivially small working set.
    Compress,
    /// `gcc` — the largest instruction working set in the suite.
    Gcc,
    /// `go` — large working set with notoriously weak branch biases.
    Go,
    /// `ijpeg` — small, loop-dominated working set.
    Ijpeg,
    /// `li` (xlisp) — medium working set, recursion-heavy.
    Li,
    /// `m88ksim` — medium working set.
    M88ksim,
    /// `perl` — medium-large working set, switch/indirect heavy.
    Perl,
    /// `vortex` — large working set with strongly biased branches.
    Vortex,
}

impl Benchmark {
    /// All benchmarks, in the order the paper lists them.
    pub const ALL: [Benchmark; 8] = [
        Benchmark::Compress,
        Benchmark::Gcc,
        Benchmark::Go,
        Benchmark::Ijpeg,
        Benchmark::Li,
        Benchmark::M88ksim,
        Benchmark::Perl,
        Benchmark::Vortex,
    ];

    /// The benchmark's SPEC name.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Compress => "compress",
            Benchmark::Gcc => "gcc",
            Benchmark::Go => "go",
            Benchmark::Ijpeg => "ijpeg",
            Benchmark::Li => "li",
            Benchmark::M88ksim => "m88ksim",
            Benchmark::Perl => "perl",
            Benchmark::Vortex => "vortex",
        }
    }

    /// The calibrated generation profile (see [`Profile`]).
    pub fn profile(self) -> Profile {
        match self {
            // Tiny kernels: even a 64-entry trace cache holds the
            // whole trace working set (paper: "little room to
            // improve").
            Benchmark::Compress => Profile {
                functions: 6,
                constructs_per_fn: (3, 6),
                block_len: (4, 10),
                loop_trip: (16, 64),
                weights: ConstructWeights {
                    straight: 30,
                    looped: 40,
                    if_else: 20,
                    call: 10,
                    switch: 0,
                    recurse: 0,
                },
                strongly_biased_permille: 850,
                phase_groups: 1,
                reps_per_group: 8,
                roots_per_group: 6,
                base_seed: 0xC0_4411,
            },
            // The largest static footprint, many phases (gcc runs
            // pass after pass over functions), mixed biases.
            Benchmark::Gcc => Profile {
                functions: 480,
                constructs_per_fn: (4, 9),
                block_len: (3, 8),
                loop_trip: (2, 8),
                weights: ConstructWeights {
                    straight: 22,
                    looped: 18,
                    if_else: 38,
                    call: 16,
                    switch: 4,
                    recurse: 2,
                },
                strongly_biased_permille: 700,
                phase_groups: 6,
                reps_per_group: 3,
                roots_per_group: 16,
                base_seed: 0x6CC_0001,
            },
            // Large footprint and the suite's weakest branch biases:
            // the trace working set explodes combinatorially.
            Benchmark::Go => Profile {
                functions: 300,
                constructs_per_fn: (4, 9),
                block_len: (3, 8),
                loop_trip: (2, 6),
                weights: ConstructWeights {
                    straight: 22,
                    looped: 16,
                    if_else: 44,
                    call: 16,
                    switch: 2,
                    recurse: 0,
                },
                strongly_biased_permille: 420,
                phase_groups: 4,
                reps_per_group: 3,
                roots_per_group: 20,
                base_seed: 0x60_0002,
            },
            // Small, loop-dominated (DCT kernels): long trips, biased.
            Benchmark::Ijpeg => Profile {
                functions: 14,
                constructs_per_fn: (3, 6),
                block_len: (5, 12),
                loop_trip: (16, 64),
                weights: ConstructWeights {
                    straight: 30,
                    looped: 42,
                    if_else: 18,
                    call: 10,
                    switch: 0,
                    recurse: 0,
                },
                strongly_biased_permille: 880,
                phase_groups: 1,
                reps_per_group: 8,
                roots_per_group: 6,
                base_seed: 0x1395_0007,
            },
            // Lisp interpreter: medium footprint, deep recursion,
            // dispatch through indirect jumps.
            Benchmark::Li => Profile {
                functions: 70,
                constructs_per_fn: (3, 7),
                block_len: (3, 7),
                loop_trip: (2, 8),
                weights: ConstructWeights {
                    straight: 24,
                    looped: 14,
                    if_else: 30,
                    call: 16,
                    switch: 8,
                    recurse: 8,
                },
                strongly_biased_permille: 680,
                phase_groups: 2,
                reps_per_group: 5,
                roots_per_group: 8,
                base_seed: 0x11_0003,
            },
            Benchmark::M88ksim => Profile {
                functions: 90,
                constructs_per_fn: (4, 8),
                block_len: (3, 8),
                loop_trip: (3, 10),
                weights: ConstructWeights {
                    straight: 26,
                    looped: 22,
                    if_else: 32,
                    call: 16,
                    switch: 4,
                    recurse: 0,
                },
                strongly_biased_permille: 760,
                phase_groups: 3,
                reps_per_group: 4,
                roots_per_group: 8,
                base_seed: 0x88_0004,
            },
            // Interpreter loop: switch-heavy dispatch.
            Benchmark::Perl => Profile {
                functions: 200,
                constructs_per_fn: (4, 8),
                block_len: (3, 8),
                loop_trip: (2, 8),
                weights: ConstructWeights {
                    straight: 22,
                    looped: 16,
                    if_else: 30,
                    call: 16,
                    switch: 12,
                    recurse: 4,
                },
                strongly_biased_permille: 700,
                phase_groups: 4,
                reps_per_group: 4,
                roots_per_group: 12,
                base_seed: 0x9E51_0005,
            },
            // Large footprint but *strongly* biased branches —
            // preconstruction's best case (80 % miss reduction).
            Benchmark::Vortex => Profile {
                functions: 300,
                constructs_per_fn: (6, 12),
                block_len: (4, 9),
                loop_trip: (2, 8),
                weights: ConstructWeights {
                    straight: 22,
                    looped: 16,
                    if_else: 34,
                    call: 26,
                    switch: 2,
                    recurse: 0,
                },
                strongly_biased_permille: 950,
                phase_groups: 3,
                reps_per_group: 3,
                roots_per_group: 10,
                base_seed: 0x40_0006,
            },
        }
    }

    /// The benchmarks whose working sets stress the trace cache
    /// (paper Sections 5.3 and 6 report performance for these).
    pub fn large_working_set() -> [Benchmark; 4] {
        [
            Benchmark::Gcc,
            Benchmark::Go,
            Benchmark::Perl,
            Benchmark::Vortex,
        ]
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error from parsing a benchmark name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBenchmarkError {
    /// The unrecognised input.
    pub input: String,
}

impl fmt::Display for ParseBenchmarkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown benchmark {:?} (expected one of: ", self.input)?;
        for (i, b) in Benchmark::ALL.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            f.write_str(b.name())?;
        }
        f.write_str(")")
    }
}

impl std::error::Error for ParseBenchmarkError {}

impl FromStr for Benchmark {
    type Err = ParseBenchmarkError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lower = s.to_ascii_lowercase();
        Benchmark::ALL
            .into_iter()
            .find(|b| b.name() == lower || (lower == "lisp" && *b == Benchmark::Li))
            .ok_or(ParseBenchmarkError {
                input: s.to_string(),
            })
    }
}

/// Relative frequencies of the code constructs a generated function
/// is built from (weights need not sum to anything in particular).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConstructWeights {
    /// Straight-line arithmetic/memory block.
    pub straight: u32,
    /// A counted loop around a block.
    pub looped: u32,
    /// An if-then-else diamond.
    pub if_else: u32,
    /// A call to an earlier-generated function.
    pub call: u32,
    /// An indirect-jump switch over several arms.
    pub switch: u32,
    /// A bounded self-recursive call.
    pub recurse: u32,
}

impl ConstructWeights {
    /// Sum of all weights.
    pub fn total(&self) -> u32 {
        self.straight + self.looped + self.if_else + self.call + self.switch + self.recurse
    }
}

/// Everything the generator needs to emit one benchmark's program.
///
/// The fields are the knobs the paper's behaviour depends on; see the
/// module docs of [`crate`] and `DESIGN.md` §2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Profile {
    /// Number of generated functions (static footprint driver).
    pub functions: u32,
    /// Range of top-level constructs per function.
    pub constructs_per_fn: (u32, u32),
    /// Range of instructions per straight-line block.
    pub block_len: (u32, u32),
    /// Range of loop trip counts.
    pub loop_trip: (u32, u32),
    /// Construct mix.
    pub weights: ConstructWeights,
    /// Fraction (in 1/1000ths) of if-else branches that are strongly
    /// biased (~95/5); the rest are weak (30–70 %).
    pub strongly_biased_permille: u32,
    /// Number of working-set phases the main loop rotates through.
    pub phase_groups: u32,
    /// Iterations of each phase before moving to the next.
    pub reps_per_group: u32,
    /// Group root functions `main` calls per phase iteration (drives
    /// how much of the group's code each phase touches).
    pub roots_per_group: u32,
    /// Base PRNG seed mixed with the user seed.
    pub base_seed: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmarks_have_distinct_names() {
        let names: std::collections::HashSet<_> = Benchmark::ALL.iter().map(|b| b.name()).collect();
        assert_eq!(names.len(), 8);
    }

    #[test]
    fn parsing_round_trips() {
        for b in Benchmark::ALL {
            assert_eq!(b.name().parse::<Benchmark>().unwrap(), b);
        }
        assert_eq!("GCC".parse::<Benchmark>().unwrap(), Benchmark::Gcc);
        assert_eq!("lisp".parse::<Benchmark>().unwrap(), Benchmark::Li);
        assert!("mcf".parse::<Benchmark>().is_err());
    }

    #[test]
    fn parse_error_lists_alternatives() {
        let err = "nope".parse::<Benchmark>().unwrap_err();
        assert!(err.to_string().contains("vortex"));
    }

    #[test]
    fn working_set_ordering_is_calibrated() {
        // The paper's key size relationships must hold in the
        // profiles: gcc > vortex/go ≫ compress/ijpeg.
        let f = |b: Benchmark| b.profile().functions;
        assert!(f(Benchmark::Gcc) > f(Benchmark::Vortex));
        assert!(f(Benchmark::Vortex) > f(Benchmark::Go) || f(Benchmark::Go) > 100);
        assert!(f(Benchmark::Compress) < 20);
        assert!(f(Benchmark::Ijpeg) < 20);
    }

    #[test]
    fn go_has_the_weakest_biases() {
        let bias = |b: Benchmark| b.profile().strongly_biased_permille;
        for b in Benchmark::ALL {
            if b != Benchmark::Go {
                assert!(bias(Benchmark::Go) < bias(b), "go weaker than {b}");
            }
        }
        assert!(bias(Benchmark::Vortex) >= 940, "vortex strongly biased");
    }

    #[test]
    fn weights_total_nonzero() {
        for b in Benchmark::ALL {
            assert!(b.profile().weights.total() > 0);
        }
    }
}
