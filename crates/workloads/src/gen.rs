//! CFG-structured program generation.

use crate::profile::{Benchmark, Profile};
use tpc_isa::model::{IndirectModel, OutcomeModel, XorShift64};
use tpc_isa::{Addr, BranchCond, Op, Program, ProgramBuilder, Reg};

/// Builder for a synthetic benchmark program.
///
/// ```
/// use tpc_workloads::{Benchmark, WorkloadBuilder};
///
/// let p = WorkloadBuilder::new(Benchmark::Compress).seed(42).build();
/// let q = WorkloadBuilder::new(Benchmark::Compress).seed(42).build();
/// assert_eq!(p.len(), q.len()); // deterministic for a given seed
/// ```
#[derive(Debug, Clone)]
pub struct WorkloadBuilder {
    benchmark: Option<Benchmark>,
    profile: Profile,
    label: String,
    seed: u64,
    scale_permille: u32,
}

impl WorkloadBuilder {
    /// Starts a builder for `benchmark` with seed 0 at natural scale.
    pub fn new(benchmark: Benchmark) -> Self {
        WorkloadBuilder {
            benchmark: Some(benchmark),
            profile: benchmark.profile(),
            label: benchmark.name().to_string(),
            seed: 0,
            scale_permille: 1000,
        }
    }

    /// Starts a builder over a custom [`Profile`] — for sensitivity
    /// studies (e.g. sweeping the branch-bias mix) and user-defined
    /// workloads.
    pub fn from_profile(label: impl Into<String>, profile: Profile) -> Self {
        WorkloadBuilder {
            benchmark: None,
            profile,
            label: label.into(),
            seed: 0,
            scale_permille: 1000,
        }
    }

    /// Sets the generation seed (different seeds give different —
    /// but statistically equivalent — programs).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Scales the static footprint: 500 halves the function count,
    /// 2000 doubles it. Used by ablation studies.
    pub fn scale_permille(mut self, scale: u32) -> Self {
        self.scale_permille = scale.max(1);
        self
    }

    /// The benchmark this builder mirrors, when it is one of the
    /// SPECint95 profiles rather than a custom profile.
    pub fn benchmark(&self) -> Option<Benchmark> {
        self.benchmark
    }

    /// Human-readable workload label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The profile the builder will generate from.
    pub fn profile(&self) -> &Profile {
        &self.profile
    }

    /// Generates the program.
    ///
    /// # Panics
    ///
    /// Panics only on internal generator bugs (the emitted program
    /// fails `Program` validation) — generation itself cannot fail.
    pub fn build(&self) -> Program {
        let mut g = Generator::new(&self.profile, self.seed, self.scale_permille);
        g.emit(&self.label)
    }
}

/// Scratch registers the generator cycles through for block bodies
/// (avoiding r0/LINK and the loop-counter registers r26–r28).
const SCRATCH: [u8; 12] = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12];
/// Registers carrying per-function base addresses for loads/stores.
const BASE: [u8; 4] = [20, 21, 22, 23];

struct Generator<'p> {
    profile: &'p Profile,
    rng: XorShift64,
    b: ProgramBuilder,
    fn_entries: Vec<Addr>,
    functions: u32,
    /// Call constructs emitted in the function being generated; the
    /// per-function cap keeps the dynamic call tree subcritical
    /// (expected calls per activation < 1), which bounds pass length.
    calls_in_fn: u32,
}

impl<'p> Generator<'p> {
    fn new(profile: &'p Profile, seed: u64, scale_permille: u32) -> Self {
        let functions = ((profile.functions as u64 * scale_permille as u64) / 1000).max(1) as u32;
        Generator {
            profile,
            rng: XorShift64::new(profile.base_seed ^ seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            b: ProgramBuilder::new(),
            fn_entries: Vec::with_capacity(functions as usize),
            functions,
            calls_in_fn: 0,
        }
    }

    fn range(&mut self, (lo, hi): (u32, u32)) -> u32 {
        debug_assert!(lo <= hi);
        lo + self.rng.next_below(hi - lo + 1)
    }

    fn reg(&mut self) -> Reg {
        Reg::new(SCRATCH[self.rng.next_below(SCRATCH.len() as u32) as usize])
    }

    fn base_reg(&mut self) -> Reg {
        Reg::new(BASE[self.rng.next_below(BASE.len() as u32) as usize])
    }

    fn emit(&mut self, label: &str) -> Program {
        for i in 0..self.functions {
            self.emit_function(i);
        }
        self.emit_main();
        let program = std::mem::take(&mut self.b)
            .build()
            .expect("generator emits valid programs");
        debug_assert!(!program.is_empty(), "generated {label} is non-empty");
        program
    }

    /// One function: base-register setup, a few constructs, return.
    fn emit_function(&mut self, index: u32) {
        self.calls_in_fn = 0;
        let entry = self.b.here();
        // Seed the function's memory base registers so load/store
        // addresses differ per function but stay in the footprint.
        for (i, &br) in BASE.iter().enumerate() {
            let offset = (self.rng.next_below(1 << 18) as i32) + i as i32 * 64;
            self.b.push(Op::LoadImm {
                rd: Reg::new(br),
                imm: offset,
            });
        }
        let constructs = self.range(self.profile.constructs_per_fn);
        for _ in 0..constructs {
            self.emit_construct(index, entry, 0);
        }
        self.b.push(Op::Return);
        self.b.record_function(format!("f{index}"), entry);
        self.fn_entries.push(entry);
    }

    fn emit_construct(&mut self, fn_index: u32, fn_entry: Addr, depth: u32) {
        let w = self.profile.weights;
        // Nested constructs (inside loop/if bodies) are restricted to
        // non-call shapes: a call inside a loop multiplies the whole
        // callee subtree by the trip count, which makes dynamic pass
        // length explode combinatorially for deep call DAGs.
        if depth > 0 {
            if self.rng.chance(w.if_else, (w.straight + w.if_else).max(1)) {
                self.emit_if_else(fn_index, fn_entry, depth);
            } else {
                self.emit_block();
            }
            return;
        }
        let mut pick = self.rng.next_below(w.total());
        let mut choose = |weight: u32| {
            if pick < weight {
                true
            } else {
                pick -= weight;
                false
            }
        };
        if choose(w.straight) {
            self.emit_block();
        } else if choose(w.looped) {
            self.emit_loop(fn_index, fn_entry, depth);
        } else if choose(w.if_else) {
            self.emit_if_else(fn_index, fn_entry, depth);
        } else if choose(w.call) {
            self.emit_call(fn_index);
        } else if choose(w.switch) {
            self.emit_switch();
        } else {
            self.emit_recursion(fn_entry);
        }
    }

    /// A straight-line block with a realistic mix: ~45 % ALU, ~25 %
    /// loads, ~10 % stores, ~8 % logic, small tail of mul/shift.
    ///
    /// Dependences are chain-heavy, as in integer code: roughly half
    /// the operations consume the previous result (accumulator and
    /// address chains), and some loads chase the previous load's
    /// value as a base (pointer chasing) — the serial chains that
    /// trace preprocessing's collapsing pays off on.
    fn emit_block(&mut self) {
        let len = self.range(self.profile.block_len);
        let mut last_dest: Option<Reg> = None;
        for _ in 0..len {
            let rd = self.reg();
            let mut rs1 = self.reg();
            let rs2 = self.reg();
            if let Some(prev) = last_dest {
                if self.rng.chance(1, 2) {
                    rs1 = prev; // chain on the previous result
                }
            }
            let op = match self.rng.next_below(100) {
                0..=24 => Op::Add { rd, rs1, rs2 },
                25..=44 => Op::AddImm {
                    rd,
                    rs1,
                    imm: self.rng.next_below(256) as i32 - 128,
                },
                45..=69 => {
                    let base = match last_dest {
                        // Pointer chase: the previous value is the base.
                        Some(prev) if self.rng.chance(3, 10) => prev,
                        _ => self.base_reg(),
                    };
                    Op::Load {
                        rd,
                        base,
                        offset: (self.rng.next_below(64) * 8) as i32,
                    }
                }
                70..=79 => {
                    let base = self.base_reg();
                    Op::Store {
                        src: rs1,
                        base,
                        offset: (self.rng.next_below(64) * 8) as i32,
                    }
                }
                80..=87 => Op::Xor { rd, rs1, rs2 },
                88..=93 => Op::Sub { rd, rs1, rs2 },
                94..=96 => Op::Shl {
                    rd,
                    rs1,
                    shamt: (self.rng.next_below(3) + 1) as u8,
                },
                _ => Op::Mul { rd, rs1, rs2 },
            };
            if op.dest().is_some() {
                last_dest = op.dest();
            }
            self.b.push(op);
        }
    }

    /// `top: body...; bne --, --, top` with a `Loop{trip}` model.
    fn emit_loop(&mut self, fn_index: u32, fn_entry: Addr, depth: u32) {
        let trip = self.range(self.profile.loop_trip);
        let top = self.b.here();
        self.emit_block();
        // Shallow nesting keeps loop bodies interesting without
        // exploding function size.
        if depth < 1 && self.rng.chance(1, 3) {
            self.emit_construct(fn_index, fn_entry, depth + 1);
        }
        let (rs1, rs2) = (self.reg(), self.reg());
        self.b.push_branch(
            Op::Branch {
                cond: BranchCond::Ne,
                rs1,
                rs2,
                target: top,
            },
            OutcomeModel::Loop { trip },
        );
    }

    /// A diamond: `b<cond> else; then...; jmp join; else: ...; join:`.
    fn emit_if_else(&mut self, fn_index: u32, fn_entry: Addr, depth: u32) {
        let model = self.branch_bias();
        let (rs1, rs2) = (self.reg(), self.reg());
        let branch_at = self.b.push_branch(
            // Target patched once the else arm's address is known.
            Op::Branch {
                cond: BranchCond::Eq,
                rs1,
                rs2,
                target: Addr::ZERO,
            },
            model,
        );
        // Then arm.
        self.emit_block();
        if depth < 1 && self.rng.chance(1, 4) {
            self.emit_construct(fn_index, fn_entry, depth + 1);
        }
        let jmp_at = self.b.push(Op::Jump { target: Addr::ZERO });
        // Else arm.
        let else_at = self.b.here();
        self.emit_block();
        let join = self.b.here();
        self.b.patch(
            branch_at,
            Op::Branch {
                cond: BranchCond::Eq,
                rs1,
                rs2,
                target: else_at,
            },
        );
        self.b.patch(jmp_at, Op::Jump { target: join });
    }

    /// A call to an earlier-generated function in the same phase
    /// group (bounding call depth and keeping each phase's code
    /// working set within its group).
    fn emit_call(&mut self, fn_index: u32) {
        let group_size = (self.functions / self.profile.phase_groups.max(1)).max(1);
        let group_start = (fn_index / group_size) * group_size;
        if fn_index == group_start || self.calls_in_fn >= 1 {
            // First function of its group (nothing below to call), or
            // the subcriticality cap is reached.
            self.emit_block();
            return;
        }
        self.calls_in_fn += 1;
        // Half the calls go to a near-below neighbour (covering the
        // group densely), half anywhere below in the group.
        let span = fn_index - group_start;
        let callee = if self.rng.chance(1, 2) {
            fn_index - 1 - self.rng.next_below(span.min(4))
        } else {
            group_start + self.rng.next_below(span)
        };
        let target = self.fn_entries[callee as usize];
        self.b.push(Op::Call { target });
    }

    /// `jr` over 3–8 arms, each a small block jumping to the join.
    fn emit_switch(&mut self) {
        let arms = 3 + self.rng.next_below(6);
        let seed = self.rng.next_u64();
        let jr_reg = self.reg();
        let jr_at = self.b.push_indirect(
            Op::IndirectJump { rs1: jr_reg },
            // Placeholder: arm addresses are patched in below.
            IndirectModel::uniform(vec![Addr::ZERO], seed),
        );
        let mut arm_addrs = Vec::with_capacity(arms as usize);
        let mut jumps = Vec::with_capacity(arms as usize);
        for _ in 0..arms {
            arm_addrs.push(self.b.here());
            self.emit_block();
            jumps.push(self.b.push(Op::Jump { target: Addr::ZERO }));
        }
        let join = self.b.here();
        for j in jumps {
            self.b.patch(j, Op::Jump { target: join });
        }
        // Skewed arm weights: interpreters execute a few opcodes most
        // of the time.
        let weights: Vec<u32> = (0..arms).map(|i| 1 + arms - i).collect();
        self.b
            .set_indirect_model(jr_at, IndirectModel::weighted(arm_addrs, weights, seed));
    }

    /// Bounded self-recursion: `beq --,--, skip; call self; skip:`
    /// guarded by a `Loop{trip}` model, so each activation recurses
    /// `trip - 1` levels deep before unwinding.
    fn emit_recursion(&mut self, fn_entry: Addr) {
        if self.calls_in_fn >= 1 {
            self.emit_block();
            return;
        }
        self.calls_in_fn += 1;
        let depth = 2 + self.rng.next_below(4);
        let (rs1, rs2) = (self.reg(), self.reg());
        let branch_at = self.b.push_branch(
            Op::Branch {
                cond: BranchCond::Eq,
                rs1,
                rs2,
                target: Addr::ZERO,
            },
            // taken = recurse again; exits (not-taken) every `depth`.
            OutcomeModel::Loop { trip: depth },
        );
        self.b.push(Op::Call { target: fn_entry });
        let skip = self.b.here();
        // Ensure `skip` differs from the call address by at least one
        // instruction so the branch target is meaningful.
        self.b.push(Op::Nop);
        self.b.patch(
            branch_at,
            Op::Branch {
                cond: BranchCond::Eq,
                rs1,
                rs2,
                target: skip,
            },
        );
    }

    /// Draws an if-else branch bias from the profile's mix.
    fn branch_bias(&mut self) -> OutcomeModel {
        let seed = self.rng.next_u64();
        if self.rng.chance(self.profile.strongly_biased_permille, 1000) {
            if self.rng.chance(1, 2) {
                OutcomeModel::Biased {
                    num: 39,
                    denom: 40,
                    seed,
                }
            } else {
                OutcomeModel::Biased {
                    num: 1,
                    denom: 40,
                    seed,
                }
            }
        } else {
            let num = 6 + self.rng.next_below(9); // 30–70 %
            OutcomeModel::Biased {
                num,
                denom: 20,
                seed,
            }
        }
    }

    /// `main`: for each phase group, a counted loop calling the
    /// group's root functions — the working-set rotation that drives
    /// trace-cache capacity behaviour.
    fn emit_main(&mut self) {
        let main_entry = self.b.here();
        let groups = self.profile.phase_groups.max(1);
        let group_size = (self.functions / groups).max(1);
        for g in 0..groups {
            let lo = g * group_size;
            let hi = if g == groups - 1 {
                self.functions
            } else {
                (g + 1) * group_size
            };
            let top = self.b.here();
            // Call the top few functions of the group: they sit at
            // the root of the group's call DAG.
            let roots = self.profile.roots_per_group.min(hi - lo);
            for r in 0..roots {
                let target = self.fn_entries[(hi - 1 - r) as usize];
                self.b.push(Op::Call { target });
            }
            let (rs1, rs2) = (self.reg(), self.reg());
            self.b.push_branch(
                Op::Branch {
                    cond: BranchCond::Ne,
                    rs1,
                    rs2,
                    target: top,
                },
                OutcomeModel::Loop {
                    trip: self.profile.reps_per_group.max(1),
                },
            );
        }
        self.b.push(Op::Halt);
        self.b.record_function("main", main_entry);
        self.b.set_entry(main_entry);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpc_exec::Executor;
    use tpc_isa::OpClass;

    #[test]
    fn all_benchmarks_generate_valid_programs() {
        for b in Benchmark::ALL {
            let p = WorkloadBuilder::new(b).seed(1).build();
            assert!(p.len() > 50, "{b} too small: {}", p.len());
            assert!(p.functions().len() as u32 >= b.profile().functions);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = WorkloadBuilder::new(Benchmark::Perl).seed(9).build();
        let b = WorkloadBuilder::new(Benchmark::Perl).seed(9).build();
        assert_eq!(a.code(), b.code());
    }

    #[test]
    fn different_seeds_differ() {
        let a = WorkloadBuilder::new(Benchmark::Li).seed(1).build();
        let b = WorkloadBuilder::new(Benchmark::Li).seed(2).build();
        assert_ne!(a.code(), b.code());
    }

    #[test]
    fn footprint_ordering_matches_profiles() {
        let size = |b: Benchmark| WorkloadBuilder::new(b).seed(1).build().len();
        assert!(size(Benchmark::Gcc) > 4 * size(Benchmark::Li));
        assert!(size(Benchmark::Compress) < 2_000);
        assert!(size(Benchmark::Gcc) > 15_000);
    }

    #[test]
    fn scale_shrinks_footprint() {
        let full = WorkloadBuilder::new(Benchmark::Gcc).seed(1).build().len();
        let half = WorkloadBuilder::new(Benchmark::Gcc)
            .seed(1)
            .scale_permille(500)
            .build()
            .len();
        assert!(half < full * 6 / 10, "half {half} vs full {full}");
    }

    #[test]
    fn every_benchmark_executes_a_million_instructions() {
        for b in Benchmark::ALL {
            let p = WorkloadBuilder::new(b).seed(1).build();
            let mut ex = Executor::new(&p);
            for _ in 0..1_000_000 {
                ex.next();
            }
            assert_eq!(ex.retired(), 1_000_000);
        }
    }

    #[test]
    fn dynamic_stream_covers_phases() {
        // Running long enough must revisit main (completions > 0) or
        // at least touch a decent fraction of the static code.
        let p = WorkloadBuilder::new(Benchmark::Li).seed(1).build();
        let mut ex = Executor::new(&p);
        let mut touched = std::collections::HashSet::new();
        for _ in 0..2_000_000 {
            let d = ex.next().unwrap();
            touched.insert(d.pc);
        }
        let coverage = touched.len() as f64 / p.len() as f64;
        assert!(coverage > 0.3, "dynamic coverage {coverage:.2}");
    }

    #[test]
    fn branch_mix_reflects_profile() {
        let p = WorkloadBuilder::new(Benchmark::Vortex).seed(1).build();
        let mut strong = 0u32;
        let mut total = 0u32;
        for (addr, op) in p.iter() {
            if op.class() == OpClass::Branch {
                let model = p.branch_model(addr).expect("model attached");
                // Only classify if-else biased branches (loops are
                // always strongly biased by construction).
                if let tpc_isa::model::OutcomeModel::Biased { .. } = model {
                    total += 1;
                    if model.is_strongly_biased() {
                        strong += 1;
                    }
                }
            }
        }
        assert!(total > 100);
        let permille = strong * 1000 / total;
        assert!(
            (820..=980).contains(&permille),
            "vortex strong-bias fraction {permille}‰"
        );
    }

    #[test]
    fn go_explores_more_paths_than_vortex() {
        // Weak biases mean more distinct branch outcomes; sample the
        // dynamic stream and count unique (pc → direction) pairs that
        // flip.
        let count_flippy = |b: Benchmark| {
            let p = WorkloadBuilder::new(b).seed(1).build();
            let mut ex = Executor::new(&p);
            let mut seen: std::collections::HashMap<u32, (bool, bool)> =
                std::collections::HashMap::new();
            for _ in 0..500_000 {
                let d = ex.next().unwrap();
                if matches!(d.op.class(), OpClass::Branch) {
                    let e = seen.entry(d.pc.word()).or_insert((false, false));
                    if d.taken {
                        e.0 = true;
                    } else {
                        e.1 = true;
                    }
                }
            }
            let both = seen.values().filter(|(t, n)| *t && *n).count();
            let total = seen.len().max(1);
            both * 1000 / total
        };
        assert!(
            count_flippy(Benchmark::Go) > count_flippy(Benchmark::Vortex),
            "go's branches flip direction more often"
        );
    }

    #[test]
    fn calls_and_returns_balance_in_stream() {
        let p = WorkloadBuilder::new(Benchmark::Gcc).seed(1).build();
        let mut ex = Executor::new(&p);
        let mut depth: i64 = 0;
        let mut max_depth: i64 = 0;
        for _ in 0..500_000 {
            let d = ex.next().unwrap();
            match d.op.class() {
                OpClass::Call => depth += 1,
                OpClass::Return => depth -= 1,
                OpClass::Halt => depth = 0, // restart clears the stack
                _ => {}
            }
            max_depth = max_depth.max(depth);
        }
        assert!(depth >= 0, "returns never outnumber calls");
        assert!(max_depth >= 2, "some nesting occurs (max {max_depth})");
    }

    #[test]
    fn switch_benchmarks_execute_indirect_jumps() {
        let p = WorkloadBuilder::new(Benchmark::Perl).seed(1).build();
        let mut ex = Executor::new(&p);
        let indirects = (0..500_000)
            .filter(|_| ex.next().unwrap().op.class() == OpClass::IndirectJump)
            .count();
        assert!(indirects > 100, "perl executes switches: {indirects}");
    }
}
