//! Binary instruction encoding.
//!
//! Instructions encode to fixed 32-bit words, MIPS-style. The
//! simulator itself operates on decoded [`Op`] values; the encoding
//! exists so that code footprints (I-cache line occupancy: 16
//! instructions per 64-byte line) are grounded in a real format, and
//! it doubles as a serialization for program dumps.
//!
//! Layout (`op` = bits 31..26):
//!
//! | format | fields |
//! |---|---|
//! | R  | `op rd(5) rs1(5) rs2(5) 0(11)` |
//! | I  | `op rd(5) rs1(5) imm(16)` |
//! | SH | `op rd(5) rs1(5) shamt(5) 0(11)` |
//! | LI | `op rd(5) imm(21)` |
//! | B  | `op rs1(5) rs2(5) target(16)` |
//! | J  | `op target(26)` |

use crate::{Addr, BranchCond, Op, Reg};
use std::fmt;

/// Error returned when an [`Op`] cannot be represented in 32 bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncodeError {
    /// An immediate exceeds its field width.
    ImmOutOfRange {
        /// The immediate value that does not fit.
        imm: i64,
        /// Width of the encoding field in bits.
        bits: u8,
    },
    /// A control target exceeds its field width.
    TargetOutOfRange {
        /// The target address that does not fit.
        target: Addr,
        /// Width of the encoding field in bits.
        bits: u8,
    },
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::ImmOutOfRange { imm, bits } => {
                write!(f, "immediate {imm} does not fit in {bits} bits")
            }
            EncodeError::TargetOutOfRange { target, bits } => {
                write!(f, "target {target} does not fit in {bits} bits")
            }
        }
    }
}

impl std::error::Error for EncodeError {}

/// Error returned when a 32-bit word is not a valid instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// The unrecognised opcode field.
    pub opcode: u8,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid opcode {:#04x}", self.opcode)
    }
}

impl std::error::Error for DecodeError {}

mod opcode {
    pub const ADD: u8 = 0x01;
    pub const SUB: u8 = 0x02;
    pub const AND: u8 = 0x03;
    pub const OR: u8 = 0x04;
    pub const XOR: u8 = 0x05;
    pub const SHL: u8 = 0x06;
    pub const SHR: u8 = 0x07;
    pub const ADDI: u8 = 0x08;
    pub const LI: u8 = 0x09;
    pub const MUL: u8 = 0x0a;
    pub const DIV: u8 = 0x0b;
    pub const LD: u8 = 0x0c;
    pub const ST: u8 = 0x0d;
    pub const BEQ: u8 = 0x10;
    pub const BNE: u8 = 0x11;
    pub const BLT: u8 = 0x12;
    pub const BGE: u8 = 0x13;
    pub const JMP: u8 = 0x14;
    pub const JAL: u8 = 0x15;
    pub const RET: u8 = 0x16;
    pub const JR: u8 = 0x17;
    pub const HALT: u8 = 0x3e;
    pub const NOP: u8 = 0x00;
}

fn fit_signed(imm: i64, bits: u8) -> Result<u32, EncodeError> {
    let max = (1i64 << (bits - 1)) - 1;
    let min = -(1i64 << (bits - 1));
    if imm < min || imm > max {
        return Err(EncodeError::ImmOutOfRange { imm, bits });
    }
    Ok((imm as u32) & ((1u32 << bits) - 1))
}

fn fit_target(target: Addr, bits: u8) -> Result<u32, EncodeError> {
    if bits < 32 && target.word() >= (1u32 << bits) {
        return Err(EncodeError::TargetOutOfRange { target, bits });
    }
    Ok(target.word())
}

fn sext(value: u32, bits: u8) -> i32 {
    let shift = 32 - bits as u32;
    ((value << shift) as i32) >> shift
}

fn enc_r(op: u8, rd: Reg, rs1: Reg, rs2: Reg) -> u32 {
    ((op as u32) << 26)
        | ((rd.index() as u32) << 21)
        | ((rs1.index() as u32) << 16)
        | ((rs2.index() as u32) << 11)
}

/// Encodes an instruction into a 32-bit word.
///
/// # Errors
///
/// Returns [`EncodeError`] when an immediate or target does not fit
/// its field (16-bit immediates/branch targets, 21-bit `li`
/// immediates, 26-bit jump targets).
pub fn encode(op: &Op) -> Result<u32, EncodeError> {
    use opcode::*;
    Ok(match *op {
        Op::Add { rd, rs1, rs2 } => enc_r(ADD, rd, rs1, rs2),
        Op::Sub { rd, rs1, rs2 } => enc_r(SUB, rd, rs1, rs2),
        Op::And { rd, rs1, rs2 } => enc_r(AND, rd, rs1, rs2),
        Op::Or { rd, rs1, rs2 } => enc_r(OR, rd, rs1, rs2),
        Op::Xor { rd, rs1, rs2 } => enc_r(XOR, rd, rs1, rs2),
        Op::Mul { rd, rs1, rs2 } => enc_r(MUL, rd, rs1, rs2),
        Op::Div { rd, rs1, rs2 } => enc_r(DIV, rd, rs1, rs2),
        Op::Shl { rd, rs1, shamt } => {
            ((SHL as u32) << 26)
                | ((rd.index() as u32) << 21)
                | ((rs1.index() as u32) << 16)
                | (((shamt & 0x1f) as u32) << 11)
        }
        Op::Shr { rd, rs1, shamt } => {
            ((SHR as u32) << 26)
                | ((rd.index() as u32) << 21)
                | ((rs1.index() as u32) << 16)
                | (((shamt & 0x1f) as u32) << 11)
        }
        Op::AddImm { rd, rs1, imm } => {
            ((ADDI as u32) << 26)
                | ((rd.index() as u32) << 21)
                | ((rs1.index() as u32) << 16)
                | fit_signed(imm as i64, 16)?
        }
        Op::LoadImm { rd, imm } => {
            ((LI as u32) << 26) | ((rd.index() as u32) << 21) | fit_signed(imm as i64, 21)?
        }
        Op::Load { rd, base, offset } => {
            ((LD as u32) << 26)
                | ((rd.index() as u32) << 21)
                | ((base.index() as u32) << 16)
                | fit_signed(offset as i64, 16)?
        }
        Op::Store { src, base, offset } => {
            ((ST as u32) << 26)
                | ((src.index() as u32) << 21)
                | ((base.index() as u32) << 16)
                | fit_signed(offset as i64, 16)?
        }
        Op::Branch {
            cond,
            rs1,
            rs2,
            target,
        } => {
            let opc = match cond {
                BranchCond::Eq => BEQ,
                BranchCond::Ne => BNE,
                BranchCond::Lt => BLT,
                BranchCond::Ge => BGE,
            };
            ((opc as u32) << 26)
                | ((rs1.index() as u32) << 21)
                | ((rs2.index() as u32) << 16)
                | fit_target(target, 16)?
        }
        Op::Jump { target } => ((JMP as u32) << 26) | fit_target(target, 26)?,
        Op::Call { target } => ((JAL as u32) << 26) | fit_target(target, 26)?,
        Op::Return => (RET as u32) << 26,
        Op::IndirectJump { rs1 } => ((JR as u32) << 26) | ((rs1.index() as u32) << 21),
        Op::Halt => (HALT as u32) << 26,
        Op::Nop => (NOP as u32) << 26 | 1, // distinguish from an all-zero word
    })
}

/// Decodes a 32-bit word back into an instruction.
///
/// # Errors
///
/// Returns [`DecodeError`] for unrecognised opcodes.
pub fn decode(word: u32) -> Result<Op, DecodeError> {
    use opcode::*;
    let opc = (word >> 26) as u8;
    let rd = Reg::new(((word >> 21) & 0x1f) as u8);
    let rs1 = Reg::new(((word >> 16) & 0x1f) as u8);
    let rs2 = Reg::new(((word >> 11) & 0x1f) as u8);
    let imm16 = sext(word & 0xffff, 16);
    Ok(match opc {
        ADD => Op::Add { rd, rs1, rs2 },
        SUB => Op::Sub { rd, rs1, rs2 },
        AND => Op::And { rd, rs1, rs2 },
        OR => Op::Or { rd, rs1, rs2 },
        XOR => Op::Xor { rd, rs1, rs2 },
        MUL => Op::Mul { rd, rs1, rs2 },
        DIV => Op::Div { rd, rs1, rs2 },
        SHL => Op::Shl {
            rd,
            rs1,
            shamt: ((word >> 11) & 0x1f) as u8,
        },
        SHR => Op::Shr {
            rd,
            rs1,
            shamt: ((word >> 11) & 0x1f) as u8,
        },
        ADDI => Op::AddImm {
            rd,
            rs1,
            imm: imm16,
        },
        LI => Op::LoadImm {
            rd,
            imm: sext(word & 0x1f_ffff, 21),
        },
        LD => Op::Load {
            rd,
            base: rs1,
            offset: imm16,
        },
        ST => Op::Store {
            src: rd,
            base: rs1,
            offset: imm16,
        },
        BEQ | BNE | BLT | BGE => {
            let cond = match opc {
                BEQ => BranchCond::Eq,
                BNE => BranchCond::Ne,
                BLT => BranchCond::Lt,
                _ => BranchCond::Ge,
            };
            Op::Branch {
                cond,
                rs1: rd,
                rs2: rs1,
                target: Addr::new(word & 0xffff),
            }
        }
        JMP => Op::Jump {
            target: Addr::new(word & 0x03ff_ffff),
        },
        JAL => Op::Call {
            target: Addr::new(word & 0x03ff_ffff),
        },
        RET => Op::Return,
        JR => Op::IndirectJump { rs1: rd },
        HALT => Op::Halt,
        NOP => Op::Nop,
        other => return Err(DecodeError { opcode: other }),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }

    #[test]
    fn roundtrip_representative_ops() {
        let ops = [
            Op::Add {
                rd: r(1),
                rs1: r(2),
                rs2: r(3),
            },
            Op::Shl {
                rd: r(4),
                rs1: r(5),
                shamt: 31,
            },
            Op::AddImm {
                rd: r(6),
                rs1: r(7),
                imm: -32768,
            },
            Op::LoadImm {
                rd: r(8),
                imm: 1_000_000,
            },
            Op::Load {
                rd: r(9),
                base: r(10),
                offset: 32767,
            },
            Op::Store {
                src: r(11),
                base: r(12),
                offset: -4,
            },
            Op::Branch {
                cond: BranchCond::Lt,
                rs1: r(13),
                rs2: r(14),
                target: Addr::new(65535),
            },
            Op::Jump {
                target: Addr::new(0x03ff_ffff),
            },
            Op::Call {
                target: Addr::new(12345),
            },
            Op::Return,
            Op::IndirectJump { rs1: r(15) },
            Op::Halt,
            Op::Nop,
        ];
        for op in ops {
            let word = encode(&op).expect("encodable");
            assert_eq!(decode(word).expect("decodable"), op, "roundtrip of {op}");
        }
    }

    #[test]
    fn immediate_overflow_detected() {
        let op = Op::AddImm {
            rd: r(1),
            rs1: r(2),
            imm: 40_000,
        };
        assert!(matches!(
            encode(&op),
            Err(EncodeError::ImmOutOfRange { .. })
        ));
    }

    #[test]
    fn branch_target_overflow_detected() {
        let op = Op::Branch {
            cond: BranchCond::Eq,
            rs1: r(1),
            rs2: r(2),
            target: Addr::new(70_000),
        };
        assert!(matches!(
            encode(&op),
            Err(EncodeError::TargetOutOfRange { .. })
        ));
    }

    #[test]
    fn invalid_opcode_rejected() {
        assert!(decode(0x3f << 26).is_err());
    }

    #[test]
    fn nop_is_not_all_zero() {
        assert_ne!(encode(&Op::Nop).unwrap(), 0);
    }

    #[cfg(feature = "proptest-tests")]
    mod props {
        use super::*;
        use proptest::prelude::*;

        fn arb_reg() -> impl Strategy<Value = Reg> {
            (0u8..32).prop_map(Reg::new)
        }

        fn arb_op() -> impl Strategy<Value = Op> {
            prop_oneof![
                (arb_reg(), arb_reg(), arb_reg()).prop_map(|(rd, rs1, rs2)| Op::Add {
                    rd,
                    rs1,
                    rs2
                }),
                (arb_reg(), arb_reg(), arb_reg()).prop_map(|(rd, rs1, rs2)| Op::Xor {
                    rd,
                    rs1,
                    rs2
                }),
                (arb_reg(), arb_reg(), 0u8..32).prop_map(|(rd, rs1, shamt)| Op::Shl {
                    rd,
                    rs1,
                    shamt
                }),
                (arb_reg(), arb_reg(), -32768i32..=32767).prop_map(|(rd, rs1, imm)| Op::AddImm {
                    rd,
                    rs1,
                    imm
                }),
                (arb_reg(), -(1i32 << 20)..(1i32 << 20))
                    .prop_map(|(rd, imm)| Op::LoadImm { rd, imm }),
                (arb_reg(), arb_reg(), -32768i32..=32767).prop_map(|(rd, base, offset)| Op::Load {
                    rd,
                    base,
                    offset
                }),
                (arb_reg(), arb_reg(), -32768i32..=32767)
                    .prop_map(|(src, base, offset)| Op::Store { src, base, offset }),
                (0usize..4, arb_reg(), arb_reg(), 0u32..65536).prop_map(|(c, rs1, rs2, t)| {
                    Op::Branch {
                        cond: BranchCond::ALL[c],
                        rs1,
                        rs2,
                        target: Addr::new(t),
                    }
                }),
                (0u32..(1 << 26)).prop_map(|t| Op::Jump {
                    target: Addr::new(t)
                }),
                (0u32..(1 << 26)).prop_map(|t| Op::Call {
                    target: Addr::new(t)
                }),
                Just(Op::Return),
                arb_reg().prop_map(|rs1| Op::IndirectJump { rs1 }),
                Just(Op::Halt),
                Just(Op::Nop),
            ]
        }

        proptest! {
            #[test]
            fn encode_decode_roundtrip(op in arb_op()) {
                let word = encode(&op).expect("all generated ops are in range");
                prop_assert_eq!(decode(word).expect("valid word"), op);
            }
        }
    }
}
