//! Static program representation.

use crate::model::{IndirectModel, OutcomeModel};
use crate::{Addr, Op};
use std::collections::BTreeMap;
use std::fmt;

/// Metadata for one function in a generated program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionInfo {
    /// Human-readable name (e.g. `"f17"` or `"main"`).
    pub name: String,
    /// Address of the first instruction.
    pub entry: Addr,
    /// Number of instructions.
    pub len: u32,
}

/// A complete static program: code plus the control-flow behaviour
/// models the executor resolves branches with.
///
/// Construct via [`ProgramBuilder`], which validates the invariants
/// listed on [`ProgramBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    code: Vec<Op>,
    entry: Addr,
    branch_models: BTreeMap<u32, OutcomeModel>,
    indirect_models: BTreeMap<u32, IndirectModel>,
    functions: Vec<FunctionInfo>,
}

impl Program {
    /// The instruction at `addr`, or `None` past the end of the code.
    #[inline]
    pub fn fetch(&self, addr: Addr) -> Option<&Op> {
        self.code.get(addr.word() as usize)
    }

    /// The program's entry point.
    #[inline]
    pub fn entry(&self) -> Addr {
        self.entry
    }

    /// Number of static instructions.
    #[inline]
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// Whether the program contains no instructions.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// All instructions, in address order.
    pub fn code(&self) -> &[Op] {
        &self.code
    }

    /// The outcome model for the conditional branch at `addr`.
    #[inline]
    pub fn branch_model(&self, addr: Addr) -> Option<&OutcomeModel> {
        self.branch_models.get(&addr.word())
    }

    /// The target model for the indirect jump at `addr`.
    #[inline]
    pub fn indirect_model(&self, addr: Addr) -> Option<&IndirectModel> {
        self.indirect_models.get(&addr.word())
    }

    /// The statically-declared target set of the indirect jump at
    /// `addr` (empty for any other address). CFG construction treats
    /// these as the jump's successor edges.
    pub fn indirect_targets(&self, addr: Addr) -> &[Addr] {
        self.indirect_models
            .get(&addr.word())
            .map_or(&[], |m| m.targets())
    }

    /// Function table (may be empty for hand-built programs).
    pub fn functions(&self) -> &[FunctionInfo] {
        &self.functions
    }

    /// Iterates over `(addr, op)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Addr, &Op)> {
        self.code
            .iter()
            .enumerate()
            .map(|(i, op)| (Addr::new(i as u32), op))
    }

    /// Number of static conditional branches.
    pub fn branch_count(&self) -> usize {
        self.branch_models.len()
    }
}

impl fmt::Display for Program {
    /// A full disassembly listing, one instruction per line.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (addr, op) in self.iter() {
            writeln!(f, "{addr}:  {op}")?;
        }
        Ok(())
    }
}

/// Error produced when a [`ProgramBuilder`] fails validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// The program has no instructions.
    Empty,
    /// The entry point lies outside the code.
    EntryOutOfRange(Addr),
    /// A control instruction targets an address outside the code.
    TargetOutOfRange {
        /// Address of the offending instruction.
        at: Addr,
        /// The out-of-range target.
        target: Addr,
    },
    /// A conditional branch has no outcome model attached.
    MissingBranchModel(Addr),
    /// An indirect jump has no target model attached.
    MissingIndirectModel(Addr),
    /// A model was attached to an address whose instruction does not
    /// match the model kind.
    ModelKindMismatch(Addr),
    /// The program has no reachable `halt` and no `main` loop —
    /// execution could run off the end of the code.
    FallsOffEnd,
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::Empty => write!(f, "program has no instructions"),
            ProgramError::EntryOutOfRange(a) => write!(f, "entry point {a} outside code"),
            ProgramError::TargetOutOfRange { at, target } => {
                write!(f, "instruction at {at} targets {target} outside code")
            }
            ProgramError::MissingBranchModel(a) => {
                write!(f, "conditional branch at {a} has no outcome model")
            }
            ProgramError::MissingIndirectModel(a) => {
                write!(f, "indirect jump at {a} has no target model")
            }
            ProgramError::ModelKindMismatch(a) => {
                write!(f, "model at {a} does not match the instruction kind")
            }
            ProgramError::FallsOffEnd => {
                write!(
                    f,
                    "last instruction can fall through past the end of the code"
                )
            }
        }
    }
}

impl std::error::Error for ProgramError {}

/// Incremental builder for [`Program`].
///
/// ```
/// use tpc_isa::{ProgramBuilder, Op, Reg, Addr};
/// use tpc_isa::model::OutcomeModel;
///
/// # fn main() -> Result<(), tpc_isa::ProgramError> {
/// let mut b = ProgramBuilder::new();
/// let top = b.here();
/// b.push(Op::AddImm { rd: Reg::new(1), rs1: Reg::new(1), imm: 1 });
/// b.push_branch(
///     Op::Branch { cond: tpc_isa::BranchCond::Ne, rs1: Reg::new(1), rs2: Reg::ZERO, target: top },
///     OutcomeModel::Loop { trip: 10 },
/// );
/// b.push(Op::Halt);
/// let program = b.build()?;
/// assert_eq!(program.len(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct ProgramBuilder {
    code: Vec<Op>,
    entry: Addr,
    branch_models: BTreeMap<u32, OutcomeModel>,
    indirect_models: BTreeMap<u32, IndirectModel>,
    functions: Vec<FunctionInfo>,
}

impl ProgramBuilder {
    /// Creates an empty builder with entry point 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// The address the next pushed instruction will occupy.
    #[inline]
    pub fn here(&self) -> Addr {
        Addr::new(self.code.len() as u32)
    }

    /// Appends a non-branch instruction and returns its address.
    pub fn push(&mut self, op: Op) -> Addr {
        let at = self.here();
        self.code.push(op);
        at
    }

    /// Appends a conditional branch with its outcome model.
    pub fn push_branch(&mut self, op: Op, model: OutcomeModel) -> Addr {
        let at = self.push(op);
        self.branch_models.insert(at.word(), model);
        at
    }

    /// Appends an indirect jump with its target model.
    pub fn push_indirect(&mut self, op: Op, model: IndirectModel) -> Addr {
        let at = self.push(op);
        self.indirect_models.insert(at.word(), model);
        at
    }

    /// Overwrites the instruction at `addr` (used to patch forward
    /// targets once they are known).
    ///
    /// # Panics
    ///
    /// Panics if `addr` has not been emitted yet.
    pub fn patch(&mut self, addr: Addr, op: Op) {
        let slot = self
            .code
            .get_mut(addr.word() as usize)
            .expect("patch address not yet emitted");
        *slot = op;
    }

    /// Replaces the outcome model of the branch at `addr`.
    pub fn set_branch_model(&mut self, addr: Addr, model: OutcomeModel) {
        self.branch_models.insert(addr.word(), model);
    }

    /// Replaces the target model of the indirect jump at `addr` —
    /// used to fix up switch arms whose addresses are only known
    /// after the jump is emitted.
    pub fn set_indirect_model(&mut self, addr: Addr, model: IndirectModel) {
        self.indirect_models.insert(addr.word(), model);
    }

    /// Sets the program entry point (defaults to address 0).
    pub fn set_entry(&mut self, entry: Addr) -> &mut Self {
        self.entry = entry;
        self
    }

    /// Records a function covering `[entry, here)`.
    pub fn record_function(&mut self, name: impl Into<String>, entry: Addr) {
        let len = (self.here() - entry).max(0) as u32;
        self.functions.push(FunctionInfo {
            name: name.into(),
            entry,
            len,
        });
    }

    /// Validates and builds the program.
    ///
    /// # Errors
    ///
    /// Returns a [`ProgramError`] if the program is empty, the entry
    /// or any static target is out of range, any conditional branch
    /// or indirect jump lacks a behaviour model, a model is attached
    /// to the wrong kind of instruction, or the final instruction can
    /// fall through past the end of the code.
    pub fn build(self) -> Result<Program, ProgramError> {
        if self.code.is_empty() {
            return Err(ProgramError::Empty);
        }
        let limit = self.code.len() as u32;
        if self.entry.word() >= limit {
            return Err(ProgramError::EntryOutOfRange(self.entry));
        }
        for (i, op) in self.code.iter().enumerate() {
            let at = Addr::new(i as u32);
            if let Some(target) = op.static_target() {
                if target.word() >= limit {
                    return Err(ProgramError::TargetOutOfRange { at, target });
                }
            }
            match op {
                Op::Branch { .. } if !self.branch_models.contains_key(&at.word()) => {
                    return Err(ProgramError::MissingBranchModel(at));
                }
                Op::IndirectJump { .. } if !self.indirect_models.contains_key(&at.word()) => {
                    return Err(ProgramError::MissingIndirectModel(at));
                }
                _ => {}
            }
        }
        for &w in self.branch_models.keys() {
            match self.code.get(w as usize) {
                Some(Op::Branch { .. }) => {}
                _ => return Err(ProgramError::ModelKindMismatch(Addr::new(w))),
            }
        }
        for (&w, model) in &self.indirect_models {
            match self.code.get(w as usize) {
                Some(Op::IndirectJump { .. }) => {}
                _ => return Err(ProgramError::ModelKindMismatch(Addr::new(w))),
            }
            for &t in model.targets() {
                if t.word() >= limit {
                    return Err(ProgramError::TargetOutOfRange {
                        at: Addr::new(w),
                        target: t,
                    });
                }
            }
        }
        // The last instruction must not be able to fall through (a
        // trailing branch falls off on its not-taken arm; a trailing
        // call has no return point to come back to).
        let last = self.code.last().expect("non-empty");
        if last.can_fall_through() {
            return Err(ProgramError::FallsOffEnd);
        }
        Ok(Program {
            code: self.code,
            entry: self.entry,
            branch_models: self.branch_models,
            indirect_models: self.indirect_models,
            functions: self.functions,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BranchCond, Reg};

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }

    fn branch_to(target: Addr) -> Op {
        Op::Branch {
            cond: BranchCond::Ne,
            rs1: r(1),
            rs2: r(2),
            target,
        }
    }

    #[test]
    fn build_minimal_program() {
        let mut b = ProgramBuilder::new();
        b.push(Op::Nop);
        b.push(Op::Halt);
        let p = b.build().expect("valid program");
        assert_eq!(p.len(), 2);
        assert_eq!(p.fetch(Addr::new(1)), Some(&Op::Halt));
        assert_eq!(p.fetch(Addr::new(2)), None);
    }

    #[test]
    fn empty_program_rejected() {
        assert_eq!(
            ProgramBuilder::new().build().unwrap_err(),
            ProgramError::Empty
        );
    }

    #[test]
    fn entry_out_of_range_rejected() {
        let mut b = ProgramBuilder::new();
        b.push(Op::Halt);
        b.set_entry(Addr::new(5));
        assert!(matches!(b.build(), Err(ProgramError::EntryOutOfRange(_))));
    }

    #[test]
    fn branch_without_model_rejected() {
        let mut b = ProgramBuilder::new();
        b.push(branch_to(Addr::new(0)));
        b.push(Op::Halt);
        assert!(matches!(
            b.build(),
            Err(ProgramError::MissingBranchModel(_))
        ));
    }

    #[test]
    fn target_out_of_range_rejected() {
        let mut b = ProgramBuilder::new();
        b.push_branch(branch_to(Addr::new(99)), OutcomeModel::AlwaysTaken);
        b.push(Op::Halt);
        assert!(matches!(
            b.build(),
            Err(ProgramError::TargetOutOfRange { .. })
        ));
    }

    #[test]
    fn falling_off_end_rejected() {
        let mut b = ProgramBuilder::new();
        b.push(Op::Nop);
        assert_eq!(b.build().unwrap_err(), ProgramError::FallsOffEnd);
    }

    #[test]
    fn trailing_branch_rejected() {
        let mut b = ProgramBuilder::new();
        b.push_branch(branch_to(Addr::new(0)), OutcomeModel::AlwaysTaken);
        assert_eq!(b.build().unwrap_err(), ProgramError::FallsOffEnd);
    }

    #[test]
    fn indirect_model_targets_validated() {
        let mut b = ProgramBuilder::new();
        b.push_indirect(
            Op::IndirectJump { rs1: r(4) },
            IndirectModel::uniform(vec![Addr::new(50)], 1),
        );
        b.push(Op::Halt);
        assert!(matches!(
            b.build(),
            Err(ProgramError::TargetOutOfRange { .. })
        ));
    }

    #[test]
    fn patch_rewrites_instruction() {
        let mut b = ProgramBuilder::new();
        let at = b.push(Op::Nop);
        b.push(Op::Halt);
        b.patch(
            at,
            Op::Jump {
                target: Addr::new(1),
            },
        );
        let p = b.build().unwrap();
        assert_eq!(
            p.fetch(at),
            Some(&Op::Jump {
                target: Addr::new(1)
            })
        );
    }

    #[test]
    fn functions_recorded() {
        let mut b = ProgramBuilder::new();
        let entry = b.here();
        b.push(Op::Nop);
        b.push(Op::Halt);
        b.record_function("main", entry);
        let p = b.build().unwrap();
        assert_eq!(p.functions().len(), 1);
        assert_eq!(p.functions()[0].name, "main");
        assert_eq!(p.functions()[0].len, 2);
    }

    #[test]
    fn display_lists_every_instruction() {
        let mut b = ProgramBuilder::new();
        b.push(Op::Nop);
        b.push(Op::Halt);
        let p = b.build().unwrap();
        let listing = p.to_string();
        assert_eq!(listing.lines().count(), 2);
        assert!(listing.contains("halt"));
    }

    #[test]
    fn trailing_call_rejected() {
        // A call's return point is the next address; a call as the
        // last instruction would return past the end of the code, so
        // every call in a valid program has an in-range return point.
        let mut b = ProgramBuilder::new();
        b.push(Op::Call {
            target: Addr::new(0),
        });
        assert_eq!(b.build().unwrap_err(), ProgramError::FallsOffEnd);
    }

    #[test]
    fn every_call_pairs_with_an_in_range_return_point() {
        let mut b = ProgramBuilder::new();
        let call_at = b.push(Op::Call {
            target: Addr::new(3),
        });
        b.push(Op::Nop); // the return point
        b.push(Op::Halt);
        b.push(Op::Return); // callee at 3
        let p = b.build().unwrap();
        let op = p.fetch(call_at).unwrap();
        assert_eq!(op.static_target(), Some(Addr::new(3)));
        assert!(op.can_fall_through(), "return point is call_at + 1");
        assert!(p.fetch(call_at.next()).is_some());
    }

    #[test]
    fn branch_targets_decode_exactly() {
        // Leader computation reads branch targets through
        // `static_target`; pin that build() preserves them verbatim
        // for both the backward (loop) and forward (diamond) shapes.
        let mut b = ProgramBuilder::new();
        let top = b.push(Op::Nop);
        b.push_branch(branch_to(top), OutcomeModel::Loop { trip: 4 });
        let fwd_at = b.push_branch(branch_to(Addr::new(4)), OutcomeModel::AlwaysTaken);
        b.push(Op::Nop);
        b.push(Op::Halt);
        let p = b.build().unwrap();
        assert_eq!(
            p.fetch(Addr::new(1)).unwrap().static_target(),
            Some(top),
            "backward branch target survives build"
        );
        assert!(p
            .fetch(Addr::new(1))
            .unwrap()
            .is_backward_branch(Addr::new(1)));
        assert_eq!(p.fetch(fwd_at).unwrap().static_target(), Some(Addr::new(4)));
        assert!(!p.fetch(fwd_at).unwrap().is_backward_branch(fwd_at));
    }

    #[test]
    fn indirect_targets_accessor_mirrors_the_model() {
        let mut b = ProgramBuilder::new();
        let arms = vec![Addr::new(1), Addr::new(2)];
        let jr_at = b.push_indirect(
            Op::IndirectJump { rs1: r(4) },
            IndirectModel::uniform(arms.clone(), 7),
        );
        b.push(Op::Halt); // arm 1
        b.push(Op::Halt); // arm 2
        let p = b.build().unwrap();
        assert_eq!(p.indirect_targets(jr_at), &arms[..]);
        assert!(p.indirect_targets(Addr::new(1)).is_empty());
    }

    #[test]
    fn iter_yields_addresses_in_order() {
        let mut b = ProgramBuilder::new();
        b.push(Op::Nop);
        b.push(Op::Nop);
        b.push(Op::Halt);
        let p = b.build().unwrap();
        let addrs: Vec<u32> = p.iter().map(|(a, _)| a.word()).collect();
        assert_eq!(addrs, vec![0, 1, 2]);
    }
}
