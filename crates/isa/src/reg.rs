//! Architectural register names.

use std::fmt;

/// An architectural register, `r0`–`r31`.
///
/// `r0` always reads as zero (writes are discarded); `r31` is the
/// link register written by `call`.
///
/// ```
/// use tpc_isa::Reg;
/// assert_eq!(Reg::new(5).index(), 5);
/// assert!(Reg::ZERO.is_zero());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// The hard-wired zero register, `r0`.
    pub const ZERO: Reg = Reg(0);
    /// The link register written by `call`, `r31`.
    pub const LINK: Reg = Reg(31);
    /// Stack-pointer convention register, `r29`.
    pub const SP: Reg = Reg(29);

    /// Creates a register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    #[inline]
    pub const fn new(index: u8) -> Self {
        assert!(index < 32, "register index out of range");
        Reg(index)
    }

    /// The register's index in the register file.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this is the hard-wired zero register.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl From<Reg> for u8 {
    fn from(r: Reg) -> u8 {
        r.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        for i in 0..32 {
            assert_eq!(Reg::new(i).index(), i as usize);
        }
    }

    #[test]
    #[should_panic(expected = "register index out of range")]
    fn out_of_range_panics() {
        let _ = Reg::new(32);
    }

    #[test]
    fn zero_register_identity() {
        assert!(Reg::ZERO.is_zero());
        assert!(!Reg::LINK.is_zero());
    }

    #[test]
    fn display_names() {
        assert_eq!(Reg::new(17).to_string(), "r17");
    }
}
