//! Instruction definitions.

use crate::{Addr, Reg};
use std::fmt;

/// Condition tested by a conditional branch (`rs1 <cond> rs2`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchCond {
    /// Branch if equal.
    Eq,
    /// Branch if not equal.
    Ne,
    /// Branch if signed less-than.
    Lt,
    /// Branch if signed greater-or-equal.
    Ge,
}

impl BranchCond {
    /// Evaluates the condition over two register values.
    #[inline]
    pub fn eval(self, a: i64, b: i64) -> bool {
        match self {
            BranchCond::Eq => a == b,
            BranchCond::Ne => a != b,
            BranchCond::Lt => a < b,
            BranchCond::Ge => a >= b,
        }
    }

    /// All conditions, for exhaustive tests.
    pub const ALL: [BranchCond; 4] = [
        BranchCond::Eq,
        BranchCond::Ne,
        BranchCond::Lt,
        BranchCond::Ge,
    ];
}

impl fmt::Display for BranchCond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BranchCond::Eq => "beq",
            BranchCond::Ne => "bne",
            BranchCond::Lt => "blt",
            BranchCond::Ge => "bge",
        };
        f.write_str(s)
    }
}

/// Broad operation class used by the timing model and trace logic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Single-cycle integer ALU operation.
    IntAlu,
    /// Integer multiply.
    IntMul,
    /// Integer divide.
    IntDiv,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Conditional branch.
    Branch,
    /// Unconditional direct jump.
    Jump,
    /// Procedure call (jump-and-link).
    Call,
    /// Procedure return (jump through the link register).
    Return,
    /// Indirect jump through a register (e.g. a switch table).
    IndirectJump,
    /// Program termination marker.
    Halt,
    /// No-operation.
    Nop,
}

impl OpClass {
    /// Whether instructions of this class can redirect control flow.
    #[inline]
    pub fn is_control(self) -> bool {
        matches!(
            self,
            OpClass::Branch
                | OpClass::Jump
                | OpClass::Call
                | OpClass::Return
                | OpClass::IndirectJump
                | OpClass::Halt
        )
    }
}

/// A single instruction.
///
/// Operands are explicit registers so that dependence tracking in the
/// execution backend is exact. Branch/jump/call targets are absolute
/// word addresses ([`Addr`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// `rd = rs1 + rs2`
    Add {
        /// Destination register.
        rd: Reg,
        /// First source register.
        rs1: Reg,
        /// Second source register.
        rs2: Reg,
    },
    /// `rd = rs1 - rs2`
    Sub {
        /// Destination register.
        rd: Reg,
        /// First source register.
        rs1: Reg,
        /// Second source register.
        rs2: Reg,
    },
    /// `rd = rs1 & rs2`
    And {
        /// Destination register.
        rd: Reg,
        /// First source register.
        rs1: Reg,
        /// Second source register.
        rs2: Reg,
    },
    /// `rd = rs1 | rs2`
    Or {
        /// Destination register.
        rd: Reg,
        /// First source register.
        rs1: Reg,
        /// Second source register.
        rs2: Reg,
    },
    /// `rd = rs1 ^ rs2`
    Xor {
        /// Destination register.
        rd: Reg,
        /// First source register.
        rs1: Reg,
        /// Second source register.
        rs2: Reg,
    },
    /// `rd = rs1 << shamt`
    Shl {
        /// Destination register.
        rd: Reg,
        /// First source register.
        rs1: Reg,
        /// Shift amount in bits.
        shamt: u8,
    },
    /// `rd = rs1 >> shamt` (logical)
    Shr {
        /// Destination register.
        rd: Reg,
        /// First source register.
        rs1: Reg,
        /// Shift amount in bits.
        shamt: u8,
    },
    /// `rd = rs1 + imm`
    AddImm {
        /// Destination register.
        rd: Reg,
        /// First source register.
        rs1: Reg,
        /// Immediate operand.
        imm: i32,
    },
    /// `rd = imm`
    LoadImm {
        /// Destination register.
        rd: Reg,
        /// Immediate operand.
        imm: i32,
    },
    /// `rd = rs1 * rs2`
    Mul {
        /// Destination register.
        rd: Reg,
        /// First source register.
        rs1: Reg,
        /// Second source register.
        rs2: Reg,
    },
    /// `rd = rs1 / rs2` (0 when dividing by zero)
    Div {
        /// Destination register.
        rd: Reg,
        /// First source register.
        rs1: Reg,
        /// Second source register.
        rs2: Reg,
    },
    /// `rd = mem[rs1 + offset]`
    Load {
        /// Destination register.
        rd: Reg,
        /// Base-address register.
        base: Reg,
        /// Byte offset added to the base.
        offset: i32,
    },
    /// `mem[rs1 + offset] = rs2`
    Store {
        /// Register whose value is stored.
        src: Reg,
        /// Base-address register.
        base: Reg,
        /// Byte offset added to the base.
        offset: i32,
    },
    /// Conditional PC-relative-style branch with an absolute target.
    Branch {
        /// The comparison deciding the direction.
        cond: BranchCond,
        /// Left comparison operand.
        rs1: Reg,
        /// Right comparison operand.
        rs2: Reg,
        /// Absolute word address taken branches jump to.
        target: Addr,
    },
    /// Unconditional direct jump.
    Jump {
        /// Absolute word address jumped to.
        target: Addr,
    },
    /// Jump-and-link: `r31 = return address; pc = target`.
    Call {
        /// Entry point of the called function.
        target: Addr,
    },
    /// Jump through the link register (procedure return).
    Return,
    /// Jump through `rs1` (computed target, e.g. a switch table).
    IndirectJump {
        /// Register holding the computed target address.
        rs1: Reg,
    },
    /// Terminates execution.
    Halt,
    /// No-operation.
    Nop,
}

impl Op {
    /// The broad class of this instruction.
    pub fn class(&self) -> OpClass {
        match self {
            Op::Add { .. }
            | Op::Sub { .. }
            | Op::And { .. }
            | Op::Or { .. }
            | Op::Xor { .. }
            | Op::Shl { .. }
            | Op::Shr { .. }
            | Op::AddImm { .. }
            | Op::LoadImm { .. } => OpClass::IntAlu,
            Op::Mul { .. } => OpClass::IntMul,
            Op::Div { .. } => OpClass::IntDiv,
            Op::Load { .. } => OpClass::Load,
            Op::Store { .. } => OpClass::Store,
            Op::Branch { .. } => OpClass::Branch,
            Op::Jump { .. } => OpClass::Jump,
            Op::Call { .. } => OpClass::Call,
            Op::Return => OpClass::Return,
            Op::IndirectJump { .. } => OpClass::IndirectJump,
            Op::Halt => OpClass::Halt,
            Op::Nop => OpClass::Nop,
        }
    }

    /// The destination register, if the instruction writes one.
    ///
    /// Writes to `r0` are reported as `None`: they are
    /// architecturally discarded, so nothing can depend on them.
    pub fn dest(&self) -> Option<Reg> {
        let rd = match *self {
            Op::Add { rd, .. }
            | Op::Sub { rd, .. }
            | Op::And { rd, .. }
            | Op::Or { rd, .. }
            | Op::Xor { rd, .. }
            | Op::Shl { rd, .. }
            | Op::Shr { rd, .. }
            | Op::AddImm { rd, .. }
            | Op::LoadImm { rd, .. }
            | Op::Mul { rd, .. }
            | Op::Div { rd, .. }
            | Op::Load { rd, .. } => rd,
            Op::Call { .. } => Reg::LINK,
            _ => return None,
        };
        (!rd.is_zero()).then_some(rd)
    }

    /// Source registers read by the instruction (at most two).
    ///
    /// Reads of `r0` are omitted: its value is constant, so it never
    /// creates a dependence.
    pub fn sources(&self) -> SourceRegs {
        let (a, b) = match *self {
            Op::Add { rs1, rs2, .. }
            | Op::Sub { rs1, rs2, .. }
            | Op::And { rs1, rs2, .. }
            | Op::Or { rs1, rs2, .. }
            | Op::Xor { rs1, rs2, .. }
            | Op::Mul { rs1, rs2, .. }
            | Op::Div { rs1, rs2, .. } => (Some(rs1), Some(rs2)),
            Op::Shl { rs1, .. } | Op::Shr { rs1, .. } | Op::AddImm { rs1, .. } => (Some(rs1), None),
            Op::Load { base, .. } => (Some(base), None),
            Op::Store { src, base, .. } => (Some(base), Some(src)),
            Op::Branch { rs1, rs2, .. } => (Some(rs1), Some(rs2)),
            Op::IndirectJump { rs1 } => (Some(rs1), None),
            Op::Return => (Some(Reg::LINK), None),
            _ => (None, None),
        };
        let drop_zero = |r: Option<Reg>| r.filter(|r| !r.is_zero());
        SourceRegs {
            regs: [drop_zero(a), drop_zero(b)],
        }
    }

    /// The statically-known control-flow target, if any.
    ///
    /// `Return` and `IndirectJump` have no static target; their
    /// destinations are only known dynamically.
    pub fn static_target(&self) -> Option<Addr> {
        match *self {
            Op::Branch { target, .. } | Op::Jump { target } | Op::Call { target } => Some(target),
            _ => None,
        }
    }

    /// Whether this is a conditional branch whose target lies at or
    /// before its own address — the loop back-edge shape the
    /// preconstruction start-point heuristic looks for.
    pub fn is_backward_branch(&self, pc: Addr) -> bool {
        matches!(*self, Op::Branch { target, .. } if target <= pc)
    }

    /// Whether the instruction's dynamic successor can differ from
    /// `pc + 1`.
    pub fn is_control(&self) -> bool {
        self.class().is_control()
    }

    /// Whether execution can continue at `pc + 1` after this
    /// instruction: true for every non-control op, for a conditional
    /// branch (the not-taken arm), and for a call (the return point).
    /// False for unconditional transfers (`jmp`, `ret`, `jr`) and
    /// `halt`. CFG construction uses this to place fall-through edges
    /// and block leaders.
    pub fn can_fall_through(&self) -> bool {
        !matches!(
            self.class(),
            OpClass::Jump | OpClass::Return | OpClass::IndirectJump | OpClass::Halt
        )
    }

    /// Whether this instruction ends a basic block: every control
    /// transfer does (its successors start new blocks).
    pub fn is_block_terminator(&self) -> bool {
        self.is_control()
    }
}

/// The (up to two) source registers of an instruction.
///
/// Returned by [`Op::sources`]; iterate to visit each register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SourceRegs {
    regs: [Option<Reg>; 2],
}

impl SourceRegs {
    /// Iterates over the present source registers.
    pub fn iter(&self) -> impl Iterator<Item = Reg> + '_ {
        self.regs.iter().flatten().copied()
    }

    /// Number of source registers.
    pub fn len(&self) -> usize {
        self.regs.iter().flatten().count()
    }

    /// Whether the instruction reads no registers.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl IntoIterator for SourceRegs {
    type Item = Reg;
    type IntoIter = std::iter::Flatten<std::array::IntoIter<Option<Reg>, 2>>;
    fn into_iter(self) -> Self::IntoIter {
        self.regs.into_iter().flatten()
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Op::Add { rd, rs1, rs2 } => write!(f, "add {rd}, {rs1}, {rs2}"),
            Op::Sub { rd, rs1, rs2 } => write!(f, "sub {rd}, {rs1}, {rs2}"),
            Op::And { rd, rs1, rs2 } => write!(f, "and {rd}, {rs1}, {rs2}"),
            Op::Or { rd, rs1, rs2 } => write!(f, "or {rd}, {rs1}, {rs2}"),
            Op::Xor { rd, rs1, rs2 } => write!(f, "xor {rd}, {rs1}, {rs2}"),
            Op::Shl { rd, rs1, shamt } => write!(f, "shl {rd}, {rs1}, {shamt}"),
            Op::Shr { rd, rs1, shamt } => write!(f, "shr {rd}, {rs1}, {shamt}"),
            Op::AddImm { rd, rs1, imm } => write!(f, "addi {rd}, {rs1}, {imm}"),
            Op::LoadImm { rd, imm } => write!(f, "li {rd}, {imm}"),
            Op::Mul { rd, rs1, rs2 } => write!(f, "mul {rd}, {rs1}, {rs2}"),
            Op::Div { rd, rs1, rs2 } => write!(f, "div {rd}, {rs1}, {rs2}"),
            Op::Load { rd, base, offset } => write!(f, "ld {rd}, {offset}({base})"),
            Op::Store { src, base, offset } => write!(f, "st {src}, {offset}({base})"),
            Op::Branch {
                cond,
                rs1,
                rs2,
                target,
            } => write!(f, "{cond} {rs1}, {rs2}, {target}"),
            Op::Jump { target } => write!(f, "jmp {target}"),
            Op::Call { target } => write!(f, "jal {target}"),
            Op::Return => write!(f, "ret"),
            Op::IndirectJump { rs1 } => write!(f, "jr {rs1}"),
            Op::Halt => write!(f, "halt"),
            Op::Nop => write!(f, "nop"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }

    #[test]
    fn classes_cover_all_shapes() {
        assert_eq!(
            Op::Add {
                rd: r(1),
                rs1: r(2),
                rs2: r(3)
            }
            .class(),
            OpClass::IntAlu
        );
        assert_eq!(
            Op::Mul {
                rd: r(1),
                rs1: r(2),
                rs2: r(3)
            }
            .class(),
            OpClass::IntMul
        );
        assert_eq!(
            Op::Load {
                rd: r(1),
                base: r(2),
                offset: 0
            }
            .class(),
            OpClass::Load
        );
        assert_eq!(Op::Return.class(), OpClass::Return);
        assert_eq!(Op::Halt.class(), OpClass::Halt);
    }

    #[test]
    fn zero_register_writes_are_discarded() {
        let op = Op::Add {
            rd: Reg::ZERO,
            rs1: r(1),
            rs2: r(2),
        };
        assert_eq!(op.dest(), None);
    }

    #[test]
    fn zero_register_reads_create_no_dependence() {
        let op = Op::Add {
            rd: r(3),
            rs1: Reg::ZERO,
            rs2: r(2),
        };
        let srcs: Vec<_> = op.sources().iter().collect();
        assert_eq!(srcs, vec![r(2)]);
    }

    #[test]
    fn call_writes_link() {
        let op = Op::Call {
            target: Addr::new(100),
        };
        assert_eq!(op.dest(), Some(Reg::LINK));
    }

    #[test]
    fn return_reads_link() {
        let srcs: Vec<_> = Op::Return.sources().iter().collect();
        assert_eq!(srcs, vec![Reg::LINK]);
    }

    #[test]
    fn backward_branch_detection() {
        let back = Op::Branch {
            cond: BranchCond::Ne,
            rs1: r(1),
            rs2: r(2),
            target: Addr::new(5),
        };
        let fwd = Op::Branch {
            cond: BranchCond::Ne,
            rs1: r(1),
            rs2: r(2),
            target: Addr::new(50),
        };
        assert!(back.is_backward_branch(Addr::new(10)));
        assert!(!fwd.is_backward_branch(Addr::new(10)));
        // A branch to itself counts as backward (degenerate loop).
        assert!(back.is_backward_branch(Addr::new(5)));
    }

    #[test]
    fn static_targets() {
        assert_eq!(
            Op::Jump {
                target: Addr::new(9)
            }
            .static_target(),
            Some(Addr::new(9))
        );
        assert_eq!(Op::Return.static_target(), None);
        assert_eq!(Op::IndirectJump { rs1: r(4) }.static_target(), None);
    }

    #[test]
    fn fall_through_classification() {
        let falls = [
            Op::Nop,
            Op::Add {
                rd: r(1),
                rs1: r(2),
                rs2: r(3),
            },
            Op::Branch {
                cond: BranchCond::Eq,
                rs1: r(1),
                rs2: r(2),
                target: Addr::new(9),
            },
            Op::Call {
                target: Addr::new(9),
            },
        ];
        for op in falls {
            assert!(op.can_fall_through(), "{op} falls through");
        }
        let stops = [
            Op::Jump {
                target: Addr::new(9),
            },
            Op::Return,
            Op::IndirectJump { rs1: r(4) },
            Op::Halt,
        ];
        for op in stops {
            assert!(!op.can_fall_through(), "{op} never falls through");
        }
    }

    #[test]
    fn block_terminators_are_exactly_control_ops() {
        assert!(Op::Return.is_block_terminator());
        assert!(Op::Call {
            target: Addr::new(1)
        }
        .is_block_terminator());
        assert!(!Op::Nop.is_block_terminator());
        assert!(!Op::LoadImm { rd: r(1), imm: 3 }.is_block_terminator());
    }

    #[test]
    fn branch_cond_eval_matrix() {
        assert!(BranchCond::Eq.eval(3, 3));
        assert!(!BranchCond::Eq.eval(3, 4));
        assert!(BranchCond::Ne.eval(3, 4));
        assert!(BranchCond::Lt.eval(-1, 0));
        assert!(!BranchCond::Lt.eval(0, 0));
        assert!(BranchCond::Ge.eval(0, 0));
    }

    #[test]
    fn display_smoke() {
        let op = Op::Branch {
            cond: BranchCond::Lt,
            rs1: r(1),
            rs2: r(2),
            target: Addr::new(4),
        };
        assert_eq!(op.to_string(), "blt r1, r2, 0x000010");
    }

    #[test]
    fn source_regs_iteration() {
        let op = Op::Store {
            src: r(5),
            base: r(6),
            offset: 8,
        };
        assert_eq!(op.sources().len(), 2);
        assert!(!op.sources().is_empty());
        let collected: Vec<_> = op.sources().into_iter().collect();
        assert_eq!(collected, vec![r(6), r(5)]);
    }
}
