//! A small assembler for the simulator's instruction set.
//!
//! Lets programs — including their control-flow behaviour models —
//! be written as readable text instead of builder calls:
//!
//! ```text
//! main:
//!     li   r1, 5
//! loop:
//!     addi r1, r1, -1
//!     bne  r1, r0, loop    @loop(5)
//!     halt
//! ```
//!
//! Syntax:
//!
//! * one instruction per line; `;` starts a comment; labels end in
//!   `:` and may share a line with an instruction;
//! * conditional branches (`beq/bne/blt/bge rs1, rs2, label`) carry a
//!   model annotation: `@loop(N)`, `@bias(NUM/DENOM[, seed=S])`,
//!   `@taken`, `@nottaken`, or `@pattern(0b...)`;
//! * indirect jumps (`jr rs`) carry
//!   `@targets(label[:weight], ..., [seed=S])`;
//! * loads/stores use `ld rd, offset(base)` / `st rs, offset(base)`;
//! * execution starts at the `main` label when present, else at
//!   address 0; `main` and `jal`/`call` targets are recorded as the
//!   program's functions, while other labels stay purely local.
//!
//! When no explicit `seed=` is given, biased branches and indirect
//! jumps seed their outcome streams from the source line number, so
//! distinct sites get distinct, reproducible streams. The
//! [`disassemble`] inverse always emits explicit seeds, making the
//! rendered text independent of line placement.
//!
//! ```
//! use tpc_isa::asm::assemble;
//!
//! let program = assemble(
//!     "main: li r1, 3\n\
//!      top:  addi r1, r1, -1\n\
//!            bne r1, r0, top @loop(3)\n\
//!            halt",
//! ).expect("valid assembly");
//! assert_eq!(program.len(), 4);
//! ```

use crate::model::{IndirectModel, OutcomeModel};
use crate::{Addr, BranchCond, Op, Program, ProgramBuilder, Reg};
use std::collections::BTreeMap;
use std::fmt;

/// Error from assembling a program, with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, AsmError> {
    Err(AsmError {
        line,
        message: message.into(),
    })
}

/// A parsed-but-unresolved instruction (targets still by name).
#[derive(Debug, Clone)]
enum Pending {
    Ready(Op),
    Branch {
        cond: BranchCond,
        rs1: Reg,
        rs2: Reg,
        target: String,
        model: OutcomeModel,
    },
    Jump {
        target: String,
    },
    Call {
        target: String,
    },
    Indirect {
        rs1: Reg,
        targets: Vec<(String, u32)>,
        seed: u64,
    },
}

fn parse_reg(tok: &str, line: usize) -> Result<Reg, AsmError> {
    let tok = tok.trim();
    let Some(idx) = tok.strip_prefix('r') else {
        return err(line, format!("expected register, found {tok:?}"));
    };
    match idx.parse::<u8>() {
        Ok(i) if i < 32 => Ok(Reg::new(i)),
        _ => err(line, format!("invalid register {tok:?}")),
    }
}

fn parse_imm(tok: &str, line: usize) -> Result<i32, AsmError> {
    let tok = tok.trim();
    let parsed = if let Some(hex) = tok.strip_prefix("0x") {
        i64::from_str_radix(hex, 16)
    } else if let Some(hex) = tok.strip_prefix("-0x") {
        i64::from_str_radix(hex, 16).map(|v| -v)
    } else {
        tok.parse::<i64>()
    };
    match parsed {
        Ok(v) if i32::try_from(v).is_ok() => Ok(v as i32),
        _ => err(line, format!("invalid immediate {tok:?}")),
    }
}

/// Splits `"8(r1)"` into (offset, base).
fn parse_mem_operand(tok: &str, line: usize) -> Result<(i32, Reg), AsmError> {
    let tok = tok.trim();
    let Some(open) = tok.find('(') else {
        return err(line, format!("expected offset(base), found {tok:?}"));
    };
    if !tok.ends_with(')') {
        return err(line, format!("unclosed memory operand {tok:?}"));
    }
    let offset = parse_imm(&tok[..open], line)?;
    let base = parse_reg(&tok[open + 1..tok.len() - 1], line)?;
    Ok((offset, base))
}

fn parse_branch_model(annot: &str, line: usize) -> Result<OutcomeModel, AsmError> {
    let annot = annot.trim();
    if annot == "@taken" {
        return Ok(OutcomeModel::AlwaysTaken);
    }
    if annot == "@nottaken" {
        return Ok(OutcomeModel::NeverTaken);
    }
    if let Some(rest) = annot.strip_prefix("@loop(") {
        let Some(n) = rest.strip_suffix(')') else {
            return err(line, "unclosed @loop(");
        };
        return match n.trim().parse::<u32>() {
            Ok(trip) if trip >= 1 => Ok(OutcomeModel::Loop { trip }),
            _ => err(line, format!("invalid trip count {n:?}")),
        };
    }
    if let Some(rest) = annot.strip_prefix("@bias(") {
        let Some(args) = rest.strip_suffix(')') else {
            return err(line, "unclosed @bias(");
        };
        let (frac, explicit_seed) = match args.split_once(',') {
            Some((frac, s)) => (frac, Some(parse_seed(s, line)?)),
            None => (args, None),
        };
        let parts: Vec<&str> = frac.split('/').collect();
        if parts.len() != 2 {
            return err(line, "expected @bias(NUM/DENOM)");
        }
        let num: u32 = parts[0].trim().parse().map_err(|_| AsmError {
            line,
            message: format!("bad numerator {:?}", parts[0]),
        })?;
        let denom: u32 = parts[1].trim().parse().map_err(|_| AsmError {
            line,
            message: format!("bad denominator {:?}", parts[1]),
        })?;
        if denom == 0 || num > denom {
            return err(line, "bias must satisfy 0 <= NUM <= DENOM, DENOM > 0");
        }
        // Without an explicit seed, derive one from the source line
        // so distinct branches get distinct, reproducible streams.
        return Ok(OutcomeModel::Biased {
            num,
            denom,
            seed: explicit_seed.unwrap_or(line as u64),
        });
    }
    if let Some(rest) = annot.strip_prefix("@pattern(") {
        let Some(bits) = rest.strip_suffix(')') else {
            return err(line, "unclosed @pattern(");
        };
        let bits = bits.trim();
        let Some(binary) = bits.strip_prefix("0b") else {
            return err(line, "expected @pattern(0b...)");
        };
        let len = binary.len() as u8;
        if len == 0 || len > 32 {
            return err(line, "pattern must be 1..=32 bits");
        }
        return match u32::from_str_radix(binary, 2) {
            Ok(v) => Ok(OutcomeModel::Pattern { bits: v, len }),
            Err(_) => err(line, format!("bad pattern {bits:?}")),
        };
    }
    err(line, format!("unknown branch annotation {annot:?}"))
}

/// Parses a trailing `seed=S` annotation argument.
fn parse_seed(item: &str, line: usize) -> Result<u64, AsmError> {
    let item = item.trim();
    let Some(value) = item.strip_prefix("seed=") else {
        return err(line, format!("expected seed=S, found {item:?}"));
    };
    value.trim().parse().map_err(|_| AsmError {
        line,
        message: format!("bad seed {value:?}"),
    })
}

/// Weighted `(label, weight)` targets plus an optional explicit seed,
/// as parsed from a `@targets(...)` annotation.
type ParsedTargets = (Vec<(String, u32)>, Option<u64>);

fn parse_targets(annot: &str, line: usize) -> Result<ParsedTargets, AsmError> {
    let annot = annot.trim();
    let Some(rest) = annot.strip_prefix("@targets(") else {
        return err(
            line,
            format!("indirect jump needs @targets(...), found {annot:?}"),
        );
    };
    let Some(list) = rest.strip_suffix(')') else {
        return err(line, "unclosed @targets(");
    };
    let mut out = Vec::new();
    let mut seed = None;
    for item in list.split(',') {
        let item = item.trim();
        if item.is_empty() {
            continue;
        }
        if item.starts_with("seed=") {
            seed = Some(parse_seed(item, line)?);
            continue;
        }
        match item.split_once(':') {
            Some((name, w)) => {
                let weight: u32 = w.trim().parse().map_err(|_| AsmError {
                    line,
                    message: format!("bad weight {w:?}"),
                })?;
                out.push((name.trim().to_string(), weight));
            }
            None => out.push((item.to_string(), 1)),
        }
    }
    if out.is_empty() {
        return err(line, "@targets(...) needs at least one label");
    }
    Ok((out, seed))
}

/// Assembles source text into a validated [`Program`].
///
/// # Errors
///
/// Returns an [`AsmError`] with the offending line for syntax errors,
/// unknown mnemonics/labels, missing branch annotations, or when the
/// assembled program fails [`Program`] validation.
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    let mut labels: BTreeMap<String, Addr> = BTreeMap::new();
    let mut pendings: Vec<(usize, Pending)> = Vec::new();

    for (lineno, raw) in source.lines().enumerate() {
        let line = lineno + 1;
        let mut text = raw;
        if let Some(p) = text.find(';') {
            text = &text[..p];
        }
        let mut text = text.trim();
        // Labels (possibly several) before the instruction.
        while let Some(colon) = text.find(':') {
            let (label, rest) = text.split_at(colon);
            let label = label.trim();
            if label.is_empty() || label.contains(char::is_whitespace) {
                break; // not a label, e.g. nothing before ':'
            }
            let at = Addr::new(pendings.len() as u32);
            if labels.insert(label.to_string(), at).is_some() {
                return err(line, format!("duplicate label {label:?}"));
            }
            text = rest[1..].trim();
        }
        if text.is_empty() {
            continue;
        }

        // Split off an @annotation, if any.
        let (body, annot) = match text.find('@') {
            Some(p) => (text[..p].trim(), Some(text[p..].trim())),
            None => (text, None),
        };
        let mut parts = body.split_whitespace();
        let mnemonic = parts.next().expect("non-empty body");
        let operands: Vec<String> = parts
            .collect::<Vec<_>>()
            .join(" ")
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect();

        let nth = |i: usize| -> Result<&str, AsmError> {
            operands.get(i).map(|s| s.as_str()).ok_or(AsmError {
                line,
                message: format!("{mnemonic}: missing operand {}", i + 1),
            })
        };

        let three_regs = |line: usize| -> Result<(Reg, Reg, Reg), AsmError> {
            Ok((
                parse_reg(nth(0)?, line)?,
                parse_reg(nth(1)?, line)?,
                parse_reg(nth(2)?, line)?,
            ))
        };

        let pending = match mnemonic {
            "add" => {
                let (rd, rs1, rs2) = three_regs(line)?;
                Pending::Ready(Op::Add { rd, rs1, rs2 })
            }
            "sub" => {
                let (rd, rs1, rs2) = three_regs(line)?;
                Pending::Ready(Op::Sub { rd, rs1, rs2 })
            }
            "and" => {
                let (rd, rs1, rs2) = three_regs(line)?;
                Pending::Ready(Op::And { rd, rs1, rs2 })
            }
            "or" => {
                let (rd, rs1, rs2) = three_regs(line)?;
                Pending::Ready(Op::Or { rd, rs1, rs2 })
            }
            "xor" => {
                let (rd, rs1, rs2) = three_regs(line)?;
                Pending::Ready(Op::Xor { rd, rs1, rs2 })
            }
            "mul" => {
                let (rd, rs1, rs2) = three_regs(line)?;
                Pending::Ready(Op::Mul { rd, rs1, rs2 })
            }
            "div" => {
                let (rd, rs1, rs2) = three_regs(line)?;
                Pending::Ready(Op::Div { rd, rs1, rs2 })
            }
            "shl" | "shr" => {
                let rd = parse_reg(nth(0)?, line)?;
                let rs1 = parse_reg(nth(1)?, line)?;
                let shamt = parse_imm(nth(2)?, line)?;
                if !(0..64).contains(&shamt) {
                    return err(line, format!("shift amount {shamt} out of range"));
                }
                let shamt = shamt as u8;
                Pending::Ready(if mnemonic == "shl" {
                    Op::Shl { rd, rs1, shamt }
                } else {
                    Op::Shr { rd, rs1, shamt }
                })
            }
            "addi" => Pending::Ready(Op::AddImm {
                rd: parse_reg(nth(0)?, line)?,
                rs1: parse_reg(nth(1)?, line)?,
                imm: parse_imm(nth(2)?, line)?,
            }),
            "li" => Pending::Ready(Op::LoadImm {
                rd: parse_reg(nth(0)?, line)?,
                imm: parse_imm(nth(1)?, line)?,
            }),
            "ld" => {
                let rd = parse_reg(nth(0)?, line)?;
                let (offset, base) = parse_mem_operand(nth(1)?, line)?;
                Pending::Ready(Op::Load { rd, base, offset })
            }
            "st" => {
                let src = parse_reg(nth(0)?, line)?;
                let (offset, base) = parse_mem_operand(nth(1)?, line)?;
                Pending::Ready(Op::Store { src, base, offset })
            }
            "beq" | "bne" | "blt" | "bge" => {
                let cond = match mnemonic {
                    "beq" => BranchCond::Eq,
                    "bne" => BranchCond::Ne,
                    "blt" => BranchCond::Lt,
                    _ => BranchCond::Ge,
                };
                let Some(annot) = annot else {
                    return err(line, "conditional branch needs a model annotation (@loop/@bias/@taken/@nottaken/@pattern)");
                };
                Pending::Branch {
                    cond,
                    rs1: parse_reg(nth(0)?, line)?,
                    rs2: parse_reg(nth(1)?, line)?,
                    target: nth(2)?.to_string(),
                    model: parse_branch_model(annot, line)?,
                }
            }
            "jmp" => Pending::Jump {
                target: nth(0)?.to_string(),
            },
            "jal" | "call" => Pending::Call {
                target: nth(0)?.to_string(),
            },
            "ret" => Pending::Ready(Op::Return),
            "jr" => {
                let Some(annot) = annot else {
                    return err(line, "indirect jump needs @targets(...)");
                };
                let (targets, explicit_seed) = parse_targets(annot, line)?;
                Pending::Indirect {
                    rs1: parse_reg(nth(0)?, line)?,
                    targets,
                    seed: explicit_seed.unwrap_or(line as u64),
                }
            }
            "halt" => Pending::Ready(Op::Halt),
            "nop" => Pending::Ready(Op::Nop),
            other => return err(line, format!("unknown mnemonic {other:?}")),
        };
        pendings.push((line, pending));
    }

    // Resolve labels and emit.
    let resolve = |name: &str, line: usize| -> Result<Addr, AsmError> {
        labels.get(name).copied().ok_or_else(|| AsmError {
            line,
            message: format!("unknown label {name:?}"),
        })
    };
    let mut called: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    let mut b = ProgramBuilder::new();
    for (line, pending) in pendings {
        match pending {
            Pending::Ready(op) => {
                b.push(op);
            }
            Pending::Branch {
                cond,
                rs1,
                rs2,
                target,
                model,
            } => {
                let target = resolve(&target, line)?;
                b.push_branch(
                    Op::Branch {
                        cond,
                        rs1,
                        rs2,
                        target,
                    },
                    model,
                );
            }
            Pending::Jump { target } => {
                let target = resolve(&target, line)?;
                b.push(Op::Jump { target });
            }
            Pending::Call { target } => {
                called.insert(target.clone());
                let target = resolve(&target, line)?;
                b.push(Op::Call { target });
            }
            Pending::Indirect { rs1, targets, seed } => {
                let mut addrs = Vec::with_capacity(targets.len());
                let mut weights = Vec::with_capacity(targets.len());
                for (name, w) in targets {
                    addrs.push(resolve(&name, line)?);
                    weights.push(w);
                }
                b.push_indirect(
                    Op::IndirectJump { rs1 },
                    IndirectModel::weighted(addrs, weights, seed),
                );
            }
        }
    }
    if let Some(&entry) = labels.get("main") {
        b.set_entry(entry);
    }
    // Only `main` and call targets are functions; other labels are
    // local branch targets. This matters downstream: function entries
    // are CFG roots, and a loop header that is also a root would stop
    // dominating its latches, tripping the workload linter on every
    // labeled multi-block loop.
    for (name, &addr) in &labels {
        if name == "main" || called.contains(name) {
            b.record_function(name.clone(), addr);
        }
    }
    b.build().map_err(|e| AsmError {
        line: 0,
        message: format!("program validation failed: {e}"),
    })
}

/// True when `name` can serve as an assembler label: an ASCII
/// identifier (`[A-Za-z_][A-Za-z0-9_]*`).
fn is_label_ident(name: &str) -> bool {
    let mut chars = name.chars();
    chars
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Renders a branch model annotation with an explicit seed.
fn format_model(model: &OutcomeModel) -> String {
    match *model {
        OutcomeModel::Loop { trip } => format!("@loop({})", trip.max(1)),
        OutcomeModel::Biased { num, denom, seed } => {
            // Clamp out-of-range builder inputs to the executor's
            // effective behaviour (chance() treats num >= denom as
            // always-taken and denom 0 as 1).
            let denom = denom.max(1);
            let num = num.min(denom);
            format!("@bias({num}/{denom}, seed={seed})")
        }
        OutcomeModel::Pattern { bits, len } => {
            let len = len.clamp(1, 32) as usize;
            let bits = if len >= 32 {
                bits
            } else {
                bits & ((1u32 << len) - 1)
            };
            format!("@pattern(0b{bits:0len$b})")
        }
        OutcomeModel::AlwaysTaken => "@taken".to_string(),
        OutcomeModel::NeverTaken => "@nottaken".to_string(),
    }
}

/// Renders a [`Program`] back into assembler text accepted by
/// [`assemble`].
///
/// Labels come from the program's recorded functions (names that are
/// valid label identifiers); any control-flow target without one gets
/// a synthetic `L{addr}` label. `main` always names the entry point:
/// a stray `main` elsewhere is renamed, and a synthetic `main` is
/// added when the entry is non-zero and unnamed. Biased-branch and
/// indirect models are emitted with explicit `seed=` annotations so
/// the text reproduces the exact outcome streams regardless of line
/// placement.
///
/// For programs that came from [`assemble`] the round trip is a fixed
/// point: `assemble(&disassemble(&p)).unwrap() == p`. Programs built
/// directly through [`ProgramBuilder`] may normalise metadata on the
/// first round trip (function lengths, out-of-range model fields) —
/// without changing the executed instruction stream — after which it
/// is a fixed point too.
pub fn disassemble(program: &Program) -> String {
    use std::collections::BTreeSet;
    use std::fmt::Write as _;

    let len = program.len() as u32;
    let entry = program.entry().word();

    // Address -> label names, deduplicated by name across addresses.
    let mut labels: BTreeMap<u32, BTreeSet<String>> = BTreeMap::new();
    let mut used: BTreeSet<String> = BTreeSet::new();
    for f in program.functions() {
        if !is_label_ident(&f.name) || f.entry.word() > len || !used.insert(f.name.clone()) {
            continue;
        }
        labels
            .entry(f.entry.word())
            .or_default()
            .insert(f.name.clone());
    }

    // `main` must name the entry and nothing else.
    let main_at = labels
        .iter()
        .find(|(_, names)| names.contains("main"))
        .map(|(&addr, _)| addr);
    if let Some(addr) = main_at {
        if addr != entry {
            let mut fresh = String::from("main_");
            while used.contains(&fresh) {
                fresh.push('_');
            }
            let names = labels.get_mut(&addr).expect("main label present");
            names.remove("main");
            names.insert(fresh.clone());
            used.remove("main");
            used.insert(fresh);
        }
    }
    if entry != 0 && !labels.get(&entry).is_some_and(|n| n.contains("main")) {
        labels.entry(entry).or_default().insert("main".to_string());
        used.insert("main".to_string());
    }

    // Synthetic labels for control-flow targets without one.
    let mut needed: BTreeSet<u32> = BTreeSet::new();
    for w in 0..len {
        let at = Addr::new(w);
        let op = program.fetch(at).expect("in range");
        if let Some(t) = op.static_target() {
            needed.insert(t.word());
        }
        if let Some(m) = program.indirect_model(at) {
            for t in m.targets() {
                needed.insert(t.word());
            }
        }
    }
    for w in needed {
        if labels.get(&w).is_some_and(|n| !n.is_empty()) {
            continue;
        }
        let mut name = format!("L{w}");
        while used.contains(&name) {
            name.push('_');
        }
        used.insert(name.clone());
        labels.entry(w).or_default().insert(name);
    }

    let label_for = |w: u32| -> &str {
        labels[&w]
            .iter()
            .next()
            .expect("target labelled above")
            .as_str()
    };

    let mut out = String::new();
    for w in 0..len {
        if let Some(names) = labels.get(&w) {
            for name in names {
                let _ = writeln!(out, "{name}:");
            }
        }
        let at = Addr::new(w);
        let op = program.fetch(at).expect("in range");
        out.push_str("    ");
        match *op {
            Op::Branch {
                cond,
                rs1,
                rs2,
                target,
            } => {
                let model = program.branch_model(at).expect("validated program");
                let _ = write!(
                    out,
                    "{cond} {rs1}, {rs2}, {} {}",
                    label_for(target.word()),
                    format_model(model)
                );
            }
            Op::Jump { target } => {
                let _ = write!(out, "jmp {}", label_for(target.word()));
            }
            Op::Call { target } => {
                let _ = write!(out, "jal {}", label_for(target.word()));
            }
            Op::IndirectJump { rs1 } => {
                let model = program.indirect_model(at).expect("validated program");
                let mut parts: Vec<String> = model
                    .targets()
                    .iter()
                    .zip(model.weights())
                    .map(|(t, weight)| format!("{}:{weight}", label_for(t.word())))
                    .collect();
                parts.push(format!("seed={}", model.seed()));
                let _ = write!(out, "jr {rs1} @targets({})", parts.join(", "));
            }
            // Display prints the raw shift amount; the executor wraps
            // mod 64 and the parser rejects >= 64, so normalise.
            Op::Shl { rd, rs1, shamt } => {
                let _ = write!(out, "shl {rd}, {rs1}, {}", shamt % 64);
            }
            Op::Shr { rd, rs1, shamt } => {
                let _ = write!(out, "shr {rd}, {rs1}, {}", shamt % 64);
            }
            ref other => {
                let _ = write!(out, "{other}");
            }
        }
        out.push('\n');
    }
    // Labels recorded at the end of the code (entry == len).
    if let Some(names) = labels.get(&len) {
        for name in names {
            let _ = writeln!(out, "{name}:");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OpClass;

    #[test]
    fn assembles_counted_loop() {
        let p = assemble(
            "main: li r1, 5\n\
             top:  addi r1, r1, -1\n\
                   bne r1, r0, top @loop(5)\n\
                   halt",
        )
        .unwrap();
        assert_eq!(p.len(), 4);
        assert_eq!(p.entry(), Addr::ZERO);
        assert_eq!(
            p.branch_model(Addr::new(2)),
            Some(&OutcomeModel::Loop { trip: 5 })
        );
    }

    #[test]
    fn labels_resolve_forward_and_backward() {
        let p = assemble(
            "main: jmp end\n\
             mid:  nop\n\
             end:  beq r1, r2, mid @nottaken\n\
                   halt",
        )
        .unwrap();
        assert_eq!(
            p.fetch(Addr::new(0)),
            Some(&Op::Jump {
                target: Addr::new(2)
            })
        );
        match p.fetch(Addr::new(2)) {
            Some(Op::Branch { target, .. }) => assert_eq!(*target, Addr::new(1)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn entry_defaults_to_zero_without_main() {
        let p = assemble("nop\nhalt").unwrap();
        assert_eq!(p.entry(), Addr::ZERO);
    }

    #[test]
    fn main_label_sets_entry() {
        let p = assemble(
            "f:    nop\n\
                   ret\n\
             main: jal f\n\
                   halt",
        )
        .unwrap();
        assert_eq!(p.entry(), Addr::new(2));
    }

    #[test]
    fn memory_operands() {
        let p = assemble(
            "main: ld r2, 8(r1)\n\
                   st r2, -16(r3)\n\
                   halt",
        )
        .unwrap();
        assert_eq!(
            p.fetch(Addr::new(0)),
            Some(&Op::Load {
                rd: Reg::new(2),
                base: Reg::new(1),
                offset: 8
            })
        );
        assert_eq!(
            p.fetch(Addr::new(1)),
            Some(&Op::Store {
                src: Reg::new(2),
                base: Reg::new(3),
                offset: -16
            })
        );
    }

    #[test]
    fn bias_pattern_and_fixed_annotations() {
        let p = assemble(
            "main: beq r1, r2, a @bias(3/10)\n\
             a:    bne r1, r2, b @pattern(0b101)\n\
             b:    blt r1, r2, c @taken\n\
             c:    bge r1, r2, main @nottaken\n\
                   halt",
        )
        .unwrap();
        assert!(matches!(
            p.branch_model(Addr::new(0)),
            Some(OutcomeModel::Biased {
                num: 3,
                denom: 10,
                ..
            })
        ));
        assert!(matches!(
            p.branch_model(Addr::new(1)),
            Some(OutcomeModel::Pattern {
                bits: 0b101,
                len: 3
            })
        ));
        assert_eq!(
            p.branch_model(Addr::new(2)),
            Some(&OutcomeModel::AlwaysTaken)
        );
        assert_eq!(
            p.branch_model(Addr::new(3)),
            Some(&OutcomeModel::NeverTaken)
        );
    }

    #[test]
    fn indirect_jump_targets() {
        let p = assemble(
            "main: jr r4 @targets(a:3, b)\n\
             a:    halt\n\
             b:    halt",
        )
        .unwrap();
        let model = p.indirect_model(Addr::new(0)).unwrap();
        assert_eq!(model.targets(), &[Addr::new(1), Addr::new(2)]);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let p = assemble(
            "; a program\n\
             \n\
             main: nop ; does nothing\n\
                   halt",
        )
        .unwrap();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn error_reports_line_numbers() {
        let e = assemble("nop\nbogus r1\nhalt").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("bogus"));
    }

    #[test]
    fn branch_without_model_rejected() {
        let e = assemble("main: beq r1, r2, main\nhalt").unwrap_err();
        assert!(e.message.contains("model annotation"));
    }

    #[test]
    fn unknown_label_rejected() {
        let e = assemble("main: jmp nowhere\nhalt").unwrap_err();
        assert!(e.message.contains("nowhere"));
    }

    #[test]
    fn duplicate_label_rejected() {
        let e = assemble("a: nop\na: halt").unwrap_err();
        assert!(e.message.contains("duplicate"));
    }

    #[test]
    fn falls_off_end_rejected_by_validation() {
        let e = assemble("main: nop").unwrap_err();
        assert!(e.message.contains("validation"));
    }

    #[test]
    fn assembled_program_executes() {
        // End-to-end: classify the dynamic stream of an assembled
        // if-diamond driven by a pattern branch.
        let p = assemble(
            "main: beq r1, r2, odd @pattern(0b10)\n\
                   addi r3, r3, 1\n\
                   jmp join\n\
             odd:  addi r4, r4, 1\n\
             join: halt",
        )
        .unwrap();
        // We only validate structure here; execution lives in
        // tpc-exec, which depends on this crate.
        assert_eq!(p.fetch(Addr::new(0)).unwrap().class(), OpClass::Branch);
        assert_eq!(p.len(), 5);
    }

    #[test]
    fn register_bounds_checked() {
        let e = assemble("main: li r32, 1\nhalt").unwrap_err();
        assert!(e.message.contains("r32"));
    }

    #[test]
    fn explicit_seeds_override_line_derivation() {
        let p = assemble(
            "main: beq r1, r2, a @bias(3/10, seed=77)\n\
             a:    jr r4 @targets(b:2, c, seed=99)\n\
             b:    halt\n\
             c:    halt",
        )
        .unwrap();
        assert_eq!(
            p.branch_model(Addr::new(0)),
            Some(&OutcomeModel::Biased {
                num: 3,
                denom: 10,
                seed: 77
            })
        );
        assert_eq!(p.indirect_model(Addr::new(1)).unwrap().seed(), 99);
    }

    #[test]
    fn bad_seed_rejected() {
        let e = assemble("main: beq r1, r2, main @bias(1/2, seed=x)\nhalt").unwrap_err();
        assert!(e.message.contains("seed"));
        let e = assemble("main: jr r1 @targets(main, sead=1)\nhalt").unwrap_err();
        assert!(e.message.contains("sead") || e.message.contains("label"));
    }

    #[test]
    fn disassemble_round_trips_asm_programs() {
        let src = "main:\n\
                   \x20   li r1, 5\n\
                   top:\n\
                   \x20   addi r1, r1, -1\n\
                   \x20   beq r1, r2, arm @bias(3/10, seed=4)\n\
                   \x20   bne r1, r0, top @loop(5)\n\
                   \x20   jal fun\n\
                   \x20   jr r4 @targets(top:3, end, seed=9)\n\
                   arm:\n\
                   \x20   blt r1, r2, top @pattern(0b0101)\n\
                   end:\n\
                   \x20   halt\n\
                   fun:\n\
                   \x20   st r1, -8(r2)\n\
                   \x20   ret\n";
        let p = assemble(src).unwrap();
        let text = disassemble(&p);
        let p2 = assemble(&text).unwrap();
        assert_eq!(p, p2, "reassembly must be a fixed point:\n{text}");
        assert_eq!(text, disassemble(&p2));
    }

    #[test]
    fn disassemble_labels_builder_programs() {
        // A builder program with no functions at all: targets get
        // synthetic labels, and one round trip reaches a fixed point.
        let mut b = ProgramBuilder::new();
        b.push(Op::LoadImm {
            rd: Reg::new(1),
            imm: 3,
        });
        let top = b.here();
        b.push(Op::AddImm {
            rd: Reg::new(1),
            rs1: Reg::new(1),
            imm: -1,
        });
        b.push_branch(
            Op::Branch {
                cond: BranchCond::Ne,
                rs1: Reg::new(1),
                rs2: Reg::new(0),
                target: top,
            },
            OutcomeModel::Loop { trip: 3 },
        );
        b.push(Op::Halt);
        let p = b.build().unwrap();
        let p1 = assemble(&disassemble(&p)).unwrap();
        let p2 = assemble(&disassemble(&p1)).unwrap();
        assert_eq!(p1, p2);
        assert_eq!(p1.len(), p.len());
        assert_eq!(p1.entry(), p.entry());
        assert_eq!(p1.branch_model(Addr::new(2)), p.branch_model(Addr::new(2)));
    }

    #[test]
    fn disassemble_renames_stray_main() {
        // `main` recorded away from the entry must not hijack the
        // entry point on reassembly.
        let mut b = ProgramBuilder::new();
        b.push(Op::Nop);
        let e = b.here();
        b.push(Op::Halt);
        b.set_entry(e);
        b.record_function("main", Addr::ZERO);
        let p = b.build().unwrap();
        let p1 = assemble(&disassemble(&p)).unwrap();
        assert_eq!(p1.entry(), p.entry());
    }

    #[test]
    fn hex_immediates() {
        let p = assemble("main: li r1, 0x40\naddi r2, r1, -0x10\nhalt").unwrap();
        assert_eq!(
            p.fetch(Addr::new(0)),
            Some(&Op::LoadImm {
                rd: Reg::new(1),
                imm: 64
            })
        );
        assert_eq!(
            p.fetch(Addr::new(1)),
            Some(&Op::AddImm {
                rd: Reg::new(2),
                rs1: Reg::new(1),
                imm: -16
            })
        );
    }
}
