//! # tpc-isa — the simulator's instruction set
//!
//! A small, regular RISC instruction set in the spirit of the
//! SimpleScalar PISA used by the paper. Instructions are word
//! addressed (one [`Addr`] step per instruction) and carry explicit
//! register operands so the backend timing model can track true data
//! dependences.
//!
//! Control flow is *modelled*: each conditional branch and indirect
//! jump in a [`Program`] is associated with a deterministic
//! [`model::OutcomeModel`] / [`model::IndirectModel`] that the
//! architectural executor consults. This gives workload generators
//! exact control over branch bias and loop trip counts — the
//! statistics the preconstruction heuristics key on — while register
//! dataflow remains real. See `DESIGN.md` §6.1.
//!
//! ```
//! use tpc_isa::{Op, Reg, Addr};
//!
//! let op = Op::Add { rd: Reg::new(3), rs1: Reg::new(1), rs2: Reg::new(2) };
//! assert_eq!(op.class(), tpc_isa::OpClass::IntAlu);
//! assert_eq!(format!("{op}"), "add r3, r1, r2");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod asm;
pub mod encode;
pub mod model;
pub mod op;
pub mod program;
pub mod reg;

pub use addr::Addr;
pub use op::{BranchCond, Op, OpClass};
pub use program::{Program, ProgramBuilder, ProgramError};
pub use reg::Reg;

/// Number of architectural registers.
pub const NUM_REGS: usize = 32;

/// The register that always reads as zero.
pub const ZERO: Reg = Reg::ZERO;

/// The link register written by `call`.
pub const LINK: Reg = Reg::LINK;
