//! Deterministic control-flow behaviour models.
//!
//! Generated programs attach an [`OutcomeModel`] to every conditional
//! branch and an [`IndirectModel`] to every indirect jump. The
//! architectural executor resolves control flow from these models,
//! which gives workload profiles *exact* control over the statistics
//! the paper's mechanisms depend on (branch bias mix, loop trip
//! counts, switch-target spread) while keeping execution fully
//! deterministic. See `DESIGN.md` §6.1 for the rationale.

use crate::Addr;

/// A small, fast, deterministic PRNG (xorshift64*).
///
/// Used for biased-branch outcome streams and indirect-target
/// selection. Not cryptographic; chosen for reproducibility and
/// speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Creates a generator; a zero seed is remapped to a fixed
    /// non-zero constant (xorshift has a zero fixed point).
    pub fn new(seed: u64) -> Self {
        XorShift64 {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Next 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// A value uniform in `[0, bound)`; `bound` must be non-zero.
    #[inline]
    pub fn next_below(&mut self, bound: u32) -> u32 {
        debug_assert!(bound != 0);
        (self.next_u64() % bound as u64) as u32
    }

    /// A biased coin: `true` with probability `num/denom`.
    #[inline]
    pub fn chance(&mut self, num: u32, denom: u32) -> bool {
        self.next_below(denom) < num
    }

    /// A value uniform in `[lo, hi]` (inclusive); `lo <= hi`.
    ///
    /// Generator hook for the structure-aware program fuzzer (sizes,
    /// trip counts, arm counts).
    #[inline]
    pub fn next_in(&mut self, lo: u32, hi: u32) -> u32 {
        debug_assert!(lo <= hi);
        lo + self.next_below(hi - lo + 1)
    }

    /// Splits off an independent child generator whose stream is
    /// decorrelated from this one's continuation.
    ///
    /// Generator hook for the fuzzer: each program construct forks
    /// its own stream so inserting one construct does not perturb the
    /// randomness of every later construct (which keeps shrinking
    /// effective).
    pub fn fork(&mut self) -> XorShift64 {
        // Draw one value to advance self, then decorrelate the child
        // with an odd constant (golden-ratio increment).
        XorShift64::new(self.next_u64().wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }
}

/// Deterministic outcome model for one static conditional branch.
///
/// The per-branch dynamic state (loop counters, PRNG positions) lives
/// in the executor; the model itself is immutable program metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutcomeModel {
    /// A loop back-edge: taken `trip - 1` consecutive times, then
    /// not-taken once (loop exit), repeating. `trip` must be ≥ 1;
    /// `trip == 1` is a loop whose body runs once per entry.
    Loop {
        /// Iterations per loop entry.
        trip: u32,
    },
    /// Taken with fixed probability `num/denom`, outcomes drawn from
    /// a branch-private xorshift stream seeded with `seed`.
    Biased {
        /// Numerator of the taken probability.
        num: u32,
        /// Denominator of the taken probability.
        denom: u32,
        /// Seed of the branch-private xorshift stream.
        seed: u64,
    },
    /// Repeating fixed pattern of `len` outcomes (LSB first) — models
    /// correlated branches.
    Pattern {
        /// The outcome bits, least-significant bit first.
        bits: u32,
        /// Number of pattern bits in use (1–32).
        len: u8,
    },
    /// Always taken.
    AlwaysTaken,
    /// Never taken.
    NeverTaken,
}

impl OutcomeModel {
    /// The long-run probability (in 1/1000ths) that the branch is
    /// taken — used by tests and workload calibration.
    pub fn taken_permille(&self) -> u32 {
        match *self {
            OutcomeModel::Loop { trip } => ((trip.saturating_sub(1)) * 1000) / trip.max(1),
            OutcomeModel::Biased { num, denom, .. } => num * 1000 / denom.max(1),
            OutcomeModel::Pattern { bits, len } => {
                let len = len.max(1) as u32;
                let ones = (bits & ((1u32 << len) - 1)).count_ones();
                ones * 1000 / len
            }
            OutcomeModel::AlwaysTaken => 1000,
            OutcomeModel::NeverTaken => 0,
        }
    }

    /// Whether a bimodal predictor would sit in a strong state for
    /// this branch essentially all the time — i.e. whether the
    /// preconstruction engine will treat it as strongly biased.
    pub fn is_strongly_biased(&self) -> bool {
        let p = self.taken_permille();
        p >= 900 || p <= 100
    }
}

/// Dynamic per-branch state advancing an [`OutcomeModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutcomeState {
    counter: u32,
    rng: XorShift64,
}

impl OutcomeState {
    /// Initial state for one static branch.
    pub fn new(model: &OutcomeModel) -> Self {
        let seed = match *model {
            OutcomeModel::Biased { seed, .. } => seed,
            _ => 1,
        };
        OutcomeState {
            counter: 0,
            rng: XorShift64::new(seed),
        }
    }

    /// Produces the next dynamic outcome of the branch.
    pub fn next_outcome(&mut self, model: &OutcomeModel) -> bool {
        match *model {
            OutcomeModel::Loop { trip } => {
                let trip = trip.max(1);
                self.counter += 1;
                if self.counter >= trip {
                    self.counter = 0;
                    false // loop exit
                } else {
                    true // back edge taken
                }
            }
            OutcomeModel::Biased { num, denom, .. } => self.rng.chance(num, denom.max(1)),
            OutcomeModel::Pattern { bits, len } => {
                let len = len.max(1) as u32;
                let bit = (bits >> self.counter) & 1 == 1;
                self.counter = (self.counter + 1) % len;
                bit
            }
            OutcomeModel::AlwaysTaken => true,
            OutcomeModel::NeverTaken => false,
        }
    }
}

/// Deterministic target model for one static indirect jump.
///
/// Targets are selected from a fixed set with fixed weights — the
/// shape of a switch statement's jump table or a virtual call site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndirectModel {
    targets: Vec<Addr>,
    weights: Vec<u32>,
    total_weight: u32,
    seed: u64,
}

impl IndirectModel {
    /// Creates a model over `targets` with uniform weights.
    ///
    /// # Panics
    ///
    /// Panics if `targets` is empty.
    pub fn uniform(targets: Vec<Addr>, seed: u64) -> Self {
        assert!(
            !targets.is_empty(),
            "indirect model needs at least one target"
        );
        let weights = vec![1; targets.len()];
        let total_weight = targets.len() as u32;
        IndirectModel {
            targets,
            weights,
            total_weight,
            seed,
        }
    }

    /// Creates a model with explicit per-target weights.
    ///
    /// # Panics
    ///
    /// Panics if the slices are empty, differ in length, or all
    /// weights are zero.
    pub fn weighted(targets: Vec<Addr>, weights: Vec<u32>, seed: u64) -> Self {
        assert!(
            !targets.is_empty(),
            "indirect model needs at least one target"
        );
        assert_eq!(
            targets.len(),
            weights.len(),
            "targets/weights length mismatch"
        );
        let total_weight: u32 = weights.iter().sum();
        assert!(total_weight > 0, "weights must not all be zero");
        IndirectModel {
            targets,
            weights,
            total_weight,
            seed,
        }
    }

    /// The possible targets of this jump.
    pub fn targets(&self) -> &[Addr] {
        &self.targets
    }

    /// The per-target selection weights (parallel to [`targets`]).
    ///
    /// [`targets`]: IndirectModel::targets
    pub fn weights(&self) -> &[u32] {
        &self.weights
    }

    /// The seed for the selection stream.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Selects a target given a draw from the jump's PRNG stream.
    pub fn select(&self, rng: &mut XorShift64) -> Addr {
        let mut pick = rng.next_below(self.total_weight);
        for (t, w) in self.targets.iter().zip(&self.weights) {
            if pick < *w {
                return *t;
            }
            pick -= w;
        }
        *self.targets.last().expect("non-empty by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xorshift_is_deterministic() {
        let mut a = XorShift64::new(42);
        let mut b = XorShift64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn xorshift_zero_seed_is_remapped() {
        let mut z = XorShift64::new(0);
        assert_ne!(z.next_u64(), 0);
    }

    #[test]
    fn loop_model_exits_every_trip() {
        let model = OutcomeModel::Loop { trip: 4 };
        let mut st = OutcomeState::new(&model);
        let outcomes: Vec<bool> = (0..8).map(|_| st.next_outcome(&model)).collect();
        assert_eq!(
            outcomes,
            vec![true, true, true, false, true, true, true, false]
        );
    }

    #[test]
    fn trip_one_loop_never_takes_back_edge() {
        let model = OutcomeModel::Loop { trip: 1 };
        let mut st = OutcomeState::new(&model);
        assert!(!st.next_outcome(&model));
        assert!(!st.next_outcome(&model));
    }

    #[test]
    fn biased_model_hits_its_bias() {
        let model = OutcomeModel::Biased {
            num: 9,
            denom: 10,
            seed: 7,
        };
        let mut st = OutcomeState::new(&model);
        let taken = (0..10_000).filter(|_| st.next_outcome(&model)).count();
        assert!((8_700..=9_300).contains(&taken), "taken = {taken}");
    }

    #[test]
    fn pattern_model_repeats() {
        // pattern 1,0,1 (LSB first)
        let model = OutcomeModel::Pattern {
            bits: 0b101,
            len: 3,
        };
        let mut st = OutcomeState::new(&model);
        let outcomes: Vec<bool> = (0..6).map(|_| st.next_outcome(&model)).collect();
        assert_eq!(outcomes, vec![true, false, true, true, false, true]);
    }

    #[test]
    fn permille_values() {
        assert_eq!(OutcomeModel::Loop { trip: 10 }.taken_permille(), 900);
        assert_eq!(OutcomeModel::AlwaysTaken.taken_permille(), 1000);
        assert_eq!(OutcomeModel::NeverTaken.taken_permille(), 0);
        assert_eq!(
            OutcomeModel::Biased {
                num: 1,
                denom: 2,
                seed: 0
            }
            .taken_permille(),
            500
        );
    }

    #[test]
    fn strong_bias_classification() {
        assert!(OutcomeModel::Biased {
            num: 19,
            denom: 20,
            seed: 0
        }
        .is_strongly_biased());
        assert!(!OutcomeModel::Biased {
            num: 3,
            denom: 5,
            seed: 0
        }
        .is_strongly_biased());
        assert!(OutcomeModel::Loop { trip: 100 }.is_strongly_biased());
    }

    #[test]
    fn indirect_uniform_covers_all_targets() {
        let targets = vec![Addr::new(10), Addr::new(20), Addr::new(30)];
        let model = IndirectModel::uniform(targets.clone(), 3);
        let mut rng = XorShift64::new(model.seed());
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(model.select(&mut rng));
        }
        assert_eq!(seen.len(), targets.len());
    }

    #[test]
    fn indirect_weighted_respects_weights() {
        let model = IndirectModel::weighted(vec![Addr::new(1), Addr::new(2)], vec![9, 1], 11);
        let mut rng = XorShift64::new(model.seed());
        let hits = (0..10_000)
            .filter(|_| model.select(&mut rng) == Addr::new(1))
            .count();
        assert!(hits > 8_500, "heavy target hit {hits}/10000");
    }

    #[test]
    #[should_panic(expected = "at least one target")]
    fn indirect_empty_targets_panics() {
        let _ = IndirectModel::uniform(vec![], 0);
    }
}
