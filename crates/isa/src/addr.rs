//! Word-granular instruction addresses.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A word-granular instruction address.
///
/// One instruction occupies one address step; the *byte* address used
/// by the instruction cache is `addr.byte()` (4 bytes per
/// instruction, as on MIPS/PISA).
///
/// ```
/// use tpc_isa::Addr;
/// let a = Addr::new(10);
/// assert_eq!((a + 2).word(), 12);
/// assert_eq!(a.byte(), 40);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(u32);

impl Addr {
    /// The address of the first instruction in a program.
    pub const ZERO: Addr = Addr(0);

    /// Creates an address from a word index.
    #[inline]
    pub const fn new(word: u32) -> Self {
        Addr(word)
    }

    /// The word index of this address.
    #[inline]
    pub const fn word(self) -> u32 {
        self.0
    }

    /// The byte address (4 bytes per instruction word).
    #[inline]
    pub const fn byte(self) -> u64 {
        (self.0 as u64) * 4
    }

    /// The address of the next sequential instruction.
    #[inline]
    pub const fn next(self) -> Addr {
        Addr(self.0 + 1)
    }

    /// Word distance `self - other`; `None` when `other > self`.
    #[inline]
    pub fn distance_from(self, other: Addr) -> Option<u32> {
        self.0.checked_sub(other.0)
    }
}

impl From<u32> for Addr {
    fn from(word: u32) -> Self {
        Addr(word)
    }
}

impl From<Addr> for u32 {
    fn from(a: Addr) -> Self {
        a.0
    }
}

impl Add<u32> for Addr {
    type Output = Addr;
    fn add(self, rhs: u32) -> Addr {
        Addr(self.0 + rhs)
    }
}

impl AddAssign<u32> for Addr {
    fn add_assign(&mut self, rhs: u32) {
        self.0 += rhs;
    }
}

impl Sub<Addr> for Addr {
    type Output = i64;
    /// Signed word distance between two addresses.
    fn sub(self, rhs: Addr) -> i64 {
        self.0 as i64 - rhs.0 as i64
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:06x}", self.byte())
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_and_byte_views_agree() {
        let a = Addr::new(7);
        assert_eq!(a.word(), 7);
        assert_eq!(a.byte(), 28);
    }

    #[test]
    fn next_advances_one_word() {
        assert_eq!(Addr::new(3).next(), Addr::new(4));
    }

    #[test]
    fn signed_distance() {
        assert_eq!(Addr::new(10) - Addr::new(4), 6);
        assert_eq!(Addr::new(4) - Addr::new(10), -6);
    }

    #[test]
    fn distance_from_is_checked() {
        assert_eq!(Addr::new(10).distance_from(Addr::new(4)), Some(6));
        assert_eq!(Addr::new(4).distance_from(Addr::new(10)), None);
    }

    #[test]
    fn ordering_follows_word_index() {
        assert!(Addr::new(1) < Addr::new(2));
    }

    #[test]
    fn display_is_byte_hex() {
        assert_eq!(Addr::new(4).to_string(), "0x000010");
    }
}
