//! The analyzer's report must be byte-identical regardless of how
//! many worker threads compute it — determinism is what lets the
//! static-vs-dynamic numbers be diffed across machines and runs.

use std::process::Command;

fn run(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_analyze_program"))
        .args(args)
        .output()
        .expect("analyze_program runs");
    (
        String::from_utf8(out.stdout).expect("utf-8 stdout"),
        String::from_utf8(out.stderr).expect("utf-8 stderr"),
        out.status.success(),
    )
}

#[test]
fn report_is_byte_identical_across_job_counts() {
    let base = ["compress", "li", "go", "--seed", "7", "--scale", "60"];
    let (one, _, ok1) = run(&[&base[..], &["--jobs", "1"]].concat());
    let (four, _, ok4) = run(&[&base[..], &["--jobs", "4"]].concat());
    assert!(ok1 && ok4, "analyzer exits cleanly on generator output");
    assert_eq!(one, four, "--jobs must not change a single byte");
    assert!(one.contains("## compress"), "{one}");
    assert!(one.contains("natural loops:"), "{one}");
}

#[test]
fn generator_programs_lint_clean() {
    // The linter must accept every generator program: exit success
    // and no `error:` lines in the report.
    let (out, _, ok) = run(&["--seed", "3", "--scale", "40", "--jobs", "2"]);
    assert!(ok, "lint errors on generator output:\n{out}");
    assert!(!out.contains("error:"), "{out}");
}

#[test]
fn unknown_benchmark_is_rejected() {
    let (_, err, ok) = run(&["not-a-benchmark"]);
    assert!(!ok);
    assert!(err.contains("unknown benchmark"), "{err}");
}
