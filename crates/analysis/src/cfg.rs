//! Basic-block control-flow graph over a static [`Program`].
//!
//! Leaders are computed with the classic rules — the entry point,
//! every function entry, every static branch/jump/call target, every
//! indirect-jump target, and the instruction after any control
//! transfer — then consecutive leaders partition the code into
//! blocks. Edges are interprocedural: a call contributes both a call
//! edge into its callee and a fall-through edge to its return point
//! (the callee's return eventually lands there), which is the same
//! over-approximation the preconstruction engine's region walk makes.
//! Dominators (iterative, over reverse postorder from a virtual root
//! covering every function entry) and natural-loop back edges are
//! computed on the same graph.

use std::collections::{BTreeMap, BTreeSet};
use tpc_isa::{Addr, Op, OpClass, Program};

/// One basic block: a maximal straight-line run of instructions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicBlock {
    /// Address of the first instruction.
    pub start: Addr,
    /// Number of instructions.
    pub len: u32,
    /// Successor blocks, by index into [`Cfg::blocks`]. For a call
    /// block this includes both the callee entry and the return
    /// point.
    pub successors: Vec<usize>,
    /// Predecessor blocks, by index.
    pub predecessors: Vec<usize>,
}

impl BasicBlock {
    /// Address of the block's last instruction.
    pub fn last(&self) -> Addr {
        self.start + (self.len - 1)
    }
}

/// A call edge: the call site, its callee entry, and the return
/// point the matching return comes back to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallEdge {
    /// Address of the `jal`.
    pub site: Addr,
    /// Callee entry address.
    pub callee: Addr,
    /// The instruction after the call — the paper's `CallReturn`
    /// region start point.
    pub return_point: Addr,
}

/// The control-flow graph of one program.
#[derive(Debug, Clone)]
pub struct Cfg {
    blocks: Vec<BasicBlock>,
    /// Block index of every instruction address.
    block_of: Vec<usize>,
    call_edges: Vec<CallEdge>,
    /// Blocks ending in `ret`.
    return_blocks: Vec<usize>,
    /// Indirect jumps and their static target sets (the CFG's
    /// "sinks": trace construction terminates on them).
    indirect_sinks: Vec<(Addr, Vec<Addr>)>,
    /// Reachability from the entry point and every function entry.
    reachable: Vec<bool>,
    /// Immediate dominator of each block (`usize::MAX` when
    /// unreachable; a root block may dominate itself).
    idom: Vec<usize>,
    /// Natural-loop back edges `(latch, header)` — edges whose head
    /// dominates their tail.
    back_edges: Vec<(usize, usize)>,
}

impl Cfg {
    /// Builds the CFG of `program`.
    pub fn build(program: &Program) -> Cfg {
        let n = program.len();
        assert!(n > 0, "programs are validated non-empty");

        // --- leaders -------------------------------------------------
        let mut leaders: BTreeSet<u32> = BTreeSet::new();
        leaders.insert(0);
        leaders.insert(program.entry().word());
        for f in program.functions() {
            leaders.insert(f.entry.word());
        }
        for (addr, op) in program.iter() {
            if let Some(t) = op.static_target() {
                leaders.insert(t.word());
            }
            for t in program.indirect_targets(addr) {
                leaders.insert(t.word());
            }
            if op.is_block_terminator() && (addr.word() + 1) < n as u32 {
                leaders.insert(addr.word() + 1);
            }
        }

        // --- blocks --------------------------------------------------
        let starts: Vec<u32> = leaders.into_iter().collect();
        let mut block_of = vec![0usize; n];
        let mut blocks: Vec<BasicBlock> = Vec::with_capacity(starts.len());
        for (i, &s) in starts.iter().enumerate() {
            let end = starts.get(i + 1).copied().unwrap_or(n as u32);
            for w in s..end {
                block_of[w as usize] = i;
            }
            blocks.push(BasicBlock {
                start: Addr::new(s),
                len: end - s,
                successors: Vec::new(),
                predecessors: Vec::new(),
            });
        }

        // --- edges ---------------------------------------------------
        let mut call_edges = Vec::new();
        let mut return_blocks = Vec::new();
        let mut indirect_sinks = Vec::new();
        let mut edges: Vec<(usize, usize)> = Vec::new();
        for (i, block) in blocks.iter().enumerate() {
            let last = block.last();
            let op = *program.fetch(last).expect("block addresses in range");
            let mut succ_addrs: Vec<Addr> = Vec::new();
            match op.class() {
                OpClass::Branch => {
                    succ_addrs.push(op.static_target().expect("branches have targets"));
                    succ_addrs.push(last.next());
                }
                OpClass::Jump => succ_addrs.push(op.static_target().expect("jumps have targets")),
                OpClass::Call => {
                    let callee = op.static_target().expect("calls have targets");
                    call_edges.push(CallEdge {
                        site: last,
                        callee,
                        return_point: last.next(),
                    });
                    succ_addrs.push(callee);
                    succ_addrs.push(last.next());
                }
                OpClass::Return => return_blocks.push(i),
                OpClass::IndirectJump => {
                    let targets = program.indirect_targets(last).to_vec();
                    succ_addrs.extend(targets.iter().copied());
                    indirect_sinks.push((last, targets));
                }
                OpClass::Halt => {}
                _ => succ_addrs.push(last.next()),
            }
            for a in succ_addrs {
                if (a.word() as usize) < n {
                    edges.push((i, block_of[a.word() as usize]));
                }
            }
        }
        for &(u, v) in &edges {
            if !blocks[u].successors.contains(&v) {
                blocks[u].successors.push(v);
            }
            if !blocks[v].predecessors.contains(&u) {
                blocks[v].predecessors.push(u);
            }
        }

        // --- reachability from entry + every function entry ----------
        let mut roots: Vec<usize> = vec![block_of[program.entry().word() as usize]];
        for f in program.functions() {
            let b = block_of[f.entry.word() as usize];
            if !roots.contains(&b) {
                roots.push(b);
            }
        }
        let mut reachable = vec![false; blocks.len()];
        let mut work: Vec<usize> = roots.clone();
        for &r in &roots {
            reachable[r] = true;
        }
        while let Some(b) = work.pop() {
            for &s in &blocks[b].successors {
                if !reachable[s] {
                    reachable[s] = true;
                    work.push(s);
                }
            }
        }

        let (idom, back_edges) = dominators(&blocks, &roots, &reachable);

        Cfg {
            blocks,
            block_of,
            call_edges,
            return_blocks,
            indirect_sinks,
            reachable,
            idom,
            back_edges,
        }
    }

    /// All basic blocks, in address order.
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// Index of the block containing `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` lies outside the program.
    pub fn block_of(&self, addr: Addr) -> usize {
        self.block_of[addr.word() as usize]
    }

    /// All call edges, in address order of the call site.
    pub fn call_edges(&self) -> &[CallEdge] {
        &self.call_edges
    }

    /// Indices of blocks ending in a return.
    pub fn return_blocks(&self) -> &[usize] {
        &self.return_blocks
    }

    /// Indirect jumps and their static target sets.
    pub fn indirect_sinks(&self) -> &[(Addr, Vec<Addr>)] {
        &self.indirect_sinks
    }

    /// Whether block `b` is reachable from the entry point or any
    /// function entry.
    pub fn is_reachable(&self, b: usize) -> bool {
        self.reachable[b]
    }

    /// Number of reachable blocks.
    pub fn reachable_count(&self) -> usize {
        self.reachable.iter().filter(|&&r| r).count()
    }

    /// Whether block `a` dominates block `b` (both must be
    /// reachable; an unreachable operand is never dominated).
    pub fn dominates(&self, a: usize, b: usize) -> bool {
        if !self.reachable[a] || !self.reachable[b] {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            let up = self.idom[cur];
            if up == usize::MAX || up == cur {
                return false;
            }
            cur = up;
        }
    }

    /// Natural-loop back edges `(latch, header)`: reachable edges
    /// whose head dominates their tail.
    pub fn back_edges(&self) -> &[(usize, usize)] {
        &self.back_edges
    }

    /// Number of natural loops (distinct headers with a back edge).
    pub fn natural_loop_count(&self) -> usize {
        let headers: BTreeSet<usize> = self.back_edges.iter().map(|&(_, h)| h).collect();
        headers.len()
    }
}

/// Iterative dominator computation over reverse postorder, with a
/// virtual root in front of every real root (Cooper/Harvey/Kennedy).
/// Returns per-block immediate dominators (`usize::MAX` when
/// unreachable or a root) and the natural-loop back edges.
fn dominators(
    blocks: &[BasicBlock],
    roots: &[usize],
    reachable: &[bool],
) -> (Vec<usize>, Vec<(usize, usize)>) {
    let n = blocks.len();
    // Postorder DFS from the virtual root (iterative).
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    for &root in roots {
        if visited[root] {
            continue;
        }
        let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
        visited[root] = true;
        while let Some(&mut (b, ref mut next)) = stack.last_mut() {
            if *next < blocks[b].successors.len() {
                let s = blocks[b].successors[*next];
                *next += 1;
                if !visited[s] {
                    visited[s] = true;
                    stack.push((s, 0));
                }
            } else {
                order.push(b);
                stack.pop();
            }
        }
    }
    // Reverse postorder index; roots are seeded as their own idom
    // (standing in for the virtual root).
    let mut rpo_index = vec![usize::MAX; n];
    for (i, &b) in order.iter().rev().enumerate() {
        rpo_index[b] = i;
    }
    let mut idom = vec![usize::MAX; n];
    for &root in roots {
        idom[root] = root;
    }
    let intersect = |idom: &[usize], rpo: &[usize], mut a: usize, mut b: usize| -> usize {
        while a != b {
            while rpo[a] > rpo[b] {
                a = idom[a];
            }
            while rpo[b] > rpo[a] {
                b = idom[b];
            }
        }
        a
    };
    let mut changed = true;
    while changed {
        changed = false;
        for &b in order.iter().rev() {
            if roots.contains(&b) {
                continue;
            }
            let mut new_idom = usize::MAX;
            for &p in &blocks[b].predecessors {
                if idom[p] == usize::MAX {
                    continue;
                }
                new_idom = if new_idom == usize::MAX {
                    p
                } else {
                    intersect(&idom, &rpo_index, new_idom, p)
                };
            }
            if new_idom != usize::MAX && idom[b] != new_idom {
                idom[b] = new_idom;
                changed = true;
            }
        }
    }
    // Back edges: u → v with v dominating u. Dominance via idom
    // chain walk (roots self-loop terminates the walk).
    let dominates = |a: usize, mut b: usize| -> bool {
        loop {
            if b == a {
                return true;
            }
            let up = idom[b];
            if up == usize::MAX || up == b {
                return false;
            }
            b = up;
        }
    };
    let mut back_edges = Vec::new();
    for (u, block) in blocks.iter().enumerate() {
        if !reachable[u] {
            continue;
        }
        for &v in &block.successors {
            if reachable[v] && dominates(v, u) {
                back_edges.push((u, v));
            }
        }
    }
    (idom, back_edges)
}

/// Summary counts of a CFG, used by the `analyze_program` report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CfgSummary {
    /// Static instructions.
    pub instructions: usize,
    /// Basic blocks.
    pub blocks: usize,
    /// Blocks reachable from the entry and function entries.
    pub reachable_blocks: usize,
    /// Call edges.
    pub call_edges: usize,
    /// Blocks ending in a return.
    pub return_blocks: usize,
    /// Indirect jumps.
    pub indirect_jumps: usize,
    /// Natural loops.
    pub natural_loops: usize,
}

impl Cfg {
    /// Summary counts for reporting.
    pub fn summary(&self, program: &Program) -> CfgSummary {
        CfgSummary {
            instructions: program.len(),
            blocks: self.blocks.len(),
            reachable_blocks: self.reachable_count(),
            call_edges: self.call_edges.len(),
            return_blocks: self.return_blocks.len(),
            indirect_jumps: self.indirect_sinks.len(),
            natural_loops: self.natural_loop_count(),
        }
    }
}

/// Per-address operation lookup table used by enumeration (avoids
/// re-deriving classifications in inner loops).
pub(crate) fn op_table(program: &Program) -> BTreeMap<u32, Op> {
    program.iter().map(|(a, op)| (a.word(), *op)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpc_isa::model::OutcomeModel;
    use tpc_isa::{BranchCond, ProgramBuilder, Reg};

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }

    fn branch_to(target: Addr) -> Op {
        Op::Branch {
            cond: BranchCond::Ne,
            rs1: r(1),
            rs2: r(2),
            target,
        }
    }

    /// `0: nop; 1: bne →0 (loop); 2: nop; 3: halt`
    fn loop_program() -> Program {
        let mut b = ProgramBuilder::new();
        let top = b.push(Op::Nop);
        b.push_branch(branch_to(top), OutcomeModel::Loop { trip: 5 });
        b.push(Op::Nop);
        b.push(Op::Halt);
        b.build().unwrap()
    }

    #[test]
    fn loop_partitions_into_two_blocks() {
        let p = loop_program();
        let cfg = Cfg::build(&p);
        // Leaders: 0 (entry/target), 2 (post-branch) → blocks [0,2) [2,4).
        assert_eq!(cfg.blocks().len(), 2);
        assert_eq!(cfg.blocks()[0].start, Addr::new(0));
        assert_eq!(cfg.blocks()[0].len, 2);
        assert_eq!(cfg.block_of(Addr::new(1)), 0);
        assert_eq!(cfg.block_of(Addr::new(3)), 1);
    }

    #[test]
    fn loop_back_edge_detected() {
        let p = loop_program();
        let cfg = Cfg::build(&p);
        assert_eq!(cfg.back_edges(), &[(0, 0)]);
        assert_eq!(cfg.natural_loop_count(), 1);
        assert!(cfg.dominates(0, 1));
        assert!(!cfg.dominates(1, 0));
    }

    #[test]
    fn call_edges_record_return_points() {
        let mut b = ProgramBuilder::new();
        let call_at = b.push(Op::Call {
            target: Addr::new(2),
        });
        b.push(Op::Halt);
        b.push(Op::Return); // callee
        let p = b.build().unwrap();
        let cfg = Cfg::build(&p);
        assert_eq!(
            cfg.call_edges(),
            &[CallEdge {
                site: call_at,
                callee: Addr::new(2),
                return_point: Addr::new(1),
            }]
        );
        // The call block reaches both the callee and the return point.
        let cb = cfg.block_of(call_at);
        assert!(cfg.blocks()[cb]
            .successors
            .contains(&cfg.block_of(Addr::new(2))));
        assert!(cfg.blocks()[cb]
            .successors
            .contains(&cfg.block_of(Addr::new(1))));
        assert_eq!(cfg.return_blocks().len(), 1);
    }

    #[test]
    fn unreachable_block_detected() {
        let mut b = ProgramBuilder::new();
        b.push(Op::Jump {
            target: Addr::new(2),
        });
        b.push(Op::Nop); // dead: jumped over, nothing targets it
        b.push(Op::Halt);
        let p = b.build().unwrap();
        let cfg = Cfg::build(&p);
        let dead = cfg.block_of(Addr::new(1));
        assert!(!cfg.is_reachable(dead));
        assert_eq!(cfg.reachable_count(), cfg.blocks().len() - 1);
    }

    #[test]
    fn function_entries_are_reachability_roots() {
        // A helper that nothing calls: reachable via its function
        // record (generators legitimately emit these).
        let mut b = ProgramBuilder::new();
        let helper = b.push(Op::Nop);
        b.push(Op::Return);
        let main = b.push(Op::Halt);
        b.record_function("helper", helper);
        b.record_function("main", main);
        b.set_entry(main);
        let p = b.build().unwrap();
        let cfg = Cfg::build(&p);
        assert!(cfg.is_reachable(cfg.block_of(helper)));
    }

    #[test]
    fn indirect_sinks_collect_targets() {
        let mut b = ProgramBuilder::new();
        let jr = b.push_indirect(
            Op::IndirectJump { rs1: r(4) },
            tpc_isa::model::IndirectModel::uniform(vec![Addr::new(1), Addr::new(2)], 3),
        );
        b.push(Op::Halt);
        b.push(Op::Halt);
        let p = b.build().unwrap();
        let cfg = Cfg::build(&p);
        assert_eq!(cfg.indirect_sinks().len(), 1);
        assert_eq!(cfg.indirect_sinks()[0].0, jr);
        assert_eq!(cfg.indirect_sinks()[0].1.len(), 2);
        // Both arms are successor blocks of the jump's block.
        let jb = cfg.block_of(jr);
        assert_eq!(cfg.blocks()[jb].successors.len(), 2);
    }

    #[test]
    fn diamond_dominators() {
        // 0: beq →3; 1: nop; 2: jmp →4; 3: nop; 4: halt
        let mut b = ProgramBuilder::new();
        b.push_branch(branch_to(Addr::new(3)), OutcomeModel::AlwaysTaken);
        b.push(Op::Nop);
        b.push(Op::Jump {
            target: Addr::new(4),
        });
        b.push(Op::Nop);
        b.push(Op::Halt);
        let p = b.build().unwrap();
        let cfg = Cfg::build(&p);
        let head = cfg.block_of(Addr::new(0));
        let then = cfg.block_of(Addr::new(1));
        let els = cfg.block_of(Addr::new(3));
        let join = cfg.block_of(Addr::new(4));
        assert!(cfg.dominates(head, join));
        assert!(!cfg.dominates(then, join));
        assert!(!cfg.dominates(els, join));
        assert_eq!(cfg.back_edges().len(), 0);
    }
}
