//! Structural linter for generated workloads.
//!
//! The fuzzers hand the simulator arbitrary seeded programs; the
//! differential oracle's divergence reports are only meaningful when
//! the input program is structurally sane. The linter checks the
//! CFG-level properties the preconstruction machinery relies on and
//! splits findings into two severities:
//!
//! * **errors** — shapes that break the paper's region model (a
//!   backward branch that is not a natural-loop latch, an indirect
//!   jump with no declared targets, a call without an in-range return
//!   point). The oracle rejects such programs before simulating them.
//! * **warnings** — legitimate-but-notable shapes (unreachable
//!   blocks: both generators emit helper functions that nothing
//!   calls, reachable only through their function-table entry).

use std::fmt;
use tpc_isa::{Addr, OpClass, Program};

use crate::cfg::Cfg;

/// Severity of a lint finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LintLevel {
    /// The program violates a structural invariant the region model
    /// depends on; simulation results would be unreliable.
    Error,
    /// Notable but legal structure.
    Warning,
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Lint {
    /// A basic block unreachable from the entry point and every
    /// function entry.
    UnreachableBlock {
        /// First instruction of the block.
        start: Addr,
        /// Instructions in the block.
        len: u32,
    },
    /// A backward conditional branch whose target block does not
    /// dominate the branch block — not a natural-loop latch, so the
    /// "fall-through of a backward branch" region heuristic
    /// mispredicts its loop structure.
    BackwardBranchNotLatch {
        /// The branch.
        at: Addr,
        /// Its (backward) target.
        target: Addr,
    },
    /// An indirect jump whose model declares no targets: the CFG has
    /// no successor edges, and the executor would have nowhere to go.
    IndirectJumpWithoutTargets {
        /// The jump.
        at: Addr,
    },
    /// A call whose return point lies outside the code. Unreachable
    /// through [`tpc_isa::ProgramBuilder::build`] (a trailing call is
    /// rejected); kept as defence in depth for hand-built inputs.
    CallWithoutReturnPoint {
        /// The call.
        at: Addr,
    },
    /// A conditional branch with no attached outcome model: the
    /// executor could not resolve it. Unreachable through
    /// [`tpc_isa::ProgramBuilder::build`] (missing models are
    /// rejected); kept as defence in depth now that programs also
    /// arrive through the `.asm` frontend and other loaders.
    UnmodeledBranch {
        /// The branch.
        at: Addr,
    },
    /// A biased-branch model whose fraction is degenerate (zero
    /// denominator, zero numerator, or numerator ≥ denominator): the
    /// branch always resolves one way, so the annotation should have
    /// been `@taken`/`@nottaken` — or a generator has gone wrong.
    DegenerateBranchModel {
        /// The branch.
        at: Addr,
    },
}

impl Lint {
    /// The finding's severity.
    pub fn level(&self) -> LintLevel {
        match self {
            Lint::UnreachableBlock { .. } | Lint::DegenerateBranchModel { .. } => {
                LintLevel::Warning
            }
            Lint::BackwardBranchNotLatch { .. }
            | Lint::IndirectJumpWithoutTargets { .. }
            | Lint::CallWithoutReturnPoint { .. }
            | Lint::UnmodeledBranch { .. } => LintLevel::Error,
        }
    }
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Lint::UnreachableBlock { start, len } => {
                write!(
                    f,
                    "warning: unreachable block of {len} instructions at {start}"
                )
            }
            Lint::BackwardBranchNotLatch { at, target } => write!(
                f,
                "error: backward branch at {at} targets {target} but is not a loop latch"
            ),
            Lint::IndirectJumpWithoutTargets { at } => {
                write!(f, "error: indirect jump at {at} declares no targets")
            }
            Lint::CallWithoutReturnPoint { at } => {
                write!(f, "error: call at {at} has no in-range return point")
            }
            Lint::UnmodeledBranch { at } => {
                write!(f, "error: conditional branch at {at} has no outcome model")
            }
            Lint::DegenerateBranchModel { at } => {
                write!(
                    f,
                    "warning: branch at {at} has a degenerate bias (always resolves one way)"
                )
            }
        }
    }
}

/// Lints `program` over its `cfg`. Findings are in address order
/// within each category; errors come first.
pub fn lint(program: &Program, cfg: &Cfg) -> Vec<Lint> {
    let mut errors = Vec::new();
    let mut warnings = Vec::new();
    let code_len = program.len() as u32;

    for (addr, op) in program.iter() {
        match op.class() {
            OpClass::Branch => {
                match program.branch_model(addr) {
                    None => errors.push(Lint::UnmodeledBranch { at: addr }),
                    Some(&tpc_isa::model::OutcomeModel::Biased { num, denom, .. })
                        if num == 0 || num >= denom =>
                    {
                        warnings.push(Lint::DegenerateBranchModel { at: addr });
                    }
                    Some(_) => {}
                }
                if op.is_backward_branch(addr) {
                    let target = op.static_target().expect("branches have static targets");
                    let latch = cfg.block_of(addr);
                    let header = cfg.block_of(target);
                    // Unreachable latches are covered by the
                    // unreachable warning; dominance is undefined
                    // there.
                    if cfg.is_reachable(latch) && !cfg.dominates(header, latch) {
                        errors.push(Lint::BackwardBranchNotLatch { at: addr, target });
                    }
                }
            }
            OpClass::IndirectJump if program.indirect_targets(addr).is_empty() => {
                errors.push(Lint::IndirectJumpWithoutTargets { at: addr });
            }
            OpClass::Call if addr.word() + 1 >= code_len => {
                errors.push(Lint::CallWithoutReturnPoint { at: addr });
            }
            _ => {}
        }
    }

    for (i, block) in cfg.blocks().iter().enumerate() {
        if !cfg.is_reachable(i) {
            warnings.push(Lint::UnreachableBlock {
                start: block.start,
                len: block.len,
            });
        }
    }

    errors.extend(warnings);
    errors
}

/// Whether any finding in `lints` is an error.
pub fn has_errors(lints: &[Lint]) -> bool {
    lints.iter().any(|l| l.level() == LintLevel::Error)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpc_isa::model::OutcomeModel;
    use tpc_isa::{BranchCond, Op, ProgramBuilder, Reg};

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }

    fn branch_to(target: Addr) -> Op {
        Op::Branch {
            cond: BranchCond::Ne,
            rs1: r(1),
            rs2: r(2),
            target,
        }
    }

    fn lint_of(p: &Program) -> Vec<Lint> {
        lint(p, &Cfg::build(p))
    }

    #[test]
    fn clean_loop_has_no_findings() {
        let mut b = ProgramBuilder::new();
        let top = b.push(Op::Nop);
        b.push_branch(branch_to(top), OutcomeModel::Loop { trip: 5 });
        b.push(Op::Halt);
        let p = b.build().unwrap();
        assert!(lint_of(&p).is_empty());
    }

    #[test]
    fn non_latch_backward_branch_is_an_error() {
        // 0: jmp →2 ; 1: nop (side entry) ; 2: bne →1 ; 3: halt
        // The backward branch targets 1, but 1 does not dominate the
        // branch block (the branch is reached from 0 without passing
        // through 1) — a "loop" the region heuristic misreads.
        let mut b = ProgramBuilder::new();
        b.push(Op::Jump {
            target: Addr::new(2),
        });
        b.push(Op::Nop);
        b.push_branch(branch_to(Addr::new(1)), OutcomeModel::Loop { trip: 5 });
        b.push(Op::Halt);
        let p = b.build().unwrap();
        let lints = lint_of(&p);
        assert!(
            lints.iter().any(|l| matches!(
                l,
                Lint::BackwardBranchNotLatch {
                    at,
                    target
                } if at.word() == 2 && target.word() == 1
            )),
            "{lints:?}"
        );
        assert!(has_errors(&lints));
    }

    #[test]
    fn unreachable_block_is_a_warning() {
        let mut b = ProgramBuilder::new();
        b.push(Op::Jump {
            target: Addr::new(2),
        });
        b.push(Op::Nop); // dead
        b.push(Op::Halt);
        let p = b.build().unwrap();
        let lints = lint_of(&p);
        assert_eq!(lints.len(), 1);
        assert_eq!(lints[0].level(), LintLevel::Warning);
        assert!(!has_errors(&lints));
    }

    #[test]
    fn degenerate_bias_is_a_warning() {
        let mut b = ProgramBuilder::new();
        let top = b.push(Op::Nop);
        b.push_branch(
            branch_to(top),
            OutcomeModel::Loop { trip: 2 }, // healthy latch
        );
        b.push_branch(
            Op::Branch {
                cond: BranchCond::Eq,
                rs1: r(1),
                rs2: r(2),
                target: Addr::new(4),
            },
            OutcomeModel::Biased {
                num: 5,
                denom: 5,
                seed: 1,
            },
        );
        b.push(Op::Halt);
        b.push(Op::Halt);
        let p = b.build().unwrap();
        let lints = lint_of(&p);
        assert!(
            lints
                .iter()
                .any(|l| matches!(l, Lint::DegenerateBranchModel { at } if at.word() == 2)),
            "{lints:?}"
        );
        assert!(!has_errors(&lints), "degenerate bias is only a warning");
    }

    #[test]
    fn healthy_bias_not_flagged() {
        let mut b = ProgramBuilder::new();
        b.push_branch(
            Op::Branch {
                cond: BranchCond::Eq,
                rs1: r(1),
                rs2: r(2),
                target: Addr::new(1),
            },
            OutcomeModel::Biased {
                num: 1,
                denom: 40,
                seed: 1,
            },
        );
        b.push(Op::Halt);
        let p = b.build().unwrap();
        assert!(lint_of(&p).is_empty());
    }

    #[test]
    fn display_formats_severity() {
        let l = Lint::BackwardBranchNotLatch {
            at: Addr::new(2),
            target: Addr::new(1),
        };
        assert!(l.to_string().starts_with("error:"));
        let w = Lint::UnreachableBlock {
            start: Addr::new(1),
            len: 1,
        };
        assert!(w.to_string().starts_with("warning:"));
    }
}
