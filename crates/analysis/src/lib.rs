//! # tpc-analysis — whole-program static analysis
//!
//! Static ground truth for the preconstruction machinery, over the
//! same [`tpc_isa::Program`] representation everything else consumes:
//!
//! * [`Cfg`] — basic-block control-flow graph (leaders, successors,
//!   call/return edges, indirect-jump sinks), dominators, and
//!   natural-loop back edges;
//! * [`StaticEnumeration`] — the statically legal region start points
//!   (the instruction after each call, the fall-through of each
//!   backward branch) and the closure of trace starts reachable from
//!   them, with [`StaticEnumeration::check_activity`] as the
//!   conformance oracle the differential suites run against every
//!   start point the simulator pushes and every trace the
//!   constructors emit;
//! * [`enumerate_biased`] — the bias-following static trace
//!   enumeration behind the static-vs-dynamic coverage report;
//! * [`lint`] — a structural linter that rejects malformed fuzzer
//!   inputs (backward branches that are not loop latches, indirect
//!   jumps without targets) before they reach simulation.
//!
//! Every entry point takes a `&Program`; the [`source`] module adds
//! [`tpc_exec::FrontendSource`]-generic wrappers so loaded `.asm`
//! programs (and any future frontend) run through the identical
//! analysis pipeline.
//!
//! ```
//! use tpc_analysis::{Cfg, StaticEnumeration};
//! use tpc_workloads::{Benchmark, WorkloadBuilder};
//!
//! let program = WorkloadBuilder::new(Benchmark::Compress)
//!     .seed(1)
//!     .scale_permille(50)
//!     .build();
//! let cfg = Cfg::build(&program);
//! assert!(cfg.natural_loop_count() > 0);
//! let e = StaticEnumeration::build(&program);
//! assert!(e.closure_size() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cfg;
pub mod enumerate;
pub mod lint;
pub mod source;

pub use cfg::{BasicBlock, CallEdge, Cfg, CfgSummary};
pub use enumerate::{enumerate_biased, BiasedEnumeration, StaticEnumeration};
pub use lint::{has_errors, lint, Lint, LintLevel};
pub use source::{cfg_of, enumeration_of, lint_source};
