//! Static analysis report for generated and hand-written workloads.
//!
//! For each requested input — a benchmark name, or a path ending in
//! `.asm` loaded through the asm frontend — builds/loads the program
//! and prints its CFG summary, region start points, start closure,
//! bias-following static trace count, and lint findings. Output is
//! byte-identical for a given (input set, seed, scale) regardless of
//! `--jobs` — results are assembled in input order.
//!
//! ```text
//! analyze_program [bench|file.asm ...] [--seed N] [--scale PERMILLE] [--jobs N]
//! ```
//!
//! `--seed`/`--scale` apply to generated benchmarks only; `.asm`
//! programs are analyzed as written.
//!
//! Exits non-zero when any analyzed program has lint *errors*
//! (warnings are informational).

use std::process::ExitCode;
use std::str::FromStr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use tpc_analysis::{enumerate_biased, lint, Cfg, LintLevel, StaticEnumeration};
use tpc_exec::AsmProgram;
use tpc_isa::Program;
use tpc_workloads::{Benchmark, WorkloadBuilder};

/// Cap on distinct trace keys per benchmark in the bias-following
/// enumeration (counts are reported as lower bounds past it).
const MAX_STATIC_TRACES: usize = 200_000;

/// One thing to analyze: a generated benchmark or a loaded `.asm`
/// program.
enum Input {
    Bench(Benchmark),
    Asm(AsmProgram),
}

struct Args {
    inputs: Vec<Input>,
    seed: u64,
    scale_permille: u32,
    jobs: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut inputs = Vec::new();
    let mut seed = 1u64;
    let mut scale_permille = 1000u32;
    let mut jobs = 1usize;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut take = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match arg.as_str() {
            "--seed" => {
                seed = take("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--scale" => {
                scale_permille = take("--scale")?
                    .parse()
                    .map_err(|e| format!("--scale: {e}"))?
            }
            "--jobs" => {
                jobs = take("--jobs")?
                    .parse()
                    .map_err(|e| format!("--jobs: {e}"))?;
                if jobs == 0 {
                    return Err("--jobs must be positive".into());
                }
            }
            "--help" | "-h" => {
                return Err("usage: analyze_program [bench|file.asm ...] [--seed N] \
                     [--scale PERMILLE] [--jobs N]"
                    .into())
            }
            name if name.ends_with(".asm") => {
                inputs.push(Input::Asm(
                    AsmProgram::load(name).map_err(|e| e.to_string())?,
                ));
            }
            name => inputs.push(Input::Bench(
                Benchmark::from_str(name).map_err(|e| format!("unknown benchmark {name}: {e}"))?,
            )),
        }
    }
    if inputs.is_empty() {
        inputs = Benchmark::ALL.iter().copied().map(Input::Bench).collect();
    }
    Ok(Args {
        inputs,
        seed,
        scale_permille,
        jobs,
    })
}

/// Maps `f` over `items` on up to `jobs` threads, returning results
/// in input order (so report text is independent of scheduling).
fn map_ordered<T: Sync, U: Send>(items: &[T], jobs: usize, f: impl Fn(&T) -> U + Sync) -> Vec<U> {
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<U>>> = Mutex::new((0..items.len()).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(items.len()).max(1) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let out = f(&items[i]);
                slots.lock().expect("no panics hold the lock")[i] = Some(out);
            });
        }
    });
    slots
        .into_inner()
        .expect("worker threads joined")
        .into_iter()
        .map(|s| s.expect("every index filled"))
        .collect()
}

/// Analyzes one input; returns `(report text, had lint errors)`.
fn analyze(input: &Input, seed: u64, scale_permille: u32) -> (String, bool) {
    let (title, built);
    let program: &Program = match input {
        Input::Bench(benchmark) => {
            title = format!(
                "{} (seed {seed}, scale {scale_permille}/1000)",
                benchmark.name()
            );
            built = WorkloadBuilder::new(*benchmark)
                .seed(seed)
                .scale_permille(scale_permille)
                .build();
            &built
        }
        Input::Asm(asm) => {
            title = format!("{} (.asm)", asm.name());
            asm.program()
        }
    };
    let cfg = Cfg::build(program);
    let summary = cfg.summary(program);
    let enumeration = StaticEnumeration::build(program);
    let traces = enumerate_biased(program, MAX_STATIC_TRACES);
    let lints = lint(program, &cfg);
    let errors = lints
        .iter()
        .filter(|l| l.level() == LintLevel::Error)
        .count();
    let warnings = lints.len() - errors;

    let mut s = String::new();
    s.push_str(&format!("## {title}\n"));
    s.push_str(&format!("instructions:     {}\n", summary.instructions));
    s.push_str(&format!(
        "basic blocks:     {} ({} reachable)\n",
        summary.blocks, summary.reachable_blocks
    ));
    s.push_str(&format!(
        "call edges:       {}   return blocks: {}   indirect jumps: {}\n",
        summary.call_edges, summary.return_blocks, summary.indirect_jumps
    ));
    s.push_str(&format!("natural loops:    {}\n", summary.natural_loops));
    s.push_str(&format!(
        "start points:     {} call-return + {} loop-exit\n",
        enumeration.call_return_count(),
        enumeration.loop_exit_count()
    ));
    s.push_str(&format!(
        "start closure:    {} addresses{}\n",
        enumeration.closure_size(),
        if enumeration.saturated() {
            " (budget saturated)"
        } else {
            ""
        }
    ));
    s.push_str(&format!(
        "static traces:    {}{} from {} starts (bias-following)\n",
        if traces.truncated { ">= " } else { "" },
        traces.trace_keys.len(),
        traces.starts_explored
    ));
    if lints.is_empty() {
        s.push_str("lint:             clean\n");
    } else {
        s.push_str(&format!(
            "lint:             {errors} error(s), {warnings} warning(s)\n"
        ));
        for l in &lints {
            s.push_str(&format!("  {l}\n"));
        }
    }
    (s, errors > 0)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let results = map_ordered(&args.inputs, args.jobs, |input| {
        analyze(input, args.seed, args.scale_permille)
    });
    println!("# Static analysis report");
    println!(
        "programs: {}  seed: {}  scale: {}/1000",
        args.inputs.len(),
        args.seed,
        args.scale_permille
    );
    let mut any_errors = false;
    for (text, had_errors) in results {
        println!();
        print!("{text}");
        any_errors |= had_errors;
    }
    if any_errors {
        eprintln!("lint errors found");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
