//! Static analysis report for generated workloads.
//!
//! For each requested benchmark, builds the program at the given seed
//! and scale, then prints its CFG summary, region start points, start
//! closure, bias-following static trace count, and lint findings.
//! Output is byte-identical for a given (benchmark set, seed, scale)
//! regardless of `--jobs` — results are assembled in input order.
//!
//! ```text
//! analyze_program [bench ...] [--seed N] [--scale PERMILLE] [--jobs N]
//! ```
//!
//! Exits non-zero when any analyzed program has lint *errors*
//! (warnings are informational).

use std::process::ExitCode;
use std::str::FromStr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use tpc_analysis::{enumerate_biased, lint, Cfg, LintLevel, StaticEnumeration};
use tpc_workloads::{Benchmark, WorkloadBuilder};

/// Cap on distinct trace keys per benchmark in the bias-following
/// enumeration (counts are reported as lower bounds past it).
const MAX_STATIC_TRACES: usize = 200_000;

struct Args {
    benchmarks: Vec<Benchmark>,
    seed: u64,
    scale_permille: u32,
    jobs: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut benchmarks = Vec::new();
    let mut seed = 1u64;
    let mut scale_permille = 1000u32;
    let mut jobs = 1usize;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut take = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match arg.as_str() {
            "--seed" => {
                seed = take("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--scale" => {
                scale_permille = take("--scale")?
                    .parse()
                    .map_err(|e| format!("--scale: {e}"))?
            }
            "--jobs" => {
                jobs = take("--jobs")?
                    .parse()
                    .map_err(|e| format!("--jobs: {e}"))?;
                if jobs == 0 {
                    return Err("--jobs must be positive".into());
                }
            }
            "--help" | "-h" => {
                return Err(
                    "usage: analyze_program [bench ...] [--seed N] [--scale PERMILLE] [--jobs N]"
                        .into(),
                )
            }
            name => benchmarks.push(
                Benchmark::from_str(name).map_err(|e| format!("unknown benchmark {name}: {e}"))?,
            ),
        }
    }
    if benchmarks.is_empty() {
        benchmarks = Benchmark::ALL.to_vec();
    }
    Ok(Args {
        benchmarks,
        seed,
        scale_permille,
        jobs,
    })
}

/// Maps `f` over `items` on up to `jobs` threads, returning results
/// in input order (so report text is independent of scheduling).
fn map_ordered<T: Sync, U: Send>(items: &[T], jobs: usize, f: impl Fn(&T) -> U + Sync) -> Vec<U> {
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<U>>> = Mutex::new((0..items.len()).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(items.len()).max(1) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let out = f(&items[i]);
                slots.lock().expect("no panics hold the lock")[i] = Some(out);
            });
        }
    });
    slots
        .into_inner()
        .expect("worker threads joined")
        .into_iter()
        .map(|s| s.expect("every index filled"))
        .collect()
}

/// Analyzes one benchmark; returns `(report text, had lint errors)`.
fn analyze(benchmark: Benchmark, seed: u64, scale_permille: u32) -> (String, bool) {
    let program = WorkloadBuilder::new(benchmark)
        .seed(seed)
        .scale_permille(scale_permille)
        .build();
    let cfg = Cfg::build(&program);
    let summary = cfg.summary(&program);
    let enumeration = StaticEnumeration::build(&program);
    let traces = enumerate_biased(&program, MAX_STATIC_TRACES);
    let lints = lint(&program, &cfg);
    let errors = lints
        .iter()
        .filter(|l| l.level() == LintLevel::Error)
        .count();
    let warnings = lints.len() - errors;

    let mut s = String::new();
    s.push_str(&format!(
        "## {} (seed {seed}, scale {scale_permille}/1000)\n",
        benchmark.name()
    ));
    s.push_str(&format!("instructions:     {}\n", summary.instructions));
    s.push_str(&format!(
        "basic blocks:     {} ({} reachable)\n",
        summary.blocks, summary.reachable_blocks
    ));
    s.push_str(&format!(
        "call edges:       {}   return blocks: {}   indirect jumps: {}\n",
        summary.call_edges, summary.return_blocks, summary.indirect_jumps
    ));
    s.push_str(&format!("natural loops:    {}\n", summary.natural_loops));
    s.push_str(&format!(
        "start points:     {} call-return + {} loop-exit\n",
        enumeration.call_return_count(),
        enumeration.loop_exit_count()
    ));
    s.push_str(&format!(
        "start closure:    {} addresses{}\n",
        enumeration.closure_size(),
        if enumeration.saturated() {
            " (budget saturated)"
        } else {
            ""
        }
    ));
    s.push_str(&format!(
        "static traces:    {}{} from {} starts (bias-following)\n",
        if traces.truncated { ">= " } else { "" },
        traces.trace_keys.len(),
        traces.starts_explored
    ));
    if lints.is_empty() {
        s.push_str("lint:             clean\n");
    } else {
        s.push_str(&format!(
            "lint:             {errors} error(s), {warnings} warning(s)\n"
        ));
        for l in &lints {
            s.push_str(&format!("  {l}\n"));
        }
    }
    (s, errors > 0)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let results = map_ordered(&args.benchmarks, args.jobs, |&b| {
        analyze(b, args.seed, args.scale_permille)
    });
    println!("# Static analysis report");
    println!(
        "benchmarks: {}  seed: {}  scale: {}/1000",
        args.benchmarks.len(),
        args.seed,
        args.scale_permille
    );
    let mut any_errors = false;
    for (text, had_errors) in results {
        println!();
        print!("{text}");
        any_errors |= had_errors;
    }
    if any_errors {
        eprintln!("lint errors found");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
