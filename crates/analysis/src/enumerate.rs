//! Static enumeration of region start points and constructible
//! traces.
//!
//! The preconstruction engine is driven by two dynamic events: a
//! start point pushed at dispatch (the return point of a call, or the
//! fall-through of a backward branch — paper Section 3.2) and a trace
//! emitted by a constructor walking static code from such a point
//! (Section 3.4). Both events are *statically enumerable*: the set of
//! legal push addresses is a syntactic property of the program, and
//! every constructible trace is derivable by replaying the shared
//! [`TraceBuilder`] rules from a start in the closure of those
//! points.
//!
//! [`StaticEnumeration`] materialises both sets and exposes
//! [`StaticEnumeration::check_activity`], the conformance oracle used
//! by the differential suites: any engine activity outside the static
//! sets is a bug in the engine (or in this analysis — either way a
//! divergence worth failing on).
//!
//! Two soundness notes. First, the constructor consults a *dynamic*
//! bimodal predictor whose counters alias and drift, so any branch
//! can present any bias at any moment; the conformance closure
//! therefore forks **every** conditional branch both ways. The
//! bias-following enumeration ([`enumerate_biased`]) exists for
//! *measurement* (static trace counts in reports), never for
//! conformance. Second, exploration budgets degrade to acceptance:
//! when a budget is exhausted the enumeration marks itself
//! [`StaticEnumeration::saturated`] and start-containment checks pass
//! vacuously — an unexplored program can suppress a detection but can
//! never produce a false divergence.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use tpc_core::{
    EngineActivity, PushResult, Resolution, StartReason, Trace, TraceBuilder, TraceKey,
    ALIGN_QUANTUM,
};
use tpc_isa::{Addr, Op, OpClass, Program};
use tpc_workloads::StaticBias;

use crate::cfg::op_table;

/// Budget of builder pushes spent exploring any single start address.
const STEPS_PER_START: u64 = 50_000;

/// Global budget of builder pushes across the whole closure.
const TOTAL_STEPS: u64 = 4_000_000;

/// The statically enumerated start-point and trace universe of one
/// program.
#[derive(Debug, Clone)]
pub struct StaticEnumeration {
    /// Addresses the dispatch stage may push with
    /// [`StartReason::CallReturn`]: the instruction after each call.
    call_return_points: BTreeSet<u32>,
    /// Addresses the dispatch stage may push with
    /// [`StartReason::LoopExit`]: the fall-through of each backward
    /// conditional branch.
    loop_exit_points: BTreeSet<u32>,
    /// Every address a constructor can legally start a trace at: the
    /// push points, their mod-4 alignment lattice companions, and the
    /// fixpoint of trace successors.
    start_closure: BTreeSet<u32>,
    /// Whether an exploration budget was exhausted; when set,
    /// start-containment checks accept every address.
    saturated: bool,
    ops: BTreeMap<u32, Op>,
    code_len: u32,
}

impl StaticEnumeration {
    /// Enumerates the start points and start closure of `program`.
    pub fn build(program: &Program) -> StaticEnumeration {
        let ops = op_table(program);
        let code_len = program.len() as u32;
        let mut call_return_points = BTreeSet::new();
        let mut loop_exit_points = BTreeSet::new();
        for (addr, op) in program.iter() {
            match op.class() {
                // A validated program's last instruction cannot fall
                // through, so `addr + 1` is always in range here.
                OpClass::Call => {
                    call_return_points.insert(addr.word() + 1);
                }
                OpClass::Branch if op.is_backward_branch(addr) => {
                    loop_exit_points.insert(addr.word() + 1);
                }
                _ => {}
            }
        }

        // Seed the closure: push points, plus the mod-4 alignment
        // lattice the engine seeds loop-exit regions with when
        // `lattice_seed_loop_exits` is on. Including the lattice
        // unconditionally over-approximates the default configuration
        // — sound for a conformance set.
        let mut seeds: BTreeSet<u32> = call_return_points.clone();
        for &p in &loop_exit_points {
            for k in 0..ALIGN_QUANTUM as u32 {
                let s = p + k * ALIGN_QUANTUM as u32;
                if s < code_len {
                    seeds.insert(s);
                }
            }
        }

        let mut e = StaticEnumeration {
            call_return_points,
            loop_exit_points,
            start_closure: BTreeSet::new(),
            saturated: false,
            ops,
            code_len,
        };
        e.close_over_successors(seeds);
        e
    }

    /// Computes the fixpoint of trace successors over the seed set:
    /// every completed trace's statically-known successor is itself a
    /// legal start (the engine queues it on the region worklist).
    fn close_over_successors(&mut self, seeds: BTreeSet<u32>) {
        let mut worklist: VecDeque<u32> = seeds.iter().copied().collect();
        self.start_closure = seeds;
        let mut total_steps = 0u64;
        while let Some(start) = worklist.pop_front() {
            if total_steps >= TOTAL_STEPS {
                self.saturated = true;
                return;
            }
            let (successors, spent, exhausted) = self.explore_start(
                Addr::new(start),
                STEPS_PER_START.min(TOTAL_STEPS - total_steps),
            );
            total_steps += spent;
            if exhausted {
                self.saturated = true;
                return;
            }
            for s in successors {
                if s < self.code_len && self.start_closure.insert(s) {
                    worklist.push_back(s);
                }
            }
        }
    }

    /// Fork-everything DFS from one start address: runs the shared
    /// [`TraceBuilder`] down every branch direction, collecting the
    /// successors of every completed trace. Returns `(successors,
    /// steps spent, budget exhausted)`.
    fn explore_start(&self, start: Addr, budget: u64) -> (BTreeSet<u32>, u64, bool) {
        let mut successors = BTreeSet::new();
        let mut steps = 0u64;
        // Each DFS state is a partially built trace: the builder, the
        // constructor's region call stack, and the next pc.
        let mut stack: Vec<(TraceBuilder, Vec<Addr>, Addr)> =
            vec![(TraceBuilder::new(start), Vec::new(), start)];
        while let Some((builder, call_stack, pc)) = stack.pop() {
            if steps >= budget {
                return (successors, steps, true);
            }
            let Some(&op) = self.ops.get(&pc.word()) else {
                // Past the end of the code: the constructor abandons
                // the path (possible only from hand-built programs).
                continue;
            };
            if op.class() == OpClass::Branch {
                let target = op.static_target().expect("branches have static targets");
                for (taken, next_pc) in [(false, pc.next()), (true, target)] {
                    let mut b = builder.clone();
                    steps += 1;
                    match b.push(pc, op, Resolution::Branch { taken, next_pc }) {
                        PushResult::Continue(next) => stack.push((b, call_stack.clone(), next)),
                        PushResult::Complete(t) => {
                            if let Some(s) = t.successor() {
                                successors.insert(s.word());
                            }
                        }
                    }
                }
                continue;
            }
            let mut builder = builder;
            let mut call_stack = call_stack;
            let resolution = match op.class() {
                OpClass::Call => {
                    call_stack.push(pc.next());
                    Resolution::None
                }
                OpClass::Return => match call_stack.pop() {
                    Some(ra) => Resolution::Target(ra),
                    None => Resolution::None,
                },
                _ => Resolution::None,
            };
            steps += 1;
            match builder.push(pc, op, resolution) {
                PushResult::Continue(next) => stack.push((builder, call_stack, next)),
                PushResult::Complete(t) => {
                    if let Some(s) = t.successor() {
                        successors.insert(s.word());
                    }
                }
            }
        }
        (successors, steps, false)
    }

    /// Whether the dispatch stage may push `addr` with `reason`: the
    /// instruction at `addr - 1` must be the matching construct.
    pub fn is_valid_push(&self, addr: Addr, reason: StartReason) -> bool {
        match reason {
            StartReason::CallReturn => self.call_return_points.contains(&addr.word()),
            StartReason::LoopExit => self.loop_exit_points.contains(&addr.word()),
        }
    }

    /// Whether `addr` is in the start closure (always true once
    /// [`StaticEnumeration::saturated`] — budgets degrade to
    /// acceptance, never to false divergence).
    pub fn contains_start(&self, addr: Addr) -> bool {
        self.saturated || self.start_closure.contains(&addr.word())
    }

    /// Whether an exploration budget was exhausted.
    pub fn saturated(&self) -> bool {
        self.saturated
    }

    /// Number of [`StartReason::CallReturn`] push points.
    pub fn call_return_count(&self) -> usize {
        self.call_return_points.len()
    }

    /// Number of [`StartReason::LoopExit`] push points.
    pub fn loop_exit_count(&self) -> usize {
        self.loop_exit_points.len()
    }

    /// Size of the start closure.
    pub fn closure_size(&self) -> usize {
        self.start_closure.len()
    }

    /// Checks that `trace` is statically constructible: its start is
    /// in the closure and replaying the shared builder rules over its
    /// encoded path reproduces it exactly (same key, stop kind, end
    /// kind, successor).
    pub fn check_trace(&self, trace: &Trace) -> Result<(), String> {
        if !self.contains_start(trace.start()) {
            return Err(format!(
                "trace start {:?} is not in the static start closure",
                trace.start()
            ));
        }
        let mut builder = TraceBuilder::new(trace.start());
        let mut call_stack: Vec<Addr> = Vec::new();
        let mut branch_idx = 0u8;
        let n = trace.len();
        for (i, ti) in trace.instrs().iter().enumerate() {
            match self.ops.get(&ti.pc.word()) {
                Some(op) if *op == ti.op => {}
                Some(op) => {
                    return Err(format!(
                        "trace instruction at {:?} diverges from static code: {:?} vs {:?}",
                        ti.pc, ti.op, op
                    ));
                }
                None => return Err(format!("trace address {:?} outside the program", ti.pc)),
            }
            let resolution = match ti.op.class() {
                OpClass::Branch => {
                    let taken = trace.branch_outcome(branch_idx).ok_or_else(|| {
                        format!("branch at {:?} beyond the key's branch count", ti.pc)
                    })?;
                    branch_idx += 1;
                    let next_pc = if taken {
                        ti.op.static_target().expect("branches have static targets")
                    } else {
                        ti.pc.next()
                    };
                    Resolution::Branch { taken, next_pc }
                }
                OpClass::Call => {
                    call_stack.push(ti.pc.next());
                    Resolution::None
                }
                OpClass::Return => match call_stack.pop() {
                    Some(ra) => Resolution::Target(ra),
                    None => Resolution::None,
                },
                _ => Resolution::None,
            };
            match builder.push(ti.pc, ti.op, resolution) {
                PushResult::Continue(next) => {
                    if i + 1 == n {
                        return Err(format!(
                            "builder continues to {next:?} where the trace ends"
                        ));
                    }
                    let actual = trace.instrs()[i + 1].pc;
                    if next != actual {
                        return Err(format!(
                            "path break after {:?}: builder goes to {next:?}, trace holds {actual:?}",
                            ti.pc
                        ));
                    }
                }
                PushResult::Complete(t) => {
                    if i + 1 != n {
                        return Err(format!(
                            "builder completes after {} instructions, trace holds {n}",
                            i + 1
                        ));
                    }
                    if t.key() != trace.key() {
                        return Err(format!(
                            "replayed key {:?} != trace key {:?}",
                            t.key(),
                            trace.key()
                        ));
                    }
                    if t.stop() != trace.stop() {
                        return Err(format!(
                            "replayed stop {:?} != trace stop {:?}",
                            t.stop(),
                            trace.stop()
                        ));
                    }
                    if t.end() != trace.end() {
                        return Err(format!(
                            "replayed end {:?} != trace end {:?}",
                            t.end(),
                            trace.end()
                        ));
                    }
                    if t.successor() != trace.successor() {
                        return Err(format!(
                            "replayed successor {:?} != trace successor {:?}",
                            t.successor(),
                            trace.successor()
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// Conformance check for one engine activity record: push
    /// validity for start points, static constructibility for emitted
    /// traces.
    pub fn check_activity(&self, activity: &EngineActivity) -> Result<(), String> {
        match activity {
            EngineActivity::StartPointPushed { addr, reason, .. } => {
                if self.is_valid_push(*addr, *reason) {
                    Ok(())
                } else {
                    Err(format!(
                        "start point {addr:?} pushed with reason {reason:?} has no matching construct at {:?}",
                        Addr::new(addr.word().wrapping_sub(1))
                    ))
                }
            }
            EngineActivity::TraceEmitted(trace) => self
                .check_trace(trace)
                .map_err(|e| format!("emitted trace {:?}: {e}", trace.key())),
        }
    }
}

/// Result of the bias-following (measurement) enumeration.
#[derive(Debug, Clone)]
pub struct BiasedEnumeration {
    /// Distinct trace keys reachable by constructor rules under the
    /// profile's static branch bias.
    pub trace_keys: BTreeSet<TraceKey>,
    /// Start addresses explored (push points plus discovered
    /// successors).
    pub starts_explored: usize,
    /// Whether a budget cut the enumeration short (reported counts
    /// are then lower bounds).
    pub truncated: bool,
}

/// Enumerates the traces a constructor would build when every branch
/// presents its *static* long-run bias: strongly-biased branches are
/// followed down their dominant arm, weakly-biased branches fork.
/// This mirrors the constructor's decision procedure with the bimodal
/// predictor replaced by profile ground truth, giving the static
/// trace count reported by `analyze_program` and the coverage report.
pub fn enumerate_biased(program: &Program, max_keys: usize) -> BiasedEnumeration {
    let ops = op_table(program);
    let code_len = program.len() as u32;
    let bias: BTreeMap<u32, StaticBias> = tpc_workloads::program_bias(program)
        .into_iter()
        .map(|(a, b)| (a.word(), b))
        .collect();

    let mut seeds: BTreeSet<u32> = BTreeSet::new();
    for (addr, op) in program.iter() {
        match op.class() {
            OpClass::Call => {
                seeds.insert(addr.word() + 1);
            }
            OpClass::Branch if op.is_backward_branch(addr) => {
                seeds.insert(addr.word() + 1);
            }
            _ => {}
        }
    }

    let mut trace_keys: BTreeSet<TraceKey> = BTreeSet::new();
    let mut explored: BTreeSet<u32> = seeds.clone();
    let mut worklist: VecDeque<u32> = seeds.into_iter().collect();
    let mut steps = 0u64;
    let mut truncated = false;
    'outer: while let Some(start) = worklist.pop_front() {
        let mut stack: Vec<(TraceBuilder, Vec<Addr>, Addr)> = vec![(
            TraceBuilder::new(Addr::new(start)),
            Vec::new(),
            Addr::new(start),
        )];
        while let Some((builder, call_stack, pc)) = stack.pop() {
            if trace_keys.len() >= max_keys || steps >= TOTAL_STEPS {
                truncated = true;
                break 'outer;
            }
            steps += 1;
            let Some(&op) = ops.get(&pc.word()) else {
                continue;
            };
            // Branch directions to explore under static bias.
            let arms: Vec<Resolution> = match op.class() {
                OpClass::Branch => {
                    let target = op.static_target().expect("branches have static targets");
                    let taken_arm = Resolution::Branch {
                        taken: true,
                        next_pc: target,
                    };
                    let fall_arm = Resolution::Branch {
                        taken: false,
                        next_pc: pc.next(),
                    };
                    match bias.get(&pc.word()).copied().unwrap_or(StaticBias::Weak) {
                        StaticBias::StronglyTaken => vec![taken_arm],
                        StaticBias::StronglyNotTaken => vec![fall_arm],
                        StaticBias::Weak => vec![fall_arm, taken_arm],
                    }
                }
                OpClass::Call => {
                    let mut cs = call_stack.clone();
                    cs.push(pc.next());
                    let mut b = builder.clone();
                    match b.push(pc, op, Resolution::None) {
                        PushResult::Continue(next) => stack.push((b, cs, next)),
                        PushResult::Complete(t) => {
                            record(&mut trace_keys, &mut explored, &mut worklist, &t, code_len);
                        }
                    }
                    continue;
                }
                OpClass::Return => {
                    let mut cs = call_stack.clone();
                    let r = match cs.pop() {
                        Some(ra) => Resolution::Target(ra),
                        None => Resolution::None,
                    };
                    let mut b = builder.clone();
                    match b.push(pc, op, r) {
                        PushResult::Continue(next) => stack.push((b, cs, next)),
                        PushResult::Complete(t) => {
                            record(&mut trace_keys, &mut explored, &mut worklist, &t, code_len);
                        }
                    }
                    continue;
                }
                _ => vec![Resolution::None],
            };
            for r in arms {
                let mut b = builder.clone();
                match b.push(pc, op, r) {
                    PushResult::Continue(next) => stack.push((b, call_stack.clone(), next)),
                    PushResult::Complete(t) => {
                        record(&mut trace_keys, &mut explored, &mut worklist, &t, code_len);
                    }
                }
            }
        }
    }
    BiasedEnumeration {
        trace_keys,
        starts_explored: explored.len(),
        truncated,
    }
}

/// Records a completed trace and queues its successor for region
/// continuation.
fn record(
    keys: &mut BTreeSet<TraceKey>,
    explored: &mut BTreeSet<u32>,
    worklist: &mut VecDeque<u32>,
    trace: &Trace,
    code_len: u32,
) {
    keys.insert(trace.key());
    if let Some(s) = trace.successor() {
        if s.word() < code_len && explored.insert(s.word()) {
            worklist.push_back(s.word());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpc_isa::model::OutcomeModel;
    use tpc_isa::{BranchCond, ProgramBuilder, Reg};

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }

    fn alu() -> Op {
        Op::AddImm {
            rd: r(1),
            rs1: r(1),
            imm: 1,
        }
    }

    /// `0: call 4; 1: nop; 2: bne →1; 3: halt; 4: nop; 5: ret`
    fn call_loop_program() -> Program {
        let mut b = ProgramBuilder::new();
        b.push(Op::Call {
            target: Addr::new(4),
        });
        b.push(Op::Nop);
        b.push_branch(
            Op::Branch {
                cond: BranchCond::Ne,
                rs1: r(1),
                rs2: r(2),
                target: Addr::new(1),
            },
            OutcomeModel::Loop { trip: 3 },
        );
        b.push(Op::Halt);
        b.push(Op::Nop);
        b.push(Op::Return);
        b.build().unwrap()
    }

    #[test]
    fn push_points_match_constructs() {
        let p = call_loop_program();
        let e = StaticEnumeration::build(&p);
        assert!(e.is_valid_push(Addr::new(1), StartReason::CallReturn));
        assert!(e.is_valid_push(Addr::new(3), StartReason::LoopExit));
        // Wrong reason, wrong address: rejected.
        assert!(!e.is_valid_push(Addr::new(1), StartReason::LoopExit));
        assert!(!e.is_valid_push(Addr::new(3), StartReason::CallReturn));
        assert!(!e.is_valid_push(Addr::new(2), StartReason::CallReturn));
        assert_eq!(e.call_return_count(), 1);
        assert_eq!(e.loop_exit_count(), 1);
    }

    #[test]
    fn closure_contains_seeds_and_successors() {
        let p = call_loop_program();
        let e = StaticEnumeration::build(&p);
        assert!(!e.saturated());
        assert!(e.contains_start(Addr::new(1)));
        assert!(e.contains_start(Addr::new(3)));
        // The trace from 1 runs `nop; bne(false); halt` or loops; a
        // trace ending at the alignment boundary or cap yields
        // in-range successors, all of which must be in the closure.
        assert!(e.closure_size() >= 2);
    }

    #[test]
    fn replayed_trace_is_accepted() {
        let p = call_loop_program();
        let e = StaticEnumeration::build(&p);
        // Build the trace a constructor starting at 1 would emit with
        // the loop branch not taken: nop; bne(NT); halt.
        let mut b = TraceBuilder::new(Addr::new(1));
        b.push(
            Addr::new(1),
            *p.fetch(Addr::new(1)).unwrap(),
            Resolution::None,
        );
        b.push(
            Addr::new(2),
            *p.fetch(Addr::new(2)).unwrap(),
            Resolution::Branch {
                taken: false,
                next_pc: Addr::new(3),
            },
        );
        let t = match b.push(
            Addr::new(3),
            *p.fetch(Addr::new(3)).unwrap(),
            Resolution::None,
        ) {
            PushResult::Complete(t) => t,
            other => panic!("{other:?}"),
        };
        e.check_trace(&t).unwrap();
        e.check_activity(&EngineActivity::TraceEmitted(t)).unwrap();
    }

    #[test]
    fn foreign_trace_is_rejected() {
        let p = call_loop_program();
        let e = StaticEnumeration::build(&p);
        // A trace starting at an address no construct predicts
        // (address 4 is only reachable through the call edge).
        let mut b = TraceBuilder::new(Addr::new(4));
        b.push(
            Addr::new(4),
            *p.fetch(Addr::new(4)).unwrap(),
            Resolution::None,
        );
        let t = match b.push(
            Addr::new(5),
            *p.fetch(Addr::new(5)).unwrap(),
            Resolution::None,
        ) {
            PushResult::Complete(t) => t,
            other => panic!("{other:?}"),
        };
        assert!(e.check_trace(&t).is_err(), "start 4 is outside the closure");
    }

    #[test]
    fn tampered_path_is_rejected() {
        // A trace whose instructions do not sit at their claimed
        // addresses in the program.
        let p = call_loop_program();
        let e = StaticEnumeration::build(&p);
        let mut b = TraceBuilder::new(Addr::new(1));
        let t = match b.push(Addr::new(1), alu(), Resolution::None) {
            PushResult::Continue(_) => match b.push(Addr::new(2), Op::Halt, Resolution::None) {
                PushResult::Complete(t) => t,
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        };
        let err = e.check_trace(&t).unwrap_err();
        assert!(err.contains("diverges"), "{err}");
    }

    #[test]
    fn push_conformance_via_activity() {
        let p = call_loop_program();
        let e = StaticEnumeration::build(&p);
        assert!(e
            .check_activity(&EngineActivity::StartPointPushed {
                addr: Addr::new(1),
                reason: StartReason::CallReturn,
                seq: 7,
            })
            .is_ok());
        assert!(e
            .check_activity(&EngineActivity::StartPointPushed {
                addr: Addr::new(5),
                reason: StartReason::LoopExit,
                seq: 7,
            })
            .is_err());
    }

    #[test]
    fn biased_enumeration_counts_loop_paths() {
        let p = call_loop_program();
        let out = enumerate_biased(&p, 10_000);
        assert!(!out.truncated);
        // The loop branch is strongly taken (trip 3 ⇒ 667‰ — weak,
        // actually): trip 3 gives 666‰ < 900 ⇒ Weak ⇒ both arms.
        assert!(out.trace_keys.len() >= 2);
        assert!(out.starts_explored >= 2);
    }

    #[test]
    fn generated_workload_enumerates_within_budget() {
        let p = tpc_workloads::WorkloadBuilder::new(tpc_workloads::Benchmark::Compress)
            .seed(11)
            .scale_permille(80)
            .build();
        let e = StaticEnumeration::build(&p);
        assert!(e.call_return_count() > 0);
        assert!(e.loop_exit_count() > 0);
        assert!(e.closure_size() >= e.call_return_count());
        let out = enumerate_biased(&p, 100_000);
        assert!(!out.trace_keys.is_empty());
    }
}
