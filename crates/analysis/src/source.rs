//! Frontend-source-generic analysis entry points.
//!
//! The analyzer consumes static code, and every
//! [`FrontendSource`] exposes its code through
//! [`FrontendSource::code`] — so CFG construction, static
//! enumeration, and linting work identically whether the program is a
//! synthetic workload, a loaded `.asm` file, or any future frontend.
//! These wrappers make that explicit at the call site and keep the
//! pipeline uniform with the (equally generic) simulator and oracle.

use crate::cfg::Cfg;
use crate::enumerate::StaticEnumeration;
use crate::lint::{lint, Lint};
use tpc_exec::FrontendSource;

/// Builds the control-flow graph of the source's static code.
pub fn cfg_of<S: FrontendSource>(source: &S) -> Cfg {
    Cfg::build(source.code())
}

/// Builds the static trace enumeration of the source's static code.
pub fn enumeration_of<S: FrontendSource>(source: &S) -> StaticEnumeration {
    StaticEnumeration::build(source.code())
}

/// Lints the source's static code over a freshly built CFG.
pub fn lint_source<S: FrontendSource>(source: &S) -> Vec<Lint> {
    let code = source.code();
    lint(code, &Cfg::build(code))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::{has_errors, LintLevel};
    use tpc_exec::AsmProgram;

    #[test]
    fn asm_programs_lint_through_the_same_pipeline() {
        // A loaded .asm program with an unreachable block (unlabeled,
        // so it is not a function entry) and a degenerate bias: the
        // workload linter must see both.
        let src = "main:\n\
                   \x20   beq r1, r2, main @bias(2/2)\n\
                   \x20   halt\n\
                   \x20   nop\n\
                   \x20   halt\n";
        let asm = AsmProgram::from_source("demo", src).unwrap();
        let lints = lint_source(&asm);
        assert!(
            lints.iter().any(|l| l.to_string().contains("unreachable")),
            "{lints:?}"
        );
        assert!(
            lints.iter().any(|l| l.to_string().contains("degenerate")),
            "{lints:?}"
        );
        assert!(lints.iter().all(|l| l.level() == LintLevel::Warning));
        assert!(!has_errors(&lints));
    }

    #[test]
    fn cfg_and_enumeration_agree_with_direct_calls() {
        let src = "main:\n\
                   top:\n\
                   \x20   addi r1, r1, 1\n\
                   \x20   bne r1, r0, top @loop(3)\n\
                   \x20   halt\n";
        let asm = AsmProgram::from_source("loop", src).unwrap();
        let via_source = cfg_of(&asm);
        let direct = Cfg::build(tpc_exec::FrontendSource::code(&asm));
        assert_eq!(via_source.blocks().len(), direct.blocks().len());
        let _ = enumeration_of(&asm);
    }
}
