//! The executor proper.

use tpc_isa::model::{OutcomeState, XorShift64};
use tpc_isa::{Addr, Op, Program};

/// Data-address space touched by loads/stores, as a power-of-two
/// byte mask. Effective addresses are folded into this footprint so
/// generated address arithmetic cannot wander off to unbounded
/// addresses.
const DATA_FOOTPRINT_MASK: u64 = (1 << 20) - 1; // 1 MiB

/// One retired architectural instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DynInstr {
    /// Address of the instruction.
    pub pc: Addr,
    /// The instruction itself.
    pub op: Op,
    /// For conditional branches: the resolved direction.
    pub taken: bool,
    /// Address of the next architectural instruction.
    pub next_pc: Addr,
    /// Effective byte address for loads/stores.
    pub mem_addr: Option<u64>,
}

impl DynInstr {
    /// Whether this instruction redirected control flow away from
    /// `pc + 1`.
    pub fn redirected(&self) -> bool {
        self.next_pc != self.pc.next()
    }
}

/// Deterministic load-value function: memory dataflow (store-to-load
/// forwarding) is not modelled — the paper delegates memory
/// dependence enforcement to dedicated hardware (ARB) and none of the
/// measured quantities depend on load *values*; addresses and
/// latencies are what matter, and those are real.
#[inline]
fn load_value(addr: u64) -> i64 {
    let mut z = addr.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    (z ^ (z >> 31)) as i64
}

/// Architectural executor over a program.
///
/// See the crate docs for the overall contract. The executor never
/// fails at runtime: [`Program`] validation guarantees every branch
/// has a model and every target is in range; an unbalanced `ret`
/// (empty call stack) restarts the program, which can only happen in
/// hand-written programs.
#[derive(Debug, Clone)]
pub struct Executor<'a> {
    program: &'a Program,
    pc: Addr,
    regs: [i64; tpc_isa::NUM_REGS],
    call_stack: Vec<Addr>,
    branch_states: Vec<Option<OutcomeState>>,
    indirect_rngs: Vec<Option<XorShift64>>,
    retired: u64,
    completions: u64,
}

impl<'a> Executor<'a> {
    /// Creates an executor positioned at the program entry.
    pub fn new(program: &'a Program) -> Self {
        Executor {
            program,
            pc: program.entry(),
            regs: [0; tpc_isa::NUM_REGS],
            call_stack: Vec::with_capacity(64),
            branch_states: vec![None; program.len()],
            indirect_rngs: vec![None; program.len()],
            retired: 0,
            completions: 0,
        }
    }

    /// The static program being executed.
    pub fn program(&self) -> &'a Program {
        self.program
    }

    /// Instructions retired so far.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Number of times the program ran to `halt` and restarted.
    pub fn completions(&self) -> u64 {
        self.completions
    }

    /// The current program counter.
    pub fn pc(&self) -> Addr {
        self.pc
    }

    /// Current architectural call depth.
    pub fn call_depth(&self) -> usize {
        self.call_stack.len()
    }

    #[inline]
    fn read(&self, r: tpc_isa::Reg) -> i64 {
        self.regs[r.index()]
    }

    #[inline]
    fn write(&mut self, r: tpc_isa::Reg, v: i64) {
        if !r.is_zero() {
            self.regs[r.index()] = v;
        }
    }

    fn restart(&mut self) {
        self.pc = self.program.entry();
        self.call_stack.clear();
        self.completions += 1;
        // Register values and branch-model states persist: phases
        // continue where they left off, like re-entering a long-lived
        // outer loop.
    }

    /// Executes and retires exactly one instruction.
    fn step(&mut self) -> DynInstr {
        let pc = self.pc;
        let op = *self
            .program
            .fetch(pc)
            .expect("validated program cannot run out of code");
        let mut taken = false;
        let mut mem_addr = None;
        let mut next_pc = pc.next();

        match op {
            Op::Add { rd, rs1, rs2 } => {
                let v = self.read(rs1).wrapping_add(self.read(rs2));
                self.write(rd, v);
            }
            Op::Sub { rd, rs1, rs2 } => {
                let v = self.read(rs1).wrapping_sub(self.read(rs2));
                self.write(rd, v);
            }
            Op::And { rd, rs1, rs2 } => {
                let v = self.read(rs1) & self.read(rs2);
                self.write(rd, v);
            }
            Op::Or { rd, rs1, rs2 } => {
                let v = self.read(rs1) | self.read(rs2);
                self.write(rd, v);
            }
            Op::Xor { rd, rs1, rs2 } => {
                let v = self.read(rs1) ^ self.read(rs2);
                self.write(rd, v);
            }
            Op::Shl { rd, rs1, shamt } => {
                let v = (self.read(rs1) as u64).wrapping_shl(shamt as u32) as i64;
                self.write(rd, v);
            }
            Op::Shr { rd, rs1, shamt } => {
                let v = ((self.read(rs1) as u64) >> (shamt as u32)) as i64;
                self.write(rd, v);
            }
            Op::AddImm { rd, rs1, imm } => {
                let v = self.read(rs1).wrapping_add(imm as i64);
                self.write(rd, v);
            }
            Op::LoadImm { rd, imm } => self.write(rd, imm as i64),
            Op::Mul { rd, rs1, rs2 } => {
                let v = self.read(rs1).wrapping_mul(self.read(rs2));
                self.write(rd, v);
            }
            Op::Div { rd, rs1, rs2 } => {
                let d = self.read(rs2);
                let v = if d == 0 {
                    0
                } else {
                    self.read(rs1).wrapping_div(d)
                };
                self.write(rd, v);
            }
            Op::Load { rd, base, offset } => {
                let ea = (self.read(base).wrapping_add(offset as i64) as u64) & DATA_FOOTPRINT_MASK;
                mem_addr = Some(ea);
                self.write(rd, load_value(ea));
            }
            Op::Store {
                src: _,
                base,
                offset,
            } => {
                let ea = (self.read(base).wrapping_add(offset as i64) as u64) & DATA_FOOTPRINT_MASK;
                mem_addr = Some(ea);
            }
            Op::Branch { target, .. } => {
                let model = self
                    .program
                    .branch_model(pc)
                    .expect("validated program has a model per branch");
                let state = self.branch_states[pc.word() as usize]
                    .get_or_insert_with(|| OutcomeState::new(model));
                taken = state.next_outcome(model);
                if taken {
                    next_pc = target;
                }
            }
            Op::Jump { target } => next_pc = target,
            Op::Call { target } => {
                let ra = pc.next();
                self.call_stack.push(ra);
                self.write(tpc_isa::LINK, ra.word() as i64);
                next_pc = target;
            }
            Op::Return => {
                match self.call_stack.pop() {
                    Some(ra) => next_pc = ra,
                    // Unbalanced return: only reachable in
                    // hand-written programs; treat as program end.
                    None => next_pc = self.program.entry(),
                }
            }
            Op::IndirectJump { .. } => {
                let model = self
                    .program
                    .indirect_model(pc)
                    .expect("validated program has a model per indirect jump");
                let rng = self.indirect_rngs[pc.word() as usize]
                    .get_or_insert_with(|| XorShift64::new(model.seed()));
                next_pc = model.select(rng);
            }
            Op::Halt => {
                self.restart();
                next_pc = self.pc;
            }
            Op::Nop => {}
        }

        self.pc = next_pc;
        self.retired += 1;
        DynInstr {
            pc,
            op,
            taken,
            next_pc,
            mem_addr,
        }
    }
}

impl Iterator for Executor<'_> {
    type Item = DynInstr;

    /// Retires the next instruction. Never returns `None`: halting
    /// programs restart from their entry point.
    fn next(&mut self) -> Option<DynInstr> {
        Some(self.step())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpc_isa::model::{IndirectModel, OutcomeModel};
    use tpc_isa::{BranchCond, ProgramBuilder, Reg};

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }

    /// addi r1, r0, 5 ; loop: addi r1, r1, -1 ; bne r1, r0, loop ; halt
    fn counted_loop(trip: u32) -> tpc_isa::Program {
        let mut b = ProgramBuilder::new();
        b.push(Op::AddImm {
            rd: r(1),
            rs1: Reg::ZERO,
            imm: trip as i32,
        });
        let top = b.here();
        b.push(Op::AddImm {
            rd: r(1),
            rs1: r(1),
            imm: -1,
        });
        b.push_branch(
            Op::Branch {
                cond: BranchCond::Ne,
                rs1: r(1),
                rs2: Reg::ZERO,
                target: top,
            },
            OutcomeModel::Loop { trip },
        );
        b.push(Op::Halt);
        b.build().unwrap()
    }

    #[test]
    fn loop_retires_expected_count() {
        let p = counted_loop(5);
        let mut ex = Executor::new(&p);
        // 1 init + 5*(addi+bne) + halt = 12 instructions to first halt.
        let mut halted_at = 0;
        for i in 1..=100 {
            let d = ex.next().unwrap();
            if d.op == Op::Halt {
                halted_at = i;
                break;
            }
        }
        assert_eq!(halted_at, 12);
        assert_eq!(ex.completions(), 1);
    }

    #[test]
    fn branch_outcomes_follow_model() {
        let p = counted_loop(3);
        let outcomes: Vec<bool> = Executor::new(&p)
            .take(20)
            .filter(|d| matches!(d.op, Op::Branch { .. }))
            .map(|d| d.taken)
            .collect();
        // First pass: taken, taken, not-taken; restarts identically
        // except the loop model continues its cycle.
        assert_eq!(&outcomes[..3], &[true, true, false]);
    }

    #[test]
    fn call_and_return_are_balanced() {
        let mut b = ProgramBuilder::new();
        let call_at = b.push(Op::Nop); // patched below
        b.push(Op::Halt);
        let f = b.here();
        b.push(Op::AddImm {
            rd: r(2),
            rs1: Reg::ZERO,
            imm: 1,
        });
        b.push(Op::Return);
        b.patch(call_at, Op::Call { target: f });
        let p = b.build().unwrap();

        let seq: Vec<_> = Executor::new(&p).take(4).collect();
        assert!(matches!(seq[0].op, Op::Call { .. }));
        assert_eq!(seq[0].next_pc, f);
        assert_eq!(seq[2].op, Op::Return);
        assert_eq!(seq[2].next_pc, call_at.next()); // back to after the call
        assert_eq!(seq[3].op, Op::Halt);
    }

    #[test]
    fn link_register_written_by_call() {
        let mut b = ProgramBuilder::new();
        b.push(Op::Call {
            target: Addr::new(2),
        });
        b.push(Op::Halt);
        b.push(Op::Return);
        let p = b.build().unwrap();
        let mut ex = Executor::new(&p);
        ex.next();
        assert_eq!(ex.read(tpc_isa::LINK), 1);
    }

    #[test]
    fn indirect_jump_selects_model_targets() {
        let mut b = ProgramBuilder::new();
        b.push_indirect(
            Op::IndirectJump { rs1: r(4) },
            IndirectModel::uniform(vec![Addr::new(1), Addr::new(2)], 9),
        );
        b.push(Op::Halt);
        b.push(Op::Halt);
        let p = b.build().unwrap();
        let mut seen = std::collections::HashSet::new();
        let mut ex = Executor::new(&p);
        for _ in 0..50 {
            let d = ex.next().unwrap();
            if matches!(d.op, Op::IndirectJump { .. }) {
                seen.insert(d.next_pc);
            }
        }
        assert_eq!(seen.len(), 2, "both targets exercised");
    }

    #[test]
    fn halting_restarts_at_entry() {
        let p = counted_loop(2);
        let mut ex = Executor::new(&p);
        let stream: Vec<_> = (&mut ex).take(30).collect();
        let halts = stream.iter().filter(|d| d.op == Op::Halt).count();
        assert!(halts >= 2, "program restarted after halt");
        for d in stream.iter().filter(|d| d.op == Op::Halt) {
            assert_eq!(d.next_pc, p.entry());
        }
    }

    #[test]
    fn unbalanced_ret_jumps_to_entry_without_completing() {
        // Pins the frontend-contract semantics: a `ret` with an empty
        // call stack transfers control to the entry point but is NOT
        // a program end — no completion is counted, the registers and
        // branch-model state persist (unlike `halt`, which restarts
        // and bumps `completions`).
        let mut b = ProgramBuilder::new();
        b.push(Op::AddImm {
            rd: r(1),
            rs1: r(1),
            imm: 1,
        });
        b.push(Op::Return);
        let p = b.build().unwrap();
        let mut ex = Executor::new(&p);

        for pass in 1..=3 {
            let add = ex.next().unwrap();
            assert_eq!(
                add.op,
                Op::AddImm {
                    rd: r(1),
                    rs1: r(1),
                    imm: 1
                }
            );
            let ret = ex.next().unwrap();
            assert_eq!(ret.op, Op::Return);
            assert_eq!(ret.next_pc, p.entry(), "unbalanced ret jumps to entry");
            assert_eq!(ex.completions(), 0, "no completion counted");
            assert_eq!(ex.call_depth(), 0);
            assert_eq!(ex.read(r(1)), pass, "register state persists");
        }

        // Contrast: `halt` restarts and counts a completion.
        let halting = counted_loop(1);
        let mut hx = Executor::new(&halting);
        while hx.next().unwrap().op != Op::Halt {}
        assert_eq!(hx.completions(), 1);
    }

    #[test]
    fn execution_is_deterministic() {
        let p = counted_loop(7);
        let a: Vec<_> = Executor::new(&p).take(500).collect();
        let b: Vec<_> = Executor::new(&p).take(500).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn zero_register_stays_zero() {
        let mut b = ProgramBuilder::new();
        b.push(Op::AddImm {
            rd: Reg::ZERO,
            rs1: Reg::ZERO,
            imm: 99,
        });
        b.push(Op::Halt);
        let p = b.build().unwrap();
        let mut ex = Executor::new(&p);
        ex.next();
        assert_eq!(ex.read(Reg::ZERO), 0);
    }

    #[test]
    fn loads_and_stores_report_effective_addresses() {
        let mut b = ProgramBuilder::new();
        b.push(Op::LoadImm {
            rd: r(1),
            imm: 0x100,
        });
        b.push(Op::Load {
            rd: r(2),
            base: r(1),
            offset: 8,
        });
        b.push(Op::Store {
            src: r(2),
            base: r(1),
            offset: 16,
        });
        b.push(Op::Halt);
        let p = b.build().unwrap();
        let seq: Vec<_> = Executor::new(&p).take(3).collect();
        assert_eq!(seq[1].mem_addr, Some(0x108));
        assert_eq!(seq[2].mem_addr, Some(0x110));
    }

    #[test]
    fn division_by_zero_yields_zero() {
        let mut b = ProgramBuilder::new();
        b.push(Op::LoadImm { rd: r(1), imm: 10 });
        b.push(Op::Div {
            rd: r(2),
            rs1: r(1),
            rs2: Reg::ZERO,
        });
        b.push(Op::Halt);
        let p = b.build().unwrap();
        let mut ex = Executor::new(&p);
        ex.next();
        ex.next();
        assert_eq!(ex.read(r(2)), 0);
    }

    #[test]
    fn redirected_flag() {
        let p = counted_loop(2);
        let stream: Vec<_> = Executor::new(&p).take(12).collect();
        // addi (no), addi (no), bne taken (yes)
        assert!(!stream[0].redirected());
        assert!(stream[2].redirected());
    }

    use tpc_isa::Addr;
}
