//! The pluggable frontend boundary.
//!
//! A [`Frontend`] is anything that can (a) produce the next retired
//! architectural instruction and (b) expose the static code that
//! stream is drawn from. The trace-cache simulator, the differential
//! oracle, and the static analyzer are all generic over this trait —
//! statically dispatched, no `dyn` — so alternative instruction
//! sources (hand-written `.asm` programs today; competing prefetcher
//! studies and server-scale footprints tomorrow) plug in without
//! touching the timing model.
//!
//! # Contract
//!
//! Implementations must uphold the executor semantics the rest of the
//! pipeline is verified against:
//!
//! * **Deterministic**: the retired stream is a pure function of the
//!   static code and its attached behaviour models. Two frontends
//!   over the same code produce identical streams.
//! * **Endless**: [`Frontend::next_retired`] never ends. `halt`
//!   restarts execution at the entry point — clearing the call stack
//!   and bumping [`Frontend::completions`], while register values and
//!   per-branch model state persist (re-entering a long-lived outer
//!   loop, not rebooting).
//! * **Unbalanced `ret`**: a `ret` with an empty call stack jumps to
//!   the entry point *without* counting a completion and *without*
//!   clearing any state — it is a control transfer, not a program
//!   end. Only reachable in hand-written programs; pinned by a unit
//!   test in this crate.
//! * **Static code is the whole truth**: every `pc` and `next_pc` in
//!   the retired stream must be fetchable from [`Frontend::code`], so
//!   static analysis (CFG, enumeration, linting) of that program
//!   covers everything the dynamic stream can do.

use crate::{DynInstr, Executor};
use tpc_isa::Program;

/// A source of retired architectural instructions plus the static
/// code they come from. See the [module docs](self) for the contract.
pub trait Frontend {
    /// Short stable identifier of the frontend kind (e.g.
    /// `"synthetic"`, `"asm"`). Recorded in benchmark rows and
    /// checkpoint fingerprints so cached results from different
    /// frontends can never collide.
    fn id(&self) -> &'static str;

    /// The static program the retired stream executes.
    fn code(&self) -> &Program;

    /// Produces the next retired instruction. Never ends; see the
    /// module docs for halt/restart semantics.
    fn next_retired(&mut self) -> DynInstr;

    /// Instructions retired so far.
    fn retired(&self) -> u64;

    /// Number of times the program ran to `halt` and restarted.
    fn completions(&self) -> u64;
}

impl Frontend for Executor<'_> {
    fn id(&self) -> &'static str {
        "synthetic"
    }

    fn code(&self) -> &Program {
        self.program()
    }

    fn next_retired(&mut self) -> DynInstr {
        self.next().expect("executor stream never ends")
    }

    fn retired(&self) -> u64 {
        Executor::retired(self)
    }

    fn completions(&self) -> u64 {
        Executor::completions(self)
    }
}

/// A factory for [`Frontend`]s over owned static code.
///
/// Differential and analysis pipelines need to run *several*
/// frontends over the same program (one per simulator config, plus
/// the golden model); this trait separates the owned source (a
/// [`Program`], a loaded `.asm` file) from the per-run execution
/// state so each run starts fresh.
pub trait FrontendSource {
    /// The frontend type this source instantiates.
    type Fe<'s>: Frontend
    where
        Self: 's;

    /// The frontend-kind identifier; matches
    /// [`Frontend::id`] of the instantiated frontends.
    fn id(&self) -> &'static str;

    /// The static program all instantiated frontends execute.
    fn code(&self) -> &Program;

    /// Instantiates a fresh frontend positioned at the entry point.
    fn frontend(&self) -> Self::Fe<'_>;
}

/// The synthetic-workload source: a validated [`Program`] executed by
/// the architectural [`Executor`].
impl FrontendSource for Program {
    type Fe<'s> = Executor<'s>;

    fn id(&self) -> &'static str {
        "synthetic"
    }

    fn code(&self) -> &Program {
        self
    }

    fn frontend(&self) -> Executor<'_> {
        Executor::new(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpc_isa::{Op, ProgramBuilder, Reg};

    fn tiny() -> Program {
        let mut b = ProgramBuilder::new();
        b.push(Op::AddImm {
            rd: Reg::new(1),
            rs1: Reg::ZERO,
            imm: 1,
        });
        b.push(Op::Halt);
        b.build().unwrap()
    }

    #[test]
    fn program_source_instantiates_executor() {
        let p = tiny();
        assert_eq!(FrontendSource::id(&p), "synthetic");
        let mut fe = p.frontend();
        assert_eq!(fe.id(), "synthetic");
        let d = fe.next_retired();
        assert_eq!(d.pc, p.entry());
        assert_eq!(Frontend::retired(&fe), 1);
        assert!(std::ptr::eq(fe.code(), &p));
    }

    #[test]
    fn fresh_frontends_are_independent() {
        let p = tiny();
        let a: Vec<DynInstr> = (0..16).map(|_| p.frontend().next_retired()).collect();
        assert!(a.windows(2).all(|w| w[0] == w[1]), "each run starts fresh");
    }
}
