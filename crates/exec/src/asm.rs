//! The hand-written-assembly frontend.
//!
//! Loads `.asm` text (see [`tpc_isa::asm`] for the syntax) into a
//! validated [`Program`] and exposes it through the [`Frontend`] /
//! [`FrontendSource`] boundary, so hand-written programs run through
//! the exact same simulator, differential-oracle, fault-injection,
//! and static-analysis pipeline as the synthetic workloads.
//!
//! Example programs ship under `examples/asm/` in the repo root; the
//! `asm_run` binary in `tpc-oracle` drives one end-to-end.

use crate::frontend::{Frontend, FrontendSource};
use crate::{DynInstr, Executor};
use std::fmt;
use std::path::Path;
use tpc_isa::asm::{assemble, AsmError};
use tpc_isa::Program;

/// Error from loading an `.asm` file.
#[derive(Debug)]
pub enum AsmLoadError {
    /// The file could not be read.
    Io {
        /// The path we tried to read.
        path: String,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// The source text failed to assemble or validate.
    Parse(AsmError),
}

impl fmt::Display for AsmLoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmLoadError::Io { path, source } => write!(f, "{path}: {source}"),
            AsmLoadError::Parse(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for AsmLoadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AsmLoadError::Io { source, .. } => Some(source),
            AsmLoadError::Parse(e) => Some(e),
        }
    }
}

impl From<AsmError> for AsmLoadError {
    fn from(e: AsmError) -> Self {
        AsmLoadError::Parse(e)
    }
}

/// A hand-written assembly program: named, parsed, and validated.
///
/// This is the owned [`FrontendSource`] for the `"asm"` frontend;
/// [`AsmProgram::frontend`](FrontendSource::frontend) instantiates a
/// fresh [`AsmFrontend`] per run.
#[derive(Debug, Clone)]
pub struct AsmProgram {
    name: String,
    program: Program,
}

impl AsmProgram {
    /// Assembles `source` under the given display name.
    ///
    /// # Errors
    ///
    /// Returns the [`AsmError`] (with 1-based source line) for syntax
    /// or validation failures.
    pub fn from_source(name: impl Into<String>, source: &str) -> Result<Self, AsmError> {
        Ok(AsmProgram {
            name: name.into(),
            program: assemble(source)?,
        })
    }

    /// Loads and assembles an `.asm` file; the file stem becomes the
    /// program name.
    ///
    /// # Errors
    ///
    /// I/O failures (tagged with the path) and assembly failures.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, AsmLoadError> {
        let path = path.as_ref();
        let source = std::fs::read_to_string(path).map_err(|e| AsmLoadError::Io {
            path: path.display().to_string(),
            source: e,
        })?;
        let name = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| path.display().to_string());
        Ok(AsmProgram::from_source(name, &source)?)
    }

    /// The program's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The assembled, validated program.
    pub fn program(&self) -> &Program {
        &self.program
    }
}

impl FrontendSource for AsmProgram {
    type Fe<'s> = AsmFrontend<'s>;

    fn id(&self) -> &'static str {
        "asm"
    }

    fn code(&self) -> &Program {
        &self.program
    }

    fn frontend(&self) -> AsmFrontend<'_> {
        AsmFrontend {
            ex: Executor::new(&self.program),
        }
    }
}

/// A running instance of the `"asm"` frontend.
///
/// Execution semantics are the architectural [`Executor`]'s — the
/// `.asm` loader changes where programs come from, not how they run —
/// so the [`Frontend`] contract (halt restart, unbalanced-`ret`
/// transfer) holds by construction.
#[derive(Debug, Clone)]
pub struct AsmFrontend<'a> {
    ex: Executor<'a>,
}

impl Frontend for AsmFrontend<'_> {
    fn id(&self) -> &'static str {
        "asm"
    }

    fn code(&self) -> &Program {
        self.ex.program()
    }

    fn next_retired(&mut self) -> DynInstr {
        self.ex.next_retired()
    }

    fn retired(&self) -> u64 {
        self.ex.retired()
    }

    fn completions(&self) -> u64 {
        self.ex.completions()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LOOP: &str =
        "main:\n    li r1, 3\ntop:\n    addi r1, r1, -1\n    bne r1, r0, top @loop(3)\n    halt\n";

    #[test]
    fn from_source_assembles_and_names() {
        let p = AsmProgram::from_source("loop", LOOP).unwrap();
        assert_eq!(p.name(), "loop");
        assert_eq!(p.program().len(), 4);
        assert_eq!(FrontendSource::id(&p), "asm");
    }

    #[test]
    fn asm_frontend_matches_raw_executor() {
        // The asm frontend is the executor over the assembled
        // program: identical retired streams.
        let p = AsmProgram::from_source("loop", LOOP).unwrap();
        let mut fe = p.frontend();
        let mut ex = Executor::new(p.program());
        for _ in 0..64 {
            assert_eq!(fe.next_retired(), ex.next().unwrap());
        }
        assert_eq!(Frontend::retired(&fe), 64);
        assert_eq!(fe.id(), "asm");
    }

    #[test]
    fn parse_errors_surface_with_lines() {
        let e = AsmProgram::from_source("bad", "main: bogus r1\nhalt").unwrap_err();
        assert_eq!(e.line, 1);
    }

    #[test]
    fn load_reports_missing_files() {
        let e = AsmProgram::load("/nonexistent/definitely_missing.asm").unwrap_err();
        assert!(matches!(e, AsmLoadError::Io { .. }));
        assert!(e.to_string().contains("definitely_missing"));
    }

    #[test]
    fn unbalanced_ret_contract_holds_for_asm_programs() {
        // The frontend-contract case the trait docs pin: `ret` with
        // an empty call stack transfers to the entry without counting
        // a completion.
        let p = AsmProgram::from_source("ret", "main:\n    nop\n    ret\n").unwrap();
        let mut fe = p.frontend();
        fe.next_retired();
        let d = fe.next_retired();
        assert_eq!(d.next_pc, p.program().entry());
        assert_eq!(fe.completions(), 0);
    }
}
