//! # tpc-exec — architectural executor
//!
//! Walks a [`tpc_isa::Program`] and produces its dynamic instruction
//! stream: the sequence of `(pc, op, branch outcome, next pc)` the
//! timing model consumes. Register dataflow is executed for real
//! (the backend's dependence timing relies on it); control flow is
//! resolved through the program's attached behaviour models (see
//! `tpc_isa::model`), making every run deterministic.
//!
//! The executor is an [`Iterator`]: each `next()` retires one
//! architectural instruction. When the program halts, execution
//! restarts from the entry point (preserving per-branch model state),
//! so arbitrarily long instruction budgets can be simulated; the
//! number of completed passes is reported by
//! [`Executor::completions`].
//!
//! The crate also defines the pluggable [`Frontend`] boundary the
//! simulator, oracle, and analyzer are generic over — the
//! [`Executor`] is its first implementation (`"synthetic"`), and the
//! [`AsmProgram`] loader its second (`"asm"`). See the [`frontend`]
//! module docs for the contract.
//!
//! ```
//! use tpc_isa::{ProgramBuilder, Op, Reg};
//! use tpc_exec::Executor;
//!
//! # fn main() -> Result<(), tpc_isa::ProgramError> {
//! let mut b = ProgramBuilder::new();
//! b.push(Op::AddImm { rd: Reg::new(1), rs1: Reg::ZERO, imm: 7 });
//! b.push(Op::Halt);
//! let program = b.build()?;
//! let first = Executor::new(&program).next().expect("one instruction");
//! assert_eq!(first.pc.word(), 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod asm;
mod executor;
pub mod frontend;

pub use asm::{AsmFrontend, AsmLoadError, AsmProgram};
pub use executor::{DynInstr, Executor};
pub use frontend::{Frontend, FrontendSource};
