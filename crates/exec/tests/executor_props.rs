//! Property test: the executor's ALU semantics agree with an
//! independent reference interpreter on random straight-line
//! programs.
#![cfg(feature = "proptest-tests")]

use proptest::prelude::*;
use tpc_exec::Executor;
use tpc_isa::{Op, ProgramBuilder, Reg};

#[derive(Debug, Clone, Copy)]
enum AluShape {
    Add(u8, u8, u8),
    Sub(u8, u8, u8),
    And(u8, u8, u8),
    Or(u8, u8, u8),
    Xor(u8, u8, u8),
    Shl(u8, u8, u8),
    Shr(u8, u8, u8),
    AddImm(u8, u8, i32),
    LoadImm(u8, i32),
    Mul(u8, u8, u8),
    Div(u8, u8, u8),
}

fn reg_idx() -> impl Strategy<Value = u8> {
    0u8..16
}

fn shapes() -> impl Strategy<Value = Vec<AluShape>> {
    prop::collection::vec(
        prop_oneof![
            (reg_idx(), reg_idx(), reg_idx()).prop_map(|(a, b, c)| AluShape::Add(a, b, c)),
            (reg_idx(), reg_idx(), reg_idx()).prop_map(|(a, b, c)| AluShape::Sub(a, b, c)),
            (reg_idx(), reg_idx(), reg_idx()).prop_map(|(a, b, c)| AluShape::And(a, b, c)),
            (reg_idx(), reg_idx(), reg_idx()).prop_map(|(a, b, c)| AluShape::Or(a, b, c)),
            (reg_idx(), reg_idx(), reg_idx()).prop_map(|(a, b, c)| AluShape::Xor(a, b, c)),
            (reg_idx(), reg_idx(), 0u8..32).prop_map(|(a, b, s)| AluShape::Shl(a, b, s)),
            (reg_idx(), reg_idx(), 0u8..32).prop_map(|(a, b, s)| AluShape::Shr(a, b, s)),
            (reg_idx(), reg_idx(), -1000i32..1000).prop_map(|(a, b, i)| AluShape::AddImm(a, b, i)),
            (reg_idx(), -1000i32..1000).prop_map(|(a, i)| AluShape::LoadImm(a, i)),
            (reg_idx(), reg_idx(), reg_idx()).prop_map(|(a, b, c)| AluShape::Mul(a, b, c)),
            (reg_idx(), reg_idx(), reg_idx()).prop_map(|(a, b, c)| AluShape::Div(a, b, c)),
        ],
        1..60,
    )
}

fn to_op(s: AluShape) -> Op {
    let r = Reg::new;
    match s {
        AluShape::Add(a, b, c) => Op::Add {
            rd: r(a),
            rs1: r(b),
            rs2: r(c),
        },
        AluShape::Sub(a, b, c) => Op::Sub {
            rd: r(a),
            rs1: r(b),
            rs2: r(c),
        },
        AluShape::And(a, b, c) => Op::And {
            rd: r(a),
            rs1: r(b),
            rs2: r(c),
        },
        AluShape::Or(a, b, c) => Op::Or {
            rd: r(a),
            rs1: r(b),
            rs2: r(c),
        },
        AluShape::Xor(a, b, c) => Op::Xor {
            rd: r(a),
            rs1: r(b),
            rs2: r(c),
        },
        AluShape::Shl(a, b, s) => Op::Shl {
            rd: r(a),
            rs1: r(b),
            shamt: s,
        },
        AluShape::Shr(a, b, s) => Op::Shr {
            rd: r(a),
            rs1: r(b),
            shamt: s,
        },
        AluShape::AddImm(a, b, i) => Op::AddImm {
            rd: r(a),
            rs1: r(b),
            imm: i,
        },
        AluShape::LoadImm(a, i) => Op::LoadImm { rd: r(a), imm: i },
        AluShape::Mul(a, b, c) => Op::Mul {
            rd: r(a),
            rs1: r(b),
            rs2: r(c),
        },
        AluShape::Div(a, b, c) => Op::Div {
            rd: r(a),
            rs1: r(b),
            rs2: r(c),
        },
    }
}

/// Independent interpretation of the same semantics.
fn reference(shapes: &[AluShape]) -> [i64; 32] {
    let mut regs = [0i64; 32];
    fn write(regs: &mut [i64; 32], rd: u8, v: i64) {
        if rd != 0 {
            regs[rd as usize] = v;
        }
    }
    for &s in shapes {
        match s {
            AluShape::Add(a, b, c) => {
                let v = regs[b as usize].wrapping_add(regs[c as usize]);
                write(&mut regs, a, v)
            }
            AluShape::Sub(a, b, c) => {
                let v = regs[b as usize].wrapping_sub(regs[c as usize]);
                write(&mut regs, a, v)
            }
            AluShape::And(a, b, c) => {
                let v = regs[b as usize] & regs[c as usize];
                write(&mut regs, a, v)
            }
            AluShape::Or(a, b, c) => {
                let v = regs[b as usize] | regs[c as usize];
                write(&mut regs, a, v)
            }
            AluShape::Xor(a, b, c) => {
                let v = regs[b as usize] ^ regs[c as usize];
                write(&mut regs, a, v)
            }
            AluShape::Shl(a, b, s) => {
                let v = (regs[b as usize] as u64).wrapping_shl(s as u32) as i64;
                write(&mut regs, a, v)
            }
            AluShape::Shr(a, b, s) => {
                let v = ((regs[b as usize] as u64) >> s as u32) as i64;
                write(&mut regs, a, v)
            }
            AluShape::AddImm(a, b, i) => {
                let v = regs[b as usize].wrapping_add(i as i64);
                write(&mut regs, a, v)
            }
            AluShape::LoadImm(a, i) => {
                let v = i as i64;
                write(&mut regs, a, v)
            }
            AluShape::Mul(a, b, c) => {
                let v = regs[b as usize].wrapping_mul(regs[c as usize]);
                write(&mut regs, a, v)
            }
            AluShape::Div(a, b, c) => {
                let d = regs[c as usize];
                let v = if d == 0 {
                    0
                } else {
                    regs[b as usize].wrapping_div(d)
                };
                write(&mut regs, a, v)
            }
        }
    }
    regs
}

proptest! {
    #[test]
    fn alu_semantics_match_reference(shapes in shapes()) {
        // Build: shapes…; store r1..r15 to memory via addresses?
        // Simpler: execute and compare through load addresses — the
        // executor reveals register values via load/store effective
        // addresses. We store each register's value as an address.
        let mut b = ProgramBuilder::new();
        for &s in &shapes {
            b.push(to_op(s));
        }
        // Reveal r0..r15 through store effective addresses
        // (mem_addr = value & footprint mask).
        for i in 0..16u8 {
            b.push(Op::Store { src: Reg::ZERO, base: Reg::new(i), offset: 0 });
        }
        b.push(Op::Halt);
        let p = b.build().expect("valid straight-line program");
        let expected = reference(&shapes);

        let mut ex = Executor::new(&p);
        for _ in 0..shapes.len() {
            ex.next();
        }
        const MASK: u64 = (1 << 20) - 1; // executor's data footprint
        for (i, &want) in expected.iter().take(16).enumerate() {
            let d = ex.next().expect("store");
            prop_assert_eq!(
                d.mem_addr,
                Some((want as u64) & MASK),
                "register r{} value mismatch", i
            );
        }
    }
}
