//! Property tests over the trace builder: the selection rules hold
//! for arbitrary instruction/outcome sequences.
#![cfg(feature = "proptest-tests")]

use proptest::prelude::*;
use tpc_core::{PushResult, Resolution, TraceBuilder, TraceStop, ALIGN_QUANTUM, MAX_TRACE_LEN};
use tpc_isa::{Addr, BranchCond, Op, OpClass, Reg};

/// A generator-friendly instruction menu: index-shaped ops placed at
/// sequential addresses, with branch direction/backwardness encoded.
#[derive(Debug, Clone, Copy)]
enum Shape {
    Alu,
    Load,
    Store,
    FwdBranch { taken: bool },
    BackBranch { taken: bool },
    Jump,
    Call,
    Return,
    Indirect,
}

fn shapes() -> impl Strategy<Value = Vec<Shape>> {
    prop::collection::vec(
        prop_oneof![
            4 => Just(Shape::Alu),
            2 => Just(Shape::Load),
            1 => Just(Shape::Store),
            2 => any::<bool>().prop_map(|taken| Shape::FwdBranch { taken }),
            2 => any::<bool>().prop_map(|taken| Shape::BackBranch { taken }),
            1 => Just(Shape::Jump),
            1 => Just(Shape::Call),
            1 => Just(Shape::Return),
            1 => Just(Shape::Indirect),
        ],
        1..40,
    )
}

fn r(i: u8) -> Reg {
    Reg::new(i)
}

proptest! {
    #[test]
    fn builder_invariants(shapes in shapes()) {
        let start = Addr::new(1000);
        let mut b = TraceBuilder::new(start);
        let mut pc = start;
        let mut pushed = 0usize;
        let mut branch_outcomes: Vec<bool> = Vec::new();
        let mut last_backward: Option<usize> = None;

        let mut completed = None;
        for shape in &shapes {
            let (op, resolution) = match *shape {
                Shape::Alu => (Op::AddImm { rd: r(1), rs1: r(2), imm: 1 }, Resolution::None),
                Shape::Load => (Op::Load { rd: r(1), base: r(2), offset: 0 }, Resolution::None),
                Shape::Store => (Op::Store { src: r(1), base: r(2), offset: 0 }, Resolution::None),
                Shape::FwdBranch { taken } => {
                    let target = pc + 10;
                    let next = if taken { target } else { pc.next() };
                    (
                        Op::Branch { cond: BranchCond::Ne, rs1: r(1), rs2: r(2), target },
                        Resolution::Branch { taken, next_pc: next },
                    )
                }
                Shape::BackBranch { taken } => {
                    let target = Addr::new(pc.word().saturating_sub(5));
                    let next = if taken { target } else { pc.next() };
                    (
                        Op::Branch { cond: BranchCond::Ne, rs1: r(1), rs2: r(2), target },
                        Resolution::Branch { taken, next_pc: next },
                    )
                }
                Shape::Jump => (Op::Jump { target: pc + 7 }, Resolution::None),
                Shape::Call => (Op::Call { target: pc + 9 }, Resolution::None),
                Shape::Return => (Op::Return, Resolution::Target(pc + 3)),
                Shape::Indirect => (Op::IndirectJump { rs1: r(4) }, Resolution::None),
            };
            if matches!(op.class(), OpClass::Branch) {
                if let Resolution::Branch { taken, .. } = resolution {
                    branch_outcomes.push(taken);
                }
                if op.is_backward_branch(pc) {
                    last_backward = Some(pushed);
                }
            }
            match b.push(pc, op, resolution) {
                PushResult::Continue(next) => {
                    pushed += 1;
                    pc = next;
                }
                PushResult::Complete(t) => {
                    pushed += 1;
                    completed = Some(t);
                    break;
                }
            }
        }

        if let Some(t) = completed {
            // Length and identity invariants.
            prop_assert!(!t.is_empty() && t.len() <= MAX_TRACE_LEN);
            prop_assert_eq!(t.len(), pushed);
            prop_assert_eq!(t.start(), start);
            prop_assert_eq!(t.key().branch_count as usize, branch_outcomes.len());
            for (i, &taken) in branch_outcomes.iter().enumerate() {
                prop_assert_eq!(t.branch_outcome(i as u8), Some(taken));
            }
            // Stop-rule post-conditions.
            match t.stop() {
                TraceStop::Full => prop_assert_eq!(t.len(), MAX_TRACE_LEN),
                TraceStop::Return => prop_assert_eq!(
                    t.instrs().last().expect("non-empty").op.class(),
                    OpClass::Return
                ),
                TraceStop::IndirectJump => prop_assert_eq!(
                    t.instrs().last().expect("non-empty").op.class(),
                    OpClass::IndirectJump
                ),
                TraceStop::Halt => {}
                TraceStop::Alignment => {
                    let p = last_backward.expect("alignment needs a backward branch");
                    let past = t.len() - 1 - p;
                    prop_assert!(past > 0 && past.is_multiple_of(ALIGN_QUANTUM),
                        "ends a positive multiple of {} past the backward branch, got {}",
                        ALIGN_QUANTUM, past);
                }
            }
            // Alignment bound: never more than ALIGN_QUANTUM
            // instructions past the most recent backward branch.
            if let Some(p) = last_backward {
                if p < t.len() - 1 {
                    prop_assert!(t.len() - 1 - p <= ALIGN_QUANTUM);
                }
            }
        } else {
            // No completion: the builder must still be within bounds.
            prop_assert!(pushed < MAX_TRACE_LEN);
        }
    }
}
