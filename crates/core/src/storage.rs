//! Trace storage: the split trace-cache/preconstruction-buffer pair
//! the paper evaluates, and the dynamically partitioned alternative
//! it suggests as future work.
//!
//! Paper Section 5.1: "either a compromise has to be made, or a
//! design that dynamically allocates space for the preconstruction
//! buffer may need to be used. We do not investigate dynamically
//! partitioning space between the trace cache and preconstruction
//! buffer, but this could likely be done." [`UnifiedStore`] is that
//! design: one 4-way set-associative array whose ways are assigned a
//! role — trace-cache or preconstruction — per set-independent
//! partition, re-balanced at epoch boundaries from hit/miss feedback.
//! No flush is needed on re-partition because indexing never changes;
//! only fill placement does.

use crate::precon_buffer::PreconBuffers;
use crate::preprocess::PreprocessInfo;
use crate::slots::{probe_or_free, ProbeSlot};
use crate::trace::Trace;
use crate::trace_cache::TraceCache;
use std::sync::Arc;
use tpc_predict::TraceKey;

/// Outcome of a processor-side fetch probe.
#[derive(Debug, Clone)]
pub struct StoreFetch {
    /// Whether the trace was found at all.
    pub hit: bool,
    /// Whether it was found on the preconstruction side (and has now
    /// been promoted into the trace-cache side).
    pub from_precon: bool,
    /// Preprocessing annotations carried by the stored trace (shared
    /// with it — handing them to the fetched instance is a refcount
    /// bump).
    pub preprocess: Option<Arc<PreprocessInfo>>,
}

impl StoreFetch {
    const MISS: StoreFetch = StoreFetch {
        hit: false,
        from_precon: false,
        preprocess: None,
    };
}

/// Aggregate counters every store keeps.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreCounters {
    /// Processor-side fetch probes.
    pub fetches: u64,
    /// Probes satisfied by the trace-cache side.
    pub tc_hits: u64,
    /// Probes satisfied by the preconstruction side.
    pub precon_hits: u64,
    /// Probes that missed everywhere.
    pub misses: u64,
    /// Preconstruction fills accepted.
    pub precon_fills: u64,
    /// Preconstruction fills rejected (replacement policy).
    pub precon_rejected: u64,
}

/// Storage for traces: the trace cache plus wherever preconstructed
/// traces wait. The processor fetches through [`TraceStore::fetch`];
/// the fill unit inserts through [`TraceStore::fill_demand`]; the
/// preconstruction engine checks duplicates with
/// [`TraceStore::contains_cached`] and inserts through
/// [`TraceStore::fill_precon`].
pub trait TraceStore: std::fmt::Debug {
    /// Processor fetch: probes the trace-cache and preconstruction
    /// sides in parallel; a preconstruction hit is promoted to the
    /// trace-cache side (paper Section 3.1).
    fn fetch(&mut self, key: TraceKey) -> StoreFetch;

    /// Whether the trace-cache side already holds this trace (the
    /// engine's pre-fill duplicate check; no state change).
    fn contains_cached(&self, key: TraceKey) -> bool;

    /// Fill from the processor's fill unit (slow-path build).
    fn fill_demand(&mut self, trace: Trace);

    /// Fill from the preconstruction engine. Returns `false` when the
    /// replacement policy rejects the fill — the per-region resource
    /// bound that terminates region exploration.
    fn fill_precon(&mut self, trace: Trace, region: u64) -> bool;

    /// Aggregate counters.
    fn counters(&self) -> StoreCounters;

    /// Total entries (both roles).
    fn capacity(&self) -> u32;

    /// Entries currently assigned to the preconstruction role (for
    /// the adaptive store this varies over time).
    fn precon_capacity(&self) -> u32;

    /// Resets counters (not contents).
    fn reset_counters(&mut self);

    /// Checks the store's structural invariants (occupancy within
    /// capacity, counter conservation). Called by the differential
    /// oracle after every simulation chunk.
    fn check_invariants(&self) -> Result<(), String>;

    /// Fault-injection hook: invalidates one pending preconstructed
    /// entry, chosen by `salt`. Returns whether an entry was dropped.
    /// Stores without a preconstruction side are fault-transparent.
    fn fault_invalidate_precon(&mut self, _salt: u64) -> bool {
        false
    }

    /// Fault-injection hook: corrupts one pending preconstructed
    /// entry's region tag (detected corruption: the entry loses its
    /// replacement priority). Returns whether a tag changed.
    fn fault_corrupt_precon(&mut self, _salt: u64) -> bool {
        false
    }
}

// ---------------------------------------------------------------------------
// Split store: the paper's evaluated organization.
// ---------------------------------------------------------------------------

/// The paper's organization: a 2-way trace cache and a separate 2-way
/// preconstruction buffer, probed in parallel; buffer hits are copied
/// into the trace cache and invalidated in the buffer.
#[derive(Debug)]
pub struct SplitStore {
    tc: TraceCache,
    pb: PreconBuffers,
    counters: StoreCounters,
}

impl SplitStore {
    /// Creates a split store with `tc_entries` + `pb_entries`
    /// (0 disables the preconstruction side).
    ///
    /// # Panics
    ///
    /// Panics if a non-zero size is not an even power of two.
    pub fn new(tc_entries: u32, pb_entries: u32) -> Self {
        SplitStore {
            tc: TraceCache::new(tc_entries),
            pb: PreconBuffers::new(pb_entries),
            counters: StoreCounters::default(),
        }
    }

    /// The trace-cache half (stats, occupancy).
    pub fn trace_cache(&self) -> &TraceCache {
        &self.tc
    }

    /// The preconstruction-buffer half.
    pub fn buffers(&self) -> &PreconBuffers {
        &self.pb
    }
}

impl TraceStore for SplitStore {
    fn fetch(&mut self, key: TraceKey) -> StoreFetch {
        self.counters.fetches += 1;
        if let Some(t) = self.tc.lookup(key) {
            self.counters.tc_hits += 1;
            return StoreFetch {
                hit: true,
                from_precon: false,
                preprocess: t.preprocess_shared(),
            };
        }
        if let Some(t) = self.pb.take(key) {
            self.counters.precon_hits += 1;
            let preprocess = t.preprocess_shared();
            self.tc.fill(t);
            return StoreFetch {
                hit: true,
                from_precon: true,
                preprocess,
            };
        }
        self.counters.misses += 1;
        StoreFetch::MISS
    }

    fn contains_cached(&self, key: TraceKey) -> bool {
        self.tc.contains(key)
    }

    fn fill_demand(&mut self, trace: Trace) {
        self.tc.fill(trace);
    }

    fn fill_precon(&mut self, trace: Trace, region: u64) -> bool {
        let ok = self.pb.fill(trace, region);
        if ok {
            self.counters.precon_fills += 1;
        } else {
            self.counters.precon_rejected += 1;
        }
        ok
    }

    fn counters(&self) -> StoreCounters {
        self.counters
    }

    fn capacity(&self) -> u32 {
        self.tc.capacity() + self.pb.capacity()
    }

    fn precon_capacity(&self) -> u32 {
        self.pb.capacity()
    }

    fn reset_counters(&mut self) {
        self.counters = StoreCounters::default();
        self.tc.reset_stats();
        self.pb.reset_stats();
    }

    fn check_invariants(&self) -> Result<(), String> {
        let c = self.counters;
        if c.fetches != c.tc_hits + c.precon_hits + c.misses {
            return Err(format!(
                "store counters do not conserve: {} fetches != {} + {} + {}",
                c.fetches, c.tc_hits, c.precon_hits, c.misses
            ));
        }
        if self.tc.occupancy() > self.tc.capacity() as usize {
            return Err(format!(
                "trace cache occupancy {} exceeds capacity {}",
                self.tc.occupancy(),
                self.tc.capacity()
            ));
        }
        self.pb.check_invariants()
    }

    fn fault_invalidate_precon(&mut self, salt: u64) -> bool {
        self.pb.fault_invalidate_one(salt)
    }

    fn fault_corrupt_precon(&mut self, salt: u64) -> bool {
        self.pb.fault_corrupt_region_tag(salt)
    }
}

// ---------------------------------------------------------------------------
// Unified store: dynamic partitioning.
// ---------------------------------------------------------------------------

/// Configuration for [`UnifiedStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnifiedConfig {
    /// Total entries (4-way set-associative; must be a multiple of 4
    /// with a power-of-two set count).
    pub entries: u32,
    /// Ways (of 4) initially assigned to the preconstruction role.
    pub initial_pb_ways: u8,
    /// Re-evaluate the partition every this many fetches (0 = fixed
    /// partition).
    pub epoch_fetches: u64,
}

impl Default for UnifiedConfig {
    fn default() -> Self {
        UnifiedConfig {
            entries: 512,
            initial_pb_ways: 1,
            epoch_fetches: 4096,
        }
    }
}

#[derive(Debug, Clone)]
struct UnifiedSlot {
    trace: Trace,
    /// `Some(region)` while the entry holds a not-yet-used
    /// preconstructed trace; `None` once it is demand content.
    region: Option<u64>,
    stamp: u64,
}

/// One 4-way array holding both roles, with per-way role assignment
/// re-balanced at epoch boundaries.
///
/// * ways `0 .. 4-pb_ways` accept demand fills (LRU replacement);
/// * ways `4-pb_ways .. 4` accept preconstruction fills
///   (region-priority replacement, as in [`PreconBuffers`]);
/// * *all* ways are probed on fetch; a hit on a preconstruction
///   entry clears its region tag (promotion without copying — the
///   advantage of the unified organization);
/// * every `epoch_fetches` fetches the controller compares how much
///   supply the preconstruction ways produced against the miss rate
///   and moves one way between roles (between 0 and 2 of the 4).
#[derive(Debug)]
pub struct UnifiedStore {
    config: UnifiedConfig,
    sets: u32,
    slots: Vec<Option<UnifiedSlot>>,
    pb_ways: u8,
    clock: u64,
    counters: StoreCounters,
    epoch_fetches: u64,
    epoch_precon_hits: u64,
    epoch_misses: u64,
    /// (epoch index, pb_ways after adaptation) history for tests and
    /// diagnostics.
    adaptations: Vec<(u64, u8)>,
    epoch_index: u64,
}

const UNIFIED_WAYS: usize = 4;

impl UnifiedStore {
    /// Creates a unified store.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a multiple of 4 with a power-of-two
    /// set count, or `initial_pb_ways > 2`.
    pub fn new(config: UnifiedConfig) -> Self {
        assert!(
            config.entries.is_multiple_of(4),
            "entries must be a multiple of 4"
        );
        let sets = config.entries / 4;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        assert!(
            config.initial_pb_ways <= 2,
            "at most half the ways for preconstruction"
        );
        UnifiedStore {
            sets,
            slots: vec![None; config.entries as usize],
            pb_ways: config.initial_pb_ways,
            clock: 0,
            counters: StoreCounters::default(),
            epoch_fetches: 0,
            epoch_precon_hits: 0,
            epoch_misses: 0,
            adaptations: Vec::new(),
            epoch_index: 0,
            config,
        }
    }

    /// Ways currently assigned to the preconstruction role.
    pub fn pb_ways(&self) -> u8 {
        self.pb_ways
    }

    /// The adaptation history: (epoch index, pb_ways chosen).
    pub fn adaptations(&self) -> &[(u64, u8)] {
        &self.adaptations
    }

    fn set_range(&self, key: TraceKey) -> std::ops::Range<usize> {
        let set = (key.hash64() & (self.sets as u64 - 1)) as usize;
        set * UNIFIED_WAYS..(set + 1) * UNIFIED_WAYS
    }

    fn maybe_adapt(&mut self) {
        if self.config.epoch_fetches == 0 {
            return;
        }
        self.epoch_fetches += 1;
        if self.epoch_fetches < self.config.epoch_fetches {
            return;
        }
        // Controller: preconstruction supply that materially offsets
        // misses earns capacity; idle preconstruction ways return to
        // the trace cache.
        let hits = self.epoch_precon_hits;
        let misses = self.epoch_misses;
        if hits * 2 > misses && self.pb_ways < 2 {
            self.pb_ways += 1;
        } else if hits * 8 < misses && self.pb_ways > 0 {
            self.pb_ways -= 1;
        }
        self.epoch_index += 1;
        self.adaptations.push((self.epoch_index, self.pb_ways));
        self.epoch_fetches = 0;
        self.epoch_precon_hits = 0;
        self.epoch_misses = 0;
    }
}

impl TraceStore for UnifiedStore {
    fn fetch(&mut self, key: TraceKey) -> StoreFetch {
        self.counters.fetches += 1;
        self.clock += 1;
        let clock = self.clock;
        let range = self.set_range(key);
        let mut result = StoreFetch::MISS;
        for s in self.slots[range].iter_mut().flatten() {
            if s.trace.key() == key {
                s.stamp = clock;
                let from_precon = s.region.take().is_some();
                result = StoreFetch {
                    hit: true,
                    from_precon,
                    preprocess: s.trace.preprocess_shared(),
                };
                break;
            }
        }
        if result.hit {
            if result.from_precon {
                self.counters.precon_hits += 1;
                self.epoch_precon_hits += 1;
            } else {
                self.counters.tc_hits += 1;
            }
        } else {
            self.counters.misses += 1;
            self.epoch_misses += 1;
        }
        self.maybe_adapt();
        result
    }

    fn contains_cached(&self, key: TraceKey) -> bool {
        // Only *used* (demand) content counts as cached: a pending
        // preconstructed entry may still be replaced, so the engine
        // treats it as its own responsibility.
        let range = self.set_range(key);
        self.slots[range]
            .iter()
            .flatten()
            .any(|s| s.trace.key() == key && s.region.is_none())
    }

    fn fill_demand(&mut self, trace: Trace) {
        self.clock += 1;
        let clock = self.clock;
        let key = trace.key();
        let range = self.set_range(key);
        let tc_ways = UNIFIED_WAYS - self.pb_ways as usize;
        let slots = &mut self.slots[range];
        // One pass: refresh the same identity anywhere in the set, or
        // claim a free demand way.
        match probe_or_free(slots, 0..tc_ways, |s: &UnifiedSlot| s.trace.key() == key) {
            ProbeSlot::Match(i) | ProbeSlot::Free(i) => {
                slots[i] = Some(UnifiedSlot {
                    trace,
                    region: None,
                    stamp: clock,
                });
            }
            ProbeSlot::Evict => {
                // LRU among the demand ways.
                let victim = slots[..tc_ways]
                    .iter_mut()
                    .min_by_key(|s| s.as_ref().map(|s| s.stamp).unwrap_or(0))
                    .expect("tc_ways >= 2");
                *victim = Some(UnifiedSlot {
                    trace,
                    region: None,
                    stamp: clock,
                });
            }
        }
    }

    fn fill_precon(&mut self, trace: Trace, region: u64) -> bool {
        if self.pb_ways == 0 {
            self.counters.precon_rejected += 1;
            return false;
        }
        self.clock += 1;
        let clock = self.clock;
        let key = trace.key();
        let range = self.set_range(key);
        let tc_ways = UNIFIED_WAYS - self.pb_ways as usize;
        let slots = &mut self.slots[range];
        // One pass: refresh the same identity anywhere in the set, or
        // claim a free preconstruction way.
        match probe_or_free(slots, tc_ways..UNIFIED_WAYS, |s: &UnifiedSlot| {
            s.trace.key() == key
        }) {
            ProbeSlot::Match(i) | ProbeSlot::Free(i) => {
                slots[i] = Some(UnifiedSlot {
                    trace,
                    region: Some(region),
                    stamp: clock,
                });
                self.counters.precon_fills += 1;
                return true;
            }
            ProbeSlot::Evict => {}
        }
        // Region-priority replacement (used demand entries that ended
        // up in a PB way after a repartition count as oldest).
        let victim = slots[tc_ways..]
            .iter_mut()
            .min_by_key(|s| s.as_ref().and_then(|s| s.region).unwrap_or(0))
            .expect("pb_ways >= 1");
        let victim_region = victim.as_ref().and_then(|s| s.region).unwrap_or(0);
        if victim_region < region {
            *victim = Some(UnifiedSlot {
                trace,
                region: Some(region),
                stamp: clock,
            });
            self.counters.precon_fills += 1;
            true
        } else {
            self.counters.precon_rejected += 1;
            false
        }
    }

    fn counters(&self) -> StoreCounters {
        self.counters
    }

    fn capacity(&self) -> u32 {
        self.config.entries
    }

    fn precon_capacity(&self) -> u32 {
        self.sets * self.pb_ways as u32
    }

    fn reset_counters(&mut self) {
        self.counters = StoreCounters::default();
    }

    fn check_invariants(&self) -> Result<(), String> {
        let c = self.counters;
        if c.fetches != c.tc_hits + c.precon_hits + c.misses {
            return Err(format!(
                "unified counters do not conserve: {} fetches != {} + {} + {}",
                c.fetches, c.tc_hits, c.precon_hits, c.misses
            ));
        }
        if self.slots.len() != self.config.entries as usize {
            return Err(format!(
                "unified store holds {} slots, configured for {}",
                self.slots.len(),
                self.config.entries
            ));
        }
        // Region tags can outlive a repartition (a pending precon
        // entry stranded in a demand way), so the pending-entry bound
        // is the total capacity, not the current precon partition.
        let pending = self
            .slots
            .iter()
            .flatten()
            .filter(|s| s.region.is_some())
            .count();
        if pending > self.config.entries as usize {
            return Err(format!(
                "{} pending preconstructed entries exceed capacity {}",
                pending, self.config.entries
            ));
        }
        if self.pb_ways as usize > UNIFIED_WAYS {
            return Err(format!("pb_ways {} exceeds associativity", self.pb_ways));
        }
        Ok(())
    }

    fn fault_invalidate_precon(&mut self, salt: u64) -> bool {
        let pending: Vec<usize> = (0..self.slots.len())
            .filter(|&i| self.slots[i].as_ref().is_some_and(|s| s.region.is_some()))
            .collect();
        if pending.is_empty() {
            return false;
        }
        let victim = pending[(salt % pending.len() as u64) as usize];
        self.slots[victim] = None;
        true
    }

    fn fault_corrupt_precon(&mut self, salt: u64) -> bool {
        let pending: Vec<usize> = (0..self.slots.len())
            .filter(|&i| self.slots[i].as_ref().is_some_and(|s| s.region.is_some()))
            .collect();
        if pending.is_empty() {
            return false;
        }
        let victim = pending[(salt % pending.len() as u64) as usize];
        let slot = self.slots[victim].as_mut().expect("pending index");
        let changed = slot.region != Some(0);
        slot.region = Some(0);
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{PushResult, Resolution, TraceBuilder};
    use tpc_isa::{Addr, Op};

    fn mk_trace(start: u32) -> Trace {
        let mut b = TraceBuilder::new(Addr::new(start));
        match b.push(Addr::new(start), Op::Return, Resolution::None) {
            PushResult::Complete(t) => t,
            other => panic!("{other:?}"),
        }
    }

    // ---- SplitStore -----------------------------------------------

    #[test]
    fn split_fetch_miss_then_demand_fill_hits() {
        let mut s = SplitStore::new(64, 32);
        let t = mk_trace(0);
        let key = t.key();
        assert!(!s.fetch(key).hit);
        s.fill_demand(t);
        let f = s.fetch(key);
        assert!(f.hit && !f.from_precon);
        assert_eq!(s.counters().tc_hits, 1);
    }

    #[test]
    fn split_precon_hit_promotes_into_trace_cache() {
        let mut s = SplitStore::new(64, 32);
        let t = mk_trace(16);
        let key = t.key();
        assert!(s.fill_precon(t, 1));
        let f = s.fetch(key);
        assert!(f.hit && f.from_precon);
        // Now resident on the TC side; second fetch is a TC hit.
        let f2 = s.fetch(key);
        assert!(f2.hit && !f2.from_precon);
        assert!(s.contains_cached(key));
    }

    #[test]
    fn split_zero_pb_rejects_precon_fills() {
        let mut s = SplitStore::new(64, 0);
        assert!(!s.fill_precon(mk_trace(0), 1));
        assert_eq!(s.precon_capacity(), 0);
        assert_eq!(s.counters().precon_rejected, 1);
    }

    #[test]
    fn split_counters_conserve() {
        let mut s = SplitStore::new(64, 32);
        let t = mk_trace(0);
        let key = t.key();
        s.fetch(key);
        s.fill_demand(t);
        s.fetch(key);
        let c = s.counters();
        assert_eq!(c.fetches, c.tc_hits + c.precon_hits + c.misses);
    }

    // ---- UnifiedStore ---------------------------------------------

    fn unified(entries: u32, pb_ways: u8, epoch: u64) -> UnifiedStore {
        UnifiedStore::new(UnifiedConfig {
            entries,
            initial_pb_ways: pb_ways,
            epoch_fetches: epoch,
        })
    }

    #[test]
    fn unified_demand_roundtrip() {
        let mut s = unified(64, 1, 0);
        let t = mk_trace(0);
        let key = t.key();
        assert!(!s.fetch(key).hit);
        s.fill_demand(t);
        let f = s.fetch(key);
        assert!(f.hit && !f.from_precon);
    }

    #[test]
    fn unified_precon_hit_promotes_in_place() {
        let mut s = unified(64, 1, 0);
        let t = mk_trace(0);
        let key = t.key();
        assert!(s.fill_precon(t, 3));
        assert!(
            !s.contains_cached(key),
            "pending precon entries are not 'cached'"
        );
        let f = s.fetch(key);
        assert!(f.hit && f.from_precon);
        assert!(s.contains_cached(key), "promoted in place");
        let f2 = s.fetch(key);
        assert!(f2.hit && !f2.from_precon);
    }

    #[test]
    fn unified_zero_pb_ways_rejects() {
        let mut s = unified(64, 0, 0);
        assert!(!s.fill_precon(mk_trace(0), 1));
        assert_eq!(s.precon_capacity(), 0);
    }

    #[test]
    fn unified_region_priority_in_pb_ways() {
        // 4 entries = 1 set; 1 pb way. Region 5 occupies it; region 4
        // must be rejected, region 6 must displace.
        let mut s = unified(4, 1, 0);
        assert!(s.fill_precon(mk_trace(0), 5));
        assert!(!s.fill_precon(mk_trace(16), 4));
        assert!(s.fill_precon(mk_trace(32), 6));
    }

    #[test]
    fn unified_demand_fills_stay_out_of_pb_ways() {
        // 1 set, 2 pb ways → 2 demand ways. Three demand fills must
        // not evict the pending preconstructed trace.
        let mut s = unified(4, 2, 0);
        let pre = mk_trace(0);
        let pre_key = pre.key();
        assert!(s.fill_precon(pre, 1));
        for i in 1..=3 {
            s.fill_demand(mk_trace(i * 16));
        }
        assert!(
            s.fetch(pre_key).hit,
            "precon entry survived demand pressure"
        );
    }

    #[test]
    fn unified_adapts_pb_ways_up_under_useful_precon() {
        let mut s = unified(64, 1, 16);
        // Produce an epoch where precon hits dominate misses.
        for i in 0..16u32 {
            let t = mk_trace(i * 16);
            let key = t.key();
            assert!(s.fill_precon(t, i as u64 + 1));
            s.fetch(key);
        }
        assert_eq!(s.pb_ways(), 2, "controller grew the precon partition");
        assert!(!s.adaptations().is_empty());
    }

    #[test]
    fn unified_adapts_pb_ways_down_when_idle() {
        let mut s = unified(64, 1, 16);
        // An epoch of pure misses: preconstruction contributes nothing.
        for i in 0..16u32 {
            s.fetch(mk_trace(i * 16).key());
        }
        assert_eq!(s.pb_ways(), 0, "controller reclaimed the precon way");
    }

    #[test]
    fn unified_fixed_partition_with_zero_epoch() {
        let mut s = unified(64, 1, 0);
        for i in 0..100u32 {
            s.fetch(mk_trace(i * 16).key());
        }
        assert_eq!(s.pb_ways(), 1, "no adaptation when epoch = 0");
    }

    #[test]
    #[should_panic(expected = "multiple of 4")]
    fn unified_bad_geometry_rejected() {
        let _ = unified(62, 1, 0);
    }
}
