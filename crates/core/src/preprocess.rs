//! Trace preprocessing (paper Section 6, mechanism 2).
//!
//! The trace cache decouples a *preprocessing pipeline* from the
//! processor core: traces can be rewritten at fill time into
//! functionally equivalent but faster-executing forms. Three
//! optimizations from Friendly/Patel/Patt (MICRO 1998) and
//! Jacobson/Smith (HPCA 1999) are modelled:
//!
//! 1. **Constant propagation** — immediates flow through the trace;
//!    an instruction whose inputs are all known at fill time needs no
//!    operands at runtime (its result is pre-computed), removing its
//!    input dependences.
//! 2. **Combined shift-add ALU** — the paper's new ALU "adds two
//!    register operands, each of which can be shifted left by a small
//!    immediate amount, and a third immediate operand". A simple ALU
//!    consumer is *collapsed* with its simple producer: it executes
//!    in one cycle using the producer's sources directly, removing
//!    one level of serialization.
//! 3. **Instruction scheduling** — a list schedule over the
//!    (post-transformation) dependence graph provides the issue
//!    priority used by the 2-wide processing elements.
//!
//! The result is a [`PreprocessInfo`] attached to the trace; the
//! backend timing model consumes its dependence lists and schedule.
//! Trace *semantics* are untouched — only dependence structure and
//! issue order change, which is exactly the paper's claim that
//! "instructions within a trace need not be identical to the static
//! program, just functionally equivalent".

use crate::trace::Trace;
use tpc_isa::Op;
#[cfg(test)]
use tpc_isa::OpClass;

/// R10000-like execution latencies, shared by the backend timing
/// model and the preprocessing scheduler.
pub mod latency {
    use tpc_isa::OpClass;

    /// Execution latency of an operation class, in cycles.
    pub fn op_latency(class: OpClass) -> u32 {
        match class {
            OpClass::IntAlu => 1,
            OpClass::IntMul => 3,
            OpClass::IntDiv => 20,
            // Address generation; the cache adds its hit/miss latency.
            OpClass::Load => 1,
            OpClass::Store => 1,
            OpClass::Branch
            | OpClass::Jump
            | OpClass::Call
            | OpClass::Return
            | OpClass::IndirectJump
            | OpClass::Halt
            | OpClass::Nop => 1,
        }
    }
}

/// Fill-time rewrite annotations for one trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PreprocessInfo {
    /// Post-transformation intra-trace dependences: `deps[i]` lists
    /// the trace indices instruction `i` must wait for.
    pub deps: Vec<Vec<u8>>,
    /// `true` for instructions whose result was computed at fill
    /// time (constant propagation): they have no input dependences.
    pub const_folded: Vec<bool>,
    /// `collapsed_into[i] = Some(j)` when instruction `i` executes on
    /// the combined ALU fused with its producer `j` (so `i` depends
    /// on `j`'s inputs instead of on `j`).
    pub collapsed: Vec<Option<u8>>,
    /// Issue priority: instruction indices, highest priority first
    /// (critical-path list schedule).
    pub schedule: Vec<u8>,
}

impl PreprocessInfo {
    /// Number of instructions the info covers.
    pub fn len(&self) -> usize {
        self.deps.len()
    }

    /// Whether the info covers an empty trace (never for built traces).
    pub fn is_empty(&self) -> bool {
        self.deps.is_empty()
    }

    /// How many instructions were constant-folded.
    pub fn folded_count(&self) -> usize {
        self.const_folded.iter().filter(|&&f| f).count()
    }

    /// How many instructions were collapsed onto the combined ALU.
    pub fn collapsed_count(&self) -> usize {
        self.collapsed.iter().filter(|c| c.is_some()).count()
    }
}

/// Raw intra-trace register dependences, with no preprocessing:
/// `deps[i]` holds the index of the last earlier writer of each of
/// `i`'s source registers. (Memory dependences within a trace are
/// enforced by the ARB in the modelled machine and are not part of
/// the scheduling dependence graph, as in the paper.)
pub fn trace_deps(trace: &Trace) -> Vec<Vec<u8>> {
    let mut last_writer: [Option<u8>; tpc_isa::NUM_REGS] = [None; tpc_isa::NUM_REGS];
    let mut deps = Vec::with_capacity(trace.len());
    for (i, ti) in trace.instrs().iter().enumerate() {
        let mut d: Vec<u8> = Vec::new();
        for src in ti.op.sources().iter() {
            if let Some(w) = last_writer[src.index()] {
                if !d.contains(&w) {
                    d.push(w);
                }
            }
        }
        deps.push(d);
        if let Some(rd) = ti.op.dest() {
            last_writer[rd.index()] = Some(i as u8);
        }
    }
    deps
}

/// Whether an op is "simple" enough for the combined shift-add ALU
/// to replicate as the producer half of a collapsed pair.
fn is_simple_producer(op: &Op) -> bool {
    matches!(
        op,
        Op::Add { .. }
            | Op::Sub { .. }
            | Op::AddImm { .. }
            | Op::LoadImm { .. }
            | Op::Shl { shamt: 0..=3, .. }
    )
}

/// Whether an op can be the consumer half of a collapsed pair.
fn is_simple_consumer(op: &Op) -> bool {
    matches!(
        op,
        Op::Add { .. }
            | Op::Sub { .. }
            | Op::AddImm { .. }
            | Op::And { .. }
            | Op::Or { .. }
            | Op::Xor { .. }
    )
}

/// Runs the full preprocessing pipeline over a trace.
pub fn preprocess(trace: &Trace) -> PreprocessInfo {
    let n = trace.len();
    let instrs = trace.instrs();

    // ---- constant propagation ------------------------------------
    // Known-at-fill-time register values. A write by an instruction
    // with any unknown input kills the register.
    let mut known: [Option<i64>; tpc_isa::NUM_REGS] = [None; tpc_isa::NUM_REGS];
    let mut const_folded = vec![false; n];
    for (i, ti) in instrs.iter().enumerate() {
        let op = &ti.op;
        let val = |r: tpc_isa::Reg| -> Option<i64> {
            if r.is_zero() {
                Some(0)
            } else {
                known[r.index()]
            }
        };
        let computed: Option<i64> = (|| match *op {
            Op::LoadImm { imm, .. } => Some(imm as i64),
            Op::Add { rs1, rs2, .. } => Some(val(rs1)?.wrapping_add(val(rs2)?)),
            Op::Sub { rs1, rs2, .. } => Some(val(rs1)?.wrapping_sub(val(rs2)?)),
            Op::And { rs1, rs2, .. } => Some(val(rs1)? & val(rs2)?),
            Op::Or { rs1, rs2, .. } => Some(val(rs1)? | val(rs2)?),
            Op::Xor { rs1, rs2, .. } => Some(val(rs1)? ^ val(rs2)?),
            Op::Shl { rs1, shamt, .. } => {
                Some((val(rs1)? as u64).wrapping_shl(shamt as u32) as i64)
            }
            Op::Shr { rs1, shamt, .. } => Some(((val(rs1)? as u64) >> shamt as u32) as i64),
            Op::AddImm { rs1, imm, .. } => Some(val(rs1)?.wrapping_add(imm as i64)),
            Op::Mul { rs1, rs2, .. } => Some(val(rs1)?.wrapping_mul(val(rs2)?)),
            // The call's return address is a fill-time constant.
            Op::Call { .. } => Some(ti.pc.next().word() as i64),
            _ => None,
        })();
        match (op.dest(), computed) {
            (Some(rd), Some(v)) => {
                known[rd.index()] = Some(v);
                // Pure immediates carry no dependences to begin with;
                // only count a fold when it removed real inputs.
                if !matches!(op, Op::LoadImm { .. }) {
                    const_folded[i] = true;
                }
            }
            (Some(rd), None) => known[rd.index()] = None,
            _ => {}
        }
    }

    // ---- dependence graph with folding applied --------------------
    let raw = trace_deps(trace);
    let mut deps: Vec<Vec<u8>> = raw
        .iter()
        .enumerate()
        .map(|(i, d)| {
            if const_folded[i] {
                Vec::new()
            } else {
                d.clone()
            }
        })
        .collect();

    // ---- combined-ALU collapsing ----------------------------------
    let mut collapsed = vec![None; n];
    for i in 0..n {
        if const_folded[i] || !is_simple_consumer(&instrs[i].op) {
            continue;
        }
        // Collapse with the producer on i's critical input if that
        // producer is simple and itself not collapsed or folded.
        let candidate = deps[i].iter().copied().find(|&j| {
            let j = j as usize;
            is_simple_producer(&instrs[j].op) && collapsed[j].is_none() && !const_folded[j]
        });
        if let Some(j) = candidate {
            collapsed[i] = Some(j);
            // i now waits on j's inputs, not on j.
            let mut nd: Vec<u8> = deps[i].iter().copied().filter(|&d| d != j).collect();
            for &jd in &deps[j as usize] {
                if !nd.contains(&jd) {
                    nd.push(jd);
                }
            }
            deps[i] = nd;
        }
    }

    // ---- list schedule --------------------------------------------
    // Priority = critical-path height over the final dependence
    // graph. Ties broken by program order (stable).
    let mut consumers: Vec<Vec<u8>> = vec![Vec::new(); n];
    for (i, d) in deps.iter().enumerate() {
        for &j in d {
            consumers[j as usize].push(i as u8);
        }
    }
    let mut height = vec![0u32; n];
    for i in (0..n).rev() {
        let lat = latency::op_latency(instrs[i].op.class());
        let tail = consumers[i]
            .iter()
            .map(|&c| height[c as usize])
            .max()
            .unwrap_or(0);
        height[i] = lat + tail;
    }
    let mut schedule: Vec<u8> = (0..n as u8).collect();
    schedule.sort_by(|&a, &b| height[b as usize].cmp(&height[a as usize]).then(a.cmp(&b)));

    PreprocessInfo {
        deps,
        const_folded,
        collapsed,
        schedule,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{PushResult, Resolution, TraceBuilder};
    use tpc_isa::{Addr, Reg};

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }

    /// Builds a trace from a list of ops at sequential addresses
    /// starting at 0, terminated by `ret`.
    fn mk_trace(ops: &[Op]) -> Trace {
        let mut b = TraceBuilder::new(Addr::new(0));
        for (i, &op) in ops.iter().enumerate() {
            match b.push(Addr::new(i as u32), op, Resolution::None) {
                PushResult::Continue(_) => {}
                PushResult::Complete(t) => return t,
            }
        }
        match b.push(Addr::new(ops.len() as u32), Op::Return, Resolution::None) {
            PushResult::Complete(t) => t,
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn raw_deps_find_last_writer() {
        let t = mk_trace(&[
            Op::LoadImm { rd: r(1), imm: 5 }, // 0
            Op::AddImm {
                rd: r(1),
                rs1: r(1),
                imm: 1,
            }, // 1: dep 0
            Op::Add {
                rd: r(2),
                rs1: r(1),
                rs2: r(1),
            }, // 2: dep 1 (latest writer)
        ]);
        let deps = trace_deps(&t);
        assert_eq!(deps[0], Vec::<u8>::new());
        assert_eq!(deps[1], vec![0]);
        assert_eq!(deps[2], vec![1]);
    }

    #[test]
    fn constant_propagation_removes_dependences() {
        let t = mk_trace(&[
            Op::LoadImm { rd: r(1), imm: 5 },
            Op::AddImm {
                rd: r(2),
                rs1: r(1),
                imm: 3,
            }, // 5+3 known
            Op::Add {
                rd: r(3),
                rs1: r(2),
                rs2: r(1),
            }, // known too
        ]);
        let info = preprocess(&t);
        assert!(info.const_folded[1]);
        assert!(info.const_folded[2]);
        assert!(info.deps[1].is_empty());
        assert!(info.deps[2].is_empty());
        assert_eq!(info.folded_count(), 2);
    }

    #[test]
    fn load_breaks_constant_chain() {
        let t = mk_trace(&[
            Op::LoadImm {
                rd: r(1),
                imm: 0x40,
            },
            Op::Load {
                rd: r(2),
                base: r(1),
                offset: 0,
            }, // runtime value
            Op::AddImm {
                rd: r(3),
                rs1: r(2),
                imm: 1,
            }, // not foldable
        ]);
        let info = preprocess(&t);
        assert!(!info.const_folded[2]);
        assert_eq!(info.deps[2], vec![1]);
    }

    #[test]
    fn collapsing_fuses_dependent_alu_pair() {
        let t = mk_trace(&[
            Op::Load {
                rd: r(1),
                base: r(9),
                offset: 0,
            }, // 0: runtime
            Op::AddImm {
                rd: r(2),
                rs1: r(1),
                imm: 4,
            }, // 1: dep 0, simple producer
            Op::Add {
                rd: r(3),
                rs1: r(2),
                rs2: r(8),
            }, // 2: dep 1 → collapse with 1
        ]);
        let info = preprocess(&t);
        assert_eq!(info.collapsed[2], Some(1));
        // 2 now depends on 1's inputs (the load), not on 1.
        assert_eq!(info.deps[2], vec![0]);
        assert_eq!(info.collapsed_count(), 1);
    }

    #[test]
    fn collapsing_does_not_chain() {
        let t = mk_trace(&[
            Op::Load {
                rd: r(1),
                base: r(9),
                offset: 0,
            },
            Op::AddImm {
                rd: r(2),
                rs1: r(1),
                imm: 4,
            }, // 1 collapses? it's a consumer of a load (not simple producer) → no
            Op::AddImm {
                rd: r(3),
                rs1: r(2),
                imm: 4,
            }, // 2 collapses with 1
            Op::AddImm {
                rd: r(4),
                rs1: r(3),
                imm: 4,
            }, // 3 cannot collapse with 2 (2 already collapsed)
        ]);
        let info = preprocess(&t);
        assert_eq!(info.collapsed[1], None, "load is not a simple producer");
        assert_eq!(info.collapsed[2], Some(1));
        assert_eq!(info.collapsed[3], None, "no chained collapsing");
    }

    #[test]
    fn schedule_puts_critical_path_first() {
        let t = mk_trace(&[
            Op::Load {
                rd: r(1),
                base: r(9),
                offset: 0,
            }, // 0 feeds a chain
            Op::LoadImm { rd: r(5), imm: 1 }, // 1 independent
            Op::Mul {
                rd: r(2),
                rs1: r(1),
                rs2: r(1),
            }, // 2 long chain
            Op::Add {
                rd: r(3),
                rs1: r(2),
                rs2: r(2),
            }, // 3 chain end
        ]);
        let info = preprocess(&t);
        // Instruction 0 heads the longest chain → first in schedule.
        assert_eq!(info.schedule[0], 0);
        // The independent immediate load sits late.
        let pos_imm = info.schedule.iter().position(|&i| i == 1).unwrap();
        assert!(pos_imm >= 2);
    }

    #[test]
    fn schedule_is_a_permutation() {
        let t = mk_trace(&[
            Op::LoadImm { rd: r(1), imm: 5 },
            Op::Add {
                rd: r(2),
                rs1: r(1),
                rs2: r(1),
            },
            Op::Load {
                rd: r(3),
                base: r(2),
                offset: 0,
            },
        ]);
        let info = preprocess(&t);
        let mut s = info.schedule.clone();
        s.sort_unstable();
        let expect: Vec<u8> = (0..t.len() as u8).collect();
        assert_eq!(s, expect);
    }

    #[test]
    fn latencies_match_operation_classes() {
        use latency::op_latency;
        assert_eq!(op_latency(OpClass::IntAlu), 1);
        assert_eq!(op_latency(OpClass::IntMul), 3);
        assert!(op_latency(OpClass::IntDiv) > op_latency(OpClass::IntMul));
    }

    /// Builds a trace ending in a conditional branch (taken back to
    /// 0) followed by `ret`, so preprocessing sees real control flow.
    fn mk_trace_with_branch(ops: &[Op], branch: Op) -> Trace {
        let mut b = TraceBuilder::new(Addr::new(0));
        for (i, &op) in ops.iter().enumerate() {
            match b.push(Addr::new(i as u32), op, Resolution::None) {
                PushResult::Continue(_) => {}
                PushResult::Complete(t) => return t,
            }
        }
        match b.push(
            Addr::new(ops.len() as u32),
            branch,
            Resolution::Branch {
                taken: true,
                next_pc: Addr::new(0),
            },
        ) {
            PushResult::Continue(_) => {}
            PushResult::Complete(t) => return t,
        }
        match b.push(Addr::new(0), Op::Return, Resolution::None) {
            PushResult::Complete(t) => t,
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn branch_sources_create_dependences() {
        // A conditional branch consumes its comparison registers like
        // any other instruction; its dependence on the last writer is
        // what serializes resolution behind the compare.
        let t = mk_trace_with_branch(
            &[Op::Load {
                rd: r(1),
                base: r(9),
                offset: 0,
            }],
            Op::Branch {
                cond: tpc_isa::BranchCond::Ne,
                rs1: r(1),
                rs2: Reg::ZERO,
                target: Addr::new(0),
            },
        );
        let info = preprocess(&t);
        assert_eq!(info.deps[1], vec![0]);
    }

    #[test]
    fn control_ops_are_never_folded_or_collapsed() {
        // Preprocessing rewrites dependence structure only: control
        // instructions keep their identity (the CFG the analyzer
        // builds from the static code must stay valid for the
        // preprocessed trace), so branches and returns are neither
        // constant-folded away nor fused onto the combined ALU.
        let t = mk_trace_with_branch(
            &[Op::LoadImm { rd: r(1), imm: 1 }],
            Op::Branch {
                cond: tpc_isa::BranchCond::Eq,
                rs1: r(1),
                rs2: r(1),
                target: Addr::new(0),
            },
        );
        let info = preprocess(&t);
        assert!(t.instrs().iter().any(|ti| ti.op.class().is_control()));
        for (i, ti) in t.instrs().iter().enumerate() {
            if ti.op.class().is_control() {
                assert!(!info.const_folded[i], "control op {i} folded");
                assert_eq!(info.collapsed[i], None, "control op {i} collapsed");
            }
        }
    }

    #[test]
    fn dependence_graph_is_a_dag_in_trace_order() {
        // Every dependence and every collapse target points strictly
        // backwards — the invariant that makes the trace's dependence
        // graph acyclic and lets the analyzer treat trace order as a
        // topological order.
        let t = mk_trace(&[
            Op::LoadImm { rd: r(1), imm: 7 },
            Op::Load {
                rd: r(2),
                base: r(1),
                offset: 0,
            },
            Op::AddImm {
                rd: r(3),
                rs1: r(2),
                imm: 4,
            },
            Op::Add {
                rd: r(4),
                rs1: r(3),
                rs2: r(2),
            },
            Op::Store {
                src: r(4),
                base: r(1),
                offset: 8,
            },
        ]);
        let info = preprocess(&t);
        for (i, d) in info.deps.iter().enumerate() {
            for &j in d {
                assert!((j as usize) < i, "dep {j} of {i} not earlier");
            }
            if let Some(j) = info.collapsed[i] {
                assert!((j as usize) < i, "collapse target {j} of {i} not earlier");
            }
        }
        assert_eq!(info.len(), t.len());
        assert!(!info.is_empty());
    }

    #[test]
    fn call_return_address_is_a_constant() {
        let t = mk_trace(&[
            Op::Call {
                target: Addr::new(2),
            }, // 0: writes LINK = 1
            // (the builder follows the call; instruction at addr 2)
            Op::AddImm {
                rd: r(4),
                rs1: Reg::LINK,
                imm: 0,
            }, // 1 at addr 2: foldable
        ]);
        let info = preprocess(&t);
        assert!(info.const_folded[1]);
    }
}
