//! Shared single-pass probe logic for the set-associative payload
//! arrays (`TraceCache`, `PreconBuffers`, `UnifiedStore`).

use std::ops::Range;

/// Where a fill should land within one set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ProbeSlot {
    /// A slot already holds a matching entry (refresh in place).
    Match(usize),
    /// No match; this is the first free slot inside the replacement
    /// window.
    Free(usize),
    /// No match and no free slot: the caller's replacement policy
    /// must pick a victim.
    Evict,
}

/// Scans one set's slots in a single pass: a match anywhere in the
/// set wins; otherwise the first free slot inside `replace_window`
/// (the ways this fill is allowed to claim) is reported; otherwise
/// the caller must evict.
///
/// Factored from the fill paths of the trace cache, preconstruction
/// buffers and unified store, which all used to walk the set twice
/// (`range.clone()` refresh pass, then a free-way pass).
pub(crate) fn probe_or_free<T>(
    slots: &[Option<T>],
    replace_window: Range<usize>,
    is_match: impl Fn(&T) -> bool,
) -> ProbeSlot {
    let mut free = None;
    for (i, slot) in slots.iter().enumerate() {
        match slot {
            Some(entry) => {
                if is_match(entry) {
                    return ProbeSlot::Match(i);
                }
            }
            None => {
                if free.is_none() && replace_window.contains(&i) {
                    free = Some(i);
                }
            }
        }
    }
    match free {
        Some(i) => ProbeSlot::Free(i),
        None => ProbeSlot::Evict,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn match_beats_free() {
        let slots = [None, Some(3), Some(7)];
        assert_eq!(
            probe_or_free(&slots, 0..3, |&v| v == 7),
            ProbeSlot::Match(2)
        );
    }

    #[test]
    fn first_free_in_window() {
        let slots: [Option<u32>; 4] = [None, Some(1), None, None];
        assert_eq!(probe_or_free(&slots, 2..4, |_| false), ProbeSlot::Free(2));
    }

    #[test]
    fn free_outside_window_ignored() {
        let slots: [Option<u32>; 3] = [None, Some(1), Some(2)];
        assert_eq!(probe_or_free(&slots, 1..3, |_| false), ProbeSlot::Evict);
    }

    #[test]
    fn full_set_requires_eviction() {
        let slots = [Some(1), Some(2)];
        assert_eq!(probe_or_free(&slots, 0..2, |_| false), ProbeSlot::Evict);
    }
}
