//! # tpc-core — traces, the trace cache, and trace preconstruction
//!
//! This crate implements the paper's contribution and the trace
//! machinery it extends:
//!
//! * [`trace`] — traces and the shared trace-selection rules
//!   (16-instruction cap, end at returns/indirect jumps, and the
//!   mod-4 alignment heuristic past backward branches that makes
//!   preconstructed traces line up with the processor's traces).
//! * [`trace_cache`] — the 2-way set-associative trace cache.
//! * [`precon_buffer`] — preconstruction buffers with the paper's
//!   region-priority replacement policy.
//! * [`start_stack`] — the region start-point stack (depth 16 plus
//!   reserved completed-region entries).
//! * [`constructor`] — a trace constructor: walks static code from a
//!   trace start point, following strongly-biased branches only down
//!   their dominant direction and forking weakly-biased ones through
//!   an internal decision stack.
//! * [`engine`] — the preconstruction engine tying it together:
//!   region management over four prefetch caches and four parallel
//!   constructors, driven one tick per cycle by the processor.
//! * [`mod@preprocess`] — the extended-pipeline trace preprocessing
//!   (instruction scheduling, constant propagation, combined
//!   shift-add ALU) of Section 6.
//! * [`faults`] — deterministic fault injection over every one of
//!   the mechanisms above, used by the differential oracle to prove
//!   preconstruction is correctness-neutral: any seeded fault
//!   schedule may move performance counters but never the retirement
//!   stream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod constructor;
pub mod engine;
pub mod faults;
pub mod precon_buffer;
pub mod preprocess;
mod slots;
pub mod start_stack;
pub mod storage;
pub mod trace;
pub mod trace_cache;

pub use engine::{EngineActivity, EngineConfig, EngineStats, PreconEngine};
pub use faults::{
    EngineFault, FaultEvent, FaultKind, FaultPlan, FaultState, FaultStats, FAULTS_ALL,
    NUM_FAULT_KINDS,
};
pub use precon_buffer::{PreconBuffers, PreconStats};
pub use preprocess::{preprocess, PreprocessInfo};
pub use start_stack::{StartPointStack, StartReason};
pub use storage::{SplitStore, StoreCounters, StoreFetch, TraceStore, UnifiedConfig, UnifiedStore};
pub use trace::{
    PushResult, Resolution, Trace, TraceBuilder, TraceInstr, TraceStop, ALIGN_QUANTUM,
    MAX_TRACE_LEN,
};
pub use trace_cache::{TraceCache, TraceCacheStats};

// Trace identity/terminator types live in `tpc-predict` (the
// next-trace predictor speaks them natively); re-export for users of
// this crate.
pub use tpc_predict::{TraceEnd, TraceKey};
