//! A preconstruction trace constructor (paper Section 3.4).
//!
//! Each constructor walks static code from a trace start point,
//! decoding instructions out of its region's prefetch cache. At a
//! conditional branch it consults the slow-path bimodal predictor:
//! strongly-biased branches are followed only down their dominant
//! direction; weakly-biased branches follow the not-taken path first
//! while the decision point is pushed onto a small internal stack,
//! from which the alternative (taken) path is constructed after the
//! current trace completes. Paths terminate at indirect jumps (and
//! at returns whose call was not observed during this walk, where the
//! target is equally unknown).

use crate::trace::{PushResult, Resolution, Trace, TraceBuilder};
use tpc_isa::{Addr, OpClass, Program};
use tpc_mem::PrefetchCache;
use tpc_predict::{Bias, Bimodal};

/// One saved decision point for a weakly-biased branch: the builder
/// and call-stack state just *before* the branch was consumed, plus
/// the branch's address. Popping it re-runs the branch down the
/// taken path.
#[derive(Debug, Clone)]
struct Decision {
    builder: TraceBuilder,
    call_stack: Vec<Addr>,
    branch_pc: Addr,
}

/// What a single constructor step produced.
#[derive(Debug, Clone)]
pub enum Step {
    /// Consumed one instruction; more work remains this trace.
    Advanced,
    /// The instruction at the returned address is not in the prefetch
    /// cache; the engine must fetch its line before this constructor
    /// can proceed.
    NeedLine(Addr),
    /// A trace completed. The constructor may still have alternative
    /// paths queued on its internal stack — call
    /// [`TraceConstructor::backtrack`] before assigning new work.
    TraceDone(Box<Trace>),
    /// The current path ended without completing further traces and
    /// no alternatives remain: the constructor is idle.
    Idle,
}

/// A single trace constructor.
#[derive(Debug, Clone)]
pub struct TraceConstructor {
    builder: Option<TraceBuilder>,
    pc: Addr,
    call_stack: Vec<Addr>,
    decisions: Vec<Decision>,
    decision_depth: usize,
}

impl TraceConstructor {
    /// Creates an idle constructor whose internal decision stack
    /// holds up to `decision_depth` pending alternative paths.
    pub fn new(decision_depth: usize) -> Self {
        TraceConstructor {
            builder: None,
            pc: Addr::ZERO,
            call_stack: Vec::new(),
            decisions: Vec::new(),
            decision_depth,
        }
    }

    /// Whether the constructor has no work at all.
    pub fn is_idle(&self) -> bool {
        self.builder.is_none() && self.decisions.is_empty()
    }

    /// Whether a trace is currently under construction.
    pub fn is_building(&self) -> bool {
        self.builder.is_some()
    }

    /// Begins constructing traces from a fresh trace start point.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the constructor still has work
    /// (check [`TraceConstructor::is_idle`] first).
    pub fn start(&mut self, start: Addr) {
        debug_assert!(self.is_idle(), "constructor reassigned while busy");
        self.builder = Some(TraceBuilder::new(start));
        self.pc = start;
        self.call_stack.clear();
        self.decisions.clear();
    }

    /// Abandons all work (region terminated).
    pub fn abort(&mut self) {
        self.builder = None;
        self.call_stack.clear();
        self.decisions.clear();
    }

    /// After [`Step::TraceDone`], resumes the most recent pending
    /// alternative path, if any. Returns `true` when an alternative
    /// was resumed, `false` when the constructor is now idle.
    pub fn backtrack(&mut self, program: &Program) -> bool {
        let Some(d) = self.decisions.pop() else {
            return false;
        };
        let mut builder = d.builder;
        self.call_stack = d.call_stack;
        // Re-consume the branch, this time down the taken path.
        let op = *program
            .fetch(d.branch_pc)
            .expect("decision point addresses a validated branch");
        let target = op
            .static_target()
            .expect("conditional branches have static targets");
        match builder.push(
            d.branch_pc,
            op,
            Resolution::Branch {
                taken: true,
                next_pc: target,
            },
        ) {
            PushResult::Continue(next) => {
                self.pc = next;
                self.builder = Some(builder);
            }
            PushResult::Complete(_) => {
                // The branch completed the alternative trace
                // immediately (alignment/full). Constructing a
                // one-divergence duplicate is not useful; fall
                // through to the next alternative.
                return self.backtrack(program);
            }
        }
        true
    }

    /// Advances construction by one instruction.
    ///
    /// `prefetch` is the region's prefetch cache (instructions must
    /// be resident to be decoded); `bimodal` is the shared slow-path
    /// predictor consulted for branch bias.
    pub fn step(&mut self, program: &Program, prefetch: &PrefetchCache, bimodal: &Bimodal) -> Step {
        let Some(builder) = self.builder.as_mut() else {
            return Step::Idle;
        };
        let pc = self.pc;
        if !prefetch.contains(pc) {
            return Step::NeedLine(pc);
        }
        let Some(op) = program.fetch(pc).copied() else {
            // Ran past the end of the code: only possible in
            // hand-written programs; end the path.
            self.builder = None;
            return Step::Idle;
        };

        let resolution = match op.class() {
            OpClass::Branch => {
                let target = op.static_target().expect("branch has a static target");
                match bimodal.bias(pc) {
                    Bias::StronglyTaken => Resolution::Branch {
                        taken: true,
                        next_pc: target,
                    },
                    Bias::StronglyNotTaken => Resolution::Branch {
                        taken: false,
                        next_pc: pc.next(),
                    },
                    Bias::Weak => {
                        // Fork: not-taken first, taken path saved for
                        // backtracking (bounded stack; overflow means
                        // we simply do not explore that alternative).
                        if self.decisions.len() < self.decision_depth {
                            self.decisions.push(Decision {
                                builder: builder.clone(),
                                call_stack: self.call_stack.clone(),
                                branch_pc: pc,
                            });
                        }
                        Resolution::Branch {
                            taken: false,
                            next_pc: pc.next(),
                        }
                    }
                }
            }
            OpClass::Call => {
                self.call_stack.push(pc.next());
                Resolution::None
            }
            OpClass::Return => match self.call_stack.pop() {
                Some(ra) => Resolution::Target(ra),
                None => Resolution::None,
            },
            // Indirect-jump targets are unknown to preconstruction:
            // the path terminates here (paper Section 2.1).
            OpClass::IndirectJump => Resolution::None,
            OpClass::Halt => Resolution::None,
            _ => Resolution::None,
        };

        debug_assert!(
            self.decisions.len() <= self.decision_depth,
            "decision stack exceeded its configured depth"
        );
        match builder.push(pc, op, resolution) {
            PushResult::Continue(next) => {
                self.pc = next;
                Step::Advanced
            }
            PushResult::Complete(trace) => {
                self.builder = None;
                Step::TraceDone(Box::new(trace))
            }
        }
    }

    /// Pending alternative paths on the internal decision stack
    /// (bounded by the configured decision depth).
    pub fn pending_decisions(&self) -> usize {
        self.decisions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpc_isa::model::OutcomeModel;
    use tpc_isa::{BranchCond, Op, ProgramBuilder, Reg};

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }

    fn full_prefetch(program: &Program) -> PrefetchCache {
        let mut p = PrefetchCache::new(((program.len() as u32 / 16) + 1) * 16 * 16);
        for w in (0..program.len() as u32).step_by(16) {
            assert!(p.insert_line(Addr::new(w)));
        }
        p
    }

    /// Drives the constructor until it is idle, collecting traces.
    fn run_all(
        ctor: &mut TraceConstructor,
        program: &Program,
        prefetch: &PrefetchCache,
        bimodal: &Bimodal,
    ) -> Vec<Trace> {
        let mut traces = Vec::new();
        for _ in 0..10_000 {
            match ctor.step(program, prefetch, bimodal) {
                Step::Advanced => {}
                Step::TraceDone(t) => {
                    traces.push(*t);
                    if !ctor.backtrack(program) {
                        break;
                    }
                }
                Step::Idle => break,
                Step::NeedLine(a) => panic!("unexpected stall at {a}"),
            }
        }
        traces
    }

    /// Straight-line code ending in ret.
    #[test]
    fn straight_line_single_trace() {
        let mut b = ProgramBuilder::new();
        for _ in 0..5 {
            b.push(Op::AddImm {
                rd: r(1),
                rs1: r(1),
                imm: 1,
            });
        }
        b.push(Op::Return);
        let p = b.build().unwrap();
        let prefetch = full_prefetch(&p);
        let bimodal = Bimodal::new(64);
        let mut ctor = TraceConstructor::new(3);
        ctor.start(Addr::ZERO);
        let traces = run_all(&mut ctor, &p, &prefetch, &bimodal);
        assert_eq!(traces.len(), 1);
        assert_eq!(traces[0].len(), 6);
        assert_eq!(traces[0].successor(), None, "return with unobserved call");
    }

    #[test]
    fn weak_branch_forks_both_paths() {
        // if-then-else: weak branch at 0; not-taken path 1..3 jmp 5;
        // taken path 3..4; join at 5: ret.
        let mut b = ProgramBuilder::new();
        b.push_branch(
            Op::Branch {
                cond: BranchCond::Ne,
                rs1: r(1),
                rs2: r(2),
                target: Addr::new(3),
            },
            OutcomeModel::Biased {
                num: 1,
                denom: 2,
                seed: 3,
            },
        );
        b.push(Op::AddImm {
            rd: r(1),
            rs1: r(1),
            imm: 1,
        }); // 1
        b.push(Op::Jump {
            target: Addr::new(5),
        }); // 2
        b.push(Op::AddImm {
            rd: r(2),
            rs1: r(2),
            imm: 1,
        }); // 3
        b.push(Op::Nop); // 4
        b.push(Op::Return); // 5
        let p = b.build().unwrap();
        let prefetch = full_prefetch(&p);
        let bimodal = Bimodal::new(64); // weak state everywhere
        let mut ctor = TraceConstructor::new(3);
        ctor.start(Addr::ZERO);
        let traces = run_all(&mut ctor, &p, &prefetch, &bimodal);
        assert_eq!(traces.len(), 2, "both arms constructed");
        let keys: std::collections::HashSet<_> = traces.iter().map(|t| t.key()).collect();
        assert_eq!(keys.len(), 2);
        // Not-taken explored first.
        assert_eq!(traces[0].branch_outcome(0), Some(false));
        assert_eq!(traces[1].branch_outcome(0), Some(true));
    }

    #[test]
    fn strong_bias_follows_single_path() {
        let mut b = ProgramBuilder::new();
        b.push_branch(
            Op::Branch {
                cond: BranchCond::Ne,
                rs1: r(1),
                rs2: r(2),
                target: Addr::new(3),
            },
            OutcomeModel::AlwaysTaken,
        );
        b.push(Op::Nop); // 1 (not-taken arm, never constructed)
        b.push(Op::Return); // 2
        b.push(Op::AddImm {
            rd: r(1),
            rs1: r(1),
            imm: 1,
        }); // 3
        b.push(Op::Return); // 4
        let p = b.build().unwrap();
        let prefetch = full_prefetch(&p);
        let mut bimodal = Bimodal::new(64);
        // Saturate the branch taken.
        for _ in 0..3 {
            bimodal.update(Addr::ZERO, true);
        }
        let mut ctor = TraceConstructor::new(3);
        ctor.start(Addr::ZERO);
        let traces = run_all(&mut ctor, &p, &prefetch, &bimodal);
        assert_eq!(traces.len(), 1, "only the biased path is followed");
        assert_eq!(traces[0].branch_outcome(0), Some(true));
    }

    #[test]
    fn call_observed_resolves_matching_return() {
        // call f; nop; ret-at-top-level — callee: addi; ret
        let mut b = ProgramBuilder::new();
        let call_at = b.push(Op::Nop); // patched
        b.push(Op::Nop); // 1
        b.push(Op::Return); // 2
        let f = b.here(); // 3
        b.push(Op::AddImm {
            rd: r(1),
            rs1: r(1),
            imm: 1,
        }); // 3
        b.push(Op::Return); // 4
        b.patch(call_at, Op::Call { target: f });
        let p = b.build().unwrap();
        let prefetch = full_prefetch(&p);
        let bimodal = Bimodal::new(64);
        let mut ctor = TraceConstructor::new(3);
        ctor.start(Addr::ZERO);
        let traces = run_all(&mut ctor, &p, &prefetch, &bimodal);
        // First trace: call, addi, ret — successor = return point (1).
        assert_eq!(traces[0].successor(), Some(Addr::new(1)));
    }

    #[test]
    fn indirect_jump_terminates_path() {
        let mut b = ProgramBuilder::new();
        b.push(Op::Nop);
        b.push_indirect(
            Op::IndirectJump { rs1: r(4) },
            tpc_isa::model::IndirectModel::uniform(vec![Addr::ZERO], 1),
        );
        b.push(Op::Halt);
        let p = b.build().unwrap();
        let prefetch = full_prefetch(&p);
        let bimodal = Bimodal::new(64);
        let mut ctor = TraceConstructor::new(3);
        ctor.start(Addr::ZERO);
        let traces = run_all(&mut ctor, &p, &prefetch, &bimodal);
        assert_eq!(traces.len(), 1);
        assert_eq!(traces[0].successor(), None);
        assert!(ctor.is_idle());
    }

    #[test]
    fn missing_line_stalls() {
        let mut b = ProgramBuilder::new();
        b.push(Op::Nop);
        b.push(Op::Return);
        let p = b.build().unwrap();
        let prefetch = PrefetchCache::new(16); // empty
        let bimodal = Bimodal::new(64);
        let mut ctor = TraceConstructor::new(3);
        ctor.start(Addr::ZERO);
        match ctor.step(&p, &prefetch, &bimodal) {
            Step::NeedLine(a) => assert_eq!(a, Addr::ZERO),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn decision_stack_is_bounded() {
        // Three consecutive weak branches with depth 1: only one fork
        // is remembered → 2 traces total.
        let mut b = ProgramBuilder::new();
        for i in 0..3u32 {
            b.push_branch(
                Op::Branch {
                    cond: BranchCond::Ne,
                    rs1: r(1),
                    rs2: r(2),
                    target: Addr::new(4), // forward, into the ret below
                },
                OutcomeModel::Biased {
                    num: 1,
                    denom: 2,
                    seed: i as u64,
                },
            );
        }
        b.push(Op::Nop); // 3
        b.push(Op::Return); // 4
        let p = b.build().unwrap();
        let prefetch = full_prefetch(&p);
        let bimodal = Bimodal::new(64);
        let mut ctor = TraceConstructor::new(1);
        ctor.start(Addr::ZERO);
        let traces = run_all(&mut ctor, &p, &prefetch, &bimodal);
        assert_eq!(traces.len(), 2);
    }

    #[test]
    fn abort_clears_all_state() {
        let mut b = ProgramBuilder::new();
        b.push(Op::Nop);
        b.push(Op::Return);
        let p = b.build().unwrap();
        let prefetch = full_prefetch(&p);
        let bimodal = Bimodal::new(64);
        let mut ctor = TraceConstructor::new(3);
        ctor.start(Addr::ZERO);
        assert!(!ctor.is_idle());
        ctor.abort();
        assert!(ctor.is_idle());
        assert!(matches!(ctor.step(&p, &prefetch, &bimodal), Step::Idle));
    }
}
