//! The region start-point stack (paper Section 3.2).

use std::collections::VecDeque;
use tpc_isa::Addr;

/// Which program construct produced a region start point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StartReason {
    /// The return point following a procedure call: execution will
    /// arrive there when the callee returns.
    CallReturn,
    /// The fall-through of a loop's backward branch: execution will
    /// arrive there when the loop exits.
    LoopExit,
}

/// A potential preconstruction region start point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StartPoint {
    /// First instruction of the future region.
    pub addr: Addr,
    /// The construct that predicted it.
    pub reason: StartReason,
    /// Dispatch sequence number of the observing instruction — used
    /// to prune start points planted by squashed (wrong-path)
    /// instructions.
    pub seq: u64,
}

/// The small hardware stack of region start points.
///
/// Start points are pushed as calls and backward branches pass
/// dispatch (newest on top); the preconstruction engine pops from the
/// top, so regions likely to be reached soonest (innermost
/// loops/calls) are preconstructed first. When full, the *oldest*
/// entry is discarded. A few extra entries remember recently
/// completed regions so their start points are not re-pushed
/// (avoiding redundant preconstruction).
///
/// ```
/// use tpc_core::{StartPointStack, StartReason};
/// use tpc_isa::Addr;
///
/// let mut s = StartPointStack::new(16, 4);
/// s.push(Addr::new(100), StartReason::CallReturn, 1);
/// s.push(Addr::new(200), StartReason::LoopExit, 2);
/// assert_eq!(s.pop().unwrap().addr, Addr::new(200)); // newest first
/// ```
#[derive(Debug, Clone)]
pub struct StartPointStack {
    entries: Vec<StartPoint>,
    depth: usize,
    completed: VecDeque<Addr>,
    completed_cap: usize,
    pushes: u64,
    dropped_oldest: u64,
    deduped: u64,
}

impl StartPointStack {
    /// Creates a stack with `depth` live entries and `completed_cap`
    /// reserved completed-region entries (the paper uses 16 and 4).
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn new(depth: usize, completed_cap: usize) -> Self {
        assert!(depth > 0, "stack depth must be positive");
        StartPointStack {
            entries: Vec::with_capacity(depth),
            depth,
            completed: VecDeque::with_capacity(completed_cap),
            completed_cap,
            pushes: 0,
            dropped_oldest: 0,
            deduped: 0,
        }
    }

    /// Creates the paper's 16 + 4 configuration.
    pub fn paper_default() -> Self {
        Self::new(16, 4)
    }

    /// Offers a new start point observed at dispatch.
    ///
    /// The push is suppressed when the address is already on the
    /// stack (the paper deduplicates against the top; deduplicating
    /// against all 16 entries is the same hardware scan) or belongs
    /// to a recently completed region. When the stack is full the
    /// oldest entry is discarded.
    pub fn push(&mut self, addr: Addr, reason: StartReason, seq: u64) {
        if self.entries.iter().any(|e| e.addr == addr) || self.is_completed(addr) {
            self.deduped += 1;
            return;
        }
        if self.entries.len() == self.depth {
            self.entries.remove(0);
            self.dropped_oldest += 1;
        }
        self.entries.push(StartPoint { addr, reason, seq });
        self.pushes += 1;
        debug_assert!(self.check_invariants().is_ok());
    }

    /// Takes the highest-priority (newest) start point.
    pub fn pop(&mut self) -> Option<StartPoint> {
        self.entries.pop()
    }

    /// The highest-priority start point, without removing it.
    pub fn peek(&self) -> Option<&StartPoint> {
        self.entries.last()
    }

    /// Live entry count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no start points are pending.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Removes start points whose region execution has reached
    /// (called with each retired instruction address).
    pub fn on_retire(&mut self, pc: Addr) {
        self.entries.retain(|e| e.addr != pc);
    }

    /// Removes start points planted by instructions younger than
    /// `seq` (called on misprediction recovery: those dispatches were
    /// wrong-path).
    pub fn squash_younger_than(&mut self, seq: u64) {
        self.entries.retain(|e| e.seq <= seq);
    }

    /// Fault-injection hook: spuriously runs the misspeculation
    /// squash, keeping only the `keep` oldest entries (equivalent to
    /// [`StartPointStack::squash_younger_than`] with the seq of the
    /// `keep`-th entry). Returns the number of entries discarded.
    ///
    /// Losing start points can only suppress preconstruction work —
    /// the stack feeds hint hardware, so a spurious squash moves
    /// performance counters but never architectural state.
    pub fn squash_to_depth(&mut self, keep: usize) -> usize {
        let removed = self.entries.len().saturating_sub(keep);
        self.entries.truncate(keep);
        removed
    }

    /// Records that preconstruction for the region at `addr`
    /// completed; subsequent pushes of `addr` are suppressed until
    /// the entry ages out of the completed list.
    pub fn mark_completed(&mut self, addr: Addr) {
        if self.completed_cap == 0 {
            return;
        }
        if self.completed.contains(&addr) {
            return;
        }
        if self.completed.len() == self.completed_cap {
            self.completed.pop_front();
        }
        self.completed.push_back(addr);
    }

    /// Whether `addr` is in the completed-region list.
    pub fn is_completed(&self, addr: Addr) -> bool {
        self.completed.contains(&addr)
    }

    /// (pushes accepted, pushes deduplicated, oldest entries dropped).
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.pushes, self.deduped, self.dropped_oldest)
    }

    /// Configured live-entry depth (the paper uses 16).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Configured completed-region capacity (the paper uses 4).
    pub fn completed_capacity(&self) -> usize {
        self.completed_cap
    }

    /// Current completed-region entry count.
    pub fn completed_len(&self) -> usize {
        self.completed.len()
    }

    /// Checks the stack's structural invariants: live entries within
    /// `depth`, completed entries within `completed_cap`, and no
    /// duplicate addresses. Called by the differential oracle and by
    /// debug assertions after every push.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.entries.len() > self.depth {
            return Err(format!(
                "start stack holds {} entries, depth is {}",
                self.entries.len(),
                self.depth
            ));
        }
        if self.completed.len() > self.completed_cap {
            return Err(format!(
                "completed list holds {} entries, capacity is {}",
                self.completed.len(),
                self.completed_cap
            ));
        }
        for (i, e) in self.entries.iter().enumerate() {
            if self.entries[..i].iter().any(|p| p.addr == e.addr) {
                return Err(format!("duplicate start point {:?}", e.addr));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s() -> StartPointStack {
        StartPointStack::new(4, 2)
    }

    #[test]
    fn newest_first_priority() {
        let mut st = s();
        st.push(Addr::new(1), StartReason::CallReturn, 1);
        st.push(Addr::new(2), StartReason::LoopExit, 2);
        assert_eq!(st.pop().unwrap().addr, Addr::new(2));
        assert_eq!(st.pop().unwrap().addr, Addr::new(1));
        assert!(st.pop().is_none());
    }

    #[test]
    fn duplicate_pushes_suppressed() {
        let mut st = s();
        st.push(Addr::new(5), StartReason::LoopExit, 1);
        st.push(Addr::new(5), StartReason::LoopExit, 2);
        assert_eq!(st.len(), 1);
        let (pushes, deduped, _) = st.counters();
        assert_eq!((pushes, deduped), (1, 1));
    }

    #[test]
    fn overflow_discards_oldest() {
        let mut st = s(); // depth 4
        for i in 1..=5 {
            st.push(Addr::new(i), StartReason::CallReturn, i as u64);
        }
        assert_eq!(st.len(), 4);
        // Address 1 (oldest) was discarded.
        let addrs: Vec<u32> = std::iter::from_fn(|| st.pop())
            .map(|e| e.addr.word())
            .collect();
        assert_eq!(addrs, vec![5, 4, 3, 2]);
    }

    #[test]
    fn retirement_removes_reached_regions() {
        let mut st = s();
        st.push(Addr::new(10), StartReason::CallReturn, 1);
        st.push(Addr::new(20), StartReason::LoopExit, 2);
        st.on_retire(Addr::new(10));
        assert_eq!(st.len(), 1);
        assert_eq!(st.peek().unwrap().addr, Addr::new(20));
    }

    #[test]
    fn squash_removes_wrong_path_entries() {
        let mut st = s();
        st.push(Addr::new(10), StartReason::CallReturn, 5);
        st.push(Addr::new(20), StartReason::LoopExit, 9);
        st.squash_younger_than(5);
        assert_eq!(st.len(), 1);
        assert_eq!(st.peek().unwrap().addr, Addr::new(10));
    }

    #[test]
    fn completed_regions_not_repushed() {
        let mut st = s();
        st.mark_completed(Addr::new(7));
        st.push(Addr::new(7), StartReason::LoopExit, 1);
        assert!(st.is_empty());
    }

    #[test]
    fn completed_list_ages_out() {
        let mut st = s(); // completed_cap = 2
        st.mark_completed(Addr::new(1));
        st.mark_completed(Addr::new(2));
        st.mark_completed(Addr::new(3)); // evicts 1
        assert!(!st.is_completed(Addr::new(1)));
        st.push(Addr::new(1), StartReason::CallReturn, 1);
        assert_eq!(st.len(), 1);
    }

    #[test]
    fn paper_default_dimensions() {
        let mut st = StartPointStack::paper_default();
        for i in 0..20 {
            st.push(Addr::new(i), StartReason::CallReturn, i as u64);
        }
        assert_eq!(st.len(), 16);
    }

    /// Pins the paper's exact 16 + 4 shape: sixteen live entries,
    /// four completed-region entries, and both bounds are hard — the
    /// seventeenth live push drops the oldest, the fifth completed
    /// region ages out the first.
    #[test]
    fn paper_default_is_sixteen_plus_four() {
        let mut st = StartPointStack::paper_default();
        assert_eq!(st.depth(), 16);
        assert_eq!(st.completed_capacity(), 4);
        for i in 0..17 {
            st.push(Addr::new(i), StartReason::LoopExit, i as u64);
        }
        assert_eq!(st.len(), 16);
        let (_, _, dropped) = st.counters();
        assert_eq!(dropped, 1);
        // Newest-first across the whole live window; the oldest
        // (addr 0) is the one that was discarded.
        assert_eq!(st.peek().unwrap().addr, Addr::new(16));
        for i in 100..105 {
            st.mark_completed(Addr::new(i));
        }
        assert_eq!(st.completed_len(), 4);
        assert!(!st.is_completed(Addr::new(100))); // aged out FIFO
        assert!(st.is_completed(Addr::new(104)));
        st.check_invariants().unwrap();
    }

    /// Pins pop-on-misspeculation: recovery removes exactly the
    /// entries planted by wrong-path (younger) dispatches and keeps
    /// newest-first order among the survivors.
    #[test]
    fn misspeculation_squash_preserves_survivor_order() {
        let mut st = StartPointStack::paper_default();
        st.push(Addr::new(1), StartReason::CallReturn, 10);
        st.push(Addr::new(2), StartReason::LoopExit, 20);
        st.push(Addr::new(3), StartReason::CallReturn, 30); // wrong path
        st.push(Addr::new(4), StartReason::LoopExit, 40); // wrong path
        st.squash_younger_than(20);
        assert_eq!(st.len(), 2);
        assert_eq!(st.pop().unwrap().addr, Addr::new(2));
        assert_eq!(st.pop().unwrap().addr, Addr::new(1));
        // A squashed address may legitimately be re-pushed later by a
        // correct-path dispatch.
        st.push(Addr::new(3), StartReason::CallReturn, 50);
        assert_eq!(st.peek().unwrap().addr, Addr::new(3));
    }
}
