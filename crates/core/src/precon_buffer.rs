//! Preconstruction buffers (paper Section 3.1).

use crate::slots::{probe_or_free, ProbeSlot};
use crate::trace::Trace;
use tpc_predict::TraceKey;

/// Counters kept by the preconstruction buffers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PreconStats {
    /// Traces inserted.
    pub fills: u64,
    /// Fills rejected by the region-priority policy (the set held
    /// only traces of the same or a newer region).
    pub rejected: u64,
    /// Traces displaced by newer regions.
    pub evictions: u64,
    /// Successful `take`s (trace moved to the trace cache).
    pub hits: u64,
    /// Failed probes.
    pub misses: u64,
}

#[derive(Debug, Clone)]
struct Slot {
    trace: Trace,
    region: u64,
}

/// The preconstruction buffers: a 2-way set-associative structure
/// indexed like the trace cache, holding preconstructed traces until
/// they are used or displaced.
///
/// Replacement follows the paper's region-priority policy: regions
/// are identified by a monotonically increasing id (newer = higher
/// priority, and active regions are by construction the newest), and
///
/// * a fill may only displace a trace from an *older* region;
/// * a fill never displaces a trace from its own region — buffer
///   availability is what bounds preconstruction within a region.
///
/// A successful probe *removes* the trace: the caller copies it into
/// the trace cache and the buffer entry is invalidated, avoiding
/// redundancy between the two structures.
///
/// A capacity of 0 is legal and models the no-preconstruction
/// baseline: every probe misses, every fill is rejected.
#[derive(Debug, Clone)]
pub struct PreconBuffers {
    ways: u32,
    set_mask: u64,
    slots: Vec<Option<Slot>>,
    stats: PreconStats,
}

impl PreconBuffers {
    /// Creates buffers with `entries` total entries, 2-way
    /// set-associative. `entries == 0` creates disabled buffers.
    ///
    /// # Panics
    ///
    /// Panics if a non-zero `entries` is not an even power of two.
    pub fn new(entries: u32) -> Self {
        Self::with_ways(entries, 2)
    }

    /// Creates buffers with explicit associativity.
    ///
    /// # Panics
    ///
    /// Panics if a non-zero `entries` does not divide evenly into
    /// power-of-two sets.
    pub fn with_ways(entries: u32, ways: u32) -> Self {
        if entries == 0 {
            return PreconBuffers {
                ways: 0,
                set_mask: 0,
                slots: Vec::new(),
                stats: PreconStats::default(),
            };
        }
        assert!(
            ways > 0 && entries.is_multiple_of(ways),
            "entries must divide by ways"
        );
        let sets = entries / ways;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        PreconBuffers {
            ways,
            set_mask: sets as u64 - 1,
            slots: vec![None; entries as usize],
            stats: PreconStats::default(),
        }
    }

    /// Total entry capacity.
    pub fn capacity(&self) -> u32 {
        self.slots.len() as u32
    }

    /// Whether the buffers are disabled (capacity 0).
    pub fn is_disabled(&self) -> bool {
        self.slots.is_empty()
    }

    fn set_range(&self, key: TraceKey) -> std::ops::Range<usize> {
        let set = (key.hash64() & self.set_mask) as usize;
        let start = set * self.ways as usize;
        start..start + self.ways as usize
    }

    /// Probes for a trace; on a hit the trace is *removed* and
    /// returned (the caller installs it in the trace cache).
    pub fn take(&mut self, key: TraceKey) -> Option<Trace> {
        if self.is_disabled() {
            self.stats.misses += 1;
            return None;
        }
        let range = self.set_range(key);
        for slot in &mut self.slots[range] {
            if slot.as_ref().is_some_and(|s| s.trace.key() == key) {
                self.stats.hits += 1;
                return slot.take().map(|s| s.trace);
            }
        }
        self.stats.misses += 1;
        None
    }

    /// Whether a trace with this identity is resident (no stats).
    pub fn contains(&self, key: TraceKey) -> bool {
        if self.is_disabled() {
            return false;
        }
        let range = self.set_range(key);
        self.slots[range]
            .iter()
            .any(|s| s.as_ref().is_some_and(|s| s.trace.key() == key))
    }

    /// Inserts a preconstructed trace tagged with its region.
    ///
    /// Returns `true` if the trace was stored. `false` means the
    /// region-priority policy rejected it (its set holds only
    /// same-or-newer-region traces) — the signal that bounds
    /// preconstruction within a region.
    pub fn fill(&mut self, trace: Trace, region: u64) -> bool {
        if self.is_disabled() {
            self.stats.rejected += 1;
            return false;
        }
        let key = trace.key();
        let range = self.set_range(key);
        let set = &mut self.slots[range];
        let ways = set.len();
        // One pass: refresh an existing entry for the same identity,
        // or claim a free way.
        match probe_or_free(set, 0..ways, |s: &Slot| s.trace.key() == key) {
            ProbeSlot::Match(i) | ProbeSlot::Free(i) => {
                set[i] = Some(Slot { trace, region });
                self.stats.fills += 1;
                debug_assert!(self.check_invariants().is_ok());
                return true;
            }
            ProbeSlot::Evict => {}
        }
        // Displace the oldest-region victim, but only if it is
        // strictly older than the filling region.
        let victim = set
            .iter_mut()
            .min_by_key(|s| s.as_ref().map(|s| s.region).unwrap_or(0))
            .expect("ways > 0");
        let victim_region = victim.as_ref().map(|s| s.region).unwrap_or(0);
        let filled = if victim_region < region {
            *victim = Some(Slot { trace, region });
            self.stats.fills += 1;
            self.stats.evictions += 1;
            true
        } else {
            self.stats.rejected += 1;
            false
        };
        debug_assert!(self.check_invariants().is_ok());
        filled
    }

    /// Number of resident traces.
    pub fn occupancy(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Fault-injection hook: invalidates one resident entry, chosen
    /// by `salt` over the occupied slots. Returns whether an entry
    /// was dropped (`false` on empty or disabled buffers).
    ///
    /// A preconstructed trace is a hint; losing one costs at most a
    /// future slow-path build.
    pub fn fault_invalidate_one(&mut self, salt: u64) -> bool {
        let occupied: Vec<usize> = (0..self.slots.len())
            .filter(|&i| self.slots[i].is_some())
            .collect();
        if occupied.is_empty() {
            return false;
        }
        let victim = occupied[(salt % occupied.len() as u64) as usize];
        self.slots[victim] = None;
        debug_assert!(self.check_invariants().is_ok());
        true
    }

    /// Fault-injection hook: corrupts one resident entry's region
    /// tag, zeroing it (detected corruption loses the entry its
    /// region-priority protection, so any later region displaces it).
    /// Returns whether a tag actually changed.
    pub fn fault_corrupt_region_tag(&mut self, salt: u64) -> bool {
        let occupied: Vec<usize> = (0..self.slots.len())
            .filter(|&i| self.slots[i].is_some())
            .collect();
        if occupied.is_empty() {
            return false;
        }
        let victim = occupied[(salt % occupied.len() as u64) as usize];
        let slot = self.slots[victim].as_mut().expect("occupied index");
        let changed = slot.region != 0;
        slot.region = 0;
        debug_assert!(self.check_invariants().is_ok());
        changed
    }

    /// Iterates over the resident traces and their region tags
    /// (diagnostics and trace-dump tooling).
    pub fn iter(&self) -> impl Iterator<Item = (&Trace, u64)> {
        self.slots.iter().flatten().map(|s| (&s.trace, s.region))
    }

    /// Checks the buffers' structural invariants: occupancy never
    /// exceeds capacity, every resident trace sits in the set its key
    /// hashes to, and the eviction counter never exceeds the fill
    /// counter. Called by the differential oracle and by debug
    /// assertions after every mutation.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.occupancy() > self.capacity() as usize {
            return Err(format!(
                "precon buffer occupancy {} exceeds capacity {}",
                self.occupancy(),
                self.capacity()
            ));
        }
        for (i, slot) in self.slots.iter().enumerate() {
            if let Some(s) = slot {
                let range = self.set_range(s.trace.key());
                if !range.contains(&i) {
                    return Err(format!(
                        "trace {:?} resident in slot {i} outside its set {range:?}",
                        s.trace.key()
                    ));
                }
            }
        }
        if self.stats.evictions > self.stats.fills {
            return Err(format!(
                "evictions {} exceed fills {}",
                self.stats.evictions, self.stats.fills
            ));
        }
        Ok(())
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> &PreconStats {
        &self.stats
    }

    /// Resets counters (not contents).
    pub fn reset_stats(&mut self) {
        self.stats = PreconStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{PushResult, Resolution, TraceBuilder};
    use tpc_isa::{Addr, Op};

    fn mk_trace(start: u32) -> Trace {
        let mut b = TraceBuilder::new(Addr::new(start));
        match b.push(Addr::new(start), Op::Return, Resolution::None) {
            PushResult::Complete(t) => t,
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn take_removes_the_trace() {
        let mut pb = PreconBuffers::new(32);
        let t = mk_trace(0);
        let key = t.key();
        assert!(pb.fill(t, 1));
        assert!(pb.take(key).is_some());
        assert!(
            pb.take(key).is_none(),
            "second take misses: entry invalidated"
        );
        assert_eq!(pb.stats().hits, 1);
        assert_eq!(pb.stats().misses, 1);
    }

    #[test]
    fn taken_trace_shares_storage_and_leaves_buffer_invalidated() {
        // Zero-copy handoff: a hit hands back a refcount bump on the
        // filled trace's instruction storage, and the buffer slot is
        // gone — no clone of the instructions ever happens.
        let mut pb = PreconBuffers::new(32);
        let t = mk_trace(0);
        let key = t.key();
        let shadow = t.clone();
        assert!(pb.fill(t, 1));
        let taken = pb.take(key).expect("hit");
        assert!(
            taken.shares_storage_with(&shadow),
            "take must return the same Arc-backed storage, not a copy"
        );
        assert!(!pb.contains(key), "slot invalidated by the take");
        assert_eq!(pb.occupancy(), 0);
    }

    #[test]
    fn same_region_never_displaces_itself() {
        // 2 entries → 1 set × 2 ways: the third same-region fill must
        // be rejected (this is the per-region resource bound).
        let mut pb = PreconBuffers::with_ways(2, 2);
        assert!(pb.fill(mk_trace(0), 5));
        assert!(pb.fill(mk_trace(16), 5));
        assert!(!pb.fill(mk_trace(32), 5));
        assert_eq!(pb.stats().rejected, 1);
        assert_eq!(pb.occupancy(), 2);
    }

    #[test]
    fn newer_region_displaces_older() {
        let mut pb = PreconBuffers::with_ways(2, 2);
        pb.fill(mk_trace(0), 1);
        pb.fill(mk_trace(16), 2);
        assert!(pb.fill(mk_trace(32), 3), "region 3 displaces region 1");
        assert_eq!(pb.stats().evictions, 1);
        assert!(
            !pb.contains(mk_trace(0).key()),
            "oldest region's trace gone"
        );
    }

    #[test]
    fn older_region_cannot_displace_newer() {
        let mut pb = PreconBuffers::with_ways(2, 2);
        pb.fill(mk_trace(0), 7);
        pb.fill(mk_trace(16), 8);
        assert!(!pb.fill(mk_trace(32), 6));
    }

    #[test]
    fn refill_same_identity_updates_region() {
        let mut pb = PreconBuffers::with_ways(2, 2);
        pb.fill(mk_trace(0), 1);
        pb.fill(mk_trace(0), 9); // refresh with newer region tag
        pb.fill(mk_trace(16), 5);
        // Victim selection must now treat the refreshed entry as region 9.
        assert!(
            !pb.fill(mk_trace(32), 5),
            "no entry older than region 5 remains"
        );
    }

    #[test]
    fn disabled_buffers_reject_everything() {
        let mut pb = PreconBuffers::new(0);
        assert!(pb.is_disabled());
        assert!(!pb.fill(mk_trace(0), 1));
        assert!(pb.take(mk_trace(0).key()).is_none());
        assert_eq!(pb.capacity(), 0);
    }

    /// Pins the full region-priority story across a region sequence:
    /// the active (newest) region's traces always win against past
    /// regions, never against each other, and a hit invalidates the
    /// buffer entry after the trace is copied out — so the same
    /// identity can be refilled by a later region.
    #[test]
    fn active_region_wins_against_past_only() {
        let mut pb = PreconBuffers::with_ways(2, 2); // 1 set × 2 ways
                                                     // Region 1 preconstructs two traces, filling the set.
        assert!(pb.fill(mk_trace(0), 1));
        assert!(pb.fill(mk_trace(16), 1));
        // Region 2 becomes active: its first fill displaces a region-1
        // trace, its second displaces the other, its third is rejected
        // (only same-region traces remain — active never evicts active).
        assert!(pb.fill(mk_trace(32), 2));
        assert!(pb.fill(mk_trace(48), 2));
        assert!(!pb.fill(mk_trace(64), 2));
        assert_eq!(pb.stats().evictions, 2);
        assert_eq!(pb.stats().rejected, 1);
        // A hit frees the way (invalidate-after-copy) and the freed
        // way is immediately fillable by the same region.
        assert!(pb.take(mk_trace(32).key()).is_some());
        assert_eq!(pb.occupancy(), 1);
        assert!(pb.fill(mk_trace(64), 2), "freed way accepts a new fill");
        pb.check_invariants().unwrap();
    }

    /// Occupancy stays within capacity and every structural invariant
    /// holds under a randomized fill/take/contains stress mix.
    #[test]
    fn stress_mix_preserves_invariants() {
        use tpc_isa::model::XorShift64;
        let mut pb = PreconBuffers::new(8); // 4 sets × 2 ways
        let mut rng = XorShift64::new(99);
        for step in 0..2_000u64 {
            let start = rng.next_below(64) * 4;
            let region = step / 50; // advancing region ids
            match rng.next_below(3) {
                0 => {
                    pb.fill(mk_trace(start), region);
                }
                1 => {
                    pb.take(mk_trace(start).key());
                }
                _ => {
                    pb.contains(mk_trace(start).key());
                }
            }
            assert!(pb.occupancy() <= pb.capacity() as usize);
            pb.check_invariants()
                .unwrap_or_else(|e| panic!("step {step}: {e}"));
        }
        let s = pb.stats();
        assert!(s.fills > 0 && s.hits > 0 && s.evictions <= s.fills);
    }

    #[test]
    fn distinct_sets_do_not_interfere() {
        let mut pb = PreconBuffers::new(32); // 16 sets
        let mut stored = 0;
        for i in 0..16 {
            if pb.fill(mk_trace(i * 4), 1) {
                stored += 1;
            }
        }
        assert!(
            stored >= 12,
            "hashing spreads traces across sets: {stored}/16"
        );
    }
}
