//! The trace cache.

use crate::trace::Trace;
use std::collections::HashMap;
use tpc_mem::{CacheGeometry, SetAssocCache};
use tpc_predict::TraceKey;

/// Counters kept by the trace cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceCacheStats {
    /// Lookups performed.
    pub lookups: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Traces inserted.
    pub fills: u64,
    /// Traces evicted by replacement.
    pub evictions: u64,
}

/// The 2-way set-associative trace cache (paper Section 4.1: 64 to
/// 1024 entries, LRU replacement), indexed by a hash of the trace's
/// start address and branch outcomes.
///
/// ```
/// use tpc_core::{TraceCache, TraceBuilder, Resolution, PushResult};
/// use tpc_isa::{Addr, Op, Reg};
///
/// let mut tc = TraceCache::new(64);
/// let mut b = TraceBuilder::new(Addr::new(0));
/// let trace = match b.push(Addr::new(0), Op::Halt, Resolution::None) {
///     PushResult::Complete(t) => t,
///     _ => unreachable!(),
/// };
/// let key = trace.key();
/// tc.fill(trace);
/// assert!(tc.lookup(key).is_some());
/// ```
#[derive(Debug, Clone)]
pub struct TraceCache {
    tags: SetAssocCache,
    storage: HashMap<u64, Trace>,
    stats: TraceCacheStats,
}

impl TraceCache {
    /// Creates a trace cache with `entries` total entries, 2-way
    /// set-associative.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not an even power of two (so that
    /// `entries / 2` sets is a power of two).
    pub fn new(entries: u32) -> Self {
        Self::with_ways(entries, 2)
    }

    /// Creates a trace cache with explicit associativity.
    ///
    /// # Panics
    ///
    /// Panics on invalid geometry (see [`CacheGeometry`]).
    pub fn with_ways(entries: u32, ways: u32) -> Self {
        TraceCache {
            tags: SetAssocCache::new(CacheGeometry::with_entries(entries, ways)),
            storage: HashMap::with_capacity(entries as usize),
            stats: TraceCacheStats::default(),
        }
    }

    /// Total entry capacity.
    pub fn capacity(&self) -> u32 {
        self.tags.geometry().entries()
    }

    /// Looks up a trace by identity, updating LRU state.
    ///
    /// A hash collision between distinct keys behaves like a miss
    /// (the stored trace's key is compared before it is returned), as
    /// a tag mismatch would in hardware.
    pub fn lookup(&mut self, key: TraceKey) -> Option<&Trace> {
        self.stats.lookups += 1;
        let h = key.hash64();
        if self.tags.access(h) {
            if let Some(t) = self.storage.get(&h) {
                if t.key() == key {
                    return Some(t);
                }
            }
        }
        self.stats.misses += 1;
        None
    }

    /// Whether a trace with this identity is resident (no LRU
    /// update, no stats).
    pub fn contains(&self, key: TraceKey) -> bool {
        let h = key.hash64();
        self.tags.probe(h) && self.storage.get(&h).is_some_and(|t| t.key() == key)
    }

    /// Inserts a trace, evicting the set's LRU entry when full.
    pub fn fill(&mut self, trace: Trace) {
        self.stats.fills += 1;
        let h = trace.key().hash64();
        if let Some(evicted) = self.tags.fill(h) {
            if evicted != h {
                self.storage.remove(&evicted);
                self.stats.evictions += 1;
            }
        }
        self.storage.insert(h, trace);
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> &TraceCacheStats {
        &self.stats
    }

    /// Resets counters (not contents) — used to separate warm-up
    /// from measurement.
    pub fn reset_stats(&mut self) {
        self.stats = TraceCacheStats::default();
    }

    /// Number of resident traces.
    pub fn occupancy(&self) -> usize {
        self.tags.occupancy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{PushResult, Resolution, TraceBuilder};
    use tpc_isa::{Addr, Op, Reg};

    /// Builds a one-branch trace starting at `start` with the given
    /// branch outcome, ending in a return.
    fn mk_trace(start: u32, taken: bool) -> Trace {
        let mut b = TraceBuilder::new(Addr::new(start));
        let branch = Op::Branch {
            cond: tpc_isa::BranchCond::Ne,
            rs1: Reg::new(1),
            rs2: Reg::new(2),
            target: Addr::new(start + 8),
        };
        let next = if taken { start + 8 } else { start + 1 };
        b.push(
            Addr::new(start),
            branch,
            Resolution::Branch { taken, next_pc: Addr::new(next) },
        );
        match b.push(Addr::new(next), Op::Return, Resolution::None) {
            PushResult::Complete(t) => t,
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut tc = TraceCache::new(64);
        let t = mk_trace(0, true);
        let key = t.key();
        assert!(tc.lookup(key).is_none());
        tc.fill(t);
        assert!(tc.lookup(key).is_some());
        assert_eq!(tc.stats().lookups, 2);
        assert_eq!(tc.stats().misses, 1);
    }

    #[test]
    fn same_start_different_path_are_distinct() {
        let mut tc = TraceCache::new(64);
        tc.fill(mk_trace(0, true));
        let other = mk_trace(0, false).key();
        assert!(tc.lookup(other).is_none(), "outcome bits are part of identity");
    }

    #[test]
    fn capacity_pressure_evicts() {
        let mut tc = TraceCache::new(4); // 2 sets × 2 ways
        for i in 0..32 {
            tc.fill(mk_trace(i * 16, true));
        }
        assert!(tc.occupancy() <= 4);
        assert!(tc.stats().evictions >= 28);
    }

    #[test]
    fn contains_does_not_count_stats() {
        let mut tc = TraceCache::new(64);
        let t = mk_trace(32, false);
        let key = t.key();
        tc.fill(t);
        assert!(tc.contains(key));
        assert_eq!(tc.stats().lookups, 0);
    }

    #[test]
    fn refill_updates_payload_without_eviction() {
        let mut tc = TraceCache::new(64);
        let t = mk_trace(0, true);
        let key = t.key();
        tc.fill(t.clone());
        tc.fill(t);
        assert_eq!(tc.stats().evictions, 0);
        assert!(tc.contains(key));
        assert_eq!(tc.occupancy(), 1);
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut tc = TraceCache::new(64);
        let t = mk_trace(16, true);
        let key = t.key();
        tc.fill(t);
        tc.reset_stats();
        assert_eq!(tc.stats().fills, 0);
        assert!(tc.contains(key));
    }
}
