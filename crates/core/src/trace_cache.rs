//! The trace cache.

use crate::slots::{probe_or_free, ProbeSlot};
use crate::trace::Trace;
use tpc_predict::TraceKey;

/// Counters kept by the trace cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceCacheStats {
    /// Lookups performed.
    pub lookups: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Traces inserted.
    pub fills: u64,
    /// Traces evicted by replacement.
    pub evictions: u64,
}

#[derive(Debug, Clone)]
struct Entry {
    /// Full identity hash — the tag.
    tag: u64,
    /// LRU stamp from the cache's clock.
    stamp: u64,
    trace: Trace,
}

/// The 2-way set-associative trace cache (paper Section 4.1: 64 to
/// 1024 entries, LRU replacement), indexed by a hash of the trace's
/// start address and branch outcomes.
///
/// Traces live directly in the ways of a flat slot array (tag and
/// payload side by side, as the hardware lays them out); a lookup is
/// one set-index computation plus a tag compare per way, with no
/// side map to keep in sync. Since [`Trace`] shares its instruction
/// storage (`Arc`), a fill stores a refcount bump, not a copy.
///
/// ```
/// use tpc_core::{TraceCache, TraceBuilder, Resolution, PushResult};
/// use tpc_isa::{Addr, Op, Reg};
///
/// let mut tc = TraceCache::new(64);
/// let mut b = TraceBuilder::new(Addr::new(0));
/// let trace = match b.push(Addr::new(0), Op::Halt, Resolution::None) {
///     PushResult::Complete(t) => t,
///     _ => unreachable!(),
/// };
/// let key = trace.key();
/// tc.fill(trace);
/// assert!(tc.lookup(key).is_some());
/// ```
#[derive(Debug, Clone)]
pub struct TraceCache {
    ways: u32,
    set_mask: u64,
    slots: Vec<Option<Entry>>,
    clock: u64,
    stats: TraceCacheStats,
}

impl TraceCache {
    /// Creates a trace cache with `entries` total entries, 2-way
    /// set-associative.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not an even power of two (so that
    /// `entries / 2` sets is a power of two).
    pub fn new(entries: u32) -> Self {
        Self::with_ways(entries, 2)
    }

    /// Creates a trace cache with explicit associativity.
    ///
    /// # Panics
    ///
    /// Panics if `entries` does not divide into a power-of-two number
    /// of sets of `ways`.
    pub fn with_ways(entries: u32, ways: u32) -> Self {
        assert!(
            ways > 0 && entries.is_multiple_of(ways),
            "entries must divide by ways"
        );
        let sets = entries / ways;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        TraceCache {
            ways,
            set_mask: sets as u64 - 1,
            slots: vec![None; entries as usize],
            clock: 0,
            stats: TraceCacheStats::default(),
        }
    }

    /// Total entry capacity.
    pub fn capacity(&self) -> u32 {
        self.slots.len() as u32
    }

    fn set_range(&self, tag: u64) -> std::ops::Range<usize> {
        let set = (tag & self.set_mask) as usize;
        let start = set * self.ways as usize;
        start..start + self.ways as usize
    }

    /// Looks up a trace by identity, updating LRU state.
    ///
    /// A hash collision between distinct keys behaves like a miss
    /// (the stored trace's key is compared before it is returned), as
    /// a tag mismatch would in hardware.
    pub fn lookup(&mut self, key: TraceKey) -> Option<&Trace> {
        self.stats.lookups += 1;
        self.clock += 1;
        let clock = self.clock;
        let h = key.hash64();
        let mut hit = None;
        for i in self.set_range(h) {
            if let Some(e) = &mut self.slots[i] {
                if e.tag == h {
                    // Tag match refreshes LRU even when the full key
                    // then disagrees (hardware stamps on tag match).
                    e.stamp = clock;
                    if e.trace.key() == key {
                        hit = Some(i);
                    }
                    break;
                }
            }
        }
        match hit {
            Some(i) => Some(&self.slots[i].as_ref().expect("tag matched").trace),
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Whether a trace with this identity is resident (no LRU
    /// update, no stats).
    pub fn contains(&self, key: TraceKey) -> bool {
        let h = key.hash64();
        let range = self.set_range(h);
        self.slots[range]
            .iter()
            .flatten()
            .any(|e| e.tag == h && e.trace.key() == key)
    }

    /// Inserts a trace, evicting the set's LRU entry when full.
    pub fn fill(&mut self, trace: Trace) {
        self.stats.fills += 1;
        self.clock += 1;
        let clock = self.clock;
        let h = trace.key().hash64();
        let range = self.set_range(h);
        let set = &mut self.slots[range];
        let ways = set.len();
        match probe_or_free(set, 0..ways, |e: &Entry| e.tag == h) {
            ProbeSlot::Match(i) | ProbeSlot::Free(i) => {
                set[i] = Some(Entry {
                    tag: h,
                    stamp: clock,
                    trace,
                });
            }
            ProbeSlot::Evict => {
                let victim = set
                    .iter_mut()
                    .min_by_key(|e| e.as_ref().map(|e| e.stamp).unwrap_or(0))
                    .expect("ways > 0");
                *victim = Some(Entry {
                    tag: h,
                    stamp: clock,
                    trace,
                });
                self.stats.evictions += 1;
            }
        }
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> &TraceCacheStats {
        &self.stats
    }

    /// Resets counters (not contents) — used to separate warm-up
    /// from measurement.
    pub fn reset_stats(&mut self) {
        self.stats = TraceCacheStats::default();
    }

    /// Number of resident traces.
    pub fn occupancy(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{PushResult, Resolution, TraceBuilder};
    use tpc_isa::{Addr, Op, Reg};

    /// Builds a one-branch trace starting at `start` with the given
    /// branch outcome, ending in a return.
    fn mk_trace(start: u32, taken: bool) -> Trace {
        let mut b = TraceBuilder::new(Addr::new(start));
        let branch = Op::Branch {
            cond: tpc_isa::BranchCond::Ne,
            rs1: Reg::new(1),
            rs2: Reg::new(2),
            target: Addr::new(start + 8),
        };
        let next = if taken { start + 8 } else { start + 1 };
        b.push(
            Addr::new(start),
            branch,
            Resolution::Branch {
                taken,
                next_pc: Addr::new(next),
            },
        );
        match b.push(Addr::new(next), Op::Return, Resolution::None) {
            PushResult::Complete(t) => t,
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut tc = TraceCache::new(64);
        let t = mk_trace(0, true);
        let key = t.key();
        assert!(tc.lookup(key).is_none());
        tc.fill(t);
        assert!(tc.lookup(key).is_some());
        assert_eq!(tc.stats().lookups, 2);
        assert_eq!(tc.stats().misses, 1);
    }

    #[test]
    fn same_start_different_path_are_distinct() {
        let mut tc = TraceCache::new(64);
        tc.fill(mk_trace(0, true));
        let other = mk_trace(0, false).key();
        assert!(
            tc.lookup(other).is_none(),
            "outcome bits are part of identity"
        );
    }

    #[test]
    fn capacity_pressure_evicts() {
        let mut tc = TraceCache::new(4); // 2 sets × 2 ways
        for i in 0..32 {
            tc.fill(mk_trace(i * 16, true));
        }
        assert!(tc.occupancy() <= 4);
        assert!(tc.stats().evictions >= 28);
    }

    #[test]
    fn contains_does_not_count_stats() {
        let mut tc = TraceCache::new(64);
        let t = mk_trace(32, false);
        let key = t.key();
        tc.fill(t);
        assert!(tc.contains(key));
        assert_eq!(tc.stats().lookups, 0);
    }

    #[test]
    fn refill_updates_payload_without_eviction() {
        let mut tc = TraceCache::new(64);
        let t = mk_trace(0, true);
        let key = t.key();
        tc.fill(t.clone());
        tc.fill(t);
        assert_eq!(tc.stats().evictions, 0);
        assert!(tc.contains(key));
        assert_eq!(tc.occupancy(), 1);
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut tc = TraceCache::new(64);
        let t = mk_trace(16, true);
        let key = t.key();
        tc.fill(t);
        tc.reset_stats();
        assert_eq!(tc.stats().fills, 0);
        assert!(tc.contains(key));
    }

    #[test]
    fn lru_eviction_prefers_least_recently_touched() {
        let mut tc = TraceCache::new(2); // 1 set × 2 ways
        let a = mk_trace(0, true);
        let b = mk_trace(16, true);
        let c = mk_trace(32, true);
        let (ka, kb) = (a.key(), b.key());
        tc.fill(a);
        tc.fill(b);
        tc.lookup(ka); // b becomes LRU
        tc.fill(c);
        assert!(tc.contains(ka));
        assert!(!tc.contains(kb), "LRU way was evicted");
        assert_eq!(tc.stats().evictions, 1);
    }

    #[test]
    fn filled_trace_shares_storage_with_source() {
        let mut tc = TraceCache::new(64);
        let t = mk_trace(0, true);
        let key = t.key();
        tc.fill(t.clone());
        let stored = tc.lookup(key).expect("resident");
        assert!(
            stored.shares_storage_with(&t),
            "a fill must store a refcount bump, not a copy"
        );
    }
}
