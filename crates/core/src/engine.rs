//! The preconstruction engine (paper Sections 2–3).
//!
//! The engine watches the processor's dispatch stream for region
//! start points (call return points and loop exits), keeps them on a
//! [`StartPointStack`], and — using the I-cache only on cycles when
//! the slow path leaves it idle — walks the static code of up to four
//! regions at a time through four parallel [`TraceConstructor`]s fed
//! by four [`PrefetchCache`]s, filing completed traces into the
//! [`crate::PreconBuffers`] that the processor probes alongside its trace
//! cache.
//!
//! A region terminates when: its work runs out (completed), the
//! processor catches up to its start point (aborted), its prefetch
//! cache fills (fetch bound), or a buffer fill is rejected by the
//! region-priority policy (buffer bound — the paper's primary
//! per-region resource bound).

use crate::constructor::{Step, TraceConstructor};
use crate::faults::EngineFault;
use crate::start_stack::{StartPointStack, StartReason};
use crate::storage::TraceStore;
use crate::trace::Trace;
use std::collections::{BTreeSet, VecDeque};
use tpc_isa::{Addr, Op, OpClass, Program};
use tpc_mem::{AccessKind, InstrCache, PrefetchCache};
use tpc_predict::{Bimodal, TraceKey};

/// Configuration of the preconstruction engine. Defaults are the
/// paper's (Section 4.1) with a 256-entry buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Master switch; a disabled engine does nothing and holds no
    /// buffers.
    pub enabled: bool,
    /// Preconstruction buffer entries (2-way set-associative). The
    /// engine does not allocate these itself — the processor sizes
    /// its [`crate::storage::SplitStore`] from this field.
    pub buffer_entries: u32,
    /// Number of prefetch caches = maximum concurrently-active
    /// regions.
    pub prefetch_caches: usize,
    /// Parallel trace constructors.
    pub constructors: usize,
    /// Capacity of each prefetch cache, in instructions.
    pub prefetch_capacity: u32,
    /// Region start-point stack depth.
    pub stack_depth: usize,
    /// Reserved completed-region entries on the stack.
    pub completed_entries: usize,
    /// Per-constructor internal decision-stack depth.
    pub decision_depth: usize,
    /// Instructions a constructor can decode per cycle.
    pub decode_width: u32,
    /// Trace start points a region worklist can hold.
    pub worklist_cap: usize,
    /// Run the preprocessing pipeline over preconstructed traces
    /// (extended pipeline model, Section 6).
    pub preprocess: bool,
    /// Seed loop-exit regions at all four phases of the mod-4
    /// alignment lattice instead of only the branch fall-through.
    /// Costs extra fetch/buffer resources; measured as an ablation.
    pub lattice_seed_loop_exits: bool,
    /// Remember the identity of every trace ever constructed
    /// (diagnostic; lets the simulator classify trace-cache misses
    /// into never-built vs. built-but-lost).
    pub track_built_keys: bool,
    /// I-cache lines the engine may fetch per idle cycle (the paper
    /// uses the single idle slow-path port: 1).
    pub fetch_width: u32,
    /// Record every start-point push and constructed trace into an
    /// activity log drained via [`PreconEngine::take_activity`]
    /// (conformance checking against the static enumeration; off in
    /// normal simulation).
    pub record_activity: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            enabled: true,
            buffer_entries: 256,
            prefetch_caches: 4,
            constructors: 4,
            prefetch_capacity: 256,
            stack_depth: 16,
            completed_entries: 4,
            decision_depth: 3,
            decode_width: 4,
            worklist_cap: 8,
            preprocess: false,
            lattice_seed_loop_exits: false,
            track_built_keys: false,
            fetch_width: 1,
            record_activity: false,
        }
    }
}

impl EngineConfig {
    /// A disabled engine (the no-preconstruction baseline).
    pub fn disabled() -> Self {
        EngineConfig {
            enabled: false,
            buffer_entries: 0,
            ..EngineConfig::default()
        }
    }
}

/// Counters kept by the engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Regions popped from the start-point stack and explored.
    pub regions_started: u64,
    /// Regions whose work completed normally.
    pub regions_completed: u64,
    /// Regions aborted because the processor reached them.
    pub regions_caught_up: u64,
    /// Regions terminated by a full prefetch cache.
    pub regions_fetch_bound: u64,
    /// Regions terminated by a rejected buffer fill.
    pub regions_buffer_bound: u64,
    /// Traces constructed (including duplicates of cached traces).
    pub traces_built: u64,
    /// Constructed traces discarded because the trace cache already
    /// held them.
    pub traces_already_cached: u64,
    /// Successor start points dropped by the worklist bound.
    pub successors_dropped: u64,
    /// I-cache lines fetched on behalf of preconstruction.
    pub lines_fetched: u64,
    /// Start points observed at dispatch (pre-deduplication).
    pub start_points_observed: u64,
}

/// One observable engine action, recorded when
/// [`EngineConfig::record_activity`] is set. The differential oracle
/// drains these with [`PreconEngine::take_activity`] and checks each
/// against the static enumeration computed by `tpc-analysis`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineActivity {
    /// A region start point was offered to the start-point stack
    /// (recorded whether or not deduplication accepted it).
    StartPointPushed {
        /// The region start address (instruction after the call or
        /// backward branch that triggered it).
        addr: Addr,
        /// Why the start point was pushed.
        reason: StartReason,
        /// Dispatch sequence number of the triggering instruction.
        seq: u64,
    },
    /// A constructor completed a trace (recorded before the
    /// duplicate-suppression and buffer-fill steps, so dropped traces
    /// are checked too).
    TraceEmitted(Trace),
}

#[derive(Debug)]
struct Region {
    id: u64,
    start: Addr,
    prefetch: PrefetchCache,
    worklist: VecDeque<Addr>,
    seen: BTreeSet<Addr>,
    /// Line address a constructor is stalled on.
    want_line: Option<Addr>,
    /// In-flight line fetch: (address, cycle it arrives).
    pending: Option<(Addr, u64)>,
}

/// The preconstruction engine. See the module docs for the overall
/// flow; drive it with one [`PreconEngine::tick`] per processor
/// cycle plus the dispatch/retire/squash observation hooks.
#[derive(Debug)]
pub struct PreconEngine {
    config: EngineConfig,
    stack: StartPointStack,
    regions: Vec<Option<Region>>,
    constructors: Vec<TraceConstructor>,
    /// Region slot each constructor works for.
    assignment: Vec<Option<usize>>,
    /// Remaining fault-injected stall cycles per constructor.
    stalls: Vec<u32>,
    next_region_id: u64,
    stats: EngineStats,
    built_keys: BTreeSet<u64>,
    activity: Vec<EngineActivity>,
}

impl PreconEngine {
    /// Creates an engine. The engine does not own the trace storage:
    /// the preconstruction buffers (or the unified store's
    /// preconstruction ways) are passed into [`PreconEngine::tick`]
    /// by the processor, which probes them in parallel with its trace
    /// cache.
    pub fn new(config: EngineConfig) -> Self {
        PreconEngine {
            stack: StartPointStack::new(config.stack_depth.max(1), config.completed_entries),
            regions: (0..config.prefetch_caches).map(|_| None).collect(),
            constructors: (0..config.constructors)
                .map(|_| TraceConstructor::new(config.decision_depth))
                .collect(),
            assignment: vec![None; config.constructors],
            stalls: vec![0; config.constructors],
            next_region_id: 1,
            stats: EngineStats::default(),
            built_keys: BTreeSet::new(),
            activity: Vec::new(),
            config,
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Whether a trace with this identity was ever constructed
    /// (only meaningful with `track_built_keys` enabled).
    pub fn was_ever_built(&self, key: TraceKey) -> bool {
        self.built_keys.contains(&key.hash64())
    }

    /// Read access to the region start-point stack (occupancy,
    /// counters) for diagnostics and invariant checking.
    pub fn start_stack(&self) -> &StartPointStack {
        &self.stack
    }

    /// Drains the activity log accumulated since the last call.
    /// Always empty unless [`EngineConfig::record_activity`] is set.
    pub fn take_activity(&mut self) -> Vec<EngineActivity> {
        std::mem::take(&mut self.activity)
    }

    /// Checks the engine's structural invariants: the start stack
    /// within its configured 16 + 4 bound, every constructor
    /// assignment pointing at a live region slot, and region
    /// worklists within their configured cap. Called by the
    /// differential oracle after every simulation chunk.
    pub fn check_invariants(&self) -> Result<(), String> {
        self.stack.check_invariants()?;
        if self.stack.depth() != self.config.stack_depth.max(1)
            || self.stack.completed_capacity() != self.config.completed_entries
        {
            return Err(format!(
                "start stack shape {}+{} differs from configured {}+{}",
                self.stack.depth(),
                self.stack.completed_capacity(),
                self.config.stack_depth.max(1),
                self.config.completed_entries
            ));
        }
        if self.regions.len() != self.config.prefetch_caches {
            return Err(format!(
                "{} region slots but {} prefetch caches configured",
                self.regions.len(),
                self.config.prefetch_caches
            ));
        }
        for (c, a) in self.assignment.iter().enumerate() {
            if let Some(slot) = a {
                if *slot >= self.regions.len() {
                    return Err(format!(
                        "constructor {c} assigned to out-of-range region slot {slot}"
                    ));
                }
            }
        }
        // Lattice seeding may plant up to ALIGN_QUANTUM initial
        // entries, so the bound is the max of the two.
        let worklist_bound = self.config.worklist_cap.max(crate::trace::ALIGN_QUANTUM);
        for region in self.regions.iter().flatten() {
            if region.worklist.len() > worklist_bound {
                return Err(format!(
                    "region {} worklist holds {} entries, cap is {}",
                    region.id,
                    region.worklist.len(),
                    worklist_bound
                ));
            }
        }
        Ok(())
    }

    /// Observes one dispatched instruction (speculative stream).
    ///
    /// Pushes region start points for calls and backward branches and
    /// aborts regions the processor has caught up with.
    pub fn observe_dispatch(&mut self, pc: Addr, op: &Op, seq: u64) {
        if !self.config.enabled {
            return;
        }
        match op.class() {
            OpClass::Call => {
                self.stats.start_points_observed += 1;
                if self.config.record_activity {
                    self.activity.push(EngineActivity::StartPointPushed {
                        addr: pc.next(),
                        reason: StartReason::CallReturn,
                        seq,
                    });
                }
                self.stack.push(pc.next(), StartReason::CallReturn, seq);
            }
            OpClass::Branch if op.is_backward_branch(pc) => {
                self.stats.start_points_observed += 1;
                if self.config.record_activity {
                    self.activity.push(EngineActivity::StartPointPushed {
                        addr: pc.next(),
                        reason: StartReason::LoopExit,
                        seq,
                    });
                }
                self.stack.push(pc.next(), StartReason::LoopExit, seq);
            }
            _ => {}
        }
        // Catch-up: the processor reached a region being explored.
        for i in 0..self.regions.len() {
            if self.regions[i].as_ref().is_some_and(|r| r.start == pc) {
                self.retire_region(i, RegionEnd::CaughtUp);
            }
        }
    }

    /// Observes one retired instruction (architectural stream):
    /// start points whose region execution reached are removed.
    pub fn observe_retire(&mut self, pc: Addr) {
        if self.config.enabled {
            self.stack.on_retire(pc);
        }
    }

    /// Removes start points planted by squashed (wrong-path)
    /// dispatches.
    pub fn squash_younger_than(&mut self, seq: u64) {
        if self.config.enabled {
            self.stack.squash_younger_than(seq);
        }
    }

    /// Advances the engine by one cycle.
    ///
    /// `slow_path_idle` must be true only on cycles where the
    /// processor's slow path is not using the I-cache — the engine
    /// fetches at most one line per such cycle (paper Section 2:
    /// preconstruction borrows idle slow-path hardware).
    pub fn tick(
        &mut self,
        cycle: u64,
        slow_path_idle: bool,
        program: &Program,
        icache: &mut InstrCache,
        bimodal: &Bimodal,
        store: &mut dyn TraceStore,
    ) {
        if !self.config.enabled {
            return;
        }
        self.activate_regions();
        self.land_pending_fetches(cycle);
        if slow_path_idle {
            for _ in 0..self.config.fetch_width {
                self.issue_line_fetch(cycle, icache);
            }
        }
        self.run_constructors(program, bimodal, store);
        self.complete_quiet_regions();
    }

    /// Pops start points into free region slots.
    fn activate_regions(&mut self) {
        for slot in self.regions.iter_mut() {
            if slot.is_some() {
                continue;
            }
            let Some(sp) = self.stack.pop() else { break };
            // Loop-exit regions are seeded at all four phases of the
            // mod-4 alignment lattice: the processor's trace that
            // straddles the loop exit ends a multiple of four
            // instructions past the backward branch, so its next
            // trace starts at `addr + 4k` for some k — seeding every
            // phase guarantees one seed lands on the lattice the
            // processor will actually use (paper Section 2.2).
            let seeds: Vec<Addr> = match sp.reason {
                crate::start_stack::StartReason::LoopExit
                    if self.config.lattice_seed_loop_exits =>
                {
                    (0..crate::trace::ALIGN_QUANTUM as u32)
                        .map(|k| sp.addr + k * crate::trace::ALIGN_QUANTUM as u32)
                        .collect()
                }
                _ => vec![sp.addr],
            };
            let seen: BTreeSet<Addr> = seeds.iter().copied().collect();
            *slot = Some(Region {
                id: self.next_region_id,
                start: sp.addr,
                prefetch: PrefetchCache::new(self.config.prefetch_capacity),
                worklist: VecDeque::from(seeds),
                seen,
                want_line: None,
                pending: None,
            });
            self.next_region_id += 1;
            self.stats.regions_started += 1;
        }
    }

    /// Moves arrived line fetches into their prefetch caches.
    fn land_pending_fetches(&mut self, cycle: u64) {
        for i in 0..self.regions.len() {
            let Some(region) = self.regions[i].as_mut() else {
                continue;
            };
            if let Some((addr, ready)) = region.pending {
                if cycle >= ready {
                    region.pending = None;
                    if !region.prefetch.insert_line(addr) {
                        self.retire_region(i, RegionEnd::FetchBound);
                    }
                }
            }
        }
    }

    /// Issues at most one I-cache line fetch for the newest region
    /// that is stalled waiting for a line.
    fn issue_line_fetch(&mut self, cycle: u64, icache: &mut InstrCache) {
        let candidate = self
            .regions
            .iter_mut()
            .flatten()
            .filter(|r| r.pending.is_none() && r.want_line.is_some())
            .max_by_key(|r| r.id);
        if let Some(region) = candidate {
            let addr = region.want_line.take().expect("filtered on is_some");
            let line_base = InstrCache::line_base(addr);
            let res = icache.fetch(line_base, AccessKind::Precon);
            region.pending = Some((line_base, cycle + res.latency as u64));
            self.stats.lines_fetched += 1;
        }
    }

    /// Steps every constructor up to `decode_width` instructions.
    fn run_constructors(
        &mut self,
        program: &Program,
        bimodal: &Bimodal,
        store: &mut dyn TraceStore,
    ) {
        for c in 0..self.constructors.len() {
            if self.stalls[c] > 0 {
                self.stalls[c] -= 1;
                continue;
            }
            let mut budget = self.config.decode_width;
            while budget > 0 {
                // (Re)assign idle constructors to the newest region
                // with pending work.
                if self.constructors[c].is_idle() && !self.assign_work(c) {
                    break;
                }
                let Some(slot) = self.assignment[c] else {
                    break;
                };
                let Some(region) = self.regions[slot].as_ref() else {
                    self.assignment[c] = None;
                    continue;
                };
                match self.constructors[c].step(program, &region.prefetch, bimodal) {
                    Step::Advanced => budget -= 1,
                    Step::NeedLine(addr) => {
                        let region = self.regions[slot].as_mut().expect("checked above");
                        if region.prefetch.is_full() {
                            self.retire_region(slot, RegionEnd::FetchBound);
                        } else {
                            region.want_line = Some(addr);
                        }
                        break;
                    }
                    Step::TraceDone(trace) => {
                        budget = budget.saturating_sub(1);
                        self.file_trace(c, slot, *trace, program, store);
                    }
                    Step::Idle => {
                        self.assignment[c] = None;
                    }
                }
            }
        }
    }

    /// Handles a completed trace: queue its successor, store it in
    /// the buffers (unless already cached), resume alternatives.
    fn file_trace(
        &mut self,
        ctor: usize,
        slot: usize,
        trace: Trace,
        program: &Program,
        store: &mut dyn TraceStore,
    ) {
        self.stats.traces_built += 1;
        if self.config.record_activity {
            self.activity
                .push(EngineActivity::TraceEmitted(trace.clone()));
        }
        debug_assert!(
            trace.validate_against(program).is_ok(),
            "constructed trace diverges from static code: {:?}",
            trace.validate_against(program)
        );
        if self.config.track_built_keys {
            self.built_keys.insert(trace.key().hash64());
        }
        let region_id;
        {
            let Some(region) = self.regions[slot].as_mut() else {
                return;
            };
            region_id = region.id;
            if let Some(succ) = trace.successor() {
                if !region.seen.contains(&succ) {
                    if region.worklist.len() < self.config.worklist_cap {
                        region.seen.insert(succ);
                        region.worklist.push_back(succ);
                    } else {
                        self.stats.successors_dropped += 1;
                    }
                }
            }
        }
        if store.contains_cached(trace.key()) {
            self.stats.traces_already_cached += 1;
        } else {
            let mut trace = trace;
            if self.config.preprocess {
                let info = crate::preprocess::preprocess(&trace);
                trace.set_preprocess(info);
            }
            if !store.fill_precon(trace, region_id) {
                // Buffer bound: the primary per-region resource limit.
                self.retire_region(slot, RegionEnd::BufferBound);
                return;
            }
        }
        if !self.constructors[ctor].backtrack(program) {
            self.assignment[ctor] = None;
        }
    }

    /// Finds work for an idle constructor: the newest region with a
    /// non-empty worklist. Returns false when no work exists.
    fn assign_work(&mut self, ctor: usize) -> bool {
        let slot = self
            .regions
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.as_ref().map(|r| (i, r)))
            .filter(|(_, r)| !r.worklist.is_empty())
            .max_by_key(|(_, r)| r.id)
            .map(|(i, _)| i);
        let Some(slot) = slot else {
            self.assignment[ctor] = None;
            return false;
        };
        let region = self.regions[slot].as_mut().expect("selected above");
        let start = region.worklist.pop_front().expect("non-empty");
        self.constructors[ctor].start(start);
        self.assignment[ctor] = Some(slot);
        true
    }

    /// Frees regions with no remaining work.
    fn complete_quiet_regions(&mut self) {
        for i in 0..self.regions.len() {
            let quiet = {
                let Some(region) = self.regions[i].as_ref() else {
                    continue;
                };
                region.worklist.is_empty()
                    && region.pending.is_none()
                    && region.want_line.is_none()
                    && !self
                        .assignment
                        .iter()
                        .zip(&self.constructors)
                        .any(|(a, c)| *a == Some(i) && !c.is_idle())
            };
            if quiet {
                self.retire_region(i, RegionEnd::Completed);
            }
        }
    }

    /// Applies one injected engine fault. Returns whether the fault
    /// landed on live state (a fault drawn against an idle engine is
    /// a no-op and counts as not landed).
    ///
    /// Every perturbation stays inside the engine's structural
    /// invariants: a dropped fill restores the region's `want_line`
    /// so the fetch is simply re-issued, a killed constructor aborts
    /// through the same path a caught-up region uses, and stack
    /// pops/squashes only discard hint entries — none of this can
    /// reach architectural state, which is the property the
    /// differential oracle checks end to end.
    pub fn apply_fault(&mut self, fault: EngineFault) -> bool {
        if !self.config.enabled {
            return false;
        }
        match fault {
            EngineFault::DropPrefetchFill { salt } => {
                let Some(slot) = self.pick_pending_region(salt) else {
                    return false;
                };
                let region = self.regions[slot].as_mut().expect("picked live");
                let (addr, _) = region.pending.take().expect("picked pending");
                region.want_line = Some(addr);
                true
            }
            EngineFault::DelayPrefetchFill { salt, extra } => {
                let Some(slot) = self.pick_pending_region(salt) else {
                    return false;
                };
                let region = self.regions[slot].as_mut().expect("picked live");
                let (_, ready) = region.pending.as_mut().expect("picked pending");
                *ready += extra;
                true
            }
            EngineFault::StallConstructor { salt, cycles } => {
                let Some(c) = self.pick_busy_constructor(salt) else {
                    return false;
                };
                self.stalls[c] = self.stalls[c].max(cycles);
                true
            }
            EngineFault::KillConstructor { salt } => {
                let Some(c) = self.pick_busy_constructor(salt) else {
                    return false;
                };
                self.constructors[c].abort();
                self.assignment[c] = None;
                true
            }
            EngineFault::PopStartPoint => self.stack.pop().is_some(),
            EngineFault::SquashStartStack { salt } => {
                let len = self.stack.len();
                if len == 0 {
                    return false;
                }
                self.stack.squash_to_depth(salt as usize % len) > 0
            }
        }
    }

    /// Salt-chosen region slot with an in-flight line fetch.
    fn pick_pending_region(&self, salt: u64) -> Option<usize> {
        let pending: Vec<usize> = (0..self.regions.len())
            .filter(|&i| {
                self.regions[i]
                    .as_ref()
                    .is_some_and(|r| r.pending.is_some())
            })
            .collect();
        (!pending.is_empty()).then(|| pending[salt as usize % pending.len()])
    }

    /// Salt-chosen constructor that is currently mid-trace.
    fn pick_busy_constructor(&self, salt: u64) -> Option<usize> {
        let busy: Vec<usize> = (0..self.constructors.len())
            .filter(|&c| !self.constructors[c].is_idle())
            .collect();
        (!busy.is_empty()).then(|| busy[salt as usize % busy.len()])
    }

    fn retire_region(&mut self, slot: usize, end: RegionEnd) {
        let Some(region) = self.regions[slot].take() else {
            return;
        };
        match end {
            RegionEnd::Completed => self.stats.regions_completed += 1,
            RegionEnd::CaughtUp => self.stats.regions_caught_up += 1,
            RegionEnd::FetchBound => self.stats.regions_fetch_bound += 1,
            RegionEnd::BufferBound => self.stats.regions_buffer_bound += 1,
        }
        self.stack.mark_completed(region.start);
        for (c, a) in self.assignment.iter_mut().enumerate() {
            if *a == Some(slot) {
                self.constructors[c].abort();
                *a = None;
            }
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RegionEnd {
    Completed,
    CaughtUp,
    FetchBound,
    BufferBound,
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpc_isa::model::OutcomeModel;
    use tpc_isa::{BranchCond, ProgramBuilder, Reg};
    use tpc_mem::InstrCacheConfig;

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }

    /// A call site whose callee returns, with post-return code ending
    /// in halt — the canonical Region-1 shape from the paper's
    /// example.
    fn call_program() -> Program {
        let mut b = ProgramBuilder::new();
        let call_at = b.push(Op::Nop); // patched to call f
                                       // Return point: post-call region (the region start point).
        for _ in 0..6 {
            b.push(Op::AddImm {
                rd: r(1),
                rs1: r(1),
                imm: 1,
            });
        }
        b.push(Op::Halt);
        let f = b.here();
        b.push(Op::AddImm {
            rd: r(2),
            rs1: r(2),
            imm: 1,
        });
        b.push(Op::Return);
        b.patch(call_at, Op::Call { target: f });
        b.build().unwrap()
    }

    use crate::storage::SplitStore;

    fn harness() -> (InstrCache, Bimodal, SplitStore) {
        (
            InstrCache::new(InstrCacheConfig::default()),
            Bimodal::new(1024),
            SplitStore::new(64, 256),
        )
    }

    fn drive(engine: &mut PreconEngine, program: &Program, cycles: u64) -> SplitStore {
        let (mut ic, bim, mut store) = harness();
        for cycle in 0..cycles {
            engine.tick(cycle, true, program, &mut ic, &bim, &mut store);
        }
        store
    }

    #[test]
    fn call_dispatch_spawns_region_and_builds_traces() {
        let p = call_program();
        let mut e = PreconEngine::new(EngineConfig::default());
        // The processor dispatches the call at address 0.
        e.observe_dispatch(Addr::new(0), p.fetch(Addr::new(0)).unwrap(), 1);
        let store = drive(&mut e, &p, 100);
        assert_eq!(e.stats().regions_started, 1);
        assert!(e.stats().traces_built >= 1);
        assert!(store.buffers().occupancy() >= 1);
    }

    #[test]
    fn preconstructed_trace_is_fetchable_by_key() {
        let p = call_program();
        let mut e = PreconEngine::new(EngineConfig::default());
        e.observe_dispatch(Addr::new(0), p.fetch(Addr::new(0)).unwrap(), 1);
        let mut store = drive(&mut e, &p, 200);
        // The region starts at the return point (address 1) and the
        // first trace runs to the halt: find it by reconstructing the
        // expected key (straight-line: no branches).
        let key = TraceKey {
            start: Addr::new(1),
            branch_count: 0,
            outcomes: 0,
        };
        let fetched = store.fetch(key);
        assert!(fetched.hit, "trace from the post-call region present");
        assert!(fetched.from_precon);
    }

    #[test]
    fn backward_branch_spawns_loop_exit_region() {
        let mut b = ProgramBuilder::new();
        let top = b.push(Op::AddImm {
            rd: r(1),
            rs1: r(1),
            imm: 1,
        });
        b.push_branch(
            Op::Branch {
                cond: BranchCond::Ne,
                rs1: r(1),
                rs2: r(2),
                target: top,
            },
            OutcomeModel::Loop { trip: 10 },
        );
        for _ in 0..4 {
            b.push(Op::AddImm {
                rd: r(3),
                rs1: r(3),
                imm: 1,
            });
        }
        b.push(Op::Halt);
        let p = b.build().unwrap();
        let mut e = PreconEngine::new(EngineConfig::default());
        let br_pc = Addr::new(1);
        e.observe_dispatch(br_pc, p.fetch(br_pc).unwrap(), 1);
        let mut store = drive(&mut e, &p, 100);
        assert_eq!(e.stats().regions_started, 1);
        // The loop-exit region starts at the branch fall-through.
        let key = TraceKey {
            start: Addr::new(2),
            branch_count: 0,
            outcomes: 0,
        };
        assert!(store.fetch(key).hit);
    }

    #[test]
    fn catch_up_aborts_region() {
        let p = call_program();
        let mut e = PreconEngine::new(EngineConfig::default());
        e.observe_dispatch(Addr::new(0), p.fetch(Addr::new(0)).unwrap(), 1);
        // Activate the region but give it no cycles to finish.
        let (mut ic, bim, mut store) = harness();
        e.tick(0, false, &p, &mut ic, &bim, &mut store);
        assert_eq!(e.stats().regions_started, 1);
        // The processor dispatches the region's start instruction.
        e.observe_dispatch(Addr::new(1), p.fetch(Addr::new(1)).unwrap(), 2);
        assert_eq!(e.stats().regions_caught_up, 1);
    }

    #[test]
    fn completed_region_not_restarted() {
        let p = call_program();
        let mut e = PreconEngine::new(EngineConfig::default());
        e.observe_dispatch(Addr::new(0), p.fetch(Addr::new(0)).unwrap(), 1);
        drive(&mut e, &p, 300);
        let started = e.stats().regions_started;
        assert!(e.stats().regions_completed >= 1);
        // The same call dispatches again: completed-region memory
        // suppresses the re-push.
        e.observe_dispatch(Addr::new(0), p.fetch(Addr::new(0)).unwrap(), 2);
        drive(&mut e, &p, 100);
        assert_eq!(e.stats().regions_started, started);
    }

    #[test]
    fn disabled_engine_is_inert() {
        let p = call_program();
        let mut e = PreconEngine::new(EngineConfig::disabled());
        e.observe_dispatch(Addr::new(0), p.fetch(Addr::new(0)).unwrap(), 1);
        drive(&mut e, &p, 100);
        assert_eq!(e.stats().regions_started, 0);
        assert_eq!(e.stats().traces_built, 0);
    }

    #[test]
    fn fetches_gated_by_slow_path_idle() {
        let p = call_program();
        let mut e = PreconEngine::new(EngineConfig::default());
        e.observe_dispatch(Addr::new(0), p.fetch(Addr::new(0)).unwrap(), 1);
        let (mut ic, bim, mut store) = harness();
        for cycle in 0..50 {
            e.tick(cycle, false, &p, &mut ic, &bim, &mut store); // never idle
        }
        assert_eq!(
            e.stats().lines_fetched,
            0,
            "no fetches while slow path busy"
        );
        assert_eq!(e.stats().traces_built, 0);
    }

    #[test]
    fn preprocess_flag_annotates_traces() {
        let p = call_program();
        let mut e = PreconEngine::new(EngineConfig {
            preprocess: true,
            ..EngineConfig::default()
        });
        e.observe_dispatch(Addr::new(0), p.fetch(Addr::new(0)).unwrap(), 1);
        let mut store = drive(&mut e, &p, 200);
        let key = TraceKey {
            start: Addr::new(1),
            branch_count: 0,
            outcomes: 0,
        };
        let f = store.fetch(key);
        assert!(f.hit, "trace built");
        assert!(f.preprocess.is_some());
    }

    #[test]
    fn faults_on_idle_or_disabled_engine_do_not_land() {
        let mut disabled = PreconEngine::new(EngineConfig::disabled());
        assert!(!disabled.apply_fault(EngineFault::PopStartPoint));
        let mut idle = PreconEngine::new(EngineConfig::default());
        for fault in [
            EngineFault::DropPrefetchFill { salt: 7 },
            EngineFault::DelayPrefetchFill { salt: 7, extra: 3 },
            EngineFault::StallConstructor { salt: 7, cycles: 3 },
            EngineFault::KillConstructor { salt: 7 },
            EngineFault::PopStartPoint,
            EngineFault::SquashStartStack { salt: 7 },
        ] {
            assert!(!idle.apply_fault(fault), "{fault:?} landed on idle engine");
        }
    }

    #[test]
    fn pop_and_squash_faults_drain_the_stack() {
        let p = call_program();
        let mut e = PreconEngine::new(EngineConfig::default());
        e.observe_dispatch(Addr::new(0), p.fetch(Addr::new(0)).unwrap(), 1);
        assert_eq!(e.start_stack().len(), 1);
        assert!(e.apply_fault(EngineFault::PopStartPoint));
        assert_eq!(e.start_stack().len(), 0);
        e.observe_dispatch(Addr::new(0), p.fetch(Addr::new(0)).unwrap(), 2);
        assert!(e.apply_fault(EngineFault::SquashStartStack { salt: 0 }));
        assert_eq!(e.start_stack().len(), 0);
    }

    #[test]
    fn kill_constructor_aborts_but_engine_recovers() {
        let p = call_program();
        let mut e = PreconEngine::new(EngineConfig::default());
        e.observe_dispatch(Addr::new(0), p.fetch(Addr::new(0)).unwrap(), 1);
        let (mut ic, bim, mut store) = harness();
        // Run until a constructor is demonstrably busy, then kill it.
        let mut landed = false;
        for cycle in 0..300 {
            e.tick(cycle, true, &p, &mut ic, &bim, &mut store);
            if !landed && cycle == 20 {
                landed = e.apply_fault(EngineFault::KillConstructor { salt: 3 });
            }
        }
        assert!(e.check_invariants().is_ok());
        // The region either still completed (worklist re-dispatch) or
        // was retired through a normal path — no constructor wedged.
        assert!(e.stats().traces_built >= 1);
    }

    #[test]
    fn stall_fault_freezes_constructor_for_n_cycles() {
        let p = call_program();
        let mut e = PreconEngine::new(EngineConfig::default());
        e.observe_dispatch(Addr::new(0), p.fetch(Addr::new(0)).unwrap(), 1);
        let (mut ic, bim, mut store) = harness();
        for cycle in 0..10 {
            e.tick(cycle, true, &p, &mut ic, &bim, &mut store);
        }
        let stalled = e.apply_fault(EngineFault::StallConstructor { salt: 1, cycles: 5 });
        for cycle in 10..300 {
            e.tick(cycle, true, &p, &mut ic, &bim, &mut store);
        }
        // Whether or not the stall landed (depends on timing), the
        // engine must still finish its work.
        let _ = stalled;
        assert!(e.stats().traces_built >= 1);
        assert!(e.check_invariants().is_ok());
    }

    #[test]
    fn drop_fill_fault_refetches_and_completes() {
        let p = call_program();
        let mut e = PreconEngine::new(EngineConfig::default());
        e.observe_dispatch(Addr::new(0), p.fetch(Addr::new(0)).unwrap(), 1);
        let (mut ic, bim, mut store) = harness();
        let mut drops = 0;
        for cycle in 0..400 {
            e.tick(cycle, true, &p, &mut ic, &bim, &mut store);
            // Hammer the drop fault every cycle for a while: each
            // drop restores want_line, so fetches are re-issued and
            // progress is delayed, never lost.
            if cycle < 30 && e.apply_fault(EngineFault::DropPrefetchFill { salt: cycle }) {
                drops += 1;
            }
        }
        assert!(drops > 0, "at least one in-flight fill was dropped");
        assert!(e.stats().traces_built >= 1, "engine still completes");
        assert!(e.check_invariants().is_ok());
    }

    #[test]
    fn already_cached_traces_are_not_buffered() {
        let p = call_program();
        let mut e = PreconEngine::new(EngineConfig::default());
        e.observe_dispatch(Addr::new(0), p.fetch(Addr::new(0)).unwrap(), 1);
        // First run builds the trace and a fetch promotes it into
        // the trace-cache side of the store.
        let (mut ic, bim, mut store) = harness();
        for cycle in 0..200 {
            e.tick(cycle, true, &p, &mut ic, &bim, &mut store);
        }
        let key = TraceKey {
            start: Addr::new(1),
            branch_count: 0,
            outcomes: 0,
        };
        assert!(store.fetch(key).hit, "built and promoted");
        // Second engine run with the trace now cached: the duplicate
        // check suppresses re-buffering.
        let mut e2 = PreconEngine::new(EngineConfig::default());
        e2.observe_dispatch(Addr::new(0), p.fetch(Addr::new(0)).unwrap(), 1);
        for cycle in 0..200 {
            e2.tick(cycle, true, &p, &mut ic, &bim, &mut store);
        }
        assert!(e2.stats().traces_already_cached >= 1);
        let again = store.fetch(key);
        assert!(
            again.hit && !again.from_precon,
            "supplied by the cache, not the buffers"
        );
    }
}
