//! Traces and the shared trace-selection rules.

use std::sync::Arc;
use tpc_isa::{Addr, Op, OpClass};
use tpc_predict::{TraceEnd, TraceKey};

/// Maximum trace length in instructions (paper Section 4.1).
pub const MAX_TRACE_LEN: usize = 16;

/// Number of instructions past a backward branch at which a trace is
/// forced to end (the alignment heuristic of paper Section 2.2).
pub const ALIGN_QUANTUM: usize = 4;

/// One instruction inside a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceInstr {
    /// The instruction's static address.
    pub pc: Addr,
    /// The instruction.
    pub op: Op,
}

/// Why a [`TraceBuilder`] terminated its trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceStop {
    /// Reached [`MAX_TRACE_LEN`].
    Full,
    /// Ended at a `ret` (trace-processor selection rule).
    Return,
    /// Ended at an indirect jump (target unknown to preconstruction).
    IndirectJump,
    /// Ended at `halt`.
    Halt,
    /// Ended on the mod-4 alignment boundary past a backward branch.
    Alignment,
}

/// A completed trace: a snapshot of up to 16 dynamic instructions.
///
/// Identity is carried by its [`TraceKey`] (start address plus
/// embedded conditional-branch outcomes); [`Trace::successor`] is the
/// address of the instruction that follows the trace along the path
/// it encodes — the next trace's start point — when that address is
/// statically known.
///
/// The instruction snapshot and preprocessing annotations live behind
/// [`Arc`]s: cloning a trace — a trace-cache fill, a
/// preconstruction-buffer promotion, a dispatch-stream handoff — is a
/// refcount bump, mirroring hardware where these movements are wire
/// transfers of the same lines, not fresh copies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    instrs: Arc<[TraceInstr]>,
    key: TraceKey,
    end: TraceEnd,
    stop: TraceStop,
    successor: Option<Addr>,
    preprocess: Option<Arc<crate::preprocess::PreprocessInfo>>,
}

impl Trace {
    /// The trace's identity.
    #[inline]
    pub fn key(&self) -> TraceKey {
        self.key
    }

    /// Instructions in dynamic order.
    pub fn instrs(&self) -> &[TraceInstr] {
        &self.instrs
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the trace is empty (never true for built traces).
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Start address.
    pub fn start(&self) -> Addr {
        self.key.start
    }

    /// How the trace ends, for the next-trace predictor's return
    /// history stack.
    pub fn end(&self) -> TraceEnd {
        self.end
    }

    /// Why trace selection stopped here.
    pub fn stop(&self) -> TraceStop {
        self.stop
    }

    /// The address of the next instruction after the trace along the
    /// encoded path, when statically known (unknown after returns
    /// whose call site was not observed, and after indirect jumps).
    pub fn successor(&self) -> Option<Addr> {
        self.successor
    }

    /// The outcome of the `i`-th conditional branch in the trace.
    pub fn branch_outcome(&self, i: u8) -> Option<bool> {
        (i < self.key.branch_count).then(|| (self.key.outcomes >> i) & 1 == 1)
    }

    /// Preprocessing annotations, when the trace went through the
    /// preprocessing pipeline (see [`mod@crate::preprocess`]).
    pub fn preprocess_info(&self) -> Option<&crate::preprocess::PreprocessInfo> {
        self.preprocess.as_deref()
    }

    /// Shared handle to the preprocessing annotations, for callers
    /// that forward them to another trace instance without copying.
    pub fn preprocess_shared(&self) -> Option<Arc<crate::preprocess::PreprocessInfo>> {
        self.preprocess.clone()
    }

    /// Attaches preprocessing annotations (idempotent; later calls
    /// replace earlier ones).
    pub fn set_preprocess(&mut self, info: crate::preprocess::PreprocessInfo) {
        self.preprocess = Some(Arc::new(info));
    }

    /// Attaches already-shared preprocessing annotations (a refcount
    /// bump, used when a stored trace's annotations are carried over
    /// to the fetched instance).
    pub fn set_preprocess_arc(&mut self, info: Arc<crate::preprocess::PreprocessInfo>) {
        self.preprocess = Some(info);
    }

    /// Whether two trace instances share the same underlying
    /// instruction storage (diagnostics for the zero-copy invariant).
    pub fn shares_storage_with(&self, other: &Trace) -> bool {
        Arc::ptr_eq(&self.instrs, &other.instrs)
    }

    /// Validates the trace against the static code it claims to
    /// snapshot — the differential oracle's conservation invariant
    /// for every trace-cache hit, and a debug assertion on every
    /// constructed trace:
    ///
    /// * every instruction appears verbatim at its address in the
    ///   program;
    /// * consecutive instructions follow the encoded path (branch
    ///   outcomes from the key, static targets for jumps/calls);
    /// * the key's branch count matches the snapshot;
    /// * the stop kind is consistent with the final instruction
    ///   (traces end only at returns, indirect jumps, halts, the
    ///   length cap, or the alignment boundary — DESIGN.md §selection).
    pub fn validate_against(&self, program: &tpc_isa::Program) -> Result<(), String> {
        if self.instrs.is_empty() || self.instrs.len() > MAX_TRACE_LEN {
            return Err(format!("trace length {} out of bounds", self.instrs.len()));
        }
        if self.key.start != self.instrs[0].pc {
            return Err(format!(
                "key start {:?} != first instruction {:?}",
                self.key.start, self.instrs[0].pc
            ));
        }
        let mut branches = 0u8;
        for (i, ti) in self.instrs.iter().enumerate() {
            match program.fetch(ti.pc) {
                Some(op) if *op == ti.op => {}
                Some(op) => {
                    return Err(format!(
                        "instruction at {:?} diverges from static code: trace {:?}, program {:?}",
                        ti.pc, ti.op, op
                    ));
                }
                None => return Err(format!("address {:?} outside the program", ti.pc)),
            }
            let expected_next = match ti.op.class() {
                OpClass::Branch => {
                    let taken = self
                        .branch_outcome(branches)
                        .ok_or_else(|| format!("branch at {:?} beyond key branch count", ti.pc))?;
                    branches += 1;
                    if taken {
                        ti.op.static_target()
                    } else {
                        Some(ti.pc.next())
                    }
                }
                OpClass::Jump | OpClass::Call => ti.op.static_target(),
                // Successors of returns/indirect jumps/halts are
                // dynamic; they terminate the trace anyway.
                OpClass::Return | OpClass::IndirectJump | OpClass::Halt => None,
                _ => Some(ti.pc.next()),
            };
            if let Some(next) = self.instrs.get(i + 1) {
                match expected_next {
                    Some(e) if e == next.pc => {}
                    Some(e) => {
                        return Err(format!(
                            "path break after {:?}: expected {:?}, trace has {:?}",
                            ti.pc, e, next.pc
                        ));
                    }
                    None => {
                        return Err(format!(
                            "trace continues past terminating instruction at {:?}",
                            ti.pc
                        ));
                    }
                }
            }
        }
        if branches != self.key.branch_count {
            return Err(format!(
                "key claims {} branches, trace holds {}",
                self.key.branch_count, branches
            ));
        }
        let last = self.instrs.last().expect("non-empty").op.class();
        let stop_ok = match self.stop {
            TraceStop::Return => last == OpClass::Return,
            TraceStop::IndirectJump => last == OpClass::IndirectJump,
            TraceStop::Halt => last == OpClass::Halt,
            TraceStop::Full => self.instrs.len() == MAX_TRACE_LEN,
            TraceStop::Alignment => self.instrs.iter().any(|ti| ti.op.is_backward_branch(ti.pc)),
        };
        if !stop_ok {
            return Err(format!(
                "stop kind {:?} inconsistent with trace contents",
                self.stop
            ));
        }
        Ok(())
    }
}

/// What the builder wants after accepting an instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PushResult {
    /// Keep feeding instructions; the next one is at the returned
    /// address (the followed path).
    Continue(Addr),
    /// The trace is complete.
    Complete(Trace),
}

/// Incremental trace builder implementing the shared selection rules.
///
/// Both the processor's fill path and the preconstruction engine
/// build traces through this type, which is what makes their traces
/// *align* (identical start points ⇒ identical end points — paper
/// Section 2.2):
///
/// 1. a trace holds at most [`MAX_TRACE_LEN`] instructions;
/// 2. a trace ends at `ret`, `jr` (indirect jump) and `halt`;
/// 3. a trace that contains a (statically) backward conditional
///    branch ends [`ALIGN_QUANTUM`] instructions past the most
///    recent such branch.
///
/// The caller resolves each control instruction (it knows the branch
/// outcome — from the dynamic stream on the fill path, from bias
/// following during preconstruction) and feeds instructions one at a
/// time via [`TraceBuilder::push`].
#[derive(Debug, Clone)]
pub struct TraceBuilder {
    start: Addr,
    instrs: Vec<TraceInstr>,
    outcomes: u16,
    branch_count: u8,
    last_backward_branch: Option<usize>,
    call_depth: u32,
    unmatched_return: bool,
}

impl TraceBuilder {
    /// Starts a trace at `start`. The first pushed instruction must
    /// be the one at `start` (checked in debug builds).
    pub fn new(start: Addr) -> Self {
        TraceBuilder {
            start,
            instrs: Vec::with_capacity(MAX_TRACE_LEN),
            outcomes: 0,
            branch_count: 0,
            last_backward_branch: None,
            call_depth: 0,
            unmatched_return: false,
        }
    }

    /// Instructions accepted so far.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether no instruction has been accepted yet.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Feeds the next instruction on the path.
    ///
    /// `resolved` carries the dynamic resolution of control
    /// instructions: for a conditional branch, `Some((taken,
    /// next_pc))`; for everything else the successor or `None` when
    /// it is unknown (a `ret` whose call site was not observed, an
    /// indirect jump during preconstruction).
    ///
    /// # Panics
    ///
    /// Panics if called after the trace completed (in debug builds),
    /// or if a conditional branch is fed without its resolution.
    pub fn push(&mut self, pc: Addr, op: Op, resolved: Resolution) -> PushResult {
        debug_assert!(self.instrs.len() < MAX_TRACE_LEN, "trace already complete");
        debug_assert!(
            !self.instrs.is_empty() || pc == self.start,
            "first instruction must sit at the trace start"
        );
        self.instrs.push(TraceInstr { pc, op });
        let idx = self.instrs.len() - 1;

        let mut next: Option<Addr> = Some(pc.next());
        match op.class() {
            OpClass::Branch => {
                let (taken, next_pc) = match resolved {
                    Resolution::Branch { taken, next_pc } => (taken, next_pc),
                    _ => panic!("conditional branch requires a Branch resolution"),
                };
                if taken {
                    self.outcomes |= 1 << self.branch_count;
                }
                self.branch_count += 1;
                if op.is_backward_branch(pc) {
                    self.last_backward_branch = Some(idx);
                }
                next = Some(next_pc);
            }
            OpClass::Jump => next = op.static_target(),
            OpClass::Call => {
                self.call_depth += 1;
                next = op.static_target();
            }
            OpClass::Return => {
                if self.call_depth > 0 {
                    self.call_depth -= 1;
                } else {
                    self.unmatched_return = true;
                }
                next = match resolved {
                    Resolution::Target(t) => Some(t),
                    _ => None,
                };
                return PushResult::Complete(self.complete(TraceStop::Return, next));
            }
            OpClass::IndirectJump => {
                next = match resolved {
                    Resolution::Target(t) => Some(t),
                    _ => None,
                };
                return PushResult::Complete(self.complete(TraceStop::IndirectJump, next));
            }
            OpClass::Halt => {
                next = match resolved {
                    Resolution::Target(t) => Some(t),
                    _ => None,
                };
                return PushResult::Complete(self.complete(TraceStop::Halt, next));
            }
            _ => {}
        }
        if self.instrs.len() == MAX_TRACE_LEN {
            return PushResult::Complete(self.complete(TraceStop::Full, next));
        }
        if let Some(p) = self.last_backward_branch {
            if idx > p && (idx - p).is_multiple_of(ALIGN_QUANTUM) {
                return PushResult::Complete(self.complete(TraceStop::Alignment, next));
            }
        }
        PushResult::Continue(next.expect("non-terminating ops always have a successor"))
    }

    fn complete(&mut self, stop: TraceStop, successor: Option<Addr>) -> Trace {
        // The trace's "end kind" for the return history stack: an
        // unmatched return pops saved history; an unmatched call
        // (crossing into a callee) saves it; matched pairs cancel.
        let end = if self.unmatched_return {
            TraceEnd::Return
        } else if self.call_depth > 0 {
            TraceEnd::Call
        } else {
            TraceEnd::Fallthrough
        };
        let instrs: Arc<[TraceInstr]> = std::mem::take(&mut self.instrs).into();
        let key = TraceKey {
            start: instrs.first().expect("complete() only after a push").pc,
            branch_count: self.branch_count,
            outcomes: self.outcomes,
        };
        Trace {
            instrs,
            key,
            end,
            stop,
            successor,
            preprocess: None,
        }
    }
}

/// Resolution of the just-pushed instruction's control flow, supplied
/// by the caller of [`TraceBuilder::push`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resolution {
    /// Not a control instruction (or a direct jump/call whose target
    /// is static).
    None,
    /// A conditional branch's direction and successor.
    Branch {
        /// Whether the branch was taken.
        taken: bool,
        /// The address execution continues at.
        next_pc: Addr,
    },
    /// A dynamically-known target (return/indirect-jump successor on
    /// the fill path), or the restart address after `halt`.
    Target(Addr),
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpc_isa::{BranchCond, Reg};

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }

    fn alu(dst: u8) -> Op {
        Op::AddImm {
            rd: r(dst),
            rs1: r(dst),
            imm: 1,
        }
    }

    fn push_alu(b: &mut TraceBuilder, pc: u32) -> PushResult {
        b.push(Addr::new(pc), alu(1), Resolution::None)
    }

    #[test]
    fn caps_at_sixteen() {
        let mut b = TraceBuilder::new(Addr::new(0));
        for pc in 0..15 {
            assert!(matches!(push_alu(&mut b, pc), PushResult::Continue(_)));
        }
        match push_alu(&mut b, 15) {
            PushResult::Complete(t) => {
                assert_eq!(t.len(), 16);
                assert_eq!(t.stop(), TraceStop::Full);
                assert_eq!(t.successor(), Some(Addr::new(16)));
            }
            other => panic!("expected completion, got {other:?}"),
        }
    }

    #[test]
    fn ends_at_return_with_known_target() {
        let mut b = TraceBuilder::new(Addr::new(0));
        push_alu(&mut b, 0);
        match b.push(Addr::new(1), Op::Return, Resolution::Target(Addr::new(40))) {
            PushResult::Complete(t) => {
                assert_eq!(t.stop(), TraceStop::Return);
                assert_eq!(t.end(), TraceEnd::Return);
                assert_eq!(t.successor(), Some(Addr::new(40)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn ends_at_return_with_unknown_target() {
        let mut b = TraceBuilder::new(Addr::new(0));
        match b.push(Addr::new(0), Op::Return, Resolution::None) {
            PushResult::Complete(t) => assert_eq!(t.successor(), None),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn ends_at_indirect_jump() {
        let mut b = TraceBuilder::new(Addr::new(0));
        push_alu(&mut b, 0);
        match b.push(
            Addr::new(1),
            Op::IndirectJump { rs1: r(4) },
            Resolution::None,
        ) {
            PushResult::Complete(t) => {
                assert_eq!(t.stop(), TraceStop::IndirectJump);
                assert_eq!(t.successor(), None);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn branch_outcomes_recorded_in_order() {
        let mut b = TraceBuilder::new(Addr::new(0));
        let fwd = |_pc: u32, target: u32| Op::Branch {
            cond: BranchCond::Ne,
            rs1: r(1),
            rs2: r(2),
            target: Addr::new(target),
        };
        // taken forward branch, then not-taken forward branch
        b.push(
            Addr::new(0),
            fwd(0, 10),
            Resolution::Branch {
                taken: true,
                next_pc: Addr::new(10),
            },
        );
        b.push(
            Addr::new(10),
            fwd(10, 20),
            Resolution::Branch {
                taken: false,
                next_pc: Addr::new(11),
            },
        );
        let t = match push_alu(&mut b, 11) {
            PushResult::Continue(_) => {
                // Force completion by filling up.
                let mut bb = b;
                let mut out = None;
                for pc in 12..30 {
                    match push_alu(&mut bb, pc) {
                        PushResult::Complete(t) => {
                            out = Some(t);
                            break;
                        }
                        PushResult::Continue(_) => {}
                    }
                }
                out.unwrap()
            }
            PushResult::Complete(t) => t,
        };
        assert_eq!(t.key().branch_count, 2);
        assert_eq!(t.branch_outcome(0), Some(true));
        assert_eq!(t.branch_outcome(1), Some(false));
        assert_eq!(t.branch_outcome(2), None);
    }

    #[test]
    fn alignment_rule_ends_four_past_backward_branch() {
        let mut b = TraceBuilder::new(Addr::new(100));
        push_alu(&mut b, 100);
        // Backward branch at index 1 (target < pc), not taken (loop exit).
        let back = Op::Branch {
            cond: BranchCond::Ne,
            rs1: r(1),
            rs2: r(2),
            target: Addr::new(90),
        };
        b.push(
            Addr::new(101),
            back,
            Resolution::Branch {
                taken: false,
                next_pc: Addr::new(102),
            },
        );
        // Four more instructions allowed; the fourth completes.
        assert!(matches!(push_alu(&mut b, 102), PushResult::Continue(_)));
        assert!(matches!(push_alu(&mut b, 103), PushResult::Continue(_)));
        assert!(matches!(push_alu(&mut b, 104), PushResult::Continue(_)));
        match push_alu(&mut b, 105) {
            PushResult::Complete(t) => {
                assert_eq!(t.stop(), TraceStop::Alignment);
                assert_eq!(t.len(), 6);
                assert_eq!(t.successor(), Some(Addr::new(106)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn alignment_ignores_forward_branches() {
        let mut b = TraceBuilder::new(Addr::new(0));
        let fwd = Op::Branch {
            cond: BranchCond::Ne,
            rs1: r(1),
            rs2: r(2),
            target: Addr::new(100),
        };
        b.push(
            Addr::new(0),
            fwd,
            Resolution::Branch {
                taken: false,
                next_pc: Addr::new(1),
            },
        );
        for pc in 1..15 {
            assert!(
                matches!(push_alu(&mut b, pc), PushResult::Continue(_)),
                "forward branch must not trigger alignment stop at pc {pc}"
            );
        }
    }

    #[test]
    fn taken_backward_branch_also_triggers_alignment() {
        // The rule keys on the *static* backward shape, matching both
        // engines' view of the code.
        let mut b = TraceBuilder::new(Addr::new(50));
        let back = Op::Branch {
            cond: BranchCond::Ne,
            rs1: r(1),
            rs2: r(2),
            target: Addr::new(40),
        };
        b.push(
            Addr::new(50),
            back,
            Resolution::Branch {
                taken: true,
                next_pc: Addr::new(40),
            },
        );
        for pc in 40..43 {
            assert!(matches!(push_alu(&mut b, pc), PushResult::Continue(_)));
        }
        assert!(matches!(push_alu(&mut b, 43), PushResult::Complete(_)));
    }

    #[test]
    fn trace_ending_in_call_reports_call_end() {
        let mut b = TraceBuilder::new(Addr::new(0));
        push_alu(&mut b, 0);
        b.push(
            Addr::new(1),
            Op::Call {
                target: Addr::new(100),
            },
            Resolution::None,
        );
        // Fill to completion from the callee.
        let mut trace = None;
        for pc in 100..120 {
            if let PushResult::Complete(t) = push_alu(&mut b, pc) {
                trace = Some(t);
                break;
            }
        }
        assert_eq!(trace.unwrap().end(), TraceEnd::Call);
    }

    #[test]
    fn key_identity_start_and_outcomes() {
        let build = |taken: bool| {
            let mut b = TraceBuilder::new(Addr::new(0));
            let fwd = Op::Branch {
                cond: BranchCond::Ne,
                rs1: r(1),
                rs2: r(2),
                target: Addr::new(8),
            };
            let next = if taken { Addr::new(8) } else { Addr::new(1) };
            b.push(
                Addr::new(0),
                fwd,
                Resolution::Branch {
                    taken,
                    next_pc: next,
                },
            );
            let mut out = None;
            for pc in next.word()..next.word() + 20 {
                if let PushResult::Complete(t) = push_alu(&mut b, pc) {
                    out = Some(t);
                    break;
                }
            }
            out.unwrap()
        };
        let a = build(true);
        let b_ = build(false);
        assert_eq!(a.key().start, b_.key().start);
        assert_ne!(a.key(), b_.key(), "different paths yield different keys");
    }

    #[test]
    fn jumps_and_calls_do_not_end_traces() {
        let mut b = TraceBuilder::new(Addr::new(0));
        assert!(matches!(
            b.push(Addr::new(0), Op::Jump { target: Addr::new(7) }, Resolution::None),
            PushResult::Continue(a) if a == Addr::new(7)
        ));
        assert!(matches!(
            b.push(Addr::new(7), Op::Call { target: Addr::new(30) }, Resolution::None),
            PushResult::Continue(a) if a == Addr::new(30)
        ));
    }
}
