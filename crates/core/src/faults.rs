//! Deterministic fault injection for the preconstruction subsystem.
//!
//! The paper's central safety argument is that trace preconstruction
//! is *hint* hardware: it borrows idle slow-path resources, and its
//! output can be wrong, late, or absent without ever changing
//! architectural results — only performance. This module makes that
//! claim mechanically checkable. A seeded [`FaultPlan`] perturbs
//! every preconstruction mechanism at well-defined injection points:
//!
//! * [`FaultKind::FlipBimodalBit`] — flip one bit of one 2-bit
//!   bimodal counter (the bias source the constructors follow);
//! * [`FaultKind::DropPrefetchFill`] — lose an in-flight prefetch-
//!   cache line fill (the region transparently re-requests it);
//! * [`FaultKind::DelayPrefetchFill`] — add latency to an in-flight
//!   prefetch-cache fill;
//! * [`FaultKind::StallConstructor`] — freeze one busy trace
//!   constructor for a few cycles;
//! * [`FaultKind::KillConstructor`] — abort one busy constructor's
//!   in-progress trace outright;
//! * [`FaultKind::InvalidatePreconEntry`] — drop one pending
//!   preconstruction-buffer entry before the processor can use it;
//! * [`FaultKind::CorruptPreconEntry`] — corrupt one pending entry's
//!   region tag (modelled as detected corruption: the entry loses its
//!   replacement priority and is displaced by any later region);
//! * [`FaultKind::SpuriousStackPop`] — pop and discard the region
//!   start-point stack's top entry;
//! * [`FaultKind::SpuriousStackSquash`] — spuriously run the
//!   misspeculation-recovery squash, deleting the youngest entries.
//!
//! Scheduling is a pure function of `(FaultPlan, cycle)`: each cycle
//! the [`FaultState`] draws, in fixed kind order, whether each
//! enabled kind fires, from one seeded [`XorShift64`] stream. Two
//! simulations with the same plan therefore inject the identical
//! fault schedule, whatever thread they run on — the differential
//! oracle relies on this to show that any schedule leaves the
//! retirement stream bit-identical to the fault-free run while the
//! performance counters move.

use tpc_isa::model::XorShift64;

/// Number of distinct fault kinds.
pub const NUM_FAULT_KINDS: usize = 9;

/// One class of injectable fault. See the module docs for what each
/// kind perturbs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum FaultKind {
    /// Flip one bit of one bimodal counter.
    FlipBimodalBit = 0,
    /// Drop an in-flight prefetch-cache line fill.
    DropPrefetchFill = 1,
    /// Add latency to an in-flight prefetch-cache line fill.
    DelayPrefetchFill = 2,
    /// Freeze one busy trace constructor for a few cycles.
    StallConstructor = 3,
    /// Abort one busy trace constructor's in-progress trace.
    KillConstructor = 4,
    /// Drop one pending preconstruction-buffer entry.
    InvalidatePreconEntry = 5,
    /// Zero one pending preconstruction entry's region tag.
    CorruptPreconEntry = 6,
    /// Pop and discard the start-point stack's top entry.
    SpuriousStackPop = 7,
    /// Spuriously squash the start-point stack's youngest entries.
    SpuriousStackSquash = 8,
}

impl FaultKind {
    /// Every kind, in the fixed order the scheduler draws them.
    pub const ALL: [FaultKind; NUM_FAULT_KINDS] = [
        FaultKind::FlipBimodalBit,
        FaultKind::DropPrefetchFill,
        FaultKind::DelayPrefetchFill,
        FaultKind::StallConstructor,
        FaultKind::KillConstructor,
        FaultKind::InvalidatePreconEntry,
        FaultKind::CorruptPreconEntry,
        FaultKind::SpuriousStackPop,
        FaultKind::SpuriousStackSquash,
    ];

    /// The kind's bit in a [`FaultPlan::kinds`] mask.
    pub fn bit(self) -> u32 {
        1 << (self as u32)
    }

    /// Short stable name (reports, degradation tables).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::FlipBimodalBit => "flip-bimodal-bit",
            FaultKind::DropPrefetchFill => "drop-prefetch-fill",
            FaultKind::DelayPrefetchFill => "delay-prefetch-fill",
            FaultKind::StallConstructor => "stall-constructor",
            FaultKind::KillConstructor => "kill-constructor",
            FaultKind::InvalidatePreconEntry => "invalidate-precon-entry",
            FaultKind::CorruptPreconEntry => "corrupt-precon-entry",
            FaultKind::SpuriousStackPop => "spurious-stack-pop",
            FaultKind::SpuriousStackSquash => "spurious-stack-squash",
        }
    }
}

/// Mask enabling every fault kind.
pub const FAULTS_ALL: u32 = (1 << NUM_FAULT_KINDS as u32) - 1;

/// A seeded, deterministic fault schedule: which kinds may fire, how
/// often, and the PRNG seed that fixes exactly when and where.
///
/// The plan is plain data (`Copy`) so sweep cells can carry it in
/// their [`SimConfig`](../../tpc_processor/struct.SimConfig.html)
/// across threads; all runtime state lives in [`FaultState`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// PRNG seed; together with the cycle sequence it fixes the full
    /// fault schedule.
    pub seed: u64,
    /// Bitmask of enabled [`FaultKind`]s (see [`FaultKind::bit`]).
    pub kinds: u32,
    /// Per-cycle, per-kind firing probability in 1/1000ths. `0`
    /// schedules nothing (but still draws, keeping stats comparable).
    pub per_mille: u32,
}

impl FaultPlan {
    /// A plan enabling every fault kind.
    pub fn all(seed: u64, per_mille: u32) -> Self {
        FaultPlan {
            seed,
            kinds: FAULTS_ALL,
            per_mille,
        }
    }

    /// A plan enabling a single fault kind.
    pub fn only(kind: FaultKind, seed: u64, per_mille: u32) -> Self {
        FaultPlan {
            seed,
            kinds: kind.bit(),
            per_mille,
        }
    }

    /// Whether `kind` may fire under this plan.
    pub fn enables(&self, kind: FaultKind) -> bool {
        self.kinds & kind.bit() != 0
    }
}

/// Counters kept by a [`FaultState`]: every draw that fired
/// (`injected`) and every injection that actually perturbed state
/// (`landed` — e.g. an [`FaultKind::SpuriousStackPop`] against an
/// empty stack injects but does not land).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Faults drawn and delivered to an injection point.
    pub injected: u64,
    /// Faults that perturbed live state.
    pub landed: u64,
    /// Per-kind injected counts, indexed by `FaultKind as usize`.
    pub injected_by_kind: [u64; NUM_FAULT_KINDS],
    /// Per-kind landed counts, indexed by `FaultKind as usize`.
    pub landed_by_kind: [u64; NUM_FAULT_KINDS],
}

/// One scheduled fault: the kind plus two pseudo-random operands the
/// injection point uses to pick its target (a buffer slot, a
/// constructor index, a stall length, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// What to inject.
    pub kind: FaultKind,
    /// Primary operand (target selection salt).
    pub a: u64,
    /// Secondary operand (magnitude: delay cycles, stall length, …).
    pub b: u64,
}

/// Runtime state of a fault plan inside one simulator instance: the
/// seeded PRNG plus the injected/landed counters.
#[derive(Debug, Clone)]
pub struct FaultState {
    plan: FaultPlan,
    rng: XorShift64,
    stats: FaultStats,
}

impl FaultState {
    /// Creates the runtime state for `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        FaultState {
            plan,
            rng: XorShift64::new(plan.seed ^ 0xFA01_7F1A_11CE_C7ED),
            stats: FaultStats::default(),
        }
    }

    /// The plan in effect.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// Draws this cycle's fault schedule: for each enabled kind, in
    /// [`FaultKind::ALL`] order, fire with probability
    /// `per_mille/1000` and attach two operand words. The stream
    /// consumed is a pure function of the plan and the number of
    /// prior draws, so the schedule is identical across runs and
    /// thread counts.
    pub fn draw(&mut self) -> Vec<FaultEvent> {
        let mut events = Vec::new();
        if self.plan.per_mille == 0 || self.plan.kinds == 0 {
            return events;
        }
        for kind in FaultKind::ALL {
            if !self.plan.enables(kind) {
                continue;
            }
            if self.rng.chance(self.plan.per_mille.min(1000), 1000) {
                events.push(FaultEvent {
                    kind,
                    a: self.rng.next_u64(),
                    b: self.rng.next_u64(),
                });
            }
        }
        events
    }

    /// Records the outcome of one injected event.
    pub fn note(&mut self, kind: FaultKind, landed: bool) {
        self.stats.injected += 1;
        self.stats.injected_by_kind[kind as usize] += 1;
        if landed {
            self.stats.landed += 1;
            self.stats.landed_by_kind[kind as usize] += 1;
        }
    }
}

/// A fault targeting the preconstruction engine, pre-resolved from a
/// [`FaultEvent`] by the simulator (which owns the bimodal and the
/// trace store; everything else lives in the engine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineFault {
    /// Lose one region's in-flight line fetch.
    DropPrefetchFill {
        /// Target selection salt.
        salt: u64,
    },
    /// Add `extra` cycles to one region's in-flight line fetch.
    DelayPrefetchFill {
        /// Target selection salt.
        salt: u64,
        /// Additional latency in cycles.
        extra: u64,
    },
    /// Freeze one busy constructor for `cycles` cycles.
    StallConstructor {
        /// Target selection salt.
        salt: u64,
        /// Stall length in cycles.
        cycles: u32,
    },
    /// Abort one busy constructor's in-progress trace.
    KillConstructor {
        /// Target selection salt.
        salt: u64,
    },
    /// Pop and discard the start stack's newest entry.
    PopStartPoint,
    /// Squash the start stack down to a pseudo-random depth.
    SquashStartStack {
        /// Target depth selection salt.
        salt: u64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let plan = FaultPlan::all(42, 100);
        let mut a = FaultState::new(plan);
        let mut b = FaultState::new(plan);
        for _ in 0..2_000 {
            assert_eq!(a.draw(), b.draw());
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = FaultState::new(FaultPlan::all(1, 200));
        let mut b = FaultState::new(FaultPlan::all(2, 200));
        let fired_a: usize = (0..500).map(|_| a.draw().len()).sum();
        let fired_b: usize = (0..500).map(|_| b.draw().len()).sum();
        assert!(fired_a > 0 && fired_b > 0);
        // Schedules are different streams (astronomically unlikely to
        // coincide over 500 cycles × 9 kinds).
        let mut a = FaultState::new(FaultPlan::all(1, 200));
        let mut b = FaultState::new(FaultPlan::all(2, 200));
        let mut same = true;
        for _ in 0..500 {
            if a.draw() != b.draw() {
                same = false;
            }
        }
        assert!(!same);
    }

    #[test]
    fn zero_per_mille_is_silent() {
        let mut s = FaultState::new(FaultPlan::all(7, 0));
        for _ in 0..1_000 {
            assert!(s.draw().is_empty());
        }
        assert_eq!(s.stats().injected, 0);
    }

    #[test]
    fn kind_mask_filters_kinds() {
        let mut s = FaultState::new(FaultPlan::only(FaultKind::FlipBimodalBit, 3, 1000));
        for _ in 0..100 {
            for ev in s.draw() {
                assert_eq!(ev.kind, FaultKind::FlipBimodalBit);
            }
        }
    }

    #[test]
    fn per_mille_1000_fires_every_enabled_kind_every_cycle() {
        let mut s = FaultState::new(FaultPlan::all(9, 1000));
        let events = s.draw();
        assert_eq!(events.len(), NUM_FAULT_KINDS);
        let kinds: Vec<FaultKind> = events.iter().map(|e| e.kind).collect();
        assert_eq!(kinds, FaultKind::ALL.to_vec());
    }

    #[test]
    fn note_tracks_landed_separately() {
        let mut s = FaultState::new(FaultPlan::all(1, 10));
        s.note(FaultKind::SpuriousStackPop, false);
        s.note(FaultKind::FlipBimodalBit, true);
        assert_eq!(s.stats().injected, 2);
        assert_eq!(s.stats().landed, 1);
        assert_eq!(
            s.stats().landed_by_kind[FaultKind::FlipBimodalBit as usize],
            1
        );
        assert_eq!(
            s.stats().injected_by_kind[FaultKind::SpuriousStackPop as usize],
            1
        );
    }

    #[test]
    fn fault_kind_bits_are_distinct() {
        let mut seen = 0u32;
        for kind in FaultKind::ALL {
            assert_eq!(seen & kind.bit(), 0);
            seen |= kind.bit();
        }
        assert_eq!(seen, FAULTS_ALL);
    }

    /// Pins `FaultKind` ↔ `FaultStats` exhaustiveness at runtime, the
    /// same invariant the `conf-faultkind` lint rule checks
    /// statically: every variant has a distinct slot in both per-kind
    /// counter arrays, `ALL` enumerates each variant exactly once in
    /// discriminant order, and `note` lands each kind in its own
    /// counters with no cross-talk.
    #[test]
    fn fault_kind_and_fault_stats_are_exhaustive() {
        assert_eq!(FaultKind::ALL.len(), NUM_FAULT_KINDS);
        for (i, kind) in FaultKind::ALL.iter().enumerate() {
            assert_eq!(*kind as usize, i, "ALL must be in discriminant order");
        }
        let stats = FaultStats::default();
        assert_eq!(stats.injected_by_kind.len(), NUM_FAULT_KINDS);
        assert_eq!(stats.landed_by_kind.len(), NUM_FAULT_KINDS);
        let mut names: Vec<&str> = FaultKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), NUM_FAULT_KINDS, "names must be unique");
        // `note` for one kind must touch exactly that kind's slots.
        let mut s = FaultState::new(FaultPlan::all(7, 0));
        for kind in FaultKind::ALL {
            s.note(kind, true);
        }
        for kind in FaultKind::ALL {
            assert_eq!(s.stats().injected_by_kind[kind as usize], 1);
            assert_eq!(s.stats().landed_by_kind[kind as usize], 1);
        }
        assert_eq!(s.stats().injected, NUM_FAULT_KINDS as u64);
        assert_eq!(s.stats().landed, NUM_FAULT_KINDS as u64);
    }
}
