//! A line-protocol client for the sweep daemon (used by the chaos
//! harness, the integration tests, and scriptable from `verify.sh`).

use crate::cache::CacheStats;
use crate::json::Json;
use crate::spec::SweepRequest;
use crate::supervisor::{digest_results, ManifestEntry};
use std::io::{self, BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::{Duration, Instant};
use tpc_processor::SimStats;

/// A completed sweep as seen by the client: per-cell results in grid
/// order plus the supervision counters from the daemon's `done` line.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Per-cell stats (`None` = permanently failed, see `manifest`).
    pub stats: Vec<Option<SimStats>>,
    /// Per-cell attempts run (0 = cache hit).
    pub attempts: Vec<u32>,
    /// Per-cell cache-hit flags.
    pub cached: Vec<bool>,
    /// Re-queued attempts across the sweep.
    pub retries: u64,
    /// Workers the supervisor replaced.
    pub workers_killed: u64,
    /// Results that could not be memoized.
    pub cache_write_failures: u64,
    /// Every permanently failed cell.
    pub manifest: Vec<ManifestEntry>,
    /// The daemon's digest over completed cells (verified on receipt
    /// against a digest recomputed from the streamed words).
    pub digest: u64,
}

impl SweepReport {
    /// Cells that completed.
    pub fn ok_count(&self) -> usize {
        self.stats.iter().filter(|s| s.is_some()).count()
    }

    /// Cells served from the daemon's result cache.
    pub fn cached_count(&self) -> usize {
        self.cached.iter().filter(|&&c| c).count()
    }

    /// Digest recomputed client-side from the streamed stats words.
    pub fn local_digest(&self) -> u64 {
        digest_results(self.stats.iter().map(Option::as_ref))
    }
}

fn protocol_err(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// One connection to the daemon. Requests are serialized over the
/// connection; `sweep` blocks until the final `done` line (use
/// [`Client::submit`] + [`Client::next_line`] to observe a sweep
/// mid-flight).
#[derive(Debug)]
pub struct Client {
    writer: UnixStream,
    reader: BufReader<UnixStream>,
}

impl Client {
    /// Connects to a daemon's socket.
    ///
    /// # Errors
    ///
    /// Standard socket connection failures.
    pub fn connect(socket: &Path) -> io::Result<Client> {
        let writer = UnixStream::connect(socket)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client { writer, reader })
    }

    /// Connects, retrying for up to `timeout` while the daemon is
    /// still starting (socket absent or refusing).
    ///
    /// # Errors
    ///
    /// The last connection failure once `timeout` elapses.
    pub fn connect_retry(socket: &Path, timeout: Duration) -> io::Result<Client> {
        let deadline = Instant::now() + timeout;
        loop {
            match Client::connect(socket) {
                Ok(client) => return Ok(client),
                Err(e) if Instant::now() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(20)),
            }
        }
    }

    /// Sends one raw request line.
    ///
    /// # Errors
    ///
    /// Socket write failures.
    pub fn send_line(&mut self, line: &str) -> io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        if !line.ends_with('\n') {
            self.writer.write_all(b"\n")?;
        }
        self.writer.flush()
    }

    /// Reads the next response line (blocking).
    ///
    /// # Errors
    ///
    /// Socket read failures, or [`io::ErrorKind::UnexpectedEof`] when
    /// the daemon hung up (e.g. it was SIGKILL'd mid-sweep).
    pub fn next_line(&mut self) -> io::Result<String> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "daemon hung up",
            ));
        }
        Ok(line.trim_end().to_string())
    }

    /// Reads and parses the next line, surfacing `ok:false` errors.
    fn next_json(&mut self) -> io::Result<Json> {
        let line = self.next_line()?;
        let v = Json::parse(&line).map_err(|e| protocol_err(format!("bad line {line:?}: {e}")))?;
        if v.get("ok").and_then(Json::as_bool) == Some(false) {
            let msg = v
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("unspecified")
                .to_string();
            return Err(protocol_err(format!("daemon refused: {msg}")));
        }
        Ok(v)
    }

    /// Round-trips a `ping`.
    ///
    /// # Errors
    ///
    /// Socket or protocol failures.
    pub fn ping(&mut self) -> io::Result<()> {
        self.send_line("{\"op\":\"ping\"}")?;
        let v = self.next_json()?;
        if v.get("op").and_then(Json::as_str) == Some("ping") {
            Ok(())
        } else {
            Err(protocol_err("unexpected ping reply"))
        }
    }

    /// Fetches the daemon's result-cache counters.
    ///
    /// # Errors
    ///
    /// Socket or protocol failures.
    pub fn cache_stats(&mut self) -> io::Result<CacheStats> {
        self.send_line("{\"op\":\"cache_stats\"}")?;
        let v = self.next_json()?;
        let field = |k: &str| {
            v.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| protocol_err(format!("cache_stats: missing {k}")))
        };
        Ok(CacheStats {
            entries: field("entries")?,
            hits: field("hits")?,
            misses: field("misses")?,
            insert_failures: field("insert_failures")?,
        })
    }

    /// Asks the daemon to exit (acknowledged before it does).
    ///
    /// # Errors
    ///
    /// Socket or protocol failures.
    pub fn shutdown(&mut self) -> io::Result<()> {
        self.send_line("{\"op\":\"shutdown\"}")?;
        self.next_json().map(|_| ())
    }

    /// Submits a sweep and returns once the daemon has accepted it;
    /// event lines are then read with [`Client::next_line`]. Used by
    /// the chaos harness to kill the daemon mid-sweep.
    ///
    /// # Errors
    ///
    /// Socket failures or daemon rejection.
    pub fn submit(&mut self, req: &SweepRequest) -> io::Result<()> {
        self.send_line(&req.to_json_line())?;
        let v = self.next_json()?;
        if v.get("op").and_then(Json::as_str) == Some("accepted") {
            Ok(())
        } else {
            Err(protocol_err("sweep not accepted"))
        }
    }

    /// Runs a sweep to completion, folding the event stream into a
    /// [`SweepReport`]. The daemon's digest is cross-checked against
    /// one recomputed from the streamed words.
    ///
    /// # Errors
    ///
    /// Socket failures, daemon rejection, malformed events, or a
    /// digest mismatch (which would mean the stream was corrupted).
    pub fn sweep(&mut self, req: &SweepRequest) -> io::Result<SweepReport> {
        self.submit(req)?;
        let n = req.cells.len();
        let mut report = SweepReport {
            stats: vec![None; n],
            attempts: vec![0; n],
            cached: vec![false; n],
            retries: 0,
            workers_killed: 0,
            cache_write_failures: 0,
            manifest: Vec::new(),
            digest: 0,
        };
        loop {
            let v = self.next_json()?;
            let index_of = |v: &Json, key: &str| -> io::Result<usize> {
                let i = v
                    .get(key)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| protocol_err(format!("event missing {key}")))?
                    as usize;
                if i >= n {
                    return Err(protocol_err(format!("cell index {i} out of range")));
                }
                Ok(i)
            };
            match v.get("event").and_then(Json::as_str) {
                Some("cell") => {
                    let i = index_of(&v, "index")?;
                    let words: Vec<u64> = v
                        .get("words")
                        .and_then(Json::as_arr)
                        .map(|a| a.iter().filter_map(Json::as_u64).collect())
                        .ok_or_else(|| protocol_err("cell event missing words"))?;
                    // bound: index_of caps i < cell count
                    report.stats[i] = Some(
                        SimStats::from_words(&words)
                            .ok_or_else(|| protocol_err("cell event words malformed"))?,
                    );
                    // bound: index_of caps i < cell count
                    report.attempts[i] = v.u64_or("attempts", 0).map_err(protocol_err)? as u32;
                    // bound: index_of caps i < cell count
                    report.cached[i] = v.get("cached").and_then(Json::as_bool).unwrap_or(false);
                }
                Some("cell_error") => {
                    let i = index_of(&v, "index")?;
                    // bound: index_of caps i < cell count
                    report.attempts[i] = v.u64_or("attempts", 0).map_err(protocol_err)? as u32;
                }
                Some("retry") | Some("worker_killed") => {}
                Some("done") => {
                    report.retries = v.u64_or("retries", 0).map_err(protocol_err)?;
                    report.workers_killed = v.u64_or("workers_killed", 0).map_err(protocol_err)?;
                    report.cache_write_failures =
                        v.u64_or("cache_write_failures", 0).map_err(protocol_err)?;
                    report.digest = v
                        .get("digest")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| protocol_err("done event missing digest"))?;
                    for entry in v.get("manifest").and_then(Json::as_arr).unwrap_or(&[]) {
                        report.manifest.push(ManifestEntry {
                            index: entry
                                .get("index")
                                .and_then(Json::as_u64)
                                .ok_or_else(|| protocol_err("manifest entry missing index"))?
                                as usize,
                            kind: entry
                                .get("kind")
                                .and_then(Json::as_str)
                                .unwrap_or("unknown")
                                .to_string(),
                            message: entry
                                .get("message")
                                .and_then(Json::as_str)
                                .unwrap_or("")
                                .to_string(),
                            attempts: entry.u64_or("attempts", 0).map_err(protocol_err)? as u32,
                        });
                    }
                    break;
                }
                other => {
                    return Err(protocol_err(format!("unexpected event {other:?}")));
                }
            }
        }
        if report.local_digest() != report.digest {
            return Err(protocol_err(format!(
                "digest mismatch: daemon {} vs streamed {}",
                report.digest,
                report.local_digest()
            )));
        }
        Ok(report)
    }
}
