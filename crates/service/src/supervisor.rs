//! The supervised worker pool: sharding, deadlines, retries with
//! deterministic backoff, worker resurrection, and graceful
//! degradation into an error manifest.
//!
//! Execution model:
//!
//! * Every cell is first checked against the result cache; hits are
//!   resolved immediately (no worker time).
//! * Misses are queued and pulled by `workers` threads. Each attempt
//!   runs under panic containment ([`contain_cell`]) and the sweep's
//!   [`CellBudget`] cycle watchdog, so neither a panicking nor a
//!   wedged cell can take a worker down with it.
//! * A failed attempt with a *retryable* error ([`CellError::Panic`],
//!   [`CellError::Timeout`]) is re-queued after a deterministic,
//!   seed-derived exponential backoff, up to
//!   [`RetryPolicy::max_attempts`]; non-retryable errors and
//!   exhausted budgets resolve the cell as permanently failed. Failed
//!   cells appear in the sweep's error manifest — the sweep itself
//!   always completes.
//! * A worker thread that **dies** (the chaos harness kills them
//!   deliberately; nothing else can, thanks to containment) is
//!   detected by the supervisor, its in-flight cell is re-queued
//!   without consuming an attempt, and a replacement worker is
//!   spawned.
//!
//! Simulations are deterministic, so none of this machinery can
//! change results: a cell's stats are bit-identical whether it ran
//! first try, on attempt 3 after two injected panics, on a
//! resurrected worker, or straight out of the cache. The chaos
//! harness (`chaos_service`) asserts exactly that.

use crate::cache::ResultCache;
use crate::spec::{CellSpec, SweepRequest};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};
use tpc_experiments::{contain_cell, CellBudget, CellError, Fnv64};
use tpc_isa::Program;
use tpc_processor::{SimConfig, SimStats, Simulator};
use tpc_workloads::WorkloadBuilder;

/// Bounded-retry policy with deterministic exponential backoff.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per cell (first try included); at least 1.
    pub max_attempts: u32,
    /// Delay before attempt 2; doubles per subsequent attempt.
    pub backoff_base_ms: u64,
    /// Upper bound on any single delay.
    pub backoff_cap_ms: u64,
    /// Seed for the deterministic jitter.
    pub backoff_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff_base_ms: 10,
            backoff_cap_ms: 1_000,
            backoff_seed: 0,
        }
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The delay before re-running `cell` after its `attempt`-th try
/// failed: exponential in the attempt with up to +50% deterministic
/// jitter (a pure function of `(policy.backoff_seed, cell, attempt)`
/// — two runs of the same sweep back off identically), capped at
/// [`RetryPolicy::backoff_cap_ms`].
pub fn backoff_ms(policy: &RetryPolicy, cell: usize, attempt: u32) -> u64 {
    let exp = policy
        .backoff_base_ms
        .saturating_mul(1u64 << attempt.clamp(1, 16).saturating_sub(1));
    let jitter_span = exp / 2 + 1;
    let jitter = splitmix64(
        policy
            .backoff_seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add((cell as u64) << 32)
            .wrapping_add(attempt as u64),
    ) % jitter_span;
    exp.saturating_add(jitter).min(policy.backoff_cap_ms)
}

/// Supervisor-level chaos injection, part of a [`SweepRequest`]. The
/// daemon refuses it unless started with `--allow-chaos`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChaosPlan {
    /// Kill the worker that picks up `(cell, attempt)` — the thread
    /// dies mid-cell without reporting, exercising the supervisor's
    /// detection/re-queue/respawn path. Each entry fires once.
    pub kill_worker: Vec<(usize, u32)>,
    /// Simulate a cache-write failure for these cell indices: the
    /// result is returned to the client but not memoized.
    pub fail_cache_writes: Vec<usize>,
}

impl ChaosPlan {
    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.kill_worker.is_empty() && self.fail_cache_writes.is_empty()
    }
}

/// A cell bound to its regenerated program and content fingerprint,
/// ready to simulate.
#[derive(Debug, Clone)]
pub struct PreparedCell {
    /// The wire spec this cell came from.
    pub spec: CellSpec,
    /// The generated workload (shared across cells of one benchmark).
    pub program: Arc<Program>,
    /// The expanded simulator configuration.
    pub config: SimConfig,
    /// Content-addressed identity in the result cache.
    pub fingerprint: u64,
}

/// Regenerates each benchmark's program once and binds every cell of
/// `req` to its program, expanded config, and fingerprint.
pub fn prepare_cells(req: &SweepRequest) -> Vec<PreparedCell> {
    let mut programs: BTreeMap<&'static str, Arc<Program>> = BTreeMap::new();
    req.cells
        .iter()
        .map(|spec| {
            let program = programs
                .entry(spec.benchmark.name())
                .or_insert_with(|| {
                    Arc::new(WorkloadBuilder::new(spec.benchmark).seed(req.seed).build())
                })
                .clone();
            PreparedCell {
                program,
                config: spec.sim_config(),
                fingerprint: spec.fingerprint(req.warmup, req.measure, req.seed),
                spec: spec.clone(),
            }
        })
        .collect()
}

/// How one cell ended up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellOutcome {
    /// The stats, or the final attempt's error.
    pub result: Result<SimStats, CellError>,
    /// Attempts actually run (0 for a cache hit).
    pub attempts: u32,
    /// Served from the result cache.
    pub cached: bool,
    /// The result could not be memoized (I/O error or injected write
    /// failure); the stats themselves are unaffected.
    pub cache_write_failed: bool,
}

/// One permanently failed cell, as reported to clients alongside the
/// partial results — failure never aborts the sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    /// Index into the sweep's cell grid.
    pub index: usize,
    /// Error kind tag (`panic` / `timeout` / `checkpoint`).
    pub kind: String,
    /// Human-readable detail.
    pub message: String,
    /// Attempts spent before giving up.
    pub attempts: u32,
}

/// The supervisor's verdict on a whole sweep.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// Per-cell outcomes, in grid order.
    pub cells: Vec<CellOutcome>,
    /// Re-queued attempts across all cells.
    pub retries: u64,
    /// Cells served from the result cache.
    pub cache_hits: u64,
    /// Worker threads that died and were replaced.
    pub workers_killed: u64,
}

impl SweepOutcome {
    /// Cells that completed (fresh or cached).
    pub fn ok_count(&self) -> usize {
        self.cells.iter().filter(|c| c.result.is_ok()).count()
    }

    /// Cells that permanently failed.
    pub fn failed_count(&self) -> usize {
        self.cells.len() - self.ok_count()
    }

    /// The error manifest: every permanently failed cell, in grid
    /// order.
    pub fn manifest(&self) -> Vec<ManifestEntry> {
        self.cells
            .iter()
            .enumerate()
            .filter_map(|(index, cell)| match &cell.result {
                Ok(_) => None,
                Err(e) => Some(ManifestEntry {
                    index,
                    kind: e.kind().to_string(),
                    message: e.to_string(),
                    attempts: cell.attempts,
                }),
            })
            .collect()
    }

    /// Order-sensitive FNV digest over the completed cells' exact
    /// stats words — two sweeps merged bit-identically have equal
    /// digests.
    pub fn digest(&self) -> u64 {
        digest_results(self.cells.iter().map(|c| c.result.as_ref().ok()))
    }
}

/// Digest of an ordered sequence of optional results (shared by the
/// supervisor and clients diffing against a serial reference).
pub fn digest_results<'a>(results: impl Iterator<Item = Option<&'a SimStats>>) -> u64 {
    let mut h = Fnv64::new();
    for (index, stats) in results.enumerate() {
        match stats {
            Some(stats) => {
                h.write(&(index as u64).to_le_bytes());
                for word in stats.to_words() {
                    h.write(&word.to_le_bytes());
                }
            }
            None => h.write(b"failed"),
        }
    }
    h.finish()
}

/// Progress notifications, streamed to clients as they happen.
#[derive(Debug, Clone)]
pub enum Event {
    /// A cell resolved successfully.
    CellDone {
        /// Grid index.
        index: usize,
        /// Attempts run (0 = cache hit).
        attempts: u32,
        /// Served from cache.
        cached: bool,
        /// Worker-side wall milliseconds for the final attempt.
        ms: f64,
        /// The stats (boxed: this variant dwarfs the others).
        stats: Box<SimStats>,
    },
    /// A cell permanently failed (it will appear in the manifest).
    CellFailed {
        /// Grid index.
        index: usize,
        /// Attempts spent.
        attempts: u32,
        /// The final error.
        error: CellError,
    },
    /// An attempt failed retryably; the cell is re-queued.
    Retry {
        /// Grid index.
        index: usize,
        /// The attempt that failed (1-based).
        attempt: u32,
        /// Deterministic delay before the next attempt.
        delay_ms: u64,
        /// Error kind tag of the failed attempt.
        kind: &'static str,
    },
    /// A worker died mid-cell and was replaced; the cell re-runs.
    WorkerKilled {
        /// Which worker slot died.
        worker: usize,
        /// The cell it was holding.
        index: usize,
        /// The attempt it was on (not consumed).
        attempt: u32,
    },
}

/// Pool-level knobs for one supervised sweep.
#[derive(Debug, Clone, Copy)]
pub struct SupervisorOptions {
    /// Worker threads (clamped to at least 1).
    pub workers: usize,
    /// Warm-up instructions per cell.
    pub warmup: u64,
    /// Measured instructions per cell.
    pub measure: u64,
    /// Per-attempt cycle watchdog.
    pub budget: CellBudget,
    /// Retry/backoff policy.
    pub policy: RetryPolicy,
}

impl SupervisorOptions {
    /// Options matching a request, with `workers` threads.
    pub fn for_request(req: &SweepRequest, workers: usize) -> SupervisorOptions {
        SupervisorOptions {
            workers,
            warmup: req.warmup,
            measure: req.measure,
            budget: req.budget,
            policy: req.policy,
        }
    }
}

/// A starved watchdog budget: guaranteed [`CellError::Timeout`]
/// before any meaningful work. Poisoned "hung" attempts run under it.
fn starved_budget() -> CellBudget {
    CellBudget {
        cycles_per_instruction: 0,
        floor: 50,
    }
}

/// One attempt of one cell, fully contained: panics (including
/// poison) become [`CellError::Panic`], watchdog trips become
/// [`CellError::Timeout`].
fn run_attempt(
    cell: &PreparedCell,
    attempt: u32,
    opts: &SupervisorOptions,
) -> Result<SimStats, CellError> {
    contain_cell(|| {
        if attempt <= cell.spec.poison.panic_attempts {
            panic!("poison: injected panic on attempt {attempt}");
        }
        let budget = if attempt <= cell.spec.poison.hang_attempts {
            starved_budget()
        } else {
            opts.budget
        };
        let max_cycles = budget.max_cycles(opts.warmup + opts.measure);
        let mut sim = Simulator::new(&cell.program, cell.config.clone());
        sim.run_budgeted(opts.warmup, max_cycles)?;
        sim.reset_stats();
        Ok(sim.run_budgeted(opts.measure, max_cycles)?)
    })
}

#[derive(Debug, Clone)]
struct Task {
    index: usize,
    attempt: u32,
    ready_at: Instant,
}

struct Shared {
    queue: Vec<Task>,
    outcomes: Vec<Option<CellOutcome>>,
    unresolved: usize,
    in_flight: BTreeMap<usize, Task>,
    kill_budget: Vec<(usize, u32)>,
    retries: u64,
    workers_killed: u64,
}

struct Pool<'a> {
    shared: Mutex<Shared>,
    ready: Condvar,
    cells: &'a [PreparedCell],
    opts: &'a SupervisorOptions,
    cache: Option<&'a ResultCache>,
    chaos: &'a ChaosPlan,
    on_event: &'a (dyn Fn(Event) + Sync),
}

/// Runs `cells` under full supervision and returns every cell's
/// outcome — this function never panics out and never hangs: the
/// worst a cell can do is exhaust its attempts and land in the
/// manifest.
///
/// `on_event` is called from worker threads as cells resolve (for
/// streaming); it must not block for long.
pub fn run_supervised(
    cells: &[PreparedCell],
    opts: &SupervisorOptions,
    cache: Option<&ResultCache>,
    chaos: &ChaosPlan,
    on_event: &(dyn Fn(Event) + Sync),
) -> SweepOutcome {
    let mut outcomes: Vec<Option<CellOutcome>> = vec![None; cells.len()];
    let mut queue = Vec::new();
    let mut cache_hits = 0u64;
    let now = Instant::now();
    for (index, cell) in cells.iter().enumerate() {
        if let Some(stats) = cache.and_then(|c| c.lookup(cell.fingerprint)) {
            cache_hits += 1;
            on_event(Event::CellDone {
                index,
                attempts: 0,
                cached: true,
                ms: 0.0,
                stats: Box::new(stats.clone()),
            });
            // bound: index enumerates self.cells
            outcomes[index] = Some(CellOutcome {
                result: Ok(stats),
                attempts: 0,
                cached: true,
                cache_write_failed: false,
            });
        } else {
            queue.push(Task {
                index,
                attempt: 1,
                ready_at: now,
            });
        }
    }
    let unresolved = queue.len();
    if unresolved == 0 {
        return SweepOutcome {
            cells: outcomes
                .into_iter()
                .map(|o| o.expect("all cached"))
                .collect(),
            retries: 0,
            cache_hits,
            workers_killed: 0,
        };
    }
    let pool = Pool {
        shared: Mutex::new(Shared {
            queue,
            outcomes,
            unresolved,
            in_flight: BTreeMap::new(),
            kill_budget: chaos.kill_worker.clone(),
            retries: 0,
            workers_killed: 0,
        }),
        ready: Condvar::new(),
        cells,
        opts,
        cache,
        chaos,
        on_event,
    };
    let workers = opts.workers.max(1).min(unresolved);
    std::thread::scope(|scope| {
        let pool = &pool;
        let mut handles: Vec<Option<std::thread::ScopedJoinHandle<'_, ()>>> = (0..workers)
            .map(|wid| Some(scope.spawn(move || pool.worker_loop(wid))))
            .collect();
        // Supervision loop: wait for completion, resurrecting any
        // worker that died mid-cell (only chaos can kill one — every
        // normal failure is contained — but the recovery path is
        // real and always armed).
        loop {
            {
                let shared = pool.lock();
                if shared.unresolved == 0 {
                    break;
                }
            }
            for (wid, slot) in handles.iter_mut().enumerate() {
                let died_mid_cell = slot.as_ref().is_some_and(|h| h.is_finished())
                    && pool.lock().in_flight.contains_key(&wid);
                if died_mid_cell {
                    let _ = slot.take().map(|h| h.join());
                    let task = {
                        let mut shared = pool.lock();
                        let task = shared.in_flight.remove(&wid);
                        if let Some(task) = &task {
                            shared.workers_killed += 1;
                            shared.queue.push(Task {
                                ready_at: Instant::now(),
                                ..task.clone()
                            });
                        }
                        task
                    };
                    if let Some(task) = task {
                        (pool.on_event)(Event::WorkerKilled {
                            worker: wid,
                            index: task.index,
                            attempt: task.attempt,
                        });
                    }
                    pool.ready.notify_all();
                    *slot = Some(scope.spawn(move || pool.worker_loop(wid)));
                }
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        pool.ready.notify_all();
    });
    let shared = pool.shared.into_inner().unwrap_or_else(|p| p.into_inner());
    SweepOutcome {
        cells: shared
            .outcomes
            .into_iter()
            .map(|o| o.expect("supervisor resolved every cell"))
            .collect(),
        retries: shared.retries,
        cache_hits,
        workers_killed: shared.workers_killed,
    }
}

impl<'a> Pool<'a> {
    fn lock(&self) -> std::sync::MutexGuard<'_, Shared> {
        // Workers never panic while holding the lock (simulation runs
        // outside it), so a poisoned mutex still guards consistent
        // data.
        self.shared.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Pulls the next ready task, or `None` when the sweep is done.
    /// A `Some` return has already registered the task in `in_flight`
    /// and consumed any chaos kill (returning `(task, true)` tells
    /// the worker to die).
    fn next_task(&self, wid: usize) -> Option<(Task, bool)> {
        let mut shared = self.lock();
        loop {
            if shared.unresolved == 0 {
                return None;
            }
            let now = Instant::now();
            let ready = shared
                .queue
                .iter()
                .enumerate()
                .filter(|(_, t)| t.ready_at <= now)
                .min_by_key(|(_, t)| t.ready_at)
                .map(|(i, _)| i);
            if let Some(at) = ready {
                let task = shared.queue.swap_remove(at);
                let kill = shared
                    .kill_budget
                    .iter()
                    .position(|&(c, a)| c == task.index && a == task.attempt);
                let lethal = if let Some(k) = kill {
                    shared.kill_budget.swap_remove(k);
                    true
                } else {
                    false
                };
                shared.in_flight.insert(wid, task.clone());
                return Some((task, lethal));
            }
            // Nothing ready: sleep until the earliest backoff expiry
            // (or a notify when new work arrives).
            let wait = shared
                .queue
                .iter()
                .map(|t| t.ready_at.saturating_duration_since(now))
                .min()
                .unwrap_or(Duration::from_millis(20))
                .max(Duration::from_millis(1));
            let (guard, _) = self
                .ready
                .wait_timeout(shared, wait)
                .unwrap_or_else(|p| p.into_inner());
            shared = guard;
        }
    }

    fn worker_loop(&self, wid: usize) {
        while let Some((task, lethal)) = self.next_task(wid) {
            if lethal {
                // Chaos: die mid-cell, leaving the task in
                // `in_flight` for the supervisor to recover. The
                // thread simply returns — from the pool's view this
                // is indistinguishable from a crashed worker.
                return;
            }
            // bound: tasks are built from cell indices
            let cell = &self.cells[task.index];
            let t0 = Instant::now();
            let result = run_attempt(cell, task.attempt, self.opts);
            let ms = t0.elapsed().as_secs_f64() * 1e3;
            match result {
                Ok(stats) => {
                    let mut cache_write_failed = false;
                    if let Some(cache) = self.cache {
                        if self.chaos.fail_cache_writes.contains(&task.index) {
                            cache_write_failed = true; // injected write failure
                        } else if cache.insert(cell.fingerprint, &stats).is_err() {
                            cache_write_failed = true;
                        }
                    }
                    {
                        let mut shared = self.lock();
                        shared.in_flight.remove(&wid);
                        // bound: outcomes sized to cells
                        shared.outcomes[task.index] = Some(CellOutcome {
                            result: Ok(stats.clone()),
                            attempts: task.attempt,
                            cached: false,
                            cache_write_failed,
                        });
                        shared.unresolved -= 1;
                    }
                    (self.on_event)(Event::CellDone {
                        index: task.index,
                        attempts: task.attempt,
                        cached: false,
                        ms,
                        stats: Box::new(stats),
                    });
                }
                Err(error) => {
                    let retry =
                        error.is_retryable() && task.attempt < self.opts.policy.max_attempts;
                    if retry {
                        let delay_ms = backoff_ms(&self.opts.policy, task.index, task.attempt);
                        {
                            let mut shared = self.lock();
                            shared.in_flight.remove(&wid);
                            shared.retries += 1;
                            shared.queue.push(Task {
                                index: task.index,
                                attempt: task.attempt + 1,
                                ready_at: Instant::now() + Duration::from_millis(delay_ms),
                            });
                        }
                        (self.on_event)(Event::Retry {
                            index: task.index,
                            attempt: task.attempt,
                            delay_ms,
                            kind: error.kind(),
                        });
                    } else {
                        {
                            let mut shared = self.lock();
                            shared.in_flight.remove(&wid);
                            // bound: outcomes sized to cells
                            shared.outcomes[task.index] = Some(CellOutcome {
                                result: Err(error.clone()),
                                attempts: task.attempt,
                                cached: false,
                                cache_write_failed: false,
                            });
                            shared.unresolved -= 1;
                        }
                        (self.on_event)(Event::CellFailed {
                            index: task.index,
                            attempts: task.attempt,
                            error,
                        });
                    }
                }
            }
            self.ready.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_bounded_and_growing() {
        let policy = RetryPolicy {
            max_attempts: 5,
            backoff_base_ms: 10,
            backoff_cap_ms: 400,
            backoff_seed: 42,
        };
        for cell in 0..8 {
            for attempt in 1..6 {
                let a = backoff_ms(&policy, cell, attempt);
                assert_eq!(a, backoff_ms(&policy, cell, attempt), "pure function");
                assert!(a <= policy.backoff_cap_ms);
                let base = policy.backoff_base_ms * (1 << (attempt.min(16) - 1));
                assert!(
                    a >= base.min(policy.backoff_cap_ms),
                    "at least exponential base"
                );
            }
        }
        // Different seeds jitter differently somewhere in the grid.
        let other = RetryPolicy {
            backoff_seed: 43,
            ..policy
        };
        assert!(
            (0..64).any(|c| backoff_ms(&policy, c, 2) != backoff_ms(&other, c, 2)),
            "jitter depends on the seed"
        );
    }

    #[test]
    fn splitmix_spreads() {
        let a = splitmix64(1);
        let b = splitmix64(2);
        assert_ne!(a, b);
        assert_ne!(a, 1);
    }
}
