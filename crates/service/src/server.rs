//! The Unix-domain-socket daemon.
//!
//! Protocol: line-delimited JSON over a `SOCK_STREAM` Unix socket.
//! The client sends one request object per line; the server answers
//! with one or more newline-terminated JSON lines. Ops:
//!
//! | request | response |
//! |---|---|
//! | `{"op":"ping"}` | `{"ok":true,"op":"ping"}` |
//! | `{"op":"cache_stats"}` | `{"ok":true,"op":"cache_stats","entries":..,"hits":..,"misses":..,"insert_failures":..}` |
//! | `{"op":"shutdown"}` | `{"ok":true,"op":"shutdown"}`, then the daemon exits |
//! | `{"op":"sweep",...}` | `{"ok":true,"op":"accepted",...}`, a stream of `event` lines, then a final `done` line |
//!
//! Malformed or rejected requests get `{"ok":false,"error":"..."}`;
//! the connection stays usable. Sweep event lines (in completion
//! order, not grid order — every line carries its cell `index`):
//!
//! ```text
//! {"event":"cell","index":3,"attempts":1,"cached":false,"ms":12.5,"words":[...]}
//! {"event":"retry","index":5,"attempt":1,"delay_ms":13,"kind":"panic"}
//! {"event":"worker_killed","worker":0,"index":5,"attempt":2}
//! {"event":"cell_error","index":6,"attempts":3,"kind":"timeout","message":"..."}
//! {"event":"done","ok":7,"failed":1,"cached":2,"retries":3,"workers_killed":1,
//!  "cache_write_failures":0,"digest":123...,
//!  "manifest":[{"index":6,"kind":"timeout","message":"...","attempts":3}]}
//! ```
//!
//! Connections are served **sequentially** (parallelism lives inside
//! a sweep, across the worker pool — not across clients); a second
//! client queues in the listen backlog until the first disconnects.
//!
//! The `manifest` array lists every permanently failed cell; `digest`
//! is the order-sensitive FNV digest of the completed cells' stats
//! words ([`crate::supervisor::digest_results`]) for cheap
//! bit-identity checks against a
//! reference run. Chaos injection in a request is refused unless the
//! daemon was started with `--allow-chaos`.

use crate::cache::ResultCache;
use crate::json::{escape, Json};
use crate::spec::SweepRequest;
use crate::supervisor::{prepare_cells, run_supervised, Event, SupervisorOptions, SweepOutcome};
use std::io::{self, BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::Mutex;
use tpc_processor::SimStats;

/// Daemon configuration (mirrors the `tpc_service` CLI).
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Socket path to bind (a stale socket file is replaced).
    pub socket: PathBuf,
    /// Result-cache file; `None` keeps memoization in memory only.
    pub cache: Option<PathBuf>,
    /// Worker threads per sweep (0 = all available cores).
    pub workers: usize,
    /// Accept requests carrying chaos plans (test harnesses only).
    pub allow_chaos: bool,
    /// Return from [`serve`] after a `shutdown` op (the binary always
    /// sets this; in-process tests may serve several shutdowns).
    pub exit_on_shutdown: bool,
}

impl ServerOptions {
    /// Defaults: in-memory cache, auto worker count, chaos refused.
    pub fn new(socket: PathBuf) -> ServerOptions {
        ServerOptions {
            socket,
            cache: None,
            workers: 0,
            allow_chaos: false,
            exit_on_shutdown: true,
        }
    }
}

/// Serializes stats words as a JSON array fragment.
fn words_json(stats: &SimStats) -> String {
    let words: Vec<String> = stats.to_words().iter().map(u64::to_string).collect();
    format!("[{}]", words.join(","))
}

/// A line writer shared between the connection handler and the
/// supervisor's worker threads. Write errors are latched, not
/// propagated: a client that disconnects mid-sweep must not kill the
/// sweep (its cells still land in the cache for the re-submit).
struct EventWriter {
    inner: Mutex<(UnixStream, bool)>,
}

impl EventWriter {
    fn new(stream: UnixStream) -> EventWriter {
        EventWriter {
            inner: Mutex::new((stream, false)),
        }
    }

    fn line(&self, s: &str) {
        let mut guard = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        let (stream, dead) = &mut *guard;
        if *dead {
            return;
        }
        if stream
            .write_all(s.as_bytes())
            .and_then(|()| stream.write_all(b"\n"))
            .is_err()
        {
            *dead = true;
        }
    }
}

fn event_line(event: &Event) -> String {
    match event {
        Event::CellDone {
            index,
            attempts,
            cached,
            ms,
            stats,
        } => format!(
            "{{\"event\":\"cell\",\"index\":{index},\"attempts\":{attempts},\
             \"cached\":{cached},\"ms\":{ms:.3},\"words\":{}}}",
            words_json(stats)
        ),
        Event::CellFailed {
            index,
            attempts,
            error,
        } => format!(
            "{{\"event\":\"cell_error\",\"index\":{index},\"attempts\":{attempts},\
             \"kind\":\"{}\",\"message\":\"{}\"}}",
            error.kind(),
            escape(&error.to_string())
        ),
        Event::Retry {
            index,
            attempt,
            delay_ms,
            kind,
        } => format!(
            "{{\"event\":\"retry\",\"index\":{index},\"attempt\":{attempt},\
             \"delay_ms\":{delay_ms},\"kind\":\"{kind}\"}}"
        ),
        Event::WorkerKilled {
            worker,
            index,
            attempt,
        } => format!(
            "{{\"event\":\"worker_killed\",\"worker\":{worker},\
             \"index\":{index},\"attempt\":{attempt}}}"
        ),
    }
}

fn done_line(outcome: &SweepOutcome) -> String {
    let manifest: Vec<String> = outcome
        .manifest()
        .iter()
        .map(|entry| {
            format!(
                "{{\"index\":{},\"kind\":\"{}\",\"message\":\"{}\",\"attempts\":{}}}",
                entry.index,
                escape(&entry.kind),
                escape(&entry.message),
                entry.attempts
            )
        })
        .collect();
    let cached = outcome.cells.iter().filter(|c| c.cached).count();
    let write_failures = outcome
        .cells
        .iter()
        .filter(|c| c.cache_write_failed)
        .count();
    format!(
        "{{\"event\":\"done\",\"ok\":{},\"failed\":{},\"cached\":{cached},\
         \"retries\":{},\"workers_killed\":{},\"cache_write_failures\":{write_failures},\
         \"digest\":{},\"manifest\":[{}]}}",
        outcome.ok_count(),
        outcome.failed_count(),
        outcome.retries,
        outcome.workers_killed,
        outcome.digest(),
        manifest.join(",")
    )
}

fn handle_sweep(
    req: &SweepRequest,
    opts: &ServerOptions,
    cache: &ResultCache,
    writer: &EventWriter,
) {
    writer.line(&format!(
        "{{\"ok\":true,\"op\":\"accepted\",\"cells\":{}}}",
        req.cells.len()
    ));
    let workers = if opts.workers == 0 {
        tpc_experiments::available_cores()
    } else {
        opts.workers
    };
    let prepared = prepare_cells(req);
    let sup_opts = SupervisorOptions::for_request(req, workers);
    let effective_cache = if req.no_cache { None } else { Some(cache) };
    let outcome = run_supervised(
        &prepared,
        &sup_opts,
        effective_cache,
        &req.chaos,
        &|event| writer.line(&event_line(&event)),
    );
    writer.line(&done_line(&outcome));
}

/// Handles one client connection; returns `true` when the client
/// requested daemon shutdown.
fn handle_connection(stream: UnixStream, opts: &ServerOptions, cache: &ResultCache) -> bool {
    let reader = match stream.try_clone() {
        Ok(s) => BufReader::new(s),
        Err(_) => return false,
    };
    let writer = EventWriter::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let parsed = match Json::parse(&line) {
            Ok(v) => v,
            Err(e) => {
                writer.line(&format!(
                    "{{\"ok\":false,\"error\":\"bad json: {}\"}}",
                    escape(&e)
                ));
                continue;
            }
        };
        match parsed.get("op").and_then(Json::as_str) {
            Some("ping") => writer.line("{\"ok\":true,\"op\":\"ping\"}"),
            Some("cache_stats") => {
                let s = cache.stats();
                writer.line(&format!(
                    "{{\"ok\":true,\"op\":\"cache_stats\",\"entries\":{},\"hits\":{},\
                     \"misses\":{},\"insert_failures\":{}}}",
                    s.entries, s.hits, s.misses, s.insert_failures
                ));
            }
            Some("shutdown") => {
                writer.line("{\"ok\":true,\"op\":\"shutdown\"}");
                return true;
            }
            Some("sweep") => match SweepRequest::from_json(&parsed) {
                Ok(req) => {
                    if !req.chaos.is_empty() && !opts.allow_chaos {
                        writer.line(
                            "{\"ok\":false,\"error\":\"chaos plan refused: \
                             daemon started without --allow-chaos\"}",
                        );
                    } else {
                        handle_sweep(&req, opts, cache, &writer);
                    }
                }
                Err(e) => writer.line(&format!(
                    "{{\"ok\":false,\"error\":\"bad sweep: {}\"}}",
                    escape(&e)
                )),
            },
            Some(other) => writer.line(&format!(
                "{{\"ok\":false,\"error\":\"unknown op {}\"}}",
                escape(&format!("{other:?}"))
            )),
            None => writer.line("{\"ok\":false,\"error\":\"missing op\"}"),
        }
    }
    false
}

/// Binds the socket and serves connections until a `shutdown` op
/// (when [`ServerOptions::exit_on_shutdown`]) or an accept error.
///
/// A pre-existing socket file is probed first: if a daemon still
/// answers on it, binding fails with [`io::ErrorKind::AddrInUse`];
/// a dead leftover (SIGKILL'd daemon) is silently replaced — exactly
/// the restart path the chaos harness exercises.
///
/// # Errors
///
/// Socket binding/acceptance failures. An unusable cache file is
/// *not* an error: the daemon logs a warning to stderr and serves
/// from memory.
pub fn serve(opts: &ServerOptions) -> io::Result<()> {
    if opts.socket.exists() {
        if UnixStream::connect(&opts.socket).is_ok() {
            return Err(io::Error::new(
                io::ErrorKind::AddrInUse,
                format!("a daemon is already listening on {:?}", opts.socket),
            ));
        }
        std::fs::remove_file(&opts.socket)?;
    }
    let cache = match &opts.cache {
        None => ResultCache::in_memory(),
        Some(path) => {
            let (cache, warning) = ResultCache::open_or_memory(path);
            if let Some(w) = warning {
                eprintln!("tpc-service: {w}");
            }
            cache
        }
    };
    let listener = UnixListener::bind(&opts.socket)?;
    for stream in listener.incoming() {
        let stream = stream?;
        if handle_connection(stream, opts, &cache) && opts.exit_on_shutdown {
            break;
        }
    }
    let _ = std::fs::remove_file(&opts.socket);
    Ok(())
}
