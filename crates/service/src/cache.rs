//! Content-addressed result cache, built on the checkpoint JSONL
//! codec.
//!
//! The cache file is a header line followed by one
//! `{"fp":<fingerprint>,"words":[...]}` line per memoized cell (the
//! [`SimStats::to_words`] integer codec — bit-exact round-trip):
//!
//! ```text
//! {"kind":"tpc-result-cache","version":1}
//! {"fp":9072148444473136245,"words":[163840,80000,...]}
//! ```
//!
//! Unlike a sweep checkpoint the file is keyed by **cell
//! fingerprint**, not cell index, so it spans sweeps: re-submitting
//! any sweep that overlaps a previous one replays the overlapping
//! cells for free. The torn-line rules are inherited from the
//! checkpoint module: a line that doesn't parse is skipped (that cell
//! re-runs and is re-recorded), duplicates are last-wins, and a file
//! ending mid-line (SIGKILL'd daemon) is newline-repaired on open so
//! the next append is not glued onto the fragment.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::Path;
use std::sync::Mutex;
use tpc_experiments::{encode_keyed_words, parse_keyed_words};
use tpc_processor::SimStats;

/// The cache file's identifying header.
pub const CACHE_HEADER: &str = "{\"kind\":\"tpc-result-cache\",\"version\":1}";

/// Counters describing a cache's life so far (`cache_stats` op).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Memoized results currently held.
    pub entries: u64,
    /// Lookups that found a result.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Failed insert attempts (I/O errors; the result was still
    /// returned to the client, only the memoization was lost).
    pub insert_failures: u64,
}

struct CacheInner {
    map: BTreeMap<u64, SimStats>,
    file: Option<File>,
    hits: u64,
    misses: u64,
    insert_failures: u64,
}

/// A shared, file-backed (or in-memory) memoization table keyed by
/// [`CellSpec::fingerprint`](crate::spec::CellSpec::fingerprint).
/// All methods take `&self`; the table is safe to share across the
/// daemon's connections and workers.
pub struct ResultCache {
    inner: Mutex<CacheInner>,
}

impl ResultCache {
    /// A cache with no backing file (results survive for the
    /// daemon's lifetime only).
    pub fn in_memory() -> ResultCache {
        ResultCache {
            inner: Mutex::new(CacheInner {
                map: BTreeMap::new(),
                file: None,
                hits: 0,
                misses: 0,
                insert_failures: 0,
            }),
        }
    }

    /// Opens (or creates) the cache file at `path`, loading every
    /// parseable record. Torn lines are skipped; a torn tail is
    /// newline-repaired before any append.
    ///
    /// # Errors
    ///
    /// I/O errors, or [`io::ErrorKind::InvalidData`] when the file
    /// exists but is not a result cache.
    pub fn open(path: &Path) -> io::Result<ResultCache> {
        let mut map = BTreeMap::new();
        let mut torn_tail = false;
        if path.exists() {
            let contents = String::from_utf8_lossy(&std::fs::read(path)?).into_owned();
            if !contents.is_empty() {
                let mut lines = contents.lines();
                let header = lines.next().unwrap_or("");
                if !header.contains("\"kind\":\"tpc-result-cache\"") {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("not a tpc result cache: header {header:?}"),
                    ));
                }
                for line in lines {
                    if let Some((fp, stats)) = parse_keyed_words(line, "fp") {
                        map.insert(fp, stats); // duplicates: last wins
                    }
                }
                torn_tail = !contents.ends_with('\n');
            }
        }
        let mut file = OpenOptions::new().create(true).append(true).open(path)?;
        if file.metadata()?.len() == 0 {
            writeln!(file, "{CACHE_HEADER}")?;
            file.flush()?;
        } else if torn_tail {
            file.write_all(b"\n")?;
            file.flush()?;
        }
        Ok(ResultCache {
            inner: Mutex::new(CacheInner {
                map,
                file: Some(file),
                hits: 0,
                misses: 0,
                insert_failures: 0,
            }),
        })
    }

    /// Opens `path`, degrading to an in-memory cache (with a warning
    /// message for the log) when the file is unusable — a daemon with
    /// a broken cache disk still serves correct results, just without
    /// persistence.
    pub fn open_or_memory(path: &Path) -> (ResultCache, Option<String>) {
        match ResultCache::open(path) {
            Ok(cache) => (cache, None),
            Err(e) => (
                ResultCache::in_memory(),
                Some(format!(
                    "cache {path:?} unusable ({e}); continuing without persistence"
                )),
            ),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, CacheInner> {
        // A panic while holding the lock can only come from a map
        // operation (file errors are returned, not thrown); the map
        // is still consistent, so poisoning is safe to clear.
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Looks up a memoized result, counting the hit or miss.
    pub fn lookup(&self, fingerprint: u64) -> Option<SimStats> {
        let mut inner = self.lock();
        match inner.map.get(&fingerprint).cloned() {
            Some(stats) => {
                inner.hits += 1;
                Some(stats)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Memoizes one result, appending it to the backing file (one
    /// `write_all` per line, torn-tail repaired on failure, same as
    /// the checkpoint writer).
    ///
    /// # Errors
    ///
    /// The append failed; the in-memory entry is still installed, so
    /// the daemon keeps the memoization until restart.
    pub fn insert(&self, fingerprint: u64, stats: &SimStats) -> io::Result<()> {
        let line = encode_keyed_words("fp", fingerprint, stats);
        let mut inner = self.lock();
        inner.map.insert(fingerprint, stats.clone());
        let Some(file) = inner.file.as_mut() else {
            return Ok(());
        };
        let wrote = file.write_all(line.as_bytes()).and_then(|()| file.flush());
        if let Err(e) = wrote {
            let _ = file.write_all(b"\n");
            let _ = file.flush();
            inner.insert_failures += 1;
            return Err(e);
        }
        Ok(())
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        let inner = self.lock();
        CacheStats {
            entries: inner.map.len() as u64,
            hits: inner.hits,
            misses: inner.misses,
            insert_failures: inner.insert_failures,
        }
    }
}

impl std::fmt::Debug for ResultCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("ResultCache")
            .field("entries", &stats.entries)
            .field("hits", &stats.hits)
            .field("misses", &stats.misses)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("tpc-service-cache-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    fn sample(x: u64) -> SimStats {
        SimStats {
            cycles: 10_000 + x,
            retired_instructions: 4_000 + x,
            trace_fetches: x,
            ..SimStats::default()
        }
    }

    #[test]
    fn round_trips_across_reopen() {
        let path = temp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        let cache = ResultCache::open(&path).unwrap();
        assert_eq!(cache.lookup(1), None);
        cache.insert(1, &sample(1)).unwrap();
        cache.insert(u64::MAX, &sample(2)).unwrap();
        assert_eq!(cache.lookup(1), Some(sample(1)));
        drop(cache);
        let cache = ResultCache::open(&path).unwrap();
        assert_eq!(cache.lookup(1), Some(sample(1)));
        assert_eq!(cache.lookup(u64::MAX), Some(sample(2)));
        assert_eq!(cache.lookup(3), None);
        let stats = cache.stats();
        assert_eq!((stats.entries, stats.hits, stats.misses), (2, 2, 1));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_skipped_and_repaired() {
        let path = temp_path("torn");
        let _ = std::fs::remove_file(&path);
        let cache = ResultCache::open(&path).unwrap();
        cache.insert(7, &sample(7)).unwrap();
        drop(cache);
        // SIGKILL'd writer: a partial record with no newline.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"fp\":8,\"words\":[1,2").unwrap();
        drop(f);
        let cache = ResultCache::open(&path).unwrap();
        assert_eq!(cache.lookup(7), Some(sample(7)));
        assert_eq!(cache.lookup(8), None, "torn record dropped");
        // The repaired tail means this append is not glued onto the
        // fragment.
        cache.insert(9, &sample(9)).unwrap();
        drop(cache);
        let cache = ResultCache::open(&path).unwrap();
        assert_eq!(cache.lookup(9), Some(sample(9)));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn duplicate_fingerprints_are_last_wins() {
        let path = temp_path("dup");
        let _ = std::fs::remove_file(&path);
        let cache = ResultCache::open(&path).unwrap();
        cache.insert(5, &sample(1)).unwrap();
        cache.insert(5, &sample(2)).unwrap();
        drop(cache);
        let cache = ResultCache::open(&path).unwrap();
        assert_eq!(cache.lookup(5), Some(sample(2)));
        assert_eq!(cache.stats().entries, 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn foreign_file_is_rejected_but_degrades_gracefully() {
        let path = temp_path("foreign");
        std::fs::write(&path, "not a cache\n").unwrap();
        let err = ResultCache::open(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let (cache, warning) = ResultCache::open_or_memory(&path);
        assert!(warning.unwrap().contains("continuing without persistence"));
        cache.insert(1, &sample(1)).unwrap();
        assert_eq!(cache.lookup(1), Some(sample(1)), "in-memory fallback works");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn directory_as_cache_path_degrades_gracefully() {
        let dir =
            std::env::temp_dir().join(format!("tpc-service-cache-dir-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let (cache, warning) = ResultCache::open_or_memory(&dir);
        assert!(warning.is_some());
        cache.insert(1, &sample(1)).unwrap();
        assert_eq!(cache.lookup(1), Some(sample(1)));
        let _ = std::fs::remove_dir(&dir);
    }
}
