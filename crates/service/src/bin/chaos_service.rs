//! Self-chaos gate for the sweep daemon.
//!
//! ```text
//! chaos_service [--quick]
//! ```
//!
//! Spawns real `tpc_service` daemons (sibling binary, or
//! `TPC_SERVICE_BIN`) and attacks them the way the world would:
//!
//! 1. **Clean sweep** — daemon results must be bit-identical to a
//!    serial in-process [`run_cells`] reference (digest over every
//!    stats word).
//! 2. **Memoized resubmit** — the same sweep again: every cell served
//!    from cache, digest unchanged.
//! 3. **Chaos sweep** — poison cells that panic or hang on their
//!    first attempts (they must recover via retries to bit-identical
//!    stats), a permanently failing cell (it must land in the error
//!    manifest with bounded attempts while the rest complete), a
//!    worker killed mid-cell (the supervisor must resurrect it), and
//!    an injected cache-write failure (result still correct).
//! 4. **Daemon SIGKILL mid-sweep** — kill -9 the daemon after two
//!    cells complete, tear the cache file's tail, restart on the same
//!    socket and cache, resubmit: the finished cells replay from
//!    cache and the merged digest still matches the reference.
//! 5. **Broken cache path** — a daemon whose `--cache` points at a
//!    directory degrades to in-memory and still answers correctly;
//!    the same daemon (started without `--allow-chaos`) must refuse a
//!    chaos-carrying request.
//!
//! Exit status 0 only if every check passes — wired into
//! `scripts/verify.sh` as the service smoke gate.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, ExitCode, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tpc_experiments::{run_cells, RunParams, SweepCell};
use tpc_isa::Program;
use tpc_processor::SimStats;
use tpc_service::{digest_results, CellSpec, Client, ConfigSpec, Poison, SweepRequest};
use tpc_workloads::{Benchmark, WorkloadBuilder};

struct Harness {
    failures: u32,
    checks: u32,
}

impl Harness {
    fn check(&mut self, name: &str, ok: bool, detail: &str) {
        self.checks += 1;
        if ok {
            println!("PASS {name}");
        } else {
            self.failures += 1;
            println!("FAIL {name}: {detail}");
        }
    }
}

fn daemon_bin() -> PathBuf {
    if let Ok(p) = std::env::var("TPC_SERVICE_BIN") {
        return PathBuf::from(p);
    }
    let mut p = std::env::current_exe().expect("current_exe");
    p.set_file_name("tpc_service");
    p
}

fn spawn_daemon(socket: &Path, cache: Option<&Path>, workers: usize, allow_chaos: bool) -> Child {
    let mut cmd = Command::new(daemon_bin());
    cmd.arg("--socket").arg(socket);
    if let Some(cache) = cache {
        cmd.arg("--cache").arg(cache);
    }
    cmd.arg("--workers").arg(workers.to_string());
    if allow_chaos {
        cmd.arg("--allow-chaos");
    }
    cmd.stdout(Stdio::inherit())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn tpc_service daemon")
}

/// Shuts the daemon down over the client's own connection (the
/// daemon serves connections sequentially, so a fresh connection
/// would queue behind this one) and waits for the process to exit.
fn stop_daemon(mut child: Child, mut client: Client) {
    let _ = client.shutdown();
    drop(client);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match child.try_wait() {
            Ok(Some(_)) => return,
            Ok(None) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(20));
            }
            _ => {
                let _ = child.kill();
                let _ = child.wait();
                return;
            }
        }
    }
}

fn connect(socket: &Path) -> Client {
    Client::connect_retry(socket, Duration::from_secs(10)).expect("daemon did not come up")
}

/// The grid both the reference and the daemon run.
fn grid(quick: bool) -> Vec<CellSpec> {
    let benchmarks = if quick {
        &[Benchmark::Compress, Benchmark::Gcc][..]
    } else {
        &[
            Benchmark::Compress,
            Benchmark::Gcc,
            Benchmark::Go,
            Benchmark::Vortex,
        ][..]
    };
    let configs = [
        ConfigSpec::parse("baseline:64").unwrap(),
        ConfigSpec::parse("combined:64:32").unwrap(),
    ];
    benchmarks
        .iter()
        .flat_map(|&b| configs.iter().map(move |&c| CellSpec::new(b, c)))
        .collect()
}

/// Serial, unsupervised, in-process reference results for `specs`.
fn serial_reference(specs: &[CellSpec], params: RunParams) -> Vec<SimStats> {
    let mut programs: BTreeMap<&'static str, Arc<Program>> = BTreeMap::new();
    let cells: Vec<SweepCell> = specs
        .iter()
        .map(|spec| {
            let program = programs
                .entry(spec.benchmark.name())
                .or_insert_with(|| {
                    Arc::new(
                        WorkloadBuilder::new(spec.benchmark)
                            .seed(params.seed)
                            .build(),
                    )
                })
                .clone();
            SweepCell::new(program, spec.sim_config())
        })
        .collect();
    run_cells(&cells, params)
}

fn main() -> ExitCode {
    let quick = std::env::args().any(|a| a == "--quick");
    let params = if quick {
        RunParams {
            warmup: 4_000,
            measure: 8_000,
            seed: 1,
            jobs: 1,
        }
    } else {
        RunParams {
            warmup: 40_000,
            measure: 80_000,
            seed: 1,
            jobs: 1,
        }
    };
    let dir = std::env::temp_dir().join(format!("tpc-chaos-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let mut h = Harness {
        failures: 0,
        checks: 0,
    };

    let specs = grid(quick);
    let n = specs.len();
    println!(
        "chaos_service: {} cells, warmup {}, measure {}",
        n, params.warmup, params.measure
    );
    let reference = serial_reference(&specs, params);
    let ref_digest = digest_results(reference.iter().map(Some));

    let request = |cells: Vec<CellSpec>| {
        let mut req = SweepRequest::new(params.warmup, params.measure, params.seed, cells);
        req.policy.backoff_base_ms = 1;
        req.policy.backoff_cap_ms = 5;
        req
    };

    // --- Scenarios 1-3: one daemon, persistent cache, chaos allowed.
    let socket = dir.join("main.sock");
    let cache = dir.join("cache.jsonl");
    let daemon = spawn_daemon(&socket, Some(&cache), 3, true);
    let mut client = connect(&socket);
    h.check("ping", client.ping().is_ok(), "daemon unreachable");

    // 1. Clean sweep: bit-identical to the serial reference.
    match client.sweep(&request(specs.clone())) {
        Ok(report) => {
            h.check(
                "clean sweep matches serial reference",
                report.digest == ref_digest && report.ok_count() == n,
                &format!(
                    "digest {} vs reference {ref_digest}, ok {}/{n}",
                    report.digest,
                    report.ok_count()
                ),
            );
            h.check(
                "clean sweep ran fresh",
                report.cached_count() == 0 && report.retries == 0,
                &format!(
                    "cached {}, retries {}",
                    report.cached_count(),
                    report.retries
                ),
            );
        }
        Err(e) => h.check(
            "clean sweep matches serial reference",
            false,
            &e.to_string(),
        ),
    }

    // 2. Resubmit: every cell replays from the cache, digest unchanged.
    match client.sweep(&request(specs.clone())) {
        Ok(report) => h.check(
            "resubmit is fully memoized and identical",
            report.digest == ref_digest && report.cached_count() == n,
            &format!(
                "digest {} vs {ref_digest}, cached {}/{n}",
                report.digest,
                report.cached_count()
            ),
        ),
        Err(e) => h.check(
            "resubmit is fully memoized and identical",
            false,
            &e.to_string(),
        ),
    }

    // 3. Chaos sweep: flaky poison (panic, hang), a permanent
    // failure, a worker kill, and a cache-write failure — partial
    // results still bit-identical, failure degraded into the
    // manifest.
    let mut chaos_specs = specs.clone();
    chaos_specs[0].poison = Poison {
        panic_attempts: 1,
        hang_attempts: 0,
    };
    chaos_specs[1].poison = Poison {
        panic_attempts: 0,
        hang_attempts: 1,
    };
    let mut permanent = specs[0].clone();
    permanent.poison.panic_attempts = u32::MAX;
    chaos_specs.push(permanent);
    // Chaos must target cells the cache can't satisfy (the poisoned
    // ones — their fingerprints differ from the clean grid already
    // memoized in scenarios 1-2); a cached cell never reaches a
    // worker, so a kill or write-failure aimed at it would not fire.
    let mut req = request(chaos_specs);
    req.chaos.kill_worker.push((1, 1));
    req.chaos.fail_cache_writes.push(0);
    match client.sweep(&req) {
        Ok(report) => {
            let cells_match = (0..n).all(|i| report.stats[i].as_ref() == Some(&reference[i]));
            h.check(
                "chaos sweep: surviving cells bit-identical",
                cells_match,
                "a retried/killed cell diverged from the serial reference",
            );
            h.check(
                "chaos sweep: flaky cells recovered on attempt 2",
                report.attempts[0] == 2 && report.attempts[1] == 2,
                &format!("attempts {:?}", &report.attempts[..2]),
            );
            let manifest_ok = report.stats[n].is_none()
                && report.manifest.len() == 1
                && report.manifest[0].index == n
                && report.manifest[0].kind == "panic"
                && report.manifest[0].attempts == req.policy.max_attempts;
            h.check(
                "chaos sweep: permanent failure degraded into manifest",
                manifest_ok,
                &format!("manifest {:?}", report.manifest),
            );
            h.check(
                "chaos sweep: killed worker was resurrected",
                report.workers_killed == 1,
                &format!("workers_killed {}", report.workers_killed),
            );
            h.check(
                "chaos sweep: injected cache-write failure observed",
                report.cache_write_failures == 1,
                &format!("cache_write_failures {}", report.cache_write_failures),
            );
        }
        Err(e) => h.check(
            "chaos sweep: surviving cells bit-identical",
            false,
            &e.to_string(),
        ),
    }
    stop_daemon(daemon, client);

    // --- Scenario 4: SIGKILL the daemon mid-sweep, tear the cache,
    // restart, resubmit — completed cells replay, merged digest
    // matches.
    let socket = dir.join("kill.sock");
    let cache = dir.join("kill-cache.jsonl");
    let daemon = spawn_daemon(&socket, Some(&cache), 1, false);
    let mut client = connect(&socket);
    client
        .submit(&request(specs.clone()))
        .expect("submit before kill");
    let mut seen = 0;
    while seen < 2 {
        let line = client.next_line().expect("event before kill");
        if line.contains("\"event\":\"cell\"") {
            seen += 1;
        }
    }
    let mut daemon = daemon;
    daemon.kill().expect("SIGKILL daemon");
    let _ = daemon.wait();
    h.check(
        "daemon SIGKILL severs the stream",
        client.next_line().is_err() || {
            // Drain whatever was already buffered; the stream must
            // end without a `done` line.
            let mut done = false;
            while let Ok(line) = client.next_line() {
                done |= line.contains("\"event\":\"done\"");
            }
            !done
        },
        "sweep claimed completion after SIGKILL",
    );
    // Tear the cache tail the way a crash mid-append would.
    {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&cache)
            .expect("open cache for tearing");
        f.write_all(b"{\"fp\":123,\"words\":[9,9,9").expect("tear");
    }
    let daemon2 = spawn_daemon(&socket, Some(&cache), 1, false);
    let mut client = connect(&socket);
    match client.sweep(&request(specs.clone())) {
        Ok(report) => {
            h.check(
                "post-SIGKILL resubmit merges bit-identically",
                report.digest == ref_digest && report.ok_count() == n,
                &format!("digest {} vs {ref_digest}", report.digest),
            );
            h.check(
                "post-SIGKILL resubmit replays finished cells from cache",
                report.cached_count() >= 2,
                &format!("cached {}/{n}", report.cached_count()),
            );
        }
        Err(e) => h.check(
            "post-SIGKILL resubmit merges bit-identically",
            false,
            &e.to_string(),
        ),
    }
    stop_daemon(daemon2, client);

    // --- Scenario 5: broken cache path (a directory) + chaos refusal.
    let socket = dir.join("degraded.sock");
    let daemon = spawn_daemon(&socket, Some(&dir), 2, false);
    let mut client = connect(&socket);
    match client.sweep(&request(specs.clone())) {
        Ok(report) => h.check(
            "daemon with unusable cache path still answers correctly",
            report.digest == ref_digest,
            &format!("digest {} vs {ref_digest}", report.digest),
        ),
        Err(e) => h.check(
            "daemon with unusable cache path still answers correctly",
            false,
            &e.to_string(),
        ),
    }
    let mut refused = request(specs.clone());
    refused.chaos.kill_worker.push((0, 1));
    let err = client.sweep(&refused);
    h.check(
        "chaos plan refused without --allow-chaos",
        err.is_err() && format!("{}", err.unwrap_err()).contains("allow-chaos"),
        "daemon accepted chaos without the flag",
    );
    stop_daemon(daemon, client);

    let _ = std::fs::remove_dir_all(&dir);
    println!(
        "chaos_service: {} checks, {} failures",
        h.checks, h.failures
    );
    if h.failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
