//! The sweep daemon.
//!
//! ```text
//! tpc_service --socket PATH [--cache PATH] [--workers N] [--allow-chaos]
//! ```
//!
//! Binds a Unix domain socket and serves the line-delimited JSON
//! sweep protocol (see `tpc_service::server`) until a client sends
//! `{"op":"shutdown"}`. With `--cache`, completed cells are memoized
//! in a content-addressed file that survives restarts — and SIGKILL,
//! thanks to torn-line tolerance. `--allow-chaos` accepts requests
//! carrying chaos plans (worker kills, injected cache-write
//! failures); leave it off outside test harnesses.

use std::path::PathBuf;
use std::process::ExitCode;
use tpc_service::{serve, ServerOptions};

fn usage() -> ExitCode {
    eprintln!("usage: tpc_service --socket PATH [--cache PATH] [--workers N] [--allow-chaos]");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    // Worker panics (e.g. chaos poison cells) are contained and
    // retried by the supervisor; a full default-hook backtrace per
    // contained panic would drown the log, so log one line instead.
    std::panic::set_hook(Box::new(|info| {
        eprintln!("tpc_service: contained panic: {info}");
    }));
    let mut args = std::env::args().skip(1);
    let mut socket: Option<PathBuf> = None;
    let mut cache: Option<PathBuf> = None;
    let mut workers = 0usize;
    let mut allow_chaos = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--socket" => match args.next() {
                Some(p) => socket = Some(PathBuf::from(p)),
                None => return usage(),
            },
            "--cache" => match args.next() {
                Some(p) => cache = Some(PathBuf::from(p)),
                None => return usage(),
            },
            "--workers" => match args.next().and_then(|n| n.parse().ok()) {
                Some(n) => workers = n,
                None => return usage(),
            },
            "--allow-chaos" => allow_chaos = true,
            _ => return usage(),
        }
    }
    let Some(socket) = socket else {
        return usage();
    };
    let opts = ServerOptions {
        socket,
        cache,
        workers,
        allow_chaos,
        exit_on_shutdown: true,
    };
    match serve(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("tpc_service: {e}");
            ExitCode::FAILURE
        }
    }
}
