//! Minimal JSON for the service protocol — std-only, no serde.
//!
//! The protocol is line-delimited JSON, so the parser only ever sees
//! one small document at a time. Two deliberate departures from a
//! general-purpose library:
//!
//! * numbers keep their **raw text** ([`Json::Num`]) so `u64` values
//!   such as fingerprints and stat words round-trip exactly (an `f64`
//!   intermediate would corrupt anything above 2^53);
//! * parse errors are plain `String`s — the server answers them with
//!   an `{"ev":"error"}` line rather than dying.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw source text (exact round-trip).
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (duplicate keys: first wins via
    /// [`Json::get`]).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one JSON document; trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            at: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.at != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.at));
        }
        Ok(v)
    }

    /// Object field lookup (`None` on non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// This number as an exact `u64`, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// This number as an `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Convenience: `self[key]` as `u64`, or `default` when absent.
    /// Present-but-malformed fields are an error (silently taking the
    /// default would mask client bugs).
    pub fn u64_or(&self, key: &str, default: u64) -> Result<u64, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .as_u64()
                .ok_or_else(|| format!("field {key:?} is not a u64: {v}")),
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(raw) => write!(f, "{raw}"),
            Json::Str(s) => write!(f, "\"{}\"", escape(s)),
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Json::Obj(fields) => {
                write!(f, "{{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "\"{}\":{v}", escape(k))?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// Escapes `s` for embedding in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Recursion cap: the protocol nests at most ~4 levels; anything
/// deeper is hostile or corrupt.
const MAX_DEPTH: usize = 32;

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.at), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.at += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.at += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.at,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err("nesting too deep".into());
        }
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.at
            )),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        // bound: self.at <= len, open-ended slice cannot overrun
        if self.bytes[self.at..].starts_with(text.as_bytes()) {
            self.at += text.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.at))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.at += 1;
        }
        // bound: start <= self.at <= len, both advanced byte-by-byte
        let raw = std::str::from_utf8(&self.bytes[start..self.at]).expect("ascii slice");
        // Validate the shape once so `Num` is always parseable.
        raw.parse::<f64>()
            .map_err(|_| format!("bad number {raw:?} at byte {start}"))?;
        Ok(Json::Num(raw.to_string()))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.at += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi)
                                // bound: self.at <= len, open-ended slice
                                && self.bytes[self.at..].starts_with(b"\\u")
                            {
                                self.at += 2;
                                let lo = self.hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00) & 0x3FF)
                            } else {
                                hi
                            };
                            out.push(char::from_u32(cp).unwrap_or('\u{FFFD}'));
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                Some(_) => {
                    // Copy the raw UTF-8 run up to the next quote or
                    // backslash (both are ASCII, so the slice stays on
                    // character boundaries).
                    let start = self.at;
                    while !matches!(self.peek(), None | Some(b'"') | Some(b'\\')) {
                        self.at += 1;
                    }
                    out.push_str(
                        // bound: start <= self.at <= len by the scan loop
                        std::str::from_utf8(&self.bytes[start..self.at])
                            .expect("input is a &str, runs split at ascii"),
                    );
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.at.checked_add(4).filter(|&e| e <= self.bytes.len());
        let end = end.ok_or("truncated \\u escape")?;
        // bound: end <= len checked by the filter above
        let hex = std::str::from_utf8(&self.bytes[self.at..end]).map_err(|_| "bad \\u escape")?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| format!("bad \\u escape {hex:?}"))?;
        self.at = end;
        Ok(cp)
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Json::Obj(fields));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.at,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Json::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.at,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_protocol_shaped_documents() {
        let doc = r#"{"op":"sweep","warmup":40000,"cells":[{"benchmark":"gcc","config":"baseline:64"},{"benchmark":"li","config":"precon:64:32"}],"chaos":{"kill":[[1,2]]},"ok":true,"note":null}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("op").and_then(Json::as_str), Some("sweep"));
        assert_eq!(v.u64_or("warmup", 0).unwrap(), 40_000);
        assert_eq!(v.u64_or("absent", 7).unwrap(), 7);
        let cells = v.get("cells").and_then(Json::as_arr).unwrap();
        assert_eq!(cells.len(), 2);
        assert_eq!(
            cells[1].get("config").and_then(Json::as_str),
            Some("precon:64:32")
        );
        let kill = v.get("chaos").unwrap().get("kill").unwrap();
        assert_eq!(
            kill.as_arr().unwrap()[0].as_arr().unwrap()[1].as_u64(),
            Some(2)
        );
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("note"), Some(&Json::Null));
    }

    #[test]
    fn u64_precision_survives() {
        // Above 2^53: an f64 intermediate would corrupt this.
        let v = Json::parse("{\"fp\":18446744073709551615}").unwrap();
        assert_eq!(v.u64_or("fp", 0).unwrap(), u64::MAX);
        // And malformed-but-present fields error instead of defaulting.
        let v = Json::parse("{\"fp\":\"oops\"}").unwrap();
        assert!(v.u64_or("fp", 0).is_err());
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "line1\nline2\t\"quoted\" back\\slash \u{1F600} é";
        let encoded = format!("{}", Json::Str(original.to_string()));
        let decoded = Json::parse(&encoded).unwrap();
        assert_eq!(decoded.as_str(), Some(original));
        // Surrogate-pair escapes decode too.
        let v = Json::parse(r#""😀 é""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{1F600} é"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("{\"a\":1,}").is_err());
        assert!(Json::parse("[1 2]").is_err());
        assert!(Json::parse("{\"a\":1} trailing").is_err());
        assert!(Json::parse(&"[".repeat(100)).is_err(), "depth-capped");
    }

    #[test]
    fn display_round_trips() {
        let doc = r#"{"a":[1,2.5,-3],"b":{"c":"x"},"d":false}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
        assert_eq!(v.to_string(), doc);
    }
}
