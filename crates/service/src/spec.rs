//! Wire-level sweep and cell specifications.
//!
//! A client cannot ship a generated [`Program`](tpc_isa::Program)
//! over the socket (nor should it — workloads are deterministic), so
//! a sweep is specified *by content*: benchmark name, a compact
//! configuration spec string, the workload seed, and the run window.
//! The daemon regenerates the program and the full
//! [`SimConfig`](tpc_processor::SimConfig) from the spec; the same
//! content hashed with [`Fnv64`] is the cell's identity in the result
//! cache.
//!
//! Config spec strings:
//!
//! | spec | meaning |
//! |---|---|
//! | `baseline:<tc>` | no preconstruction, `<tc>`-entry trace cache |
//! | `precon:<tc>:<pb>` | preconstruction with a `<pb>`-entry buffer |
//! | `combined:<tc>:<pb>` | preconstruction + trace preprocessing |
//! | `unified:<total>:<ways>:<epoch>` | pooled 4-way unified store |

use crate::json::{escape, Json};
use crate::supervisor::{ChaosPlan, RetryPolicy};
use std::str::FromStr;
use tpc_core::FaultPlan;
use tpc_experiments::{CellBudget, Fnv64};
use tpc_processor::SimConfig;
use tpc_workloads::Benchmark;

/// A machine configuration in its compact wire form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigSpec {
    /// `baseline:<tc>` — no preconstruction.
    Baseline(u32),
    /// `precon:<tc>:<pb>` — preconstruction engine + buffer.
    Precon(u32, u32),
    /// `combined:<tc>:<pb>` — preconstruction + preprocessing.
    Combined(u32, u32),
    /// `unified:<total>:<ways>:<epoch>` — pooled unified store.
    Unified(u32, u8, u64),
}

impl ConfigSpec {
    /// Parses a spec string (see the module table).
    pub fn parse(s: &str) -> Result<ConfigSpec, String> {
        let parts: Vec<&str> = s.split(':').collect();
        let num = |i: usize| -> Result<u64, String> {
            parts
                .get(i)
                .ok_or_else(|| format!("config spec {s:?}: missing field {i}"))?
                .parse()
                .map_err(|_| format!("config spec {s:?}: field {i} is not a number"))
        };
        let arity = |n: usize| -> Result<(), String> {
            if parts.len() == n {
                Ok(())
            } else {
                Err(format!("config spec {s:?}: expected {n} fields"))
            }
        };
        match parts.first().copied().unwrap_or("") {
            "baseline" => {
                arity(2)?;
                Ok(ConfigSpec::Baseline(num(1)? as u32))
            }
            "precon" => {
                arity(3)?;
                Ok(ConfigSpec::Precon(num(1)? as u32, num(2)? as u32))
            }
            "combined" => {
                arity(3)?;
                Ok(ConfigSpec::Combined(num(1)? as u32, num(2)? as u32))
            }
            "unified" => {
                arity(4)?;
                Ok(ConfigSpec::Unified(num(1)? as u32, num(2)? as u8, num(3)?))
            }
            other => Err(format!(
                "config spec {s:?}: unknown kind {other:?} \
                 (expected baseline/precon/combined/unified)"
            )),
        }
    }

    /// The canonical spec string (`parse` round-trips it).
    pub fn spec_string(&self) -> String {
        match self {
            ConfigSpec::Baseline(tc) => format!("baseline:{tc}"),
            ConfigSpec::Precon(tc, pb) => format!("precon:{tc}:{pb}"),
            ConfigSpec::Combined(tc, pb) => format!("combined:{tc}:{pb}"),
            ConfigSpec::Unified(total, ways, epoch) => format!("unified:{total}:{ways}:{epoch}"),
        }
    }

    /// Expands the spec into a full simulator configuration.
    pub fn to_sim_config(self) -> SimConfig {
        match self {
            ConfigSpec::Baseline(tc) => SimConfig::baseline(tc),
            ConfigSpec::Precon(tc, pb) => SimConfig::with_precon(tc, pb),
            ConfigSpec::Combined(tc, pb) => SimConfig::with_precon(tc, pb).with_preprocess(),
            ConfigSpec::Unified(total, ways, epoch) => SimConfig::unified(total, ways, epoch),
        }
    }
}

/// Deterministic failure injection carried *by a cell* — the
/// self-chaos harness's probe. A poisoned cell fails its first N
/// attempts (by panicking, or by running under a starved cycle
/// budget that trips the watchdog) and then behaves normally, so
/// retry paths can be exercised against bit-identical expectations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Poison {
    /// Panic on attempts `1..=panic_attempts`.
    pub panic_attempts: u32,
    /// Run under a starved watchdog budget (guaranteed
    /// `CellError::Timeout`) on attempts `1..=hang_attempts`.
    pub hang_attempts: u32,
}

impl Poison {
    /// True when the cell carries no injected failures.
    pub fn is_clean(&self) -> bool {
        self.panic_attempts == 0 && self.hang_attempts == 0
    }
}

/// One cell of a service sweep, specified by content.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellSpec {
    /// The synthetic benchmark to generate.
    pub benchmark: Benchmark,
    /// The machine configuration to simulate it under.
    pub config: ConfigSpec,
    /// Optional deterministic fault-injection plan `(seed,
    /// per-mille)` applied via [`FaultPlan::all`].
    pub faults: Option<(u64, u32)>,
    /// Chaos poisoning (zeroed for production cells).
    pub poison: Poison,
}

impl CellSpec {
    /// A clean cell.
    pub fn new(benchmark: Benchmark, config: ConfigSpec) -> CellSpec {
        CellSpec {
            benchmark,
            config,
            faults: None,
            poison: Poison::default(),
        }
    }

    /// The full simulator configuration for this cell.
    pub fn sim_config(&self) -> SimConfig {
        let mut config = self.config.to_sim_config();
        if let Some((seed, per_mille)) = self.faults {
            config = config.with_faults(FaultPlan::all(seed, per_mille));
        }
        config
    }

    /// Content-addressed identity of this cell's *result*: everything
    /// that determines the simulation output — run window, workload
    /// seed, benchmark, the expanded configuration (which covers any
    /// fault plan), and the poison marker. Two cells with equal
    /// fingerprints produce bit-identical [`SimStats`]
    /// (simulations are deterministic), which is what makes the
    /// result cache sound.
    ///
    /// [`SimStats`]: tpc_processor::SimStats
    pub fn fingerprint(&self, warmup: u64, measure: u64, seed: u64) -> u64 {
        let mut h = Fnv64::new();
        h.write(b"tpc-cell-v1");
        h.write(&warmup.to_le_bytes());
        h.write(&measure.to_le_bytes());
        h.write(&seed.to_le_bytes());
        h.write(self.benchmark.name().as_bytes());
        h.write(format!("{:?}", self.sim_config()).as_bytes());
        h.write(&self.poison.panic_attempts.to_le_bytes());
        h.write(&self.poison.hang_attempts.to_le_bytes());
        h.finish()
    }

    /// Encodes the cell as a JSON object fragment.
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"benchmark\":\"{}\",\"config\":\"{}\"",
            escape(self.benchmark.name()),
            escape(&self.config.spec_string())
        );
        if let Some((seed, per_mille)) = self.faults {
            s.push_str(&format!(
                ",\"faults_seed\":{seed},\"faults_permille\":{per_mille}"
            ));
        }
        if self.poison.panic_attempts > 0 {
            s.push_str(&format!(
                ",\"panic_attempts\":{}",
                self.poison.panic_attempts
            ));
        }
        if self.poison.hang_attempts > 0 {
            s.push_str(&format!(",\"hang_attempts\":{}", self.poison.hang_attempts));
        }
        s.push('}');
        s
    }

    /// Decodes a cell from its parsed JSON object.
    pub fn from_json(v: &Json) -> Result<CellSpec, String> {
        let name = v
            .get("benchmark")
            .and_then(Json::as_str)
            .ok_or("cell: missing \"benchmark\"")?;
        let benchmark =
            Benchmark::from_str(name).map_err(|_| format!("cell: unknown benchmark {name:?}"))?;
        let config = ConfigSpec::parse(
            v.get("config")
                .and_then(Json::as_str)
                .ok_or("cell: missing \"config\"")?,
        )?;
        let faults = match (v.get("faults_seed"), v.get("faults_permille")) {
            (None, None) => None,
            (Some(seed), Some(pm)) => Some((
                seed.as_u64().ok_or("cell: bad faults_seed")?,
                pm.as_u64().ok_or("cell: bad faults_permille")? as u32,
            )),
            _ => return Err("cell: faults_seed and faults_permille go together".into()),
        };
        Ok(CellSpec {
            benchmark,
            config,
            faults,
            poison: Poison {
                panic_attempts: v.u64_or("panic_attempts", 0)? as u32,
                hang_attempts: v.u64_or("hang_attempts", 0)? as u32,
            },
        })
    }
}

/// A full sweep request: the run window, supervision policy, and the
/// cell grid. This is the payload of the protocol's `sweep` op.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRequest {
    /// Warm-up instructions per cell (counters reset afterwards).
    pub warmup: u64,
    /// Measured instructions per cell.
    pub measure: u64,
    /// Workload generation seed (shared by all cells).
    pub seed: u64,
    /// Per-cell cycle watchdog.
    pub budget: CellBudget,
    /// Retry/backoff policy.
    pub policy: RetryPolicy,
    /// The cells to run.
    pub cells: Vec<CellSpec>,
    /// Supervisor-level chaos injection (daemon must allow it).
    pub chaos: ChaosPlan,
    /// Bypass the result cache (reference runs).
    pub no_cache: bool,
}

impl SweepRequest {
    /// A request with default policy/budget over `cells`.
    pub fn new(warmup: u64, measure: u64, seed: u64, cells: Vec<CellSpec>) -> SweepRequest {
        SweepRequest {
            warmup,
            measure,
            seed,
            budget: CellBudget::default(),
            policy: RetryPolicy::default(),
            cells,
            chaos: ChaosPlan::default(),
            no_cache: false,
        }
    }

    /// Encodes the request as one protocol line (newline-terminated).
    pub fn to_json_line(&self) -> String {
        let cells: Vec<String> = self.cells.iter().map(CellSpec::to_json).collect();
        let mut s = format!(
            "{{\"op\":\"sweep\",\"warmup\":{},\"measure\":{},\"seed\":{},\
             \"budget_cpi\":{},\"budget_floor\":{},\
             \"max_attempts\":{},\"backoff_base_ms\":{},\"backoff_cap_ms\":{},\"backoff_seed\":{},\
             \"cells\":[{}]",
            self.warmup,
            self.measure,
            self.seed,
            self.budget.cycles_per_instruction,
            self.budget.floor,
            self.policy.max_attempts,
            self.policy.backoff_base_ms,
            self.policy.backoff_cap_ms,
            self.policy.backoff_seed,
            cells.join(",")
        );
        if self.no_cache {
            s.push_str(",\"no_cache\":true");
        }
        if !self.chaos.is_empty() {
            let kills: Vec<String> = self
                .chaos
                .kill_worker
                .iter()
                .map(|(cell, attempt)| format!("[{cell},{attempt}]"))
                .collect();
            let fails: Vec<String> = self
                .chaos
                .fail_cache_writes
                .iter()
                .map(usize::to_string)
                .collect();
            s.push_str(&format!(
                ",\"chaos\":{{\"kill\":[{}],\"fail_writes\":[{}]}}",
                kills.join(","),
                fails.join(",")
            ));
        }
        s.push_str("}\n");
        s
    }

    /// Decodes a request from a parsed `sweep` op line.
    pub fn from_json(v: &Json) -> Result<SweepRequest, String> {
        let cells_json = v
            .get("cells")
            .and_then(Json::as_arr)
            .ok_or("sweep: missing \"cells\" array")?;
        if cells_json.is_empty() {
            return Err("sweep: empty cell grid".into());
        }
        let cells: Result<Vec<CellSpec>, String> =
            cells_json.iter().map(CellSpec::from_json).collect();
        let default_budget = CellBudget::default();
        let default_policy = RetryPolicy::default();
        let chaos = match v.get("chaos") {
            None => ChaosPlan::default(),
            Some(c) => {
                let pairs = |key: &str| -> Result<Vec<(usize, u32)>, String> {
                    c.get(key)
                        .and_then(Json::as_arr)
                        .unwrap_or(&[])
                        .iter()
                        .map(|p| {
                            let p = p.as_arr().filter(|p| p.len() == 2).ok_or_else(|| {
                                format!("chaos: {key} entries are [cell,attempt] pairs")
                            })?;
                            Ok((
                                // bound: p.len() == 2 filtered above
                                p[0].as_u64().ok_or("chaos: bad cell index")? as usize,
                                // bound: p.len() == 2 filtered above
                                p[1].as_u64().ok_or("chaos: bad attempt")? as u32,
                            ))
                        })
                        .collect()
                };
                let fail_writes: Result<Vec<usize>, String> = c
                    .get("fail_writes")
                    .and_then(Json::as_arr)
                    .unwrap_or(&[])
                    .iter()
                    .map(|i| Ok(i.as_u64().ok_or("chaos: bad fail_writes index")? as usize))
                    .collect();
                ChaosPlan {
                    kill_worker: pairs("kill")?,
                    fail_cache_writes: fail_writes?,
                }
            }
        };
        Ok(SweepRequest {
            warmup: v.u64_or("warmup", 40_000)?,
            measure: v.u64_or("measure", 80_000)?,
            seed: v.u64_or("seed", 1)?,
            budget: CellBudget {
                cycles_per_instruction: v
                    .u64_or("budget_cpi", default_budget.cycles_per_instruction)?,
                floor: v.u64_or("budget_floor", default_budget.floor)?,
            },
            policy: RetryPolicy {
                max_attempts: v.u64_or("max_attempts", default_policy.max_attempts as u64)? as u32,
                backoff_base_ms: v.u64_or("backoff_base_ms", default_policy.backoff_base_ms)?,
                backoff_cap_ms: v.u64_or("backoff_cap_ms", default_policy.backoff_cap_ms)?,
                backoff_seed: v.u64_or("backoff_seed", default_policy.backoff_seed)?,
            },
            cells: cells?,
            chaos,
            no_cache: v.get("no_cache").and_then(Json::as_bool).unwrap_or(false),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_specs_round_trip() {
        for spec in [
            "baseline:64",
            "precon:128:128",
            "combined:64:32",
            "unified:256:2:4096",
        ] {
            let parsed = ConfigSpec::parse(spec).unwrap();
            assert_eq!(parsed.spec_string(), spec);
            assert_eq!(ConfigSpec::parse(&parsed.spec_string()).unwrap(), parsed);
        }
        assert!(ConfigSpec::parse("warp:9").is_err());
        assert!(ConfigSpec::parse("baseline").is_err());
        assert!(ConfigSpec::parse("baseline:x").is_err());
        assert!(ConfigSpec::parse("precon:64").is_err());
    }

    #[test]
    fn spec_expands_to_expected_configs() {
        let base = ConfigSpec::parse("baseline:64").unwrap().to_sim_config();
        assert_eq!(base.trace_cache_entries, 64);
        assert!(!base.engine.enabled);
        let combined = ConfigSpec::parse("combined:128:32")
            .unwrap()
            .to_sim_config();
        assert!(combined.preprocess && combined.engine.enabled);
        assert_eq!(combined.engine.buffer_entries, 32);
    }

    #[test]
    fn sweep_request_round_trips_through_json() {
        let mut req = SweepRequest::new(
            2_000,
            4_000,
            7,
            vec![
                CellSpec::new(Benchmark::Compress, ConfigSpec::Baseline(64)),
                CellSpec {
                    benchmark: Benchmark::Gcc,
                    config: ConfigSpec::Precon(64, 32),
                    faults: Some((9, 40)),
                    poison: Poison {
                        panic_attempts: 2,
                        hang_attempts: 1,
                    },
                },
            ],
        );
        req.policy.max_attempts = 5;
        req.chaos.kill_worker.push((1, 2));
        req.chaos.fail_cache_writes.push(0);
        req.no_cache = true;
        let line = req.to_json_line();
        let parsed = SweepRequest::from_json(&Json::parse(line.trim()).unwrap()).unwrap();
        assert_eq!(parsed, req);
    }

    #[test]
    fn fingerprints_separate_content() {
        let a = CellSpec::new(Benchmark::Compress, ConfigSpec::Baseline(64));
        let b = CellSpec::new(Benchmark::Compress, ConfigSpec::Baseline(128));
        let c = CellSpec::new(Benchmark::Gcc, ConfigSpec::Baseline(64));
        let fp = |cell: &CellSpec| cell.fingerprint(1000, 2000, 1);
        assert_eq!(fp(&a), fp(&a.clone()), "deterministic");
        assert_ne!(fp(&a), fp(&b), "config matters");
        assert_ne!(fp(&a), fp(&c), "benchmark matters");
        assert_ne!(
            fp(&a),
            a.fingerprint(1000, 2000, 2),
            "workload seed matters"
        );
        assert_ne!(fp(&a), a.fingerprint(1001, 2000, 1), "window matters");
        let mut faulted = a.clone();
        faulted.faults = Some((3, 40));
        assert_ne!(fp(&a), fp(&faulted), "fault plan matters");
        let mut poisoned = a.clone();
        poisoned.poison.panic_attempts = 1;
        assert_ne!(fp(&a), fp(&poisoned), "poison never aliases clean results");
    }
}
