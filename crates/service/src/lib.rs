//! Supervised sweep service for the trace-preconstruction simulator.
//!
//! This crate turns the batch sweep machinery of `tpc-experiments`
//! into a long-running **daemon**: a Unix-domain-socket server that
//! accepts sweep requests as line-delimited JSON, shards the cells
//! across a supervised worker pool, and streams results back as they
//! resolve. Robustness is the point:
//!
//! * **Deadlines** — every cell attempt runs under a cycle-budget
//!   watchdog ([`tpc_experiments::CellBudget`]); a wedged simulation
//!   trips the watchdog instead of hanging the pool.
//! * **Retries** — panicking or timed-out attempts are re-queued with
//!   deterministic seed-derived exponential backoff, up to a bounded
//!   attempt count ([`RetryPolicy`]).
//! * **Degradation** — cells that exhaust their attempts land in an
//!   error manifest next to the partial results; a sweep always
//!   completes.
//! * **Memoization** — completed cells are recorded in a
//!   content-addressed [`ResultCache`] keyed by cell fingerprint, so
//!   overlapping sweeps replay cached cells for free, across daemon
//!   restarts and even a SIGKILL mid-write (the cache inherits the
//!   checkpoint module's torn-line tolerance).
//! * **Self-chaos** — the `chaos_service` binary kills workers
//!   mid-cell, injects poison cells, tears cache files, and SIGKILLs
//!   the daemon, then asserts the merged results are bit-identical
//!   to a clean serial [`tpc_experiments::run_cells`] reference.
//!
//! Everything is `std`-only and offline; simulations are
//! deterministic, so none of the supervision machinery can change a
//! result — only whether and when it arrives.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod json;
pub mod server;
pub mod spec;
pub mod supervisor;

pub use cache::{CacheStats, ResultCache, CACHE_HEADER};
pub use client::{Client, SweepReport};
pub use json::Json;
pub use server::{serve, ServerOptions};
pub use spec::{CellSpec, ConfigSpec, Poison, SweepRequest};
pub use supervisor::{
    backoff_ms, digest_results, prepare_cells, run_supervised, CellOutcome, ChaosPlan, Event,
    ManifestEntry, PreparedCell, RetryPolicy, SupervisorOptions, SweepOutcome,
};
