//! Integration tests: the supervisor in-process, and the daemon
//! end-to-end over a real Unix socket (served from a test thread).

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;
use tpc_experiments::{run_cells, RunParams};
use tpc_service::{
    digest_results, prepare_cells, run_supervised, serve, CellSpec, ChaosPlan, Client, ConfigSpec,
    Poison, ResultCache, RetryPolicy, ServerOptions, SupervisorOptions, SweepRequest,
};
use tpc_workloads::Benchmark;

const WARMUP: u64 = 1_000;
const MEASURE: u64 = 2_000;

fn small_grid() -> Vec<CellSpec> {
    vec![
        CellSpec::new(
            Benchmark::Compress,
            ConfigSpec::parse("baseline:64").unwrap(),
        ),
        CellSpec::new(
            Benchmark::Compress,
            ConfigSpec::parse("combined:64:32").unwrap(),
        ),
        CellSpec::new(Benchmark::Li, ConfigSpec::parse("precon:64:32").unwrap()),
    ]
}

fn request(cells: Vec<CellSpec>) -> SweepRequest {
    let mut req = SweepRequest::new(WARMUP, MEASURE, 1, cells);
    req.policy = RetryPolicy {
        max_attempts: 3,
        backoff_base_ms: 1,
        backoff_cap_ms: 4,
        backoff_seed: 7,
    };
    req
}

fn serial_reference(req: &SweepRequest) -> Vec<tpc_processor::SimStats> {
    let cells: Vec<tpc_experiments::SweepCell> = prepare_cells(req)
        .into_iter()
        .map(|p| tpc_experiments::SweepCell::new(p.program, p.config))
        .collect();
    run_cells(
        &cells,
        RunParams {
            warmup: req.warmup,
            measure: req.measure,
            seed: req.seed,
            jobs: 1,
        },
    )
}

fn supervise(req: &SweepRequest, cache: Option<&ResultCache>) -> tpc_service::SweepOutcome {
    let prepared = prepare_cells(req);
    run_supervised(
        &prepared,
        &SupervisorOptions::for_request(req, 2),
        cache,
        &req.chaos,
        &|_| {},
    )
}

#[test]
fn supervised_clean_sweep_matches_serial_reference() {
    let req = request(small_grid());
    let reference = serial_reference(&req);
    let outcome = supervise(&req, None);
    assert_eq!(outcome.failed_count(), 0);
    assert_eq!(outcome.retries, 0);
    for (cell, expected) in outcome.cells.iter().zip(&reference) {
        assert_eq!(cell.result.as_ref().unwrap(), expected, "bit-identical");
        assert_eq!(cell.attempts, 1);
    }
    assert_eq!(outcome.digest(), digest_results(reference.iter().map(Some)));
}

#[test]
fn poisoned_cells_recover_via_retries_bit_identically() {
    let clean = request(small_grid());
    let reference = serial_reference(&clean);
    let mut req = clean.clone();
    req.cells[0].poison = Poison {
        panic_attempts: 1,
        hang_attempts: 0,
    };
    req.cells[1].poison = Poison {
        panic_attempts: 0,
        hang_attempts: 2,
    };
    let outcome = supervise(&req, None);
    assert_eq!(outcome.failed_count(), 0, "{:?}", outcome.manifest());
    assert_eq!(outcome.cells[0].attempts, 2, "one panic then success");
    assert_eq!(outcome.cells[1].attempts, 3, "two timeouts then success");
    assert_eq!(outcome.retries, 3);
    for (cell, expected) in outcome.cells.iter().zip(&reference) {
        assert_eq!(cell.result.as_ref().unwrap(), expected);
    }
}

#[test]
fn permanent_failure_degrades_into_manifest() {
    let mut req = request(small_grid());
    req.cells[2].poison.panic_attempts = u32::MAX;
    let outcome = supervise(&req, None);
    assert_eq!(outcome.ok_count(), 2, "other cells unaffected");
    let manifest = outcome.manifest();
    assert_eq!(manifest.len(), 1);
    assert_eq!(manifest[0].index, 2);
    assert_eq!(manifest[0].kind, "panic");
    assert_eq!(
        manifest[0].attempts, req.policy.max_attempts,
        "attempts bounded by policy"
    );
}

#[test]
fn killed_worker_is_resurrected_and_cell_rerun() {
    let clean = request(small_grid());
    let reference = serial_reference(&clean);
    let mut req = clean;
    req.chaos = ChaosPlan {
        kill_worker: vec![(1, 1)],
        fail_cache_writes: vec![],
    };
    let outcome = supervise(&req, None);
    assert_eq!(outcome.workers_killed, 1);
    assert_eq!(outcome.failed_count(), 0);
    assert_eq!(
        outcome.cells[1].attempts, 1,
        "a worker kill does not consume an attempt"
    );
    assert_eq!(outcome.cells[1].result.as_ref().unwrap(), &reference[1]);
}

#[test]
fn memoization_replays_cells_across_sweeps() {
    let req = request(small_grid());
    let cache = ResultCache::in_memory();
    let first = supervise(&req, Some(&cache));
    assert_eq!(first.cache_hits, 0);
    let second = supervise(&req, Some(&cache));
    assert_eq!(second.cache_hits, 3, "every cell replayed");
    assert!(second.cells.iter().all(|c| c.cached && c.attempts == 0));
    assert_eq!(first.digest(), second.digest());
    // An overlapping sweep only pays for the new cell.
    let mut bigger = req.clone();
    bigger.cells.push(CellSpec::new(
        Benchmark::Go,
        ConfigSpec::parse("baseline:64").unwrap(),
    ));
    let third = supervise(&bigger, Some(&cache));
    assert_eq!(third.cache_hits, 3);
    assert_eq!(third.cells[3].attempts, 1);
}

#[test]
fn injected_cache_write_failure_keeps_results_correct() {
    let req0 = request(small_grid());
    let reference = serial_reference(&req0);
    let mut req = req0;
    req.chaos.fail_cache_writes = vec![0];
    let cache = ResultCache::in_memory();
    let outcome = supervise(&req, Some(&cache));
    assert!(outcome.cells[0].cache_write_failed);
    assert_eq!(outcome.cells[0].result.as_ref().unwrap(), &reference[0]);
    // The failed write means cell 0 re-runs next sweep.
    let again = supervise(&req, Some(&cache));
    assert!(!again.cells[0].cached && again.cells[1].cached);
}

fn temp_path(name: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let c = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "tpc-service-test-{}-{c}-{name}",
        std::process::id()
    ))
}

/// Serves on a background thread; returns the socket path.
fn start_test_daemon(allow_chaos: bool) -> (PathBuf, std::thread::JoinHandle<()>) {
    let socket = temp_path("sock");
    let opts = ServerOptions {
        socket: socket.clone(),
        cache: None,
        workers: 2,
        allow_chaos,
        exit_on_shutdown: true,
    };
    let handle = std::thread::spawn(move || {
        serve(&opts).expect("serve");
    });
    (socket, handle)
}

#[test]
fn socket_end_to_end_sweep_ping_and_shutdown() {
    let (socket, handle) = start_test_daemon(false);
    let mut client = Client::connect_retry(&socket, Duration::from_secs(10)).unwrap();
    client.ping().unwrap();
    let stats = client.cache_stats().unwrap();
    assert_eq!(stats.entries, 0);

    let req = request(small_grid());
    let reference = serial_reference(&req);
    let report = client.sweep(&req).unwrap();
    assert_eq!(report.ok_count(), 3);
    assert_eq!(report.digest, digest_results(reference.iter().map(Some)));
    for (got, expected) in report.stats.iter().zip(&reference) {
        assert_eq!(got.as_ref().unwrap(), expected);
    }

    // The daemon memoized the sweep (in-memory cache).
    let report = client.sweep(&req).unwrap();
    assert_eq!(report.cached_count(), 3);
    assert!(client.cache_stats().unwrap().entries >= 3);

    client.shutdown().unwrap();
    handle.join().unwrap();
    assert!(!socket.exists(), "socket removed on shutdown");
}

#[test]
fn socket_sweep_streams_manifest_for_poisoned_cell() {
    let (socket, handle) = start_test_daemon(false);
    let mut client = Client::connect_retry(&socket, Duration::from_secs(10)).unwrap();
    let mut req = request(small_grid());
    req.cells[0].poison.panic_attempts = u32::MAX;
    let report = client.sweep(&req).unwrap();
    assert_eq!(report.ok_count(), 2);
    assert_eq!(report.manifest.len(), 1);
    assert_eq!(report.manifest[0].index, 0);
    assert_eq!(report.manifest[0].kind, "panic");
    assert!(report.manifest[0].message.contains("poison"));
    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn chaos_plans_are_refused_without_the_flag() {
    let (socket, handle) = start_test_daemon(false);
    let mut client = Client::connect_retry(&socket, Duration::from_secs(10)).unwrap();
    let mut req = request(small_grid());
    req.chaos.kill_worker.push((0, 1));
    let err = client.sweep(&req).unwrap_err();
    assert!(err.to_string().contains("allow-chaos"), "{err}");
    // The connection survives the refusal.
    client.ping().unwrap();
    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn chaos_plans_are_accepted_with_the_flag() {
    let (socket, handle) = start_test_daemon(true);
    let mut client = Client::connect_retry(&socket, Duration::from_secs(10)).unwrap();
    let mut req = request(small_grid());
    req.chaos.kill_worker.push((2, 1));
    let report = client.sweep(&req).unwrap();
    assert_eq!(report.workers_killed, 1);
    assert_eq!(report.ok_count(), 3);
    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn malformed_requests_get_errors_not_disconnects() {
    let (socket, handle) = start_test_daemon(false);
    let mut client = Client::connect_retry(&socket, Duration::from_secs(10)).unwrap();
    for bad in [
        "not json at all",
        "{\"op\":\"warp\"}",
        "{\"no_op\":true}",
        "{\"op\":\"sweep\",\"cells\":[]}",
        "{\"op\":\"sweep\",\"cells\":[{\"benchmark\":\"nope\",\"config\":\"baseline:64\"}]}",
    ] {
        client.send_line(bad).unwrap();
        let line = client.next_line().unwrap();
        assert!(line.contains("\"ok\":false"), "{bad} -> {line}");
    }
    client.ping().unwrap();
    client.shutdown().unwrap();
    handle.join().unwrap();
}
