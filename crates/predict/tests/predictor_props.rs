//! Property tests for the predictors.
#![cfg(feature = "proptest-tests")]

use proptest::prelude::*;
use tpc_isa::Addr;
use tpc_predict::{
    Bias, Bimodal, NextTracePredictor, NtpConfig, ReturnAddressStack, TraceEnd, TraceKey,
};

/// Reference 2-bit saturating counter.
fn ref_update(c: u8, taken: bool) -> u8 {
    if taken {
        (c + 1).min(3)
    } else {
        c.saturating_sub(1)
    }
}

proptest! {
    /// The bimodal predictor behaves exactly like an array of 2-bit
    /// saturating counters under arbitrary update sequences.
    #[test]
    fn bimodal_matches_reference(ops in prop::collection::vec((0u32..32, any::<bool>()), 0..300)) {
        let entries = 16usize;
        let mut dut = Bimodal::new(entries);
        let mut reference = vec![1u8; entries];
        for (pc, taken) in ops {
            let idx = pc as usize % entries;
            let addr = Addr::new(pc);
            prop_assert_eq!(dut.predict(addr), reference[idx] >= 2);
            prop_assert_eq!(dut.counter(addr), reference[idx]);
            let expected_bias = match reference[idx] {
                0 => Bias::StronglyNotTaken,
                3 => Bias::StronglyTaken,
                _ => Bias::Weak,
            };
            prop_assert_eq!(dut.bias(addr), expected_bias);
            dut.update(addr, taken);
            reference[idx] = ref_update(reference[idx], taken);
        }
    }

    /// The RAS behaves as a bounded stack that drops its oldest entry
    /// on overflow.
    #[test]
    fn ras_matches_reference(ops in prop::collection::vec((any::<bool>(), 0u32..1000), 0..200), cap in 1usize..16) {
        let mut dut = ReturnAddressStack::new(cap);
        let mut reference: Vec<u32> = Vec::new();
        for (is_push, v) in ops {
            if is_push {
                dut.push(Addr::new(v));
                if reference.len() == cap {
                    reference.remove(0);
                }
                reference.push(v);
            } else {
                prop_assert_eq!(dut.pop().map(|a| a.word()), reference.pop());
            }
            prop_assert_eq!(dut.depth(), reference.len());
            prop_assert_eq!(dut.top().map(|a| a.word()), reference.last().copied());
        }
    }

    /// A deterministic, repeating trace sequence is eventually fully
    /// predicted regardless of its content (as long as each trace has
    /// a unique successor along the cycle).
    #[test]
    fn ntp_learns_any_cycle(starts in prop::collection::hash_set(0u32..10_000, 2..10)) {
        let keys: Vec<TraceKey> = starts
            .into_iter()
            .map(|s| TraceKey { start: Addr::new(s * 16), branch_count: 0, outcomes: 0 })
            .collect();
        let mut p = NextTracePredictor::new(NtpConfig::default());
        // Warm up around the cycle a few times.
        for _ in 0..6 {
            for &k in &keys {
                p.observe(k, TraceEnd::Fallthrough);
            }
        }
        let mut correct = 0;
        for &k in &keys {
            if p.predict() == Some(k) {
                correct += 1;
            }
            p.observe(k, TraceEnd::Fallthrough);
        }
        prop_assert_eq!(correct, keys.len(), "a fixed cycle must be fully learned");
    }
}
