//! Return address stack.

use tpc_isa::Addr;

/// A bounded return-address stack used by the slow-path fetch unit to
/// predict `ret` targets.
///
/// On overflow the oldest entry is dropped (the stack wraps), as in
/// real hardware; on underflow prediction simply fails.
#[derive(Debug, Clone)]
pub struct ReturnAddressStack {
    entries: Vec<Addr>,
    capacity: usize,
}

impl ReturnAddressStack {
    /// Creates a stack holding up to `capacity` return addresses.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "RAS capacity must be positive");
        ReturnAddressStack {
            entries: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// Pushes the return address of a call; drops the oldest entry
    /// when full.
    pub fn push(&mut self, return_addr: Addr) {
        if self.entries.len() == self.capacity {
            self.entries.remove(0);
        }
        self.entries.push(return_addr);
    }

    /// Pops the predicted target for a return; `None` when empty.
    pub fn pop(&mut self) -> Option<Addr> {
        self.entries.pop()
    }

    /// The address a return would be predicted to, without popping.
    pub fn top(&self) -> Option<Addr> {
        self.entries.last().copied()
    }

    /// Number of live entries.
    pub fn depth(&self) -> usize {
        self.entries.len()
    }

    /// Empties the stack (e.g. on a pipeline flush in simpler models).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_order() {
        let mut ras = ReturnAddressStack::new(4);
        ras.push(Addr::new(10));
        ras.push(Addr::new(20));
        assert_eq!(ras.pop(), Some(Addr::new(20)));
        assert_eq!(ras.pop(), Some(Addr::new(10)));
        assert_eq!(ras.pop(), None);
    }

    #[test]
    fn overflow_drops_oldest() {
        let mut ras = ReturnAddressStack::new(2);
        ras.push(Addr::new(1));
        ras.push(Addr::new(2));
        ras.push(Addr::new(3));
        assert_eq!(ras.depth(), 2);
        assert_eq!(ras.pop(), Some(Addr::new(3)));
        assert_eq!(ras.pop(), Some(Addr::new(2)));
        assert_eq!(ras.pop(), None);
    }

    #[test]
    fn top_peeks_without_popping() {
        let mut ras = ReturnAddressStack::new(4);
        ras.push(Addr::new(7));
        assert_eq!(ras.top(), Some(Addr::new(7)));
        assert_eq!(ras.depth(), 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = ReturnAddressStack::new(0);
    }
}
