//! Path-based next-trace predictor (Jacobson, Rotenberg & Smith,
//! MICRO 1997), in the hybrid configuration used by the paper.
//!
//! The predictor treats traces as the unit of prediction: it keeps a
//! short history of recently-committed trace identities, hashes that
//! path into a correlating table, and predicts the *entire next
//! trace* (start PC plus all embedded branch outcomes) in one shot —
//! implicitly predicting several branches per cycle. A secondary
//! table indexed by only the last trace reduces cold-start and
//! aliasing losses, and a return history stack saves path history
//! across procedure calls and returns.

use std::collections::VecDeque;
use tpc_isa::Addr;

/// The identity of a trace: its start address plus the outcomes of
/// the conditional branches inside it.
///
/// Two dynamic instruction sequences with equal keys are the same
/// trace; the trace cache and preconstruction buffers index by a hash
/// of this key (paper Section 3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceKey {
    /// Address of the first instruction.
    pub start: Addr,
    /// Number of conditional branches in the trace.
    pub branch_count: u8,
    /// Outcome of the i-th conditional branch in bit i (1 = taken).
    pub outcomes: u16,
}

impl TraceKey {
    /// A 64-bit mixture of the key's fields, used for table indexing.
    pub fn hash64(&self) -> u64 {
        let raw = (self.start.word() as u64)
            ^ ((self.outcomes as u64) << 32)
            ^ ((self.branch_count as u64) << 48);
        // splitmix64 finalizer: spreads low-entropy fields across bits.
        let mut z = raw.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// How a trace ends, as far as the return history stack cares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEnd {
    /// Ends in neither a call nor a return.
    Fallthrough,
    /// Ends in (or contains as last control transfer) a procedure
    /// call.
    Call,
    /// Ends in a procedure return.
    Return,
}

/// Configuration of the [`NextTracePredictor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NtpConfig {
    /// Number of trace identities kept in the path history.
    pub history_depth: usize,
    /// log2 of the primary (correlating) table size.
    pub table_bits: u32,
    /// log2 of the secondary (last-trace-indexed) table size.
    pub secondary_bits: u32,
    /// Depth of the return history stack.
    pub rhs_depth: usize,
}

impl Default for NtpConfig {
    fn default() -> Self {
        NtpConfig {
            history_depth: 4,
            table_bits: 16,
            secondary_bits: 14,
            rhs_depth: 16,
        }
    }
}

/// Accuracy counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NtpStats {
    /// Observations where a prediction existed.
    pub predictions: u64,
    /// Observations where no table entry existed (cold).
    pub no_prediction: u64,
    /// Predictions whose key matched the actual next trace.
    pub correct: u64,
}

impl NtpStats {
    /// Correct predictions per 1000 opportunities (predictions +
    /// cold misses); `None` before any observation.
    pub fn accuracy_permille(&self) -> Option<u32> {
        let total = self.predictions + self.no_prediction;
        (total > 0).then(|| (self.correct * 1000 / total) as u32)
    }
}

#[derive(Debug, Clone, Copy)]
struct TableEntry {
    pred: Option<TraceKey>,
    counter: u8,
}

impl TableEntry {
    const EMPTY: TableEntry = TableEntry {
        pred: None,
        counter: 0,
    };

    fn train(&mut self, actual: TraceKey) {
        match self.pred {
            Some(p) if p == actual => self.counter = (self.counter + 1).min(3),
            Some(_) => {
                if self.counter == 0 {
                    self.pred = Some(actual);
                    self.counter = 1;
                } else {
                    self.counter -= 1;
                }
            }
            None => {
                self.pred = Some(actual);
                self.counter = 1;
            }
        }
    }
}

/// The hybrid path-based next-trace predictor.
///
/// Drive it with [`NextTracePredictor::predict`] (read-only) and
/// [`NextTracePredictor::observe`] once the actual next trace is
/// known. History is advanced with *actual* trace identities — the
/// standard trace-driven simplification: real hardware advances
/// speculatively and repairs on mispredictions, converging to the
/// same history contents on the correct path.
#[derive(Debug, Clone)]
pub struct NextTracePredictor {
    config: NtpConfig,
    primary: Vec<TableEntry>,
    secondary: Vec<TableEntry>,
    history: VecDeque<TraceKey>,
    rhs: Vec<VecDeque<TraceKey>>,
    stats: NtpStats,
}

impl NextTracePredictor {
    /// Creates a predictor with the given configuration.
    pub fn new(config: NtpConfig) -> Self {
        NextTracePredictor {
            config,
            primary: vec![TableEntry::EMPTY; 1usize << config.table_bits],
            secondary: vec![TableEntry::EMPTY; 1usize << config.secondary_bits],
            history: VecDeque::with_capacity(config.history_depth + 1),
            rhs: Vec::with_capacity(config.rhs_depth),
            stats: NtpStats::default(),
        }
    }

    /// DOLC-style fold of the path history: recent traces contribute
    /// more index bits than older ones.
    fn primary_index(&self) -> usize {
        let mut idx: u64 = 0;
        for (age, key) in self.history.iter().rev().enumerate() {
            // age 0 = most recent. Older entries are shifted right:
            // fewer of their bits survive the mask.
            idx ^= key.hash64() >> (age as u32 * 5);
        }
        (idx as usize) & ((1usize << self.config.table_bits) - 1)
    }

    fn secondary_index(&self) -> Option<usize> {
        let last = self.history.back()?;
        Some((last.hash64() as usize) & ((1usize << self.config.secondary_bits) - 1))
    }

    /// Predicts the next trace, or `None` when both tables are cold
    /// for the current path.
    pub fn predict(&self) -> Option<TraceKey> {
        let p = &self.primary[self.primary_index()];
        let s = self
            .secondary_index()
            .map(|i| &self.secondary[i])
            .unwrap_or(&TableEntry::EMPTY);
        // Hybrid selection: the correlating table wins unless the
        // secondary is strictly more confident (cold start/aliasing).
        let chosen = if p.pred.is_some() && p.counter >= s.counter {
            p
        } else {
            s
        };
        chosen.pred.or(p.pred).or(s.pred)
    }

    /// Trains with the actual next trace and advances the path
    /// history (and return history stack, per `end`).
    pub fn observe(&mut self, actual: TraceKey, end: TraceEnd) {
        match self.predict() {
            Some(pred) => {
                self.stats.predictions += 1;
                if pred == actual {
                    self.stats.correct += 1;
                }
            }
            None => self.stats.no_prediction += 1,
        }
        let pi = self.primary_index();
        self.primary[pi].train(actual);
        if let Some(si) = self.secondary_index() {
            self.secondary[si].train(actual);
        }

        // Return history stack (paper Section 6, item 1): save the
        // path history across a call so post-return predictions see
        // the caller's path instead of the callee's.
        match end {
            TraceEnd::Call => {
                if self.rhs.len() == self.config.rhs_depth {
                    self.rhs.remove(0);
                }
                self.rhs.push(self.history.clone());
            }
            TraceEnd::Return => {
                if let Some(saved) = self.rhs.pop() {
                    self.history = saved;
                }
            }
            TraceEnd::Fallthrough => {}
        }

        self.history.push_back(actual);
        while self.history.len() > self.config.history_depth {
            self.history.pop_front();
        }
    }

    /// Accuracy counters.
    pub fn stats(&self) -> &NtpStats {
        &self.stats
    }

    /// The current path history, most recent last (for tests).
    pub fn history(&self) -> impl Iterator<Item = &TraceKey> {
        self.history.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(start: u32, outcomes: u16, branches: u8) -> TraceKey {
        TraceKey {
            start: Addr::new(start),
            branch_count: branches,
            outcomes,
        }
    }

    #[test]
    fn learns_a_repeating_trace_sequence() {
        let mut p = NextTracePredictor::new(NtpConfig::default());
        let seq = [key(0, 0b01, 2), key(16, 0b1, 1), key(32, 0, 0)];
        // Warm up twice around the loop, then measure.
        for _ in 0..2 {
            for k in seq {
                p.observe(k, TraceEnd::Fallthrough);
            }
        }
        let mut correct = 0;
        for _ in 0..10 {
            for k in seq {
                if p.predict() == Some(k) {
                    correct += 1;
                }
                p.observe(k, TraceEnd::Fallthrough);
            }
        }
        assert_eq!(
            correct, 30,
            "fully predictable loop must be fully predicted"
        );
    }

    #[test]
    fn cold_predictor_returns_none() {
        let p = NextTracePredictor::new(NtpConfig::default());
        assert_eq!(p.predict(), None);
    }

    #[test]
    fn path_history_disambiguates_shared_successor() {
        // A→C and B→C, but C's successor depends on which path led
        // in: A→C→X, B→C→Y. A last-trace predictor cannot separate
        // these; the path-based one can.
        let (a, b, c, x, y) = (
            key(0, 0, 0),
            key(100, 0, 0),
            key(200, 0, 0),
            key(300, 0, 0),
            key(400, 0, 0),
        );
        let mut p = NextTracePredictor::new(NtpConfig::default());
        for _ in 0..8 {
            p.observe(a, TraceEnd::Fallthrough);
            p.observe(c, TraceEnd::Fallthrough);
            p.observe(x, TraceEnd::Fallthrough);
            p.observe(b, TraceEnd::Fallthrough);
            p.observe(c, TraceEnd::Fallthrough);
            p.observe(y, TraceEnd::Fallthrough);
        }
        // Measure a full round.
        let mut hits = 0;
        for (k, _) in [(a, 0), (c, 0), (x, 0), (b, 0), (c, 0), (y, 0)] {
            if p.predict() == Some(k) {
                hits += 1;
            }
            p.observe(k, TraceEnd::Fallthrough);
        }
        assert_eq!(hits, 6, "path history must disambiguate X vs Y after C");
    }

    #[test]
    fn return_history_stack_restores_caller_path() {
        let caller_a = key(0, 0, 0);
        let call_tr = key(16, 0, 0);
        let callee = key(500, 0, 0);
        let ret_tr = key(516, 0, 0);
        let after = key(32, 0, 0);
        let mut p = NextTracePredictor::new(NtpConfig::default());
        for _ in 0..6 {
            p.observe(caller_a, TraceEnd::Fallthrough);
            p.observe(call_tr, TraceEnd::Call);
            p.observe(callee, TraceEnd::Fallthrough);
            p.observe(ret_tr, TraceEnd::Return);
            p.observe(after, TraceEnd::Fallthrough);
        }
        // After the return trace, history was restored to the
        // caller's path; `after` must be predicted.
        p.observe(caller_a, TraceEnd::Fallthrough);
        p.observe(call_tr, TraceEnd::Call);
        p.observe(callee, TraceEnd::Fallthrough);
        p.observe(ret_tr, TraceEnd::Return);
        assert_eq!(p.predict(), Some(after));
    }

    #[test]
    fn stats_count_opportunities() {
        let mut p = NextTracePredictor::new(NtpConfig::default());
        let k = key(0, 0, 0);
        p.observe(k, TraceEnd::Fallthrough); // cold
        p.observe(k, TraceEnd::Fallthrough);
        let s = p.stats();
        assert_eq!(s.predictions + s.no_prediction, 2);
        assert!(s.no_prediction >= 1);
        assert!(s.accuracy_permille().is_some());
    }

    #[test]
    fn history_bounded_by_depth() {
        let cfg = NtpConfig {
            history_depth: 2,
            ..NtpConfig::default()
        };
        let mut p = NextTracePredictor::new(cfg);
        for i in 0..10 {
            p.observe(key(i * 16, 0, 0), TraceEnd::Fallthrough);
        }
        assert_eq!(p.history().count(), 2);
    }

    #[test]
    fn hash64_spreads_close_keys() {
        let a = key(0, 0, 0).hash64();
        let b = key(1, 0, 0).hash64();
        let c = key(0, 1, 1).hash64();
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
        // Low bits should differ for adjacent starts (table indexing
        // uses the low bits).
        assert_ne!(a & 0xffff, b & 0xffff);
    }
}
