//! Bimodal (2-bit saturating counter) branch predictor.

use tpc_isa::Addr;

/// The preconstruction engine's view of one branch's bias
/// (paper Section 2.1: "If the branch is strongly taken (or strongly
/// not taken) only the strongly biased path is followed").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bias {
    /// Counter saturated at 3: follow only the taken path.
    StronglyTaken,
    /// Counter saturated at 0: follow only the not-taken path.
    StronglyNotTaken,
    /// Weak states 1–2: explore both paths.
    Weak,
}

/// A table of 2-bit saturating counters indexed by branch address.
///
/// ```
/// use tpc_predict::{Bimodal, Bias};
/// use tpc_isa::Addr;
///
/// let mut p = Bimodal::new(1024);
/// let pc = Addr::new(100);
/// for _ in 0..3 { p.update(pc, true); }
/// assert!(p.predict(pc));
/// assert_eq!(p.bias(pc), Bias::StronglyTaken);
/// ```
#[derive(Debug, Clone)]
pub struct Bimodal {
    counters: Vec<u8>,
    mask: usize,
    lookups: u64,
    correct: u64,
}

impl Bimodal {
    /// Creates a predictor with `entries` counters (power of two),
    /// initialized to weakly-not-taken (1).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero or not a power of two.
    pub fn new(entries: usize) -> Self {
        assert!(
            entries.is_power_of_two(),
            "entry count must be a power of two"
        );
        Bimodal {
            counters: vec![1; entries],
            mask: entries - 1,
            lookups: 0,
            correct: 0,
        }
    }

    #[inline]
    fn index(&self, pc: Addr) -> usize {
        pc.word() as usize & self.mask
    }

    /// Predicts the branch at `pc` (true = taken). Does not update
    /// any state; call [`Bimodal::update`] with the real outcome.
    #[inline]
    pub fn predict(&self, pc: Addr) -> bool {
        self.counters[self.index(pc)] >= 2
    }

    /// Raw counter value (0–3) for the branch at `pc`.
    #[inline]
    pub fn counter(&self, pc: Addr) -> u8 {
        self.counters[self.index(pc)]
    }

    /// The preconstruction engine's bias classification for `pc`.
    #[inline]
    pub fn bias(&self, pc: Addr) -> Bias {
        match self.counter(pc) {
            0 => Bias::StronglyNotTaken,
            3 => Bias::StronglyTaken,
            _ => Bias::Weak,
        }
    }

    /// Trains the counter with the resolved outcome and records
    /// accuracy of the prediction that would have been made.
    pub fn update(&mut self, pc: Addr, taken: bool) {
        self.lookups += 1;
        if self.predict(pc) == taken {
            self.correct += 1;
        }
        let idx = self.index(pc);
        let c = &mut self.counters[idx];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
    }

    /// Fraction of updates where the pre-update prediction matched,
    /// in 1/1000ths; `None` before any update.
    pub fn accuracy_permille(&self) -> Option<u32> {
        (self.lookups > 0).then(|| (self.correct * 1000 / self.lookups) as u32)
    }

    /// Fault-injection hook: flips one bit (`bit & 1`) of the counter
    /// at `entry` (masked into range). A 2-bit counter stays in
    /// `0..=3`, so the predictor remains structurally valid — the
    /// flip can only change predictions and bias classifications,
    /// which are performance hints, never architectural state.
    pub fn flip_bit(&mut self, entry: usize, bit: u8) {
        let idx = entry & self.mask;
        self.counters[idx] ^= 1 << (bit & 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initializes_weakly_not_taken() {
        let p = Bimodal::new(16);
        assert!(!p.predict(Addr::new(0)));
        assert_eq!(p.bias(Addr::new(0)), Bias::Weak);
    }

    #[test]
    fn saturates_up_and_down() {
        let mut p = Bimodal::new(16);
        let pc = Addr::new(5);
        for _ in 0..10 {
            p.update(pc, true);
        }
        assert_eq!(p.counter(pc), 3);
        for _ in 0..10 {
            p.update(pc, false);
        }
        assert_eq!(p.counter(pc), 0);
        assert_eq!(p.bias(pc), Bias::StronglyNotTaken);
    }

    #[test]
    fn hysteresis_keeps_prediction_through_one_anomaly() {
        let mut p = Bimodal::new(16);
        let pc = Addr::new(3);
        for _ in 0..3 {
            p.update(pc, true);
        }
        p.update(pc, false); // one loop exit
        assert!(p.predict(pc), "still predicts taken after one not-taken");
    }

    #[test]
    fn aliasing_maps_by_low_bits() {
        let mut p = Bimodal::new(16);
        p.update(Addr::new(1), true);
        p.update(Addr::new(17), true); // same entry
        assert_eq!(p.counter(Addr::new(1)), 3);
    }

    #[test]
    fn accuracy_tracks_correct_predictions() {
        let mut p = Bimodal::new(16);
        let pc = Addr::new(2);
        assert_eq!(p.accuracy_permille(), None);
        for _ in 0..100 {
            p.update(pc, true);
        }
        assert!(p.accuracy_permille().unwrap() > 950);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let _ = Bimodal::new(12);
    }
}
