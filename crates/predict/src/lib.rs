//! # tpc-predict — branch and next-trace predictors
//!
//! The prediction substrate of the trace processor frontend:
//!
//! * [`Bimodal`] — the classic table of 2-bit saturating counters
//!   (Smith, ISCA 1981). It drives the slow path and, crucially for
//!   this paper, its *strong* states are how the preconstruction
//!   engine decides a branch is "strongly biased" and follows only
//!   its dominant direction (paper Section 2.1).
//! * [`ReturnAddressStack`] — return-target prediction for the slow
//!   path.
//! * [`NextTracePredictor`] — the path-based next-trace predictor of
//!   Jacobson, Rotenberg & Smith (MICRO 1997), in the enhanced hybrid
//!   configuration the paper uses: a path-history-indexed correlating
//!   table, a secondary table indexed by the last trace only, 2-bit
//!   confidence counters arbitrating between them, and a return
//!   history stack that saves path history across calls/returns.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bimodal;
pub mod ntp;
pub mod ras;

pub use bimodal::{Bias, Bimodal};
pub use ntp::{NextTracePredictor, NtpConfig, NtpStats, TraceEnd, TraceKey};
pub use ras::ReturnAddressStack;
