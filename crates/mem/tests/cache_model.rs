//! Property test: `SetAssocCache` agrees with an executable
//! reference model (per-set LRU lists) on arbitrary operation
//! sequences.
#![cfg(feature = "proptest-tests")]

use proptest::prelude::*;
use std::collections::VecDeque;
use tpc_mem::{CacheGeometry, SetAssocCache};

/// Straightforward reference: one MRU-ordered list per set.
struct RefCache {
    sets: Vec<VecDeque<u64>>,
    ways: usize,
}

impl RefCache {
    fn new(sets: u32, ways: u32) -> Self {
        RefCache {
            sets: (0..sets).map(|_| VecDeque::new()).collect(),
            ways: ways as usize,
        }
    }

    fn set_of(&self, key: u64) -> usize {
        (key % self.sets.len() as u64) as usize
    }

    fn access(&mut self, key: u64) -> bool {
        let set = self.set_of(key);
        let list = &mut self.sets[set];
        if let Some(pos) = list.iter().position(|&k| k == key) {
            let k = list.remove(pos).expect("found above");
            list.push_front(k);
            true
        } else {
            false
        }
    }

    fn probe(&self, key: u64) -> bool {
        self.sets[self.set_of(key)].contains(&key)
    }

    fn fill(&mut self, key: u64) -> Option<u64> {
        let ways = self.ways;
        let set = self.set_of(key);
        let list = &mut self.sets[set];
        if let Some(pos) = list.iter().position(|&k| k == key) {
            let k = list.remove(pos).expect("found above");
            list.push_front(k);
            return None;
        }
        list.push_front(key);
        if list.len() > ways {
            list.pop_back()
        } else {
            None
        }
    }

    fn invalidate(&mut self, key: u64) -> bool {
        let set = self.set_of(key);
        let list = &mut self.sets[set];
        match list.iter().position(|&k| k == key) {
            Some(pos) => {
                list.remove(pos);
                true
            }
            None => false,
        }
    }
}

#[derive(Debug, Clone)]
enum Cmd {
    Access(u64),
    Probe(u64),
    Fill(u64),
    Invalidate(u64),
}

fn cmds() -> impl Strategy<Value = Vec<Cmd>> {
    prop::collection::vec(
        (0u64..64, 0u8..4).prop_map(|(k, op)| match op {
            0 => Cmd::Access(k),
            1 => Cmd::Probe(k),
            2 => Cmd::Fill(k),
            _ => Cmd::Invalidate(k),
        }),
        0..300,
    )
}

proptest! {
    #[test]
    fn set_assoc_matches_reference(ops in cmds(), sets_pow in 0u32..4, ways in 1u32..5) {
        let sets = 1 << sets_pow;
        let mut dut = SetAssocCache::new(CacheGeometry::new(sets, ways));
        let mut reference = RefCache::new(sets, ways);
        for (i, cmd) in ops.iter().enumerate() {
            match *cmd {
                Cmd::Access(k) => {
                    prop_assert_eq!(dut.access(k), reference.access(k), "access #{} key {}", i, k);
                }
                Cmd::Probe(k) => {
                    prop_assert_eq!(dut.probe(k), reference.probe(k), "probe #{} key {}", i, k);
                }
                Cmd::Fill(k) => {
                    prop_assert_eq!(dut.fill(k), reference.fill(k), "fill #{} key {}", i, k);
                }
                Cmd::Invalidate(k) => {
                    prop_assert_eq!(dut.invalidate(k), reference.invalidate(k), "inv #{} key {}", i, k);
                }
            }
        }
        // Final occupancy agrees too.
        let ref_occ: usize = reference.sets.iter().map(|l| l.len()).sum();
        prop_assert_eq!(dut.occupancy(), ref_occ);
    }
}
