//! Data cache model.

use crate::cache::{CacheGeometry, SetAssocCache};

/// Counters kept by the data cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DataCacheStats {
    /// Load accesses.
    pub loads: u64,
    /// Store accesses.
    pub stores: u64,
    /// Misses (loads + stores).
    pub misses: u64,
    /// Dirty lines written back on eviction.
    pub writebacks: u64,
}

/// A write-back, write-allocate data cache (64 KB, 4-way, 64-byte
/// lines, 2-cycle hit by default) backed by a perfect 10-cycle L2.
///
/// The simulator models the paper's four-port constraint (any single
/// processing element uses at most two ports per cycle) in the
/// backend scheduler; this structure models hit/miss latency only.
#[derive(Debug, Clone)]
pub struct DataCache {
    tags: SetAssocCache,
    dirty: std::collections::BTreeSet<u64>,
    hit_latency: u32,
    l2_latency: u32,
    stats: DataCacheStats,
}

impl DataCache {
    /// Creates the paper's default data cache.
    pub fn new() -> Self {
        Self::with_params(64 * 1024, 4, 2, 10)
    }

    /// Creates a data cache with explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics on invalid geometry (see [`CacheGeometry`]).
    pub fn with_params(size_bytes: u32, ways: u32, hit_latency: u32, l2_latency: u32) -> Self {
        DataCache {
            tags: SetAssocCache::new(CacheGeometry::with_entries(size_bytes / 64, ways)),
            dirty: std::collections::BTreeSet::new(),
            hit_latency,
            l2_latency,
            stats: DataCacheStats::default(),
        }
    }

    fn line(byte_addr: u64) -> u64 {
        byte_addr / 64
    }

    /// Performs a load; returns access latency in cycles.
    pub fn load(&mut self, byte_addr: u64) -> u32 {
        self.stats.loads += 1;
        self.access(byte_addr, false)
    }

    /// Performs a store; returns access latency in cycles.
    pub fn store(&mut self, byte_addr: u64) -> u32 {
        self.stats.stores += 1;
        self.access(byte_addr, true)
    }

    fn access(&mut self, byte_addr: u64, is_store: bool) -> u32 {
        let line = Self::line(byte_addr);
        let hit = self.tags.access(line);
        if !hit {
            self.stats.misses += 1;
            if let Some(evicted) = self.tags.fill(line) {
                if self.dirty.remove(&evicted) {
                    self.stats.writebacks += 1;
                }
            }
        }
        if is_store {
            self.dirty.insert(line);
        }
        if hit {
            self.hit_latency
        } else {
            self.hit_latency + self.l2_latency
        }
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> &DataCacheStats {
        &self.stats
    }

    /// Resets counters (not contents).
    pub fn reset_stats(&mut self) {
        self.stats = DataCacheStats::default();
    }
}

impl Default for DataCache {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_miss_then_hit() {
        let mut d = DataCache::new();
        assert_eq!(d.load(0x100), 12);
        assert_eq!(d.load(0x104), 2); // same line
        assert_eq!(d.stats().loads, 2);
        assert_eq!(d.stats().misses, 1);
    }

    #[test]
    fn store_allocates_and_dirties() {
        let mut d = DataCache::with_params(128, 2, 2, 10); // one set, 2 ways
        d.store(0);
        d.load(64);
        // Evicting the dirty line 0 must produce a writeback.
        d.load(128);
        assert_eq!(d.stats().writebacks, 1);
    }

    #[test]
    fn clean_eviction_produces_no_writeback() {
        let mut d = DataCache::with_params(128, 2, 2, 10);
        d.load(0);
        d.load(64);
        d.load(128);
        assert_eq!(d.stats().writebacks, 0);
    }

    #[test]
    fn store_hit_latency() {
        let mut d = DataCache::new();
        d.load(0);
        assert_eq!(d.store(8), 2);
    }
}
