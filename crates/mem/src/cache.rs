//! Generic set-associative LRU tag array.

use std::fmt;

/// Geometry of a set-associative structure.
///
/// `sets × ways` entries; both must be powers of two (sets may be 1
/// for a fully-associative structure).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeometry {
    sets: u32,
    ways: u32,
}

impl CacheGeometry {
    /// Creates a geometry.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `ways` is zero, or if `sets` is not a
    /// power of two.
    pub fn new(sets: u32, ways: u32) -> Self {
        assert!(sets > 0 && ways > 0, "geometry must be non-empty");
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        CacheGeometry { sets, ways }
    }

    /// Geometry holding `entries` total with the given associativity.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a multiple of `ways` or the
    /// resulting set count is not a power of two.
    pub fn with_entries(entries: u32, ways: u32) -> Self {
        assert!(
            ways > 0 && entries.is_multiple_of(ways),
            "entries must divide by ways"
        );
        Self::new(entries / ways, ways)
    }

    /// Number of sets.
    pub fn sets(&self) -> u32 {
        self.sets
    }

    /// Number of ways per set.
    pub fn ways(&self) -> u32 {
        self.ways
    }

    /// Total entry capacity.
    pub fn entries(&self) -> u32 {
        self.sets * self.ways
    }

    /// The set index for a key.
    #[inline]
    pub fn set_of(&self, key: u64) -> usize {
        (key & (self.sets as u64 - 1)) as usize
    }
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    key: u64,
    stamp: u64,
    valid: bool,
}

/// A set-associative LRU tag array over opaque `u64` keys.
///
/// This models only presence (tags), not payloads — payload storage
/// belongs to the structure embedding it. Keys map to sets by their
/// low bits; the full key is the tag.
///
/// ```
/// use tpc_mem::{CacheGeometry, SetAssocCache};
/// let mut c = SetAssocCache::new(CacheGeometry::new(4, 2));
/// assert!(!c.access(42));   // cold miss
/// c.fill(42);
/// assert!(c.access(42));    // hit
/// ```
#[derive(Clone)]
pub struct SetAssocCache {
    geometry: CacheGeometry,
    entries: Vec<Entry>,
    clock: u64,
}

impl SetAssocCache {
    /// Creates an empty cache with the given geometry.
    pub fn new(geometry: CacheGeometry) -> Self {
        SetAssocCache {
            geometry,
            entries: vec![
                Entry {
                    key: 0,
                    stamp: 0,
                    valid: false
                };
                geometry.entries() as usize
            ],
            clock: 0,
        }
    }

    /// The cache's geometry.
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    fn set_range(&self, key: u64) -> std::ops::Range<usize> {
        let ways = self.geometry.ways as usize;
        let start = self.geometry.set_of(key) * ways;
        start..start + ways
    }

    /// Looks up `key`, updating LRU state on a hit.
    pub fn access(&mut self, key: u64) -> bool {
        self.clock += 1;
        let clock = self.clock;
        let range = self.set_range(key);
        for e in &mut self.entries[range] {
            if e.valid && e.key == key {
                e.stamp = clock;
                return true;
            }
        }
        false
    }

    /// Looks up `key` without touching LRU state.
    pub fn probe(&self, key: u64) -> bool {
        let range = self.set_range(key);
        self.entries[range].iter().any(|e| e.valid && e.key == key)
    }

    /// Inserts `key`, evicting the LRU way if the set is full.
    ///
    /// Returns the evicted key, if any. Filling an already-present
    /// key refreshes its LRU stamp and evicts nothing.
    pub fn fill(&mut self, key: u64) -> Option<u64> {
        self.clock += 1;
        let clock = self.clock;
        let range = self.set_range(key);
        // Already present → refresh.
        for e in &mut self.entries[range.clone()] {
            if e.valid && e.key == key {
                e.stamp = clock;
                return None;
            }
        }
        // Free way?
        for e in &mut self.entries[range.clone()] {
            if !e.valid {
                *e = Entry {
                    key,
                    stamp: clock,
                    valid: true,
                };
                return None;
            }
        }
        // Evict LRU.
        let victim = self.entries[range]
            .iter_mut()
            .min_by_key(|e| e.stamp)
            .expect("ways > 0");
        let evicted = victim.key;
        *victim = Entry {
            key,
            stamp: clock,
            valid: true,
        };
        Some(evicted)
    }

    /// Removes `key` if present; reports whether it was.
    pub fn invalidate(&mut self, key: u64) -> bool {
        let range = self.set_range(key);
        for e in &mut self.entries[range] {
            if e.valid && e.key == key {
                e.valid = false;
                return true;
            }
        }
        false
    }

    /// Invalidates everything.
    pub fn clear(&mut self) {
        for e in &mut self.entries {
            e.valid = false;
        }
    }

    /// Number of valid entries.
    pub fn occupancy(&self) -> usize {
        self.entries.iter().filter(|e| e.valid).count()
    }
}

impl fmt::Debug for SetAssocCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SetAssocCache")
            .field("geometry", &self.geometry)
            .field("occupancy", &self.occupancy())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(sets: u32, ways: u32) -> SetAssocCache {
        SetAssocCache::new(CacheGeometry::new(sets, ways))
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = cache(4, 2);
        assert!(!c.access(10));
        c.fill(10);
        assert!(c.access(10));
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = cache(1, 2);
        c.fill(1);
        c.fill(2);
        c.access(1); // 2 becomes LRU
        let evicted = c.fill(3);
        assert_eq!(evicted, Some(2));
        assert!(c.probe(1));
        assert!(c.probe(3));
        assert!(!c.probe(2));
    }

    #[test]
    fn refill_refreshes_without_eviction() {
        let mut c = cache(1, 2);
        c.fill(1);
        c.fill(2);
        assert_eq!(c.fill(1), None); // refresh, 2 now LRU
        assert_eq!(c.fill(3), Some(2));
    }

    #[test]
    fn keys_map_to_distinct_sets() {
        let mut c = cache(4, 1);
        // Keys 0..4 land in different sets: no evictions.
        for k in 0..4 {
            assert_eq!(c.fill(k), None);
        }
        assert_eq!(c.occupancy(), 4);
    }

    #[test]
    fn conflicting_keys_evict_within_one_set() {
        let mut c = cache(4, 1);
        c.fill(0);
        assert_eq!(c.fill(4), Some(0)); // same set (low bits equal)
    }

    #[test]
    fn probe_does_not_disturb_lru() {
        let mut c = cache(1, 2);
        c.fill(1);
        c.fill(2);
        assert!(c.probe(1)); // does NOT refresh 1
        assert_eq!(c.fill(3), Some(1)); // 1 was still LRU
    }

    #[test]
    fn invalidate_frees_way() {
        let mut c = cache(1, 2);
        c.fill(1);
        c.fill(2);
        assert!(c.invalidate(1));
        assert!(!c.invalidate(1));
        assert_eq!(c.fill(3), None); // reuses the freed way
    }

    #[test]
    fn clear_empties_cache() {
        let mut c = cache(2, 2);
        c.fill(1);
        c.fill(2);
        c.clear();
        assert_eq!(c.occupancy(), 0);
        assert!(!c.probe(1));
    }

    #[test]
    fn geometry_with_entries() {
        let g = CacheGeometry::with_entries(256, 2);
        assert_eq!(g.sets(), 128);
        assert_eq!(g.entries(), 256);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_rejected() {
        let _ = CacheGeometry::new(3, 2);
    }

    #[test]
    fn fully_associative_geometry() {
        let mut c = cache(1, 4);
        for k in [100, 200, 300, 400] {
            c.fill(k);
        }
        assert_eq!(c.occupancy(), 4);
        assert_eq!(c.fill(500), Some(100));
    }
}
