//! Prefetch caches feeding the preconstruction trace constructors.

use crate::{line_of, INSTRS_PER_LINE};
use tpc_isa::Addr;

/// One of the small instruction buffers that decouple I-cache fetch
/// from trace construction (paper Section 3.3.1).
///
/// Holds a fixed number of instructions (256 by default = 16 lines),
/// fully associative, and — as in the paper — lines are never
/// replaced: when the cache is full, preconstruction for its region
/// terminates. The cache is cleared wholesale when it is re-assigned
/// to a new region.
#[derive(Debug, Clone)]
pub struct PrefetchCache {
    lines: Vec<u64>,
    capacity_lines: usize,
}

impl PrefetchCache {
    /// Creates a prefetch cache holding `capacity_instrs` instructions.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_instrs` is not a positive multiple of the
    /// line size (16 instructions).
    pub fn new(capacity_instrs: u32) -> Self {
        assert!(
            capacity_instrs > 0 && capacity_instrs.is_multiple_of(INSTRS_PER_LINE),
            "capacity must be a positive multiple of {INSTRS_PER_LINE}"
        );
        PrefetchCache {
            lines: Vec::new(),
            capacity_lines: (capacity_instrs / INSTRS_PER_LINE) as usize,
        }
    }

    /// Creates the paper's 256-instruction prefetch cache.
    pub fn paper_default() -> Self {
        Self::new(256)
    }

    /// Whether the instruction at `addr` is resident.
    pub fn contains(&self, addr: Addr) -> bool {
        self.lines.contains(&line_of(addr))
    }

    /// Whether there is room for another line.
    pub fn has_room(&self) -> bool {
        self.lines.len() < self.capacity_lines
    }

    /// Whether the cache has filled up (region must terminate).
    pub fn is_full(&self) -> bool {
        !self.has_room()
    }

    /// Inserts the line containing `addr`.
    ///
    /// Returns `false` — and inserts nothing — when the cache is full
    /// (the caller then terminates preconstruction for the region).
    /// Inserting an already-present line succeeds and changes nothing.
    pub fn insert_line(&mut self, addr: Addr) -> bool {
        let line = line_of(addr);
        if self.lines.contains(&line) {
            return true;
        }
        if self.lines.len() >= self.capacity_lines {
            return false;
        }
        self.lines.push(line);
        true
    }

    /// Empties the cache for reuse by a new region.
    pub fn clear(&mut self) {
        self.lines.clear();
    }

    /// Number of resident lines.
    pub fn occupancy_lines(&self) -> usize {
        self.lines.len()
    }

    /// Capacity in lines.
    pub fn capacity_lines(&self) -> usize {
        self.capacity_lines
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_contains_whole_line() {
        let mut p = PrefetchCache::paper_default();
        assert!(p.insert_line(Addr::new(20)));
        assert!(p.contains(Addr::new(16)));
        assert!(p.contains(Addr::new(31)));
        assert!(!p.contains(Addr::new(32)));
    }

    #[test]
    fn fills_up_and_refuses() {
        let mut p = PrefetchCache::new(32); // 2 lines
        assert!(p.insert_line(Addr::new(0)));
        assert!(p.insert_line(Addr::new(16)));
        assert!(p.is_full());
        assert!(!p.insert_line(Addr::new(32)));
        // Re-inserting a resident line still succeeds.
        assert!(p.insert_line(Addr::new(0)));
    }

    #[test]
    fn clear_resets_for_new_region() {
        let mut p = PrefetchCache::new(16);
        p.insert_line(Addr::new(0));
        assert!(p.is_full());
        p.clear();
        assert!(p.has_room());
        assert!(!p.contains(Addr::new(0)));
    }

    #[test]
    fn paper_default_capacity() {
        let p = PrefetchCache::paper_default();
        assert_eq!(p.capacity_lines(), 16);
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn non_line_multiple_capacity_rejected() {
        let _ = PrefetchCache::new(17);
    }
}
