//! Instruction cache with a perfect L2 behind it.

use crate::cache::{CacheGeometry, SetAssocCache};
use crate::{line_of, INSTRS_PER_LINE};
use tpc_isa::Addr;

/// Who is performing an instruction-cache access.
///
/// The paper's Tables 1–3 separate instructions supplied to the
/// *slow path* (demand) from fetches issued by the preconstruction
/// engine, and measure how preconstruction perturbs the I-cache miss
/// rate; attribution happens here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// The slow-path fetch unit feeding the processor.
    Demand,
    /// The preconstruction engine filling a prefetch cache.
    Precon,
}

/// Result of one line fetch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FetchResult {
    /// Whether the line was present.
    pub hit: bool,
    /// Total latency in cycles (hit latency, plus L2 on a miss).
    pub latency: u32,
}

/// Configuration for [`InstrCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstrCacheConfig {
    /// Total size in bytes (default 64 KB).
    pub size_bytes: u32,
    /// Associativity (default 4).
    pub ways: u32,
    /// Hit latency in cycles (default 1).
    pub hit_latency: u32,
    /// Perfect-L2 access latency in cycles (default 10).
    pub l2_latency: u32,
}

impl Default for InstrCacheConfig {
    fn default() -> Self {
        InstrCacheConfig {
            size_bytes: 64 * 1024,
            ways: 4,
            hit_latency: 1,
            l2_latency: 10,
        }
    }
}

/// Counters kept by the instruction cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IcacheStats {
    /// Demand (slow-path) line accesses.
    pub demand_accesses: u64,
    /// Demand accesses that missed.
    pub demand_misses: u64,
    /// Preconstruction line accesses.
    pub precon_accesses: u64,
    /// Preconstruction accesses that missed.
    pub precon_misses: u64,
    /// Demand misses on lines most recently filled by preconstruction
    /// — prefetches that arrived *but were evicted* do not count; a
    /// demand *hit* on a precon-filled line is counted in
    /// `demand_hits_on_precon_lines` instead.
    pub demand_hits_on_precon_lines: u64,
}

impl IcacheStats {
    /// Total misses from both access kinds.
    pub fn total_misses(&self) -> u64 {
        self.demand_misses + self.precon_misses
    }
}

/// The instruction cache (64 KB, 4-way, 64-byte lines by default)
/// backed by a perfect L2.
///
/// Accesses are line-granular: the fetch unit and the preconstruction
/// engine both consume whole lines (16 instructions).
#[derive(Debug, Clone)]
pub struct InstrCache {
    tags: SetAssocCache,
    config: InstrCacheConfig,
    stats: IcacheStats,
    /// Lines whose most recent fill was performed by the
    /// preconstruction engine (tracked for Table-3-style attribution).
    precon_filled: std::collections::BTreeSet<u64>,
}

impl InstrCache {
    /// Creates an instruction cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid (size not a power-of-two
    /// multiple of `ways × 64`).
    pub fn new(config: InstrCacheConfig) -> Self {
        let lines = config.size_bytes / 64;
        InstrCache {
            tags: SetAssocCache::new(CacheGeometry::with_entries(lines, config.ways)),
            config,
            stats: IcacheStats::default(),
            precon_filled: std::collections::BTreeSet::new(),
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &InstrCacheConfig {
        &self.config
    }

    /// Fetches the line containing `addr`, filling it on a miss.
    pub fn fetch(&mut self, addr: Addr, kind: AccessKind) -> FetchResult {
        let line = line_of(addr);
        let hit = self.tags.access(line);
        match kind {
            AccessKind::Demand => {
                self.stats.demand_accesses += 1;
                if !hit {
                    self.stats.demand_misses += 1;
                } else if self.precon_filled.contains(&line) {
                    self.stats.demand_hits_on_precon_lines += 1;
                }
            }
            AccessKind::Precon => {
                self.stats.precon_accesses += 1;
                if !hit {
                    self.stats.precon_misses += 1;
                }
            }
        }
        if !hit {
            if let Some(evicted) = self.tags.fill(line) {
                self.precon_filled.remove(&evicted);
            }
            match kind {
                AccessKind::Precon => self.precon_filled.insert(line),
                AccessKind::Demand => self.precon_filled.remove(&line),
            };
        }
        FetchResult {
            hit,
            latency: if hit {
                self.config.hit_latency
            } else {
                self.config.hit_latency + self.config.l2_latency
            },
        }
    }

    /// Whether the line containing `addr` is currently resident
    /// (no LRU update, no fill).
    pub fn contains(&self, addr: Addr) -> bool {
        self.tags.probe(line_of(addr))
    }

    /// The word address of the first instruction of `addr`'s line.
    pub fn line_base(addr: Addr) -> Addr {
        Addr::new(addr.word() / INSTRS_PER_LINE * INSTRS_PER_LINE)
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> &IcacheStats {
        &self.stats
    }

    /// Resets counters (not contents) — used when a simulation
    /// separates warm-up from measurement.
    pub fn reset_stats(&mut self) {
        self.stats = IcacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> InstrCache {
        // 1 KB, 2-way → 16 lines, 8 sets: easy to conflict.
        InstrCache::new(InstrCacheConfig {
            size_bytes: 1024,
            ways: 2,
            ..InstrCacheConfig::default()
        })
    }

    #[test]
    fn miss_then_hit_latencies() {
        let mut ic = small();
        let r1 = ic.fetch(Addr::new(0), AccessKind::Demand);
        assert!(!r1.hit);
        assert_eq!(r1.latency, 11);
        let r2 = ic.fetch(Addr::new(5), AccessKind::Demand); // same line
        assert!(r2.hit);
        assert_eq!(r2.latency, 1);
    }

    #[test]
    fn line_granularity() {
        let mut ic = small();
        ic.fetch(Addr::new(0), AccessKind::Demand);
        assert!(ic.contains(Addr::new(15)));
        assert!(!ic.contains(Addr::new(16)));
    }

    #[test]
    fn demand_and_precon_attributed_separately() {
        let mut ic = small();
        ic.fetch(Addr::new(0), AccessKind::Demand);
        ic.fetch(Addr::new(16), AccessKind::Precon);
        ic.fetch(Addr::new(16), AccessKind::Precon);
        let s = ic.stats();
        assert_eq!(s.demand_accesses, 1);
        assert_eq!(s.demand_misses, 1);
        assert_eq!(s.precon_accesses, 2);
        assert_eq!(s.precon_misses, 1);
    }

    #[test]
    fn precon_prefetch_turns_demand_miss_into_hit() {
        let mut ic = small();
        ic.fetch(Addr::new(32), AccessKind::Precon);
        let r = ic.fetch(Addr::new(33), AccessKind::Demand);
        assert!(r.hit);
        assert_eq!(ic.stats().demand_hits_on_precon_lines, 1);
        assert_eq!(ic.stats().demand_misses, 0);
    }

    #[test]
    fn eviction_clears_precon_attribution() {
        let mut ic = InstrCache::new(InstrCacheConfig {
            size_bytes: 128, // 2 lines, 2-way → 1 set
            ways: 2,
            ..InstrCacheConfig::default()
        });
        ic.fetch(Addr::new(0), AccessKind::Precon);
        ic.fetch(Addr::new(16), AccessKind::Demand);
        ic.fetch(Addr::new(32), AccessKind::Demand); // evicts line 0 (LRU)
        let r = ic.fetch(Addr::new(0), AccessKind::Demand); // miss again
        assert!(!r.hit);
        assert_eq!(ic.stats().demand_hits_on_precon_lines, 0);
    }

    #[test]
    fn line_base_rounds_down() {
        assert_eq!(InstrCache::line_base(Addr::new(37)), Addr::new(32));
        assert_eq!(InstrCache::line_base(Addr::new(32)), Addr::new(32));
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut ic = small();
        ic.fetch(Addr::new(0), AccessKind::Demand);
        ic.reset_stats();
        assert_eq!(ic.stats().demand_accesses, 0);
        assert!(ic.contains(Addr::new(0)));
    }

    #[test]
    fn default_config_is_paper_config() {
        let c = InstrCacheConfig::default();
        assert_eq!(c.size_bytes, 64 * 1024);
        assert_eq!(c.ways, 4);
        assert_eq!(c.hit_latency, 1);
        assert_eq!(c.l2_latency, 10);
    }
}
