//! # tpc-mem — memory-hierarchy models
//!
//! Cache structures used by the trace-processor simulator, matching
//! the configuration of the paper's Section 4:
//!
//! * [`SetAssocCache`] — generic set-associative LRU tag array, the
//!   building block for the caches below (and for the trace cache in
//!   `tpc-core`).
//! * [`InstrCache`] — 64 KB, 4-way, 64 B-line instruction cache with a
//!   1-cycle hit and a perfect 10-cycle L2 behind it. Tracks demand
//!   vs. preconstruction accesses separately (paper Tables 1–3).
//! * [`DataCache`] — 64 KB, 4-way, 64 B-line write-back data cache
//!   with a 2-cycle hit.
//! * [`PrefetchCache`] — the small fully-associative instruction
//!   buffers that feed the preconstruction trace constructors
//!   (Section 3.3.1): they fill up and are never replaced; a full
//!   cache terminates its region.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod dcache;
pub mod icache;
pub mod prefetch;

pub use cache::{CacheGeometry, SetAssocCache};
pub use dcache::{DataCache, DataCacheStats};
pub use icache::{AccessKind, FetchResult, IcacheStats, InstrCache, InstrCacheConfig};
pub use prefetch::PrefetchCache;

/// Instructions per cache line: 64-byte lines, 4-byte instructions.
pub const INSTRS_PER_LINE: u32 = 16;

/// Maps a word-granular instruction address to its I-cache line index.
#[inline]
pub fn line_of(addr: tpc_isa::Addr) -> u64 {
    (addr.word() / INSTRS_PER_LINE) as u64
}
