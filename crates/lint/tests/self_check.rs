//! Integration checks that pin the linter against the workspace it
//! lints.
//!
//! * The lexer must round-trip **every** `.rs` file in the repo
//!   byte-for-byte (totality: nothing is skipped or misparsed).
//! * Adversarial Rust surface — raw strings, byte strings, lifetimes
//!   vs char literals, nested generics, doc comments, `r#`-escaped
//!   identifiers — must lex and tree-parse.
//! * The workspace itself must lint clean against the checked-in
//!   allowlist: zero open findings, zero stale entries. Reverting
//!   any determinism/panic/conformance fix in this PR makes this
//!   test fail, exactly like the `verify.sh` gate.

use std::path::Path;

use tpc_lint::workspace::{all_rust_file_paths, find_root, Workspace};
use tpc_lint::{allowlist, lexer, rules, tree};

fn repo_root() -> std::path::PathBuf {
    find_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root")
}

#[test]
fn lexer_round_trips_every_rust_file_in_the_workspace() {
    let root = repo_root();
    let paths = all_rust_file_paths(&root).expect("file walk");
    assert!(paths.len() > 60, "expected a real workspace, got {paths:?}");
    for path in paths {
        let src = std::fs::read_to_string(&path).expect("read");
        let toks =
            lexer::lex(&src).unwrap_or_else(|e| panic!("{}: lex failed: {e}", path.display()));
        let rebuilt: String = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(rebuilt, src, "{}: lossless round-trip", path.display());
        tree::parse(&toks).unwrap_or_else(|e| panic!("{}: tree parse: {e}", path.display()));
    }
}

#[test]
fn adversarial_rust_lexes_and_parses() {
    let src = r####"
//! Doc comment with `code` and "quotes".
/// Outer doc: /* not a comment opener */ and 'x'.
/** Block doc /* nested */ still one token. */
fn r#match<'a, T: Iterator<Item = Vec<Option<&'a str>>>>(r#type: &'a str) -> u8 {
    let raw = r#"raw "quoted" string"#;
    let deeper = r###"has "# inside"###;
    let bytes = b"\x00\"bytes";
    let raw_bytes = br#"raw "bytes""#;
    let ch = '\'';
    let nl = '\n';
    let lifetime_vs_char: &'static str = "ok";
    let nested: Vec<Vec<u8>> = vec![vec![1u8, 2, 3]];
    let shifted = 1u64 << 62 >> 1;
    let range = 1..=2;
    let float = 1.5e-3_f64;
    let not_float = 1..2;
    let _ = (raw, deeper, bytes, raw_bytes, ch, nl, lifetime_vs_char, nested);
    (shifted as u8).wrapping_add(range.end + not_float.end + float as u8)
}
"####;
    let toks = lexer::lex(src).expect("adversarial lex");
    let rebuilt: String = toks.iter().map(|t| t.text.as_str()).collect();
    assert_eq!(rebuilt, src);
    let forest = tree::parse(&toks).expect("adversarial parse");
    // The raw-ident function must be discoverable by name.
    assert_eq!(tree::fn_bodies(&forest, "r#match").len(), 1);
}

#[test]
fn workspace_lints_clean_against_the_checked_in_allowlist() {
    let root = repo_root();
    let ws = Workspace::load(&root).expect("workspace load");
    let findings = rules::run_all(&ws);
    let text = std::fs::read_to_string(root.join("lint_allow.txt")).expect("allowlist");
    let entries = allowlist::parse(&text).expect("allowlist parse");
    for e in &entries {
        assert!(
            !e.justification.trim().is_empty(),
            "allowlist entry at line {} has no justification",
            e.line
        );
    }
    let applied = allowlist::apply(findings, &entries);
    assert!(
        applied.open.is_empty(),
        "unallowlisted findings:\n{}",
        tpc_lint::report::render_human(&applied.open)
    );
    assert!(
        applied.stale.is_empty(),
        "stale allowlist entries: {:?}",
        applied
            .stale
            .iter()
            .map(|e| (e.rule.as_str(), e.file.as_str(), e.needle.as_str()))
            .collect::<Vec<_>>()
    );
}

#[test]
fn rules_bite_on_a_seeded_regression() {
    // A miniature workspace with one of each violation the PR fixed:
    // the rules must flag all of them (the gate is not vacuous).
    use tpc_lint::workspace::SourceFile;
    let mk = |rel: &str, src: &str| SourceFile {
        rel: rel.into(),
        lines: src.lines().map(str::to_string).collect(),
        trees: tree::strip_cfg_test(tree::parse(&lexer::lex(src).unwrap()).unwrap()),
    };
    let ws = Workspace {
        files: vec![
            mk(
                "crates/experiments/src/coverage.rs",
                "use std::collections::HashSet;\nfn t() -> std::time::Instant { std::time::Instant::now() }",
            ),
            mk(
                "crates/service/src/spec.rs",
                "fn parse(parts: &[&str]) { match parts[0] { _ => {} } }",
            ),
            mk(
                "crates/experiments/src/bin/fig5.rs",
                "//! Usage: fig5 [--seed N]\nfn main() {}",
            ),
        ],
    };
    let findings = rules::run_all(&ws);
    let rules_hit: Vec<&str> = findings.iter().map(|f| f.rule).collect();
    for expected in [
        "det-hash-collection",
        "det-wall-clock",
        "panic-index",
        "conf-jobs-flag",
    ] {
        assert!(
            rules_hit.contains(&expected),
            "expected {expected} in {rules_hit:?}"
        );
    }
}
