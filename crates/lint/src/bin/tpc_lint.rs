//! The static-analysis gate.
//!
//! ```text
//! tpc_lint [--root DIR] [--json PATH] [--list-allow]
//! ```
//!
//! Scans every production source file in the workspace (found by
//! walking up from `--root` or the current directory), runs all lint
//! rules, matches findings against `lint_allow.txt`, and:
//!
//! * prints a human report of unallowlisted findings and stale
//!   allowlist entries;
//! * with `--json PATH`, writes per-rule open/allowlisted counts and
//!   the full finding list (the `BENCH_lint.json` artifact);
//! * with `--list-allow`, prints every allowlist entry with its
//!   mandatory justification (the verify gate shows this);
//! * exits 0 only when there are zero unallowlisted findings and
//!   zero stale allowlist entries — 1 on findings, 2 on usage or
//!   internal errors.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use tpc_lint::allowlist;
use tpc_lint::report;
use tpc_lint::rules;
use tpc_lint::workspace::{find_root, Workspace};

fn main() -> ExitCode {
    match run(std::env::args().skip(1).collect()) {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("tpc_lint: error: {e}");
            ExitCode::from(2)
        }
    }
}

fn run(args: Vec<String>) -> Result<bool, String> {
    let mut root_arg: Option<PathBuf> = None;
    let mut json_path: Option<PathBuf> = None;
    let mut list_allow = false;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => root_arg = Some(PathBuf::from(it.next().ok_or("--root needs DIR")?)),
            "--json" => json_path = Some(PathBuf::from(it.next().ok_or("--json needs PATH")?)),
            "--list-allow" => list_allow = true,
            "--help" | "-h" => {
                println!("usage: tpc_lint [--root DIR] [--json PATH] [--list-allow]");
                return Ok(true);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    let start = root_arg.unwrap_or(std::env::current_dir().map_err(|e| e.to_string())?);
    let root = find_root(&start).ok_or_else(|| {
        format!(
            "no workspace root (Cargo.toml + crates/) at or above {}",
            start.display()
        )
    })?;

    let ws = Workspace::load(&root)?;
    let findings = rules::run_all(&ws);
    let entries = load_allowlist(&root)?;
    let applied = allowlist::apply(findings, &entries);

    if list_allow {
        println!("allowlist ({} entries):", entries.len());
        for e in &entries {
            println!(
                "  [{}] {} `{}` — {}",
                e.rule, e.file, e.needle, e.justification
            );
        }
        println!();
    }

    if let Some(path) = &json_path {
        let json = report::render_json(
            rules::RULE_IDS,
            &applied.open,
            &applied.allowlisted,
            ws.files.len(),
        );
        std::fs::write(path, json).map_err(|e| format!("{}: {e}", path.display()))?;
    }

    let clean = applied.open.is_empty() && applied.stale.is_empty();
    if !applied.open.is_empty() {
        print!("{}", report::render_human(&applied.open));
        println!();
    }
    for s in &applied.stale {
        println!(
            "stale allowlist entry (lint_allow.txt:{}): [{}] {} `{}` matches nothing — remove it",
            s.line, s.rule, s.file, s.needle
        );
    }
    println!(
        "tpc_lint: {} files, {} open finding(s), {} allowlisted, {} stale allowlist entr(ies) — {}",
        ws.files.len(),
        applied.open.len(),
        applied.allowlisted.len(),
        applied.stale.len(),
        if clean { "OK" } else { "FAIL" }
    );
    Ok(clean)
}

fn load_allowlist(root: &Path) -> Result<Vec<allowlist::Entry>, String> {
    let path = root.join("lint_allow.txt");
    if !path.is_file() {
        return Ok(Vec::new());
    }
    let text = std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
    allowlist::parse(&text)
}
