//! A hand-rolled Rust lexer, in the style of the service crate's
//! std-only JSON parser: offline-safe, no `syn`, no proc-macro
//! machinery.
//!
//! The lexer is **lossless**: every byte of the input lands in
//! exactly one token (trivia — whitespace and comments — included),
//! so concatenating `Tok::text` in order reproduces the file
//! byte-for-byte. The workspace round-trip test leans on this to
//! prove the lexer understands every `.rs` file in the repo.
//!
//! Handled Rust surface the rules depend on:
//!
//! * raw strings `r"…"` / `r#"…"#` (any hash depth), byte strings
//!   `b"…"`, raw byte strings `br#"…"#`, C strings `c"…"` / `cr#"…"#`;
//! * lifetimes (`'a`, `'static`) vs char literals (`'a'`, `'\n'`);
//! * `r#`-escaped identifiers (`r#type`);
//! * nested block comments and doc comments;
//! * numeric literals with underscores, radix prefixes, exponents and
//!   type suffixes, without eating `..` out of `1..2`;
//! * multi-character punctuation (`::`, `->`, `=>`, `..=`, `<<=`, …)
//!   joined into single tokens so rule patterns stay simple.

/// What kind of token a [`Tok`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Whitespace run (trivia).
    Ws,
    /// `// …` comment, including `///` and `//!` doc comments.
    LineComment,
    /// `/* … */` comment (nesting handled), including `/** … */`.
    BlockComment,
    /// Identifier or keyword, including raw `r#ident` forms.
    Ident,
    /// A lifetime such as `'a` or `'static` (no closing quote).
    Lifetime,
    /// Character literal `'x'`, escapes included.
    Char,
    /// Byte literal `b'x'`.
    Byte,
    /// String literal `"…"` (escapes kept raw).
    Str,
    /// Raw string literal `r"…"` / `r#"…"#`.
    RawStr,
    /// Byte-string literal `b"…"`.
    ByteStr,
    /// Raw byte-string literal `br"…"` / `br#"…"#`.
    RawByteStr,
    /// C-string literal `c"…"` / raw `cr#"…"#`.
    CStr,
    /// Numeric literal (integer or float, suffix included).
    Num,
    /// Punctuation, multi-character operators joined (`::`, `=>`, …).
    Punct,
}

/// One lexed token: its kind, raw source text, and 1-based start
/// line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Raw source text, byte-for-byte.
    pub text: String,
    /// 1-based line of the token's first byte.
    pub line: u32,
}

impl Tok {
    /// True for whitespace and comments.
    pub fn is_trivia(&self) -> bool {
        matches!(
            self.kind,
            TokKind::Ws | TokKind::LineComment | TokKind::BlockComment
        )
    }
}

/// Multi-character punctuation, longest first so greedy matching is
/// correct.
const PUNCTS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "..",
];

/// Lexes `src` into a lossless token stream.
///
/// # Errors
///
/// A human-readable message naming the line of the first unterminated
/// string, char, or block comment. Anything the lexer cannot classify
/// is an error, never silently skipped — the round-trip test depends
/// on totality.
pub fn lex(src: &str) -> Result<Vec<Tok>, String> {
    Lexer {
        bytes: src.as_bytes(),
        src,
        at: 0,
        line: 1,
    }
    .run()
}

struct Lexer<'a> {
    bytes: &'a [u8],
    src: &'a str,
    at: usize,
    line: u32,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Result<Vec<Tok>, String> {
        let mut toks = Vec::new();
        while self.at < self.bytes.len() {
            let start = self.at;
            let line = self.line;
            let kind = self.next_kind()?;
            let text = self.src[start..self.at].to_string();
            self.line += text.bytes().filter(|&b| b == b'\n').count() as u32;
            toks.push(Tok { kind, text, line });
        }
        Ok(toks)
    }

    fn peek(&self, ahead: usize) -> u8 {
        self.bytes.get(self.at + ahead).copied().unwrap_or(0)
    }

    fn err(&self, what: &str) -> String {
        format!("line {}: {what}", self.line)
    }

    fn next_kind(&mut self) -> Result<TokKind, String> {
        let b = self.peek(0);
        if b.is_ascii_whitespace() {
            while self.peek(0).is_ascii_whitespace() {
                self.at += 1;
            }
            return Ok(TokKind::Ws);
        }
        if b == b'/' && self.peek(1) == b'/' {
            while self.at < self.bytes.len() && self.peek(0) != b'\n' {
                self.at += 1;
            }
            return Ok(TokKind::LineComment);
        }
        if b == b'/' && self.peek(1) == b'*' {
            return self.block_comment();
        }
        // String-ish prefixes must run before the generic ident path.
        match (b, self.peek(1), self.peek(2)) {
            (b'r', b'"', _) | (b'r', b'#', _) if self.raw_string_ahead(1) => {
                self.at += 1;
                return self.raw_string().map(|()| TokKind::RawStr);
            }
            (b'b', b'r', b'"') | (b'b', b'r', b'#') if self.raw_string_ahead(2) => {
                self.at += 2;
                return self.raw_string().map(|()| TokKind::RawByteStr);
            }
            (b'c', b'r', b'"') | (b'c', b'r', b'#') if self.raw_string_ahead(2) => {
                self.at += 2;
                return self.raw_string().map(|()| TokKind::CStr);
            }
            (b'b', b'"', _) => {
                self.at += 1;
                return self.quoted_string().map(|()| TokKind::ByteStr);
            }
            (b'c', b'"', _) => {
                self.at += 1;
                return self.quoted_string().map(|()| TokKind::CStr);
            }
            (b'b', b'\'', _) => {
                self.at += 1;
                return self.char_literal().map(|()| TokKind::Byte);
            }
            _ => {}
        }
        if b == b'"' {
            return self.quoted_string().map(|()| TokKind::Str);
        }
        if b == b'\'' {
            return self.lifetime_or_char();
        }
        if b == b'r' && self.peek(1) == b'#' && is_ident_start(self.peek(2)) {
            // Raw identifier r#type.
            self.at += 2;
            while is_ident_continue(self.peek(0)) {
                self.at += 1;
            }
            return Ok(TokKind::Ident);
        }
        if is_ident_start(b) {
            while is_ident_continue(self.peek(0)) {
                self.at += 1;
            }
            return Ok(TokKind::Ident);
        }
        if b.is_ascii_digit() {
            return self.number();
        }
        // Multi-byte UTF-8 outside strings/comments would be a
        // non-ASCII identifier; the workspace has none, but accept a
        // single scalar as an Ident to stay total.
        if b >= 0x80 {
            let ch = self.src[self.at..].chars().next().ok_or("utf8")?;
            self.at += ch.len_utf8();
            return Ok(TokKind::Ident);
        }
        for p in PUNCTS {
            if self.bytes[self.at..].starts_with(p.as_bytes()) {
                self.at += p.len();
                return Ok(TokKind::Punct);
            }
        }
        self.at += 1;
        Ok(TokKind::Punct)
    }

    fn block_comment(&mut self) -> Result<TokKind, String> {
        let mut depth = 0usize;
        while self.at < self.bytes.len() {
            if self.peek(0) == b'/' && self.peek(1) == b'*' {
                depth += 1;
                self.at += 2;
            } else if self.peek(0) == b'*' && self.peek(1) == b'/' {
                depth -= 1;
                self.at += 2;
                if depth == 0 {
                    return Ok(TokKind::BlockComment);
                }
            } else {
                self.at += 1;
            }
        }
        Err(self.err("unterminated block comment"))
    }

    /// Whether, starting `ahead` bytes in (just past an `r`/`br`/`cr`
    /// prefix), zero or more `#` then a `"` follow — i.e. a raw
    /// string rather than a raw identifier.
    fn raw_string_ahead(&self, ahead: usize) -> bool {
        let mut i = ahead;
        while self.peek(i) == b'#' {
            i += 1;
        }
        self.peek(i) == b'"'
    }

    /// Consumes `#…#"…"#…#` with the cursor on the first `#` or `"`.
    fn raw_string(&mut self) -> Result<(), String> {
        let mut hashes = 0usize;
        while self.peek(0) == b'#' {
            hashes += 1;
            self.at += 1;
        }
        if self.peek(0) != b'"' {
            return Err(self.err("malformed raw string"));
        }
        self.at += 1;
        while self.at < self.bytes.len() {
            if self.peek(0) == b'"' {
                let mut close = 0usize;
                while close < hashes && self.peek(1 + close) == b'#' {
                    close += 1;
                }
                if close == hashes {
                    self.at += 1 + hashes;
                    return Ok(());
                }
            }
            self.at += 1;
        }
        Err(self.err("unterminated raw string"))
    }

    /// Consumes `"…"` with escapes, cursor on the opening quote.
    fn quoted_string(&mut self) -> Result<(), String> {
        self.at += 1;
        while self.at < self.bytes.len() {
            match self.peek(0) {
                b'"' => {
                    self.at += 1;
                    return Ok(());
                }
                b'\\' => self.at += 2,
                _ => self.at += 1,
            }
        }
        Err(self.err("unterminated string"))
    }

    /// Consumes `'…'` with escapes, cursor on the opening quote.
    fn char_literal(&mut self) -> Result<(), String> {
        self.at += 1;
        loop {
            match self.peek(0) {
                0 => return Err(self.err("unterminated char literal")),
                b'\'' => {
                    self.at += 1;
                    return Ok(());
                }
                b'\\' => self.at += 2,
                _ => {
                    let ch = self.src[self.at..]
                        .chars()
                        .next()
                        .ok_or_else(|| self.err("utf8"))?;
                    self.at += ch.len_utf8();
                }
            }
        }
    }

    /// `'a` vs `'a'`: a lifetime is a quote plus an identifier *not*
    /// closed by another quote.
    fn lifetime_or_char(&mut self) -> Result<TokKind, String> {
        if is_ident_start(self.peek(1)) {
            let mut i = 2;
            while is_ident_continue(self.peek(i)) {
                i += 1;
            }
            if self.peek(i) != b'\'' {
                self.at += i;
                return Ok(TokKind::Lifetime);
            }
        }
        self.char_literal().map(|()| TokKind::Char)
    }

    fn number(&mut self) -> Result<TokKind, String> {
        if self.peek(0) == b'0' && matches!(self.peek(1), b'x' | b'o' | b'b') {
            self.at += 2;
            while matches!(self.peek(0), b'0'..=b'9' | b'a'..=b'f' | b'A'..=b'F' | b'_') {
                self.at += 1;
            }
        } else {
            while matches!(self.peek(0), b'0'..=b'9' | b'_') {
                self.at += 1;
            }
            // A fractional part only if the dot is followed by a
            // digit — `1..2` and `1.max(2)` keep their dots.
            if self.peek(0) == b'.' && self.peek(1).is_ascii_digit() {
                self.at += 1;
                while matches!(self.peek(0), b'0'..=b'9' | b'_') {
                    self.at += 1;
                }
            }
            // Exponent.
            if matches!(self.peek(0), b'e' | b'E') {
                let sign = usize::from(matches!(self.peek(1), b'+' | b'-'));
                if self.peek(1 + sign).is_ascii_digit() {
                    self.at += 1 + sign;
                    while matches!(self.peek(0), b'0'..=b'9' | b'_') {
                        self.at += 1;
                    }
                }
            }
        }
        // Type suffix (u64, f32, usize, …).
        while is_ident_continue(self.peek(0)) {
            self.at += 1;
        }
        Ok(TokKind::Num)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .unwrap()
            .into_iter()
            .filter(|t| !t.is_trivia())
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn round_trip_is_lossless() {
        let src = "fn main() { let s = \"x\\\"y\"; /* a /* b */ c */ }\n";
        let toks = lex(src).unwrap();
        let rebuilt: String = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(rebuilt, src);
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let v = kinds("<'a, 'static> 'x' '\\n' b'q'");
        assert_eq!(v[1].0, TokKind::Lifetime);
        assert_eq!(v[3].0, TokKind::Lifetime);
        assert_eq!(v[5].0, TokKind::Char);
        assert_eq!(v[6].0, TokKind::Char);
        assert_eq!(v[7].0, TokKind::Byte);
    }

    #[test]
    fn raw_strings_and_raw_idents() {
        let v = kinds("r#type r\"a\" r#\"b\"c\"# br#\"d\"# b\"e\" c\"f\"");
        assert_eq!(v[0], (TokKind::Ident, "r#type".into()));
        assert_eq!(v[1], (TokKind::RawStr, "r\"a\"".into()));
        assert_eq!(v[2], (TokKind::RawStr, "r#\"b\"c\"#".into()));
        assert_eq!(v[3], (TokKind::RawByteStr, "br#\"d\"#".into()));
        assert_eq!(v[4], (TokKind::ByteStr, "b\"e\"".into()));
        assert_eq!(v[5], (TokKind::CStr, "c\"f\"".into()));
    }

    #[test]
    fn numbers_and_ranges() {
        let v = kinds("1..2 1.5e-3 0xFF_u8 10usize 1_000");
        assert_eq!(v[0], (TokKind::Num, "1".into()));
        assert_eq!(v[1], (TokKind::Punct, "..".into()));
        assert_eq!(v[2], (TokKind::Num, "2".into()));
        assert_eq!(v[3], (TokKind::Num, "1.5e-3".into()));
        assert_eq!(v[4], (TokKind::Num, "0xFF_u8".into()));
        assert_eq!(v[5], (TokKind::Num, "10usize".into()));
        assert_eq!(v[6], (TokKind::Num, "1_000".into()));
    }

    #[test]
    fn punct_joining() {
        let v = kinds("a::b -> c => d ..= e <<= f");
        let puncts: Vec<&str> = v
            .iter()
            .filter(|(k, _)| *k == TokKind::Punct)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(puncts, ["::", "->", "=>", "..=", "<<="]);
    }

    #[test]
    fn unterminated_inputs_error() {
        assert!(lex("\"abc").is_err());
        assert!(lex("/* abc").is_err());
        assert!(lex("r#\"abc\"").is_err());
    }

    #[test]
    fn line_numbers_track_newlines() {
        let toks = lex("a\nb\n  c").unwrap();
        let lines: Vec<(String, u32)> = toks
            .iter()
            .filter(|t| !t.is_trivia())
            .map(|t| (t.text.clone(), t.line))
            .collect();
        assert_eq!(lines, [("a".into(), 1), ("b".into(), 2), ("c".into(), 3)]);
    }
}
