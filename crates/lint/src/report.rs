//! Finding representation and report rendering.
//!
//! Findings render two ways: a human report grouped by file, and a
//! machine-readable JSON summary (`BENCH_lint.json`) with per-rule
//! counts. Both are byte-deterministic: findings are sorted by
//! (file, line, rule) before rendering, and the JSON writer emits
//! keys in a fixed order with the same minimal string escaping as
//! the service crate's protocol writer.

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable rule identifier, e.g. `det-hash-collection`.
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// What the rule objected to.
    pub msg: String,
    /// Trimmed text of the offending source line (allowlist needles
    /// match against this).
    pub excerpt: String,
}

/// Sorts findings into the canonical (file, line, rule) order every
/// renderer assumes.
pub fn sort(findings: &mut [Finding]) {
    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
}

/// Renders the human report: one block per file, one line per
/// finding. Returns the empty string when there is nothing to say.
pub fn render_human(findings: &[Finding]) -> String {
    let mut out = String::new();
    let mut last_file = "";
    for f in findings {
        if f.file != last_file {
            if !out.is_empty() {
                out.push('\n');
            }
            out.push_str(&f.file);
            out.push('\n');
            last_file = &f.file;
        }
        out.push_str(&format!(
            "  {}:{} [{}] {}\n      {}\n",
            f.file, f.line, f.rule, f.msg, f.excerpt
        ));
    }
    out
}

/// Escapes a string for embedding in a JSON document (quote,
/// backslash, control characters).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders `BENCH_lint.json`: per-rule open/allowlisted counts plus
/// the full finding list, deterministic byte-for-byte.
///
/// `rule_ids` fixes the rule ordering (every known rule appears even
/// at count zero, so diffs show rules coming and going).
pub fn render_json(
    rule_ids: &[&str],
    open: &[Finding],
    allowlisted: &[Finding],
    files_scanned: usize,
) -> String {
    let count = |fs: &[Finding], rule: &str| fs.iter().filter(|f| f.rule == rule).count();
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"tpc-lint-v1\",\n");
    out.push_str(&format!("  \"files_scanned\": {files_scanned},\n"));
    out.push_str(&format!("  \"open\": {},\n", open.len()));
    out.push_str(&format!("  \"allowlisted\": {},\n", allowlisted.len()));
    out.push_str("  \"rules\": {\n");
    for (i, rule) in rule_ids.iter().enumerate() {
        out.push_str(&format!(
            "    \"{}\": {{\"open\": {}, \"allowlisted\": {}}}{}\n",
            rule,
            count(open, rule),
            count(allowlisted, rule),
            if i + 1 == rule_ids.len() { "" } else { "," }
        ));
    }
    out.push_str("  },\n  \"findings\": [\n");
    for (i, f) in open.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"msg\": \"{}\", \"excerpt\": \"{}\"}}{}\n",
            f.rule,
            json_escape(&f.file),
            f.line,
            json_escape(&f.msg),
            json_escape(&f.excerpt),
            if i + 1 == open.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(rule: &'static str, file: &str, line: u32) -> Finding {
        Finding {
            rule,
            file: file.into(),
            line,
            msg: "m".into(),
            excerpt: "e".into(),
        }
    }

    #[test]
    fn sort_orders_by_file_line_rule() {
        let mut v = vec![f("b", "z.rs", 1), f("a", "a.rs", 9), f("a", "a.rs", 2)];
        sort(&mut v);
        assert_eq!(
            v.iter()
                .map(|x| (x.file.as_str(), x.line))
                .collect::<Vec<_>>(),
            [("a.rs", 2), ("a.rs", 9), ("z.rs", 1)]
        );
    }

    #[test]
    fn human_report_groups_by_file() {
        let report = render_human(&[f("a", "x.rs", 1), f("a", "x.rs", 2), f("a", "y.rs", 3)]);
        assert_eq!(report.matches("x.rs\n").count(), 1);
        assert!(report.contains("y.rs\n"));
    }

    #[test]
    fn json_is_valid_and_counts_per_rule() {
        let open = vec![f("det-wall-clock", "x.rs", 1)];
        let allow = vec![f("det-wall-clock", "y.rs", 2), f("panic-path", "y.rs", 3)];
        let j = render_json(&["det-wall-clock", "panic-path"], &open, &allow, 42);
        assert!(j.contains("\"det-wall-clock\": {\"open\": 1, \"allowlisted\": 1}"));
        assert!(j.contains("\"panic-path\": {\"open\": 0, \"allowlisted\": 1}"));
        assert!(j.contains("\"files_scanned\": 42"));
        // Escaping: a quote in an excerpt must not break the JSON.
        let mut q = f("panic-path", "x.rs", 9);
        q.excerpt = "expect(\"msg\")".into();
        let j = render_json(&["panic-path"], &[q], &[], 1);
        assert!(j.contains("expect(\\\"msg\\\")"));
    }
}
