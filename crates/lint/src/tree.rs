//! Token trees over the lexer's flat stream: leaves plus bracketed
//! groups for `()`, `[]`, `{}`.
//!
//! Rules operate on trees rather than raw tokens for two reasons:
//!
//! * **`#[cfg(test)]` stripping.** Test modules legitimately use
//!   `HashSet`, `unwrap`, wall clocks and panics; production rules
//!   must not see them. The tree walk recognises the exact shape
//!   `#` `[cfg(test)]` followed by an optional second attribute run
//!   and a `mod name { … }` (or `fn`/`impl` item) and drops it.
//! * **Scope queries.** Conformance rules need "the tokens of
//!   function `f` in file x.rs" or "the match arms inside this
//!   block" — both are natural tree traversals and painful on a flat
//!   stream.

use crate::lexer::{Tok, TokKind};

/// A token tree: a single non-bracket token, or a bracketed group.
#[derive(Debug, Clone)]
pub enum Tree {
    /// A single token (never one of `( ) [ ] { }`).
    Leaf(Tok),
    /// A bracketed group and the trees inside it.
    Group {
        /// Opening delimiter: `(`, `[`, or `{`.
        open: char,
        /// 1-based line of the opening delimiter.
        line: u32,
        /// Children in source order (trivia dropped).
        children: Vec<Tree>,
    },
}

impl Tree {
    /// The 1-based source line this tree starts on.
    pub fn line(&self) -> u32 {
        match self {
            Tree::Leaf(t) => t.line,
            Tree::Group { line, .. } => *line,
        }
    }

    /// Leaf text, or the opening delimiter for a group.
    pub fn text(&self) -> &str {
        match self {
            Tree::Leaf(t) => &t.text,
            Tree::Group { open: '(', .. } => "(",
            Tree::Group { open: '[', .. } => "[",
            Tree::Group { .. } => "{",
        }
    }

    /// True if this is an ident leaf with exactly this text.
    pub fn is_ident(&self, s: &str) -> bool {
        matches!(self, Tree::Leaf(t) if t.kind == TokKind::Ident && t.text == s)
    }

    /// True if this is a punct leaf with exactly this text.
    pub fn is_punct(&self, s: &str) -> bool {
        matches!(self, Tree::Leaf(t) if t.kind == TokKind::Punct && t.text == s)
    }

    /// True if this is a group opened by `open`.
    pub fn is_group(&self, open: char) -> bool {
        matches!(self, Tree::Group { open: o, .. } if *o == open)
    }

    /// Children if this is a group, else an empty slice.
    pub fn children(&self) -> &[Tree] {
        match self {
            Tree::Group { children, .. } => children,
            Tree::Leaf(_) => &[],
        }
    }
}

/// Parses a trivia-free token stream into trees.
///
/// # Errors
///
/// Reports unbalanced or mismatched delimiters with their line.
pub fn parse(toks: &[Tok]) -> Result<Vec<Tree>, String> {
    let toks: Vec<&Tok> = toks.iter().filter(|t| !t.is_trivia()).collect();
    let mut at = 0usize;
    let trees = parse_until(&toks, &mut at, None)?;
    if at != toks.len() {
        // bound: at < toks.len() checked by the condition above
        return Err(format!(
            "line {}: unmatched closing delimiter",
            toks[at].line
        ));
    }
    Ok(trees)
}

fn close_of(open: char) -> char {
    match open {
        '(' => ')',
        '[' => ']',
        _ => '}',
    }
}

fn parse_until(toks: &[&Tok], at: &mut usize, close: Option<char>) -> Result<Vec<Tree>, String> {
    let mut out = Vec::new();
    while *at < toks.len() {
        // bound: *at < toks.len() guarded by the loop condition
        let t = toks[*at];
        let is_punct = t.kind == TokKind::Punct;
        let ch = t.text.chars().next().unwrap_or(' ');
        if is_punct && matches!(ch, ')' | ']' | '}') {
            if Some(ch) == close {
                *at += 1;
                return Ok(out);
            }
            if close.is_some() {
                return Err(format!("line {}: mismatched delimiter `{ch}`", t.line));
            }
            return Ok(out);
        }
        if is_punct && matches!(ch, '(' | '[' | '{') {
            let line = t.line;
            *at += 1;
            let children = parse_until(toks, at, Some(close_of(ch)))?;
            // parse_until only returns Ok after consuming the closer
            // or hitting end-of-input; detect the latter.
            if *at > toks.len() {
                return Err(format!("line {line}: unterminated `{ch}`"));
            }
            out.push(Tree::Group {
                open: ch,
                line,
                children,
            });
            continue;
        }
        out.push(Tree::Leaf(t.clone()));
        *at += 1;
    }
    if let Some(c) = close {
        return Err(format!("unterminated group, expected `{c}`"));
    }
    Ok(out)
}

/// True when the bracket-group tokens of an attribute spell
/// `cfg(test)` or `cfg(all(test, …))` / `cfg(any(test))` etc. — any
/// attribute whose tokens contain the bare ident `test` under `cfg`.
fn is_cfg_test_attr(children: &[Tree]) -> bool {
    if !children.first().is_some_and(|c| c.is_ident("cfg")) {
        return false;
    }
    fn contains_test(trees: &[Tree]) -> bool {
        trees.iter().any(|t| match t {
            Tree::Leaf(_) => t.is_ident("test"),
            Tree::Group { children, .. } => contains_test(children),
        })
    }
    contains_test(&children[1..])
}

/// Removes every item guarded by a `#[cfg(test)]` attribute —
/// typically `mod tests { … }` — anywhere in the forest, so
/// production-path rules never see test code.
pub fn strip_cfg_test(trees: Vec<Tree>) -> Vec<Tree> {
    let mut out: Vec<Tree> = Vec::with_capacity(trees.len());
    let mut i = 0usize;
    while i < trees.len() {
        // bound: i < trees.len() guarded by the loop condition
        let is_cfg_test = trees[i].is_punct("#")
            && trees
                .get(i + 1)
                .is_some_and(|g| g.is_group('[') && is_cfg_test_attr(g.children()));
        if is_cfg_test {
            // Skip `#` `[cfg(test)]`, any further attributes, then
            // one item: everything up to and including the first
            // `{ … }` group or terminating `;`.
            i += 2;
            while i < trees.len() {
                // bound: i < trees.len() guarded by the loop condition
                if trees[i].is_punct("#") {
                    i += 2; // attribute: `#` + bracket group
                    continue;
                }
                let end = trees[i].is_group('{') || trees[i].is_punct(";");
                i += 1;
                if end {
                    break;
                }
            }
            continue;
        }
        match trees[i].clone() {
            Tree::Group {
                open,
                line,
                children,
            } => out.push(Tree::Group {
                open,
                line,
                children: strip_cfg_test(children),
            }),
            leaf => out.push(leaf),
        }
        i += 1;
    }
    out
}

/// Depth-first walk over a forest, visiting each tree (groups before
/// their children).
pub fn walk<'t>(trees: &'t [Tree], visit: &mut dyn FnMut(&'t Tree)) {
    for t in trees {
        visit(t);
        if let Tree::Group { children, .. } = t {
            walk(children, visit);
        }
    }
}

/// Finds the body group of `fn name` items in a forest (searching
/// nested groups too) and returns `(line, body-children)` pairs.
pub fn fn_bodies<'t>(trees: &'t [Tree], name: &str) -> Vec<(u32, &'t [Tree])> {
    let mut found = Vec::new();
    collect_fn_bodies(trees, name, &mut found);
    found
}

fn collect_fn_bodies<'t>(trees: &'t [Tree], name: &str, out: &mut Vec<(u32, &'t [Tree])>) {
    let mut i = 0usize;
    while i < trees.len() {
        // bound: i < trees.len() guarded by the loop condition
        if trees[i].is_ident("fn") && trees.get(i + 1).is_some_and(|t| t.is_ident(name)) {
            // Body is the first `{ … }` group after the signature.
            let mut j = i + 2;
            while j < trees.len() {
                // bound: j < trees.len() guarded by the loop condition
                if trees[j].is_group('{') {
                    out.push((trees[i].line(), trees[j].children()));
                    break;
                }
                if trees[j].is_punct(";") {
                    break; // trait method without body
                }
                j += 1;
            }
        }
        if let Tree::Group { children, .. } = &trees[i] {
            collect_fn_bodies(children, name, out);
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn forest(src: &str) -> Vec<Tree> {
        parse(&lex(src).unwrap()).unwrap()
    }

    #[test]
    fn groups_nest() {
        let f = forest("fn f(a: [u8; 2]) { g(1); }");
        assert!(f.iter().any(|t| t.is_group('{')));
        let body = f.iter().find(|t| t.is_group('{')).unwrap();
        assert!(body.children().iter().any(|t| t.is_ident("g")));
    }

    #[test]
    fn mismatched_delimiters_error() {
        assert!(parse(&lex("fn f( }").unwrap()).is_err());
        assert!(parse(&lex("{ ( }").unwrap()).is_err());
        assert!(parse(&lex("fn f() {").unwrap()).is_err());
    }

    #[test]
    fn cfg_test_mod_is_stripped() {
        let f = strip_cfg_test(forest(
            "use std::collections::BTreeMap;\n\
             #[cfg(test)]\nmod tests { use std::collections::HashSet; }\n\
             fn keep() {}",
        ));
        let mut seen = Vec::new();
        walk(&f, &mut |t| seen.push(t.text().to_string()));
        assert!(seen.iter().any(|s| s == "keep"));
        assert!(!seen.iter().any(|s| s == "HashSet"));
        assert!(!seen.iter().any(|s| s == "tests"));
    }

    #[test]
    fn cfg_test_fn_with_extra_attrs_is_stripped() {
        let f = strip_cfg_test(forest(
            "#[cfg(test)]\n#[allow(dead_code)]\nfn helper() { panic!(\"x\") }\nfn keep() {}",
        ));
        let mut seen = Vec::new();
        walk(&f, &mut |t| seen.push(t.text().to_string()));
        assert!(!seen.iter().any(|s| s == "helper"));
        assert!(seen.iter().any(|s| s == "keep"));
    }

    #[test]
    fn nested_cfg_test_inside_module_is_stripped() {
        let f = strip_cfg_test(forest(
            "mod inner { #[cfg(test)] mod tests { fn t() {} } fn keep() {} }",
        ));
        let mut seen = Vec::new();
        walk(&f, &mut |t| seen.push(t.text().to_string()));
        assert!(!seen.iter().any(|s| s == "t"));
        assert!(seen.iter().any(|s| s == "keep"));
    }

    #[test]
    fn fn_bodies_finds_nested() {
        let f = forest("impl X { fn target(&self) { inner_marker(); } } fn target() {}");
        let bodies = fn_bodies(&f, "target");
        assert_eq!(bodies.len(), 2);
        assert!(bodies[0].1.iter().any(|t| t.is_ident("inner_marker")));
    }
}
