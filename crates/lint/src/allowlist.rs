//! The checked-in suppression list.
//!
//! Format (`lint_allow.txt` at the workspace root), one entry per
//! line:
//!
//! ```text
//! rule-id | path/to/file.rs | needle substring | justification text
//! ```
//!
//! An entry suppresses a finding when the rule id and file match
//! exactly and the finding's source-line excerpt contains the
//! needle. Three properties keep the list honest:
//!
//! * the justification field is **mandatory** — an empty fourth
//!   field is a parse error, so every suppression carries a written
//!   reason;
//! * an entry that matches **no** finding is a hard error ("stale"),
//!   so fixed code can't leave silent suppressions behind;
//! * matching is per-finding, so one entry can cover several hits of
//!   the same idiom in one file, but never a different rule or file.

use crate::report::Finding;

/// One parsed allowlist entry.
#[derive(Debug, Clone)]
pub struct Entry {
    /// Rule id this entry suppresses.
    pub rule: String,
    /// Workspace-relative file the suppression applies to.
    pub file: String,
    /// Substring that must appear in the finding's excerpt.
    pub needle: String,
    /// Written reason — mandatory, printed by the verify gate.
    pub justification: String,
    /// 1-based line in the allowlist file (for stale reporting).
    pub line: u32,
}

/// Parses the allowlist text.
///
/// # Errors
///
/// Malformed lines (wrong field count, empty rule/file/needle, or a
/// missing justification) with their line numbers.
pub fn parse(text: &str) -> Result<Vec<Entry>, String> {
    let mut entries = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = (i + 1) as u32;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = trimmed.splitn(4, '|').map(str::trim).collect();
        if fields.len() != 4 {
            return Err(format!(
                "lint_allow.txt:{line}: expected `rule | file | needle | justification`"
            ));
        }
        // bound: fields.len() == 4 checked above
        let (rule, file, needle, justification) = (fields[0], fields[1], fields[2], fields[3]);
        if rule.is_empty() || file.is_empty() || needle.is_empty() {
            return Err(format!(
                "lint_allow.txt:{line}: empty rule/file/needle field"
            ));
        }
        if justification.is_empty() {
            return Err(format!(
                "lint_allow.txt:{line}: justification is mandatory — say why this is safe"
            ));
        }
        entries.push(Entry {
            rule: rule.to_string(),
            file: file.to_string(),
            needle: needle.to_string(),
            justification: justification.to_string(),
            line,
        });
    }
    Ok(entries)
}

/// Splits findings into (open, allowlisted) and reports stale
/// entries that matched nothing.
pub fn apply(findings: Vec<Finding>, entries: &[Entry]) -> Applied {
    let mut open = Vec::new();
    let mut allowlisted = Vec::new();
    let mut used = vec![false; entries.len()];
    for f in findings {
        let hit = entries
            .iter()
            .position(|e| e.rule == f.rule && e.file == f.file && f.excerpt.contains(&e.needle));
        match hit {
            Some(i) => {
                // bound: position() returns an index < entries.len()
                used[i] = true;
                allowlisted.push(f);
            }
            None => open.push(f),
        }
    }
    let stale = entries
        .iter()
        .zip(&used)
        .filter(|(_, u)| !**u)
        .map(|(e, _)| e.clone())
        .collect();
    Applied {
        open,
        allowlisted,
        stale,
    }
}

/// Result of matching findings against the allowlist.
pub struct Applied {
    /// Findings no entry suppressed — these fail the gate.
    pub open: Vec<Finding>,
    /// Findings an entry suppressed.
    pub allowlisted: Vec<Finding>,
    /// Entries that suppressed nothing — these also fail the gate.
    pub stale: Vec<Entry>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, file: &str, excerpt: &str) -> Finding {
        Finding {
            rule,
            file: file.into(),
            line: 1,
            msg: String::new(),
            excerpt: excerpt.into(),
        }
    }

    #[test]
    fn parses_and_matches() {
        let entries = parse(
            "# comment\n\
             det-wall-clock | a.rs | Instant::now | timing is the measurement\n",
        )
        .unwrap();
        assert_eq!(entries.len(), 1);
        let a = apply(
            vec![
                finding("det-wall-clock", "a.rs", "let t = Instant::now();"),
                finding("det-wall-clock", "b.rs", "let t = Instant::now();"),
            ],
            &entries,
        );
        assert_eq!(a.allowlisted.len(), 1);
        assert_eq!(a.open.len(), 1);
        assert!(a.stale.is_empty());
    }

    #[test]
    fn justification_is_mandatory() {
        assert!(parse("r | f.rs | needle |\n").is_err());
        assert!(parse("r | f.rs | needle\n").is_err());
        assert!(parse("r | f.rs | | why\n").is_err());
    }

    #[test]
    fn unmatched_entries_are_stale() {
        let entries = parse("panic-path | gone.rs | unwrap | fixed long ago\n").unwrap();
        let a = apply(Vec::new(), &entries);
        assert_eq!(a.stale.len(), 1);
        assert_eq!(a.stale[0].file, "gone.rs");
    }

    #[test]
    fn one_entry_covers_repeated_idiom_in_one_file() {
        let entries = parse("p | f.rs | v[i] | index checked by loop bound\n").unwrap();
        let a = apply(
            vec![
                finding("p", "f.rs", "x = v[i];"),
                finding("p", "f.rs", "y = v[i] + 1;"),
            ],
            &entries,
        );
        assert_eq!(a.allowlisted.len(), 2);
        assert!(a.open.is_empty());
    }
}
